//! # phishare — facade crate
//!
//! Re-exports the full `phishare` stack under one roof. See the README for a
//! quickstart and DESIGN.md for the crate map.
//!
//! ```
//! use phishare::cluster::{ClusterConfig, Experiment};
//! use phishare::core::ClusterPolicy;
//! use phishare::workload::{WorkloadBuilder, WorkloadKind};
//!
//! // 30 jobs from the paper's Table I application mix.
//! let workload = WorkloadBuilder::new(WorkloadKind::Table1Mix)
//!     .count(30)
//!     .seed(42)
//!     .build();
//!
//! // A 2-node cluster running the full MCCK stack: mini-Condor + COSMIC
//! // middleware + the knapsack cluster scheduler.
//! let config = ClusterConfig::paper_cluster(ClusterPolicy::Mcck).with_nodes(2);
//! let result = Experiment::run(&config, &workload).unwrap();
//!
//! assert!(result.all_completed());
//! assert_eq!(result.oom_kills, 0); // sharing, but never oversubscription
//! ```

#![forbid(unsafe_code)]

pub use phishare_classad as classad;
pub use phishare_cluster as cluster;
pub use phishare_condor as condor;
pub use phishare_core as core;
pub use phishare_cosmic as cosmic;
pub use phishare_knapsack as knapsack;
pub use phishare_phi as phi;
pub use phishare_sim as sim;
pub use phishare_workload as workload;
