//! `phishare` — command-line front end for the simulator.
//!
//! ```text
//! phishare run        --policy mcck --jobs 400 --nodes 8 [--dist normal] [--json] [--gantt]
//! phishare compare    --jobs 400 --nodes 8 [--dist table1] [--oracle]
//! phishare footprint  --jobs 400 --max-nodes 8 [--dist table1] [--tolerance 0.02]
//! phishare workload   --count 100 [--dist table1] [--format csv|json] [--out FILE]
//! phishare sweep      --policies mcc,mcck --sizes 2,4,8 [--workers N] [--dir D] [--resume]
//! phishare --worker   --dir D --worker-id K        (spawned by sharded sweeps)
//! ```
//!
//! Every command accepts `--seed N` (default 7). Workloads can also be
//! loaded from a CSV file with `--from FILE` (schema: see
//! `phishare_workload::io`).

use phishare::cluster::report::{pct, secs, table};
use phishare::cluster::{
    footprint_search, CellRecord, ClusterConfig, DevicePool, Experiment, FaultPlan, PerturbConfig,
    PerturbPlan, ShardOptions, SubstrateMode, SweepJob,
};
use phishare::condor::MatchPath;
use phishare::core::ClusterPolicy;
use phishare::workload::{
    workload_from_csv, workload_to_csv, ArrivalProcess, ResourceDist, SyntheticParams, Workload,
    WorkloadBuilder, WorkloadKind,
};
use std::collections::BTreeMap;
use std::process::ExitCode;

const USAGE: &str = "\
phishare — coprocessor sharing-aware cluster scheduling simulator

USAGE:
  phishare run        --policy <mc|mcc|mcck|oracle> [--jobs N] [--nodes N]
                      [--dist <table1|uniform|normal|low|high>] [--seed N]
                      [--negotiation <delta|full>]
                      [--substrate <fast|keyed|shared|shared-naive>]
                      [--pool <uniform|gpu-mix|phi-mix|phi7120-mix>]
                      [--arrivals <zero|poisson:GAP|diurnal:GAP:PERIOD:AMP
                                  |bursty:GAP:SIZE:BGAP|flash:GAP:AT:FRAC>]
                      [--perturb SPEC]  e.g. derate:600:60:0.5,latency:300:30:2,
                                        stale-ads:400:45,jitter:3,horizon:3600
                      [--fault-plan FILE.json] [--dump-fault-plan FILE.json]
                      [--perturb-plan FILE.json] [--dump-perturb-plan FILE.json]
                      [--from FILE.csv] [--json] [--gantt]
  phishare compare    [--jobs N] [--nodes N] [--dist ...] [--seed N] [--oracle]
  phishare footprint  [--jobs N] [--max-nodes N] [--dist ...] [--seed N]
                      [--tolerance F]
  phishare workload   [--count N] [--dist ...] [--seed N]
                      [--format <csv|json>] [--out FILE]
  phishare sweep      [--policies mc,mcc,mcck] [--sizes 2,4,8] [--jobs N]
                      [--dist ...] [--seed N] [--substrate ...] [--pool ...]
                      [--workers N] [--dir DIR] [--resume] [--json]
                      Runs the (policy × size) grid. --workers 0 (default)
                      stays in-process; --workers N shards the grid across
                      N worker processes with fsync'd checkpoints in --dir,
                      resumable after a crash with --resume.
  phishare --worker   --dir DIR --worker-id K
                      Worker mode (spawned by sharded sweeps): claim and run
                      cells from DIR's manifest, checkpoint, exit.
  phishare help
";

/// Parsed `--key value` flags (and bare `--key` booleans).
struct Flags(BTreeMap<String, String>);

impl Flags {
    fn parse(args: &[String]) -> Result<Flags, String> {
        let mut map = BTreeMap::new();
        let mut i = 0;
        while i < args.len() {
            let arg = &args[i];
            let key = arg
                .strip_prefix("--")
                .ok_or_else(|| format!("expected a --flag, got {arg:?}"))?;
            let takes_value = !matches!(key, "json" | "gantt" | "oracle" | "resume");
            if takes_value {
                let value = args
                    .get(i + 1)
                    .ok_or_else(|| format!("--{key} needs a value"))?;
                map.insert(key.to_string(), value.clone());
                i += 2;
            } else {
                map.insert(key.to_string(), "true".into());
                i += 1;
            }
        }
        Ok(Flags(map))
    }

    fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.0.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|e| format!("bad --{key} {v:?}: {e}")),
        }
    }

    fn get_str(&self, key: &str) -> Option<&str> {
        self.0.get(key).map(|s| s.as_str())
    }

    fn has(&self, key: &str) -> bool {
        self.0.contains_key(key)
    }
}

fn build_workload(
    flags: &Flags,
    count_key: &str,
    default_count: usize,
) -> Result<Workload, String> {
    let seed: u64 = flags.get("seed", 7)?;
    if let Some(path) = flags.get_str("from") {
        if flags.has("arrivals") {
            return Err(
                "--arrivals cannot be combined with --from (CSV jobs arrive at zero)".into(),
            );
        }
        let csv = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        return workload_from_csv(&csv, seed).map_err(|e| e.to_string());
    }
    let count: usize = flags.get(count_key, default_count)?;
    let kind = match flags.get_str("dist").unwrap_or("table1") {
        "table1" => WorkloadKind::Table1Mix,
        "uniform" => WorkloadKind::Synthetic(ResourceDist::Uniform, SyntheticParams::default()),
        "normal" => WorkloadKind::Synthetic(ResourceDist::Normal, SyntheticParams::default()),
        "low" => WorkloadKind::Synthetic(ResourceDist::LowSkew, SyntheticParams::default()),
        "high" => WorkloadKind::Synthetic(ResourceDist::HighSkew, SyntheticParams::default()),
        other => return Err(format!("unknown --dist {other:?}")),
    };
    let mut builder = WorkloadBuilder::new(kind).count(count).seed(seed);
    if let Some(spec) = flags.get_str("arrivals") {
        let arrivals: ArrivalProcess = spec.parse()?;
        builder = builder.arrivals(arrivals);
    }
    Ok(builder.build())
}

/// Resolve the chaos plans requested on the command line, if any.
///
/// `--fault-plan` / `--perturb-plan` load committed JSON (replaying a
/// recorded failure); the `--dump-*` variants write the plans the config
/// would generate so a chaotic run can be committed and replayed later.
/// Returns `None` when no plan flag is present, keeping the plain code
/// path untouched.
fn chaos_plans(
    flags: &Flags,
    config: &ClusterConfig,
) -> Result<Option<(FaultPlan, PerturbPlan)>, String> {
    let keys = [
        "fault-plan",
        "dump-fault-plan",
        "perturb-plan",
        "dump-perturb-plan",
    ];
    if !keys.iter().any(|k| flags.has(k)) {
        return Ok(None);
    }
    let faults = match flags.get_str("fault-plan") {
        Some(path) => {
            let s =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let plan = FaultPlan::from_json(&s)?;
            plan.validate(config)?;
            plan
        }
        None => FaultPlan::generate(config),
    };
    let perturbs = match flags.get_str("perturb-plan") {
        Some(path) => {
            let s =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let plan = PerturbPlan::from_json(&s)?;
            plan.validate(config)?;
            plan
        }
        None => PerturbPlan::generate(config),
    };
    if let Some(path) = flags.get_str("dump-fault-plan") {
        std::fs::write(path, faults.to_json()).map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("wrote fault plan ({} events) to {path}", faults.len());
    }
    if let Some(path) = flags.get_str("dump-perturb-plan") {
        std::fs::write(path, perturbs.to_json())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("wrote perturb plan ({} events) to {path}", perturbs.len());
    }
    Ok(Some((faults, perturbs)))
}

fn result_row(r: &phishare::cluster::ExperimentResult) -> Vec<String> {
    vec![
        r.policy.to_string(),
        secs(r.makespan_secs),
        pct(100.0 * r.core_utilization),
        secs(r.mean_wait_secs),
        format!("{}/{}", r.completed, r.jobs),
        format!("{:.2}", r.energy_kwh),
    ]
}

const RESULT_HEADER: [&str; 6] = [
    "Policy",
    "Makespan (s)",
    "Core util",
    "Mean wait (s)",
    "Completed",
    "Energy (kWh)",
];

fn cmd_run(flags: &Flags) -> Result<(), String> {
    let policy: ClusterPolicy = flags
        .get_str("policy")
        .ok_or("run requires --policy")?
        .parse()?;
    let nodes: u32 = flags.get("nodes", 8)?;
    let workload = build_workload(flags, "jobs", 400)?;
    let mut config = ClusterConfig::paper_cluster(policy)
        .with_nodes(nodes)
        .with_seed(flags.get("seed", 7)?);
    config.negotiation = flags.get("negotiation", MatchPath::default())?;
    config.pool = flags.get("pool", DevicePool::Uniform)?;
    if let Some(spec) = flags.get_str("perturb") {
        config.perturb = PerturbConfig::from_spec(spec)?;
    }
    let substrate: SubstrateMode = flags.get("substrate", SubstrateMode::Fast)?;
    let plans = chaos_plans(flags, &config)?;

    if flags.has("gantt") {
        if substrate != SubstrateMode::Fast {
            return Err("--gantt only supports the default substrate".into());
        }
        let (result, trace) = match &plans {
            Some((faults, perturbs)) => {
                Experiment::run_chaos_traced(&config, &workload, faults, perturbs, substrate)?
            }
            None => Experiment::run_traced(&config, &workload)?,
        };
        println!("{}", table(&RESULT_HEADER, &[result_row(&result)]));
        print!("{}", trace.node_gantt(96));
        let violations = phishare::cluster::audit(&config, &workload, &result, &trace);
        if violations.is_empty() {
            println!("self-check: OK ({} trace events audited)", trace.len());
        } else {
            for v in &violations {
                eprintln!("self-check violation: {v}");
            }
            return Err(format!("{} self-check violations", violations.len()));
        }
        return Ok(());
    }
    let result = match &plans {
        Some((faults, perturbs)) => {
            Experiment::run_chaos_traced(&config, &workload, faults, perturbs, substrate)?.0
        }
        None => Experiment::run_with_substrate(&config, &workload, substrate)?,
    };
    if flags.has("json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&result).expect("result serializes")
        );
    } else {
        println!("{}", table(&RESULT_HEADER, &[result_row(&result)]));
    }
    Ok(())
}

fn cmd_compare(flags: &Flags) -> Result<(), String> {
    let nodes: u32 = flags.get("nodes", 8)?;
    let workload = build_workload(flags, "jobs", 400)?;
    let seed: u64 = flags.get("seed", 7)?;
    let policies: &[ClusterPolicy] = if flags.has("oracle") {
        &ClusterPolicy::WITH_ORACLE
    } else {
        &ClusterPolicy::ALL
    };
    let mut rows = Vec::new();
    let mut baseline: Option<f64> = None;
    for &policy in policies {
        let config = ClusterConfig::paper_cluster(policy)
            .with_nodes(nodes)
            .with_seed(seed);
        let r = Experiment::run(&config, &workload)?;
        let mut row = result_row(&r);
        row.push(match baseline {
            None => {
                baseline = Some(r.makespan_secs);
                "-".into()
            }
            Some(base) => pct(100.0 * (1.0 - r.makespan_secs / base)),
        });
        rows.push(row);
    }
    let mut header: Vec<&str> = RESULT_HEADER.to_vec();
    header.push("vs first");
    println!("{}", table(&header, &rows));
    Ok(())
}

fn cmd_footprint(flags: &Flags) -> Result<(), String> {
    let max_nodes: u32 = flags.get("max-nodes", 8)?;
    let tolerance: f64 = flags.get("tolerance", 0.02)?;
    let workload = build_workload(flags, "jobs", 400)?;
    let seed: u64 = flags.get("seed", 7)?;

    let mc = Experiment::run(
        &ClusterConfig::paper_cluster(ClusterPolicy::Mc)
            .with_nodes(max_nodes)
            .with_seed(seed),
        &workload,
    )?;
    println!(
        "baseline: MC on {max_nodes} nodes → makespan {:.0} s\n",
        mc.makespan_secs
    );
    let mut rows = Vec::new();
    for policy in [ClusterPolicy::Mcc, ClusterPolicy::Mcck] {
        let fp = footprint_search(
            &ClusterConfig::paper_cluster(policy).with_seed(seed),
            &workload,
            mc.makespan_secs,
            max_nodes,
            tolerance,
        )?;
        rows.push(vec![
            policy.to_string(),
            fp.nodes_required
                .map(|n| n.to_string())
                .unwrap_or_else(|| format!(">{max_nodes}")),
            fp.reduction_vs(max_nodes)
                .map(pct)
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    println!(
        "{}",
        table(&["Policy", "Nodes needed", "Footprint reduction"], &rows)
    );
    Ok(())
}

fn cmd_sweep(flags: &Flags) -> Result<(), String> {
    let policies: Vec<ClusterPolicy> = flags
        .get_str("policies")
        .unwrap_or("mc,mcc,mcck")
        .split(',')
        .map(|p| p.trim().parse())
        .collect::<Result<_, _>>()?;
    let sizes: Vec<u32> = flags
        .get_str("sizes")
        .unwrap_or("2,4,8")
        .split(',')
        .map(|n| {
            n.trim()
                .parse()
                .map_err(|e| format!("bad --sizes entry {n:?}: {e}"))
        })
        .collect::<Result<_, _>>()?;
    let seed: u64 = flags.get("seed", 7)?;
    let substrate: SubstrateMode = flags.get("substrate", SubstrateMode::Fast)?;
    let pool: DevicePool = flags.get("pool", DevicePool::Uniform)?;
    let workload = std::sync::Arc::new(build_workload(flags, "jobs", 200)?);

    let mut grid = Vec::new();
    for &policy in &policies {
        for &nodes in &sizes {
            let mut config = ClusterConfig::paper_cluster(policy)
                .with_nodes(nodes)
                .with_seed(seed);
            config.pool = pool;
            grid.push(SweepJob {
                label: format!("{policy}/{nodes}"),
                config,
                workload: std::sync::Arc::clone(&workload),
            });
        }
    }

    let workers: usize = flags.get("workers", 0)?;
    let results = if workers == 0 {
        // In-process thread sweep (the sharded path is bit-identical).
        phishare::cluster::sweep::run_sweep_substrate_auto(grid, substrate)
    } else {
        let opts = ShardOptions {
            workers,
            worker_exe: std::env::current_exe()
                .map_err(|e| format!("cannot locate phishare for worker spawn: {e}"))?,
            dir: flags.get_str("dir").map(std::path::PathBuf::from),
            resume: flags.has("resume"),
            keep_dir: false,
            substrate,
        };
        phishare::cluster::run_sweep_sharded(grid, &opts)?
    };

    if flags.has("json") {
        // One CellRecord per cell — the same schema the checkpoint logs
        // use, so downstream tooling parses both.
        let records: Vec<CellRecord> = results
            .iter()
            .enumerate()
            .map(|(index, (label, outcome))| CellRecord {
                index,
                label: label.clone(),
                ok: outcome.as_ref().ok().cloned(),
                err: outcome.as_ref().err().cloned(),
            })
            .collect();
        println!(
            "{}",
            serde_json::to_string_pretty(&records).expect("records serialize")
        );
        return Ok(());
    }
    let mut rows = Vec::new();
    for (label, outcome) in &results {
        match outcome {
            Ok(r) => {
                let mut row = vec![label.clone()];
                row.extend(result_row(r).into_iter().skip(1));
                rows.push(row);
            }
            Err(e) => rows.push(vec![label.clone(), format!("error: {e}")]),
        }
    }
    let mut header = RESULT_HEADER.to_vec();
    header[0] = "Cell";
    println!("{}", table(&header, &rows));
    Ok(())
}

fn cmd_workload(flags: &Flags) -> Result<(), String> {
    let workload = build_workload(flags, "count", 100)?;
    let rendered = match flags.get_str("format").unwrap_or("csv") {
        "csv" => workload_to_csv(&workload),
        "json" => workload.to_json(),
        other => return Err(format!("unknown --format {other:?}")),
    };
    match flags.get_str("out") {
        Some(path) => {
            std::fs::write(path, rendered).map_err(|e| format!("cannot write {path}: {e}"))?;
            println!("wrote {} jobs to {path}", workload.len());
        }
        None => print!("{rendered}"),
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    // Worker mode bypasses the command grammar: sharded sweeps spawn
    // `phishare --worker --dir <d> --worker-id <k>` (same convention as
    // the phishare-bench worker binary).
    if command == "--worker" {
        return match phishare::cluster::worker_main(&args) {
            Ok(ran) => {
                eprintln!("phishare worker done: {ran} cell(s) executed");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let outcome = Flags::parse(rest).and_then(|flags| match command.as_str() {
        "run" => cmd_run(&flags),
        "compare" => cmd_compare(&flags),
        "footprint" => cmd_footprint(&flags),
        "workload" => cmd_workload(&flags),
        "sweep" => cmd_sweep(&flags),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n\n{USAGE}")),
    });
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
