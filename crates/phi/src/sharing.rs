//! The shared-throughput device: fair sharing under a pluggable
//! degradation curve, generic over the completion-tracking engine.
//!
//! [`SharedDevice`] mirrors [`PhiDevice`](crate::device::PhiDevice)'s
//! resident/offload lifecycle — declared envelopes, memory commits with
//! the ascending-id uniform OOM killer, pinned-core disjointness,
//! time-weighted utilization and the energy model — but replaces the
//! per-offload rate vector with one *shared* rate from a
//! [`SharingCurve`]: every active offload runs at the same speed, so a
//! membership change re-warps the whole population at once instead of
//! rewriting per-offload state.
//!
//! The device is generic over [`SharingEngine`], which is the whole point:
//! [`SharedThroughputDevice`] (heap-scheduled, O(log n) churn) and
//! [`NaiveSharedDevice`] (recompute-all oracle) share every line of device
//! logic, so any observable divergence between them is the engine's fault
//! — exactly what the differential proptests and the `perf_throughput`
//! bench gate rely on.

use crate::alloc::CoreSet;
use crate::config::PhiConfig;
use crate::device::{Affinity, CommitOutcome, DeviceError, DeviceUtilization, WORK_EPSILON};
use crate::proc::ProcId;
use phishare_sim::{Counter, DetRng, SimDuration, SimTime, TimeWeighted};
use phishare_throughput::{HeapEngine, NaiveEngine, SharingCurve, SharingEngine};
use std::collections::BTreeMap;

/// The production shared-throughput device: heap-scheduled engine,
/// O(log n) join/leave/next-completion.
pub type SharedThroughputDevice = SharedDevice<HeapEngine>;

/// The differential oracle: same device logic over the naive
/// recompute-all-residents engine.
pub type NaiveSharedDevice = SharedDevice<NaiveEngine>;

/// Non-work metadata of one active offload (the engine owns the work).
#[derive(Debug, Clone, Copy)]
struct ActiveMeta {
    threads: u32,
    affinity: Affinity,
}

/// One resident process.
#[derive(Debug, Clone)]
struct SharedEntry {
    declared_mem_mb: u64,
    declared_threads: u32,
    committed_mem_mb: u64,
    active: Option<ActiveMeta>,
}

/// A fair-shared accelerator card (Phi-curve or GPU-like), driven by the
/// same passive event-loop protocol as `PhiDevice`: mutations that can
/// change the shared rate bump the generation, and completion predictions
/// are valid only for the generation they were read under.
#[derive(Debug)]
pub struct SharedDevice<E: SharingEngine> {
    cfg: PhiConfig,
    curve: SharingCurve,
    engine: E,
    procs: BTreeMap<ProcId, SharedEntry>,
    created: SimTime,
    last_update: SimTime,
    generation: u64,
    committed_total: u64,
    declared_total: u64,
    declared_threads_total: u32,
    active_threads_total: u32,
    n_active: usize,
    pinned_union: CoreSet,
    unmanaged_cores: u32,
    /// Environmental rate multiplier (thermal derate), applied to the
    /// curve's shared rate. `1.0` = nominal. Survives resets.
    rate_scale: f64,
    busy_threads: TimeWeighted,
    busy_cores: TimeWeighted,
    committed: TimeWeighted,
    busy_any: TimeWeighted,
    /// Processes killed by the OOM killer over the device's lifetime.
    pub oom_kills: Counter,
    /// Offloads that ran to completion.
    pub offloads_completed: Counter,
}

impl<E: SharingEngine> SharedDevice<E> {
    /// Create a device at simulation time `start`.
    pub fn new(cfg: PhiConfig, curve: SharingCurve, start: SimTime) -> Self {
        cfg.validate().expect("invalid device configuration");
        curve.validate().expect("invalid sharing curve");
        SharedDevice {
            cfg,
            curve,
            engine: E::new(),
            procs: BTreeMap::new(),
            created: start,
            last_update: start,
            generation: 0,
            committed_total: 0,
            declared_total: 0,
            declared_threads_total: 0,
            active_threads_total: 0,
            n_active: 0,
            pinned_union: CoreSet::EMPTY,
            unmanaged_cores: 0,
            rate_scale: 1.0,
            busy_threads: TimeWeighted::new(start),
            busy_cores: TimeWeighted::new(start),
            committed: TimeWeighted::new(start),
            busy_any: TimeWeighted::new(start),
            oom_kills: Counter::new(),
            offloads_completed: Counter::new(),
        }
    }

    /// The device's static configuration.
    pub fn config(&self) -> &PhiConfig {
        &self.cfg
    }

    /// The degradation curve this card shares under.
    pub fn curve(&self) -> SharingCurve {
        self.curve
    }

    /// Monotone counter bumped whenever the shared rate may have changed.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Thermal derate: integrate progress up to `now`, then scale the
    /// shared rate by `scale` (in `(0, 1]`; `1.0` restores nominal) from
    /// `now` on, bumping the generation. Survives resets — throttling is
    /// ambient, not card state. Both engines share this code, so the
    /// heap/naive pair degrades identically.
    pub fn set_rate_scale(&mut self, now: SimTime, scale: f64) {
        debug_assert!(scale.is_finite() && scale > 0.0 && scale <= 1.0);
        self.advance_to(now);
        self.rate_scale = scale;
        self.reschedule(now);
    }

    // ------------------------------------------------------------------
    // Process lifecycle
    // ------------------------------------------------------------------

    /// Attach a COI process with its declared envelope and an initial
    /// memory commit (which may already trigger the OOM killer).
    pub fn attach(
        &mut self,
        now: SimTime,
        proc: ProcId,
        declared_mem_mb: u64,
        declared_threads: u32,
        initial_commit_mb: u64,
        rng: &mut DetRng,
    ) -> Result<CommitOutcome, DeviceError> {
        if self.procs.contains_key(&proc) {
            return Err(DeviceError::AlreadyResident(proc));
        }
        self.advance_to(now);
        self.procs.insert(
            proc,
            SharedEntry {
                declared_mem_mb,
                declared_threads,
                committed_mem_mb: 0,
                active: None,
            },
        );
        self.declared_total += declared_mem_mb;
        self.declared_threads_total += declared_threads;
        let outcome = self.commit_memory(now, proc, initial_commit_mb, rng)?;
        // Residency changed either way (attach, possibly minus OOM
        // victims): the shared rate must refresh even when the commit fit.
        self.reschedule(now);
        Ok(outcome)
    }

    /// Detach a process, freeing its memory and aborting any active
    /// offload.
    pub fn detach(&mut self, now: SimTime, proc: ProcId) -> Result<(), DeviceError> {
        if !self.procs.contains_key(&proc) {
            return Err(DeviceError::NotResident(proc));
        }
        self.advance_to(now);
        self.remove_entry(proc);
        self.reschedule(now);
        Ok(())
    }

    /// Set a process's committed memory to `total_mb`. Growing past
    /// physical memory triggers the OOM killer, which terminates uniformly
    /// random resident processes (ascending-id draw, exactly like
    /// `PhiDevice`) until the commit fits.
    pub fn commit_memory(
        &mut self,
        now: SimTime,
        proc: ProcId,
        total_mb: u64,
        rng: &mut DetRng,
    ) -> Result<CommitOutcome, DeviceError> {
        let entry = self
            .procs
            .get_mut(&proc)
            .ok_or(DeviceError::NotResident(proc))?;
        self.committed_total = self.committed_total - entry.committed_mem_mb + total_mb;
        entry.committed_mem_mb = total_mb;
        self.advance_to(now);
        let mut killed = Vec::new();
        while self.committed_total > self.cfg.usable_mem_mb() {
            let n = self.procs.len();
            debug_assert!(n > 0);
            let victim = *self
                .procs
                .keys()
                .nth(rng.index(n))
                .expect("resident set is non-empty");
            self.remove_entry(victim);
            self.oom_kills.incr();
            killed.push(victim);
        }
        if killed.is_empty() {
            // Membership did not change, so the shared rate (and every
            // outstanding completion prediction) stays valid: no
            // generation bump, only the committed-memory signal moved.
            self.record_utilization(now);
            Ok(CommitOutcome::Fits)
        } else {
            self.reschedule(now);
            Ok(CommitOutcome::OomKilled(killed))
        }
    }

    /// Remove `proc` from the resident set, the engine and every
    /// aggregate. Does *not* reschedule; callers decide when the shared
    /// rate refreshes. Requires the engine already advanced to "now".
    fn remove_entry(&mut self, proc: ProcId) {
        let entry = self.procs.remove(&proc).expect("proc is resident");
        self.declared_total -= entry.declared_mem_mb;
        self.declared_threads_total -= entry.declared_threads;
        self.committed_total -= entry.committed_mem_mb;
        if let Some(meta) = entry.active {
            self.engine.leave(proc.0);
            self.retire_active(meta);
        }
    }

    /// Deduct one active offload's metadata from the aggregates.
    fn retire_active(&mut self, meta: ActiveMeta) {
        self.n_active -= 1;
        self.active_threads_total -= meta.threads;
        match meta.affinity {
            Affinity::Pinned(set) => {
                self.pinned_union = CoreSet::from_mask(self.pinned_union.mask() & !set.mask());
            }
            Affinity::Unmanaged => {
                self.unmanaged_cores -= self.cfg.cores_for_threads(meta.threads);
            }
        }
    }

    // ------------------------------------------------------------------
    // Offload lifecycle
    // ------------------------------------------------------------------

    /// Begin executing an offload of `work` nominal duration using
    /// `threads` hardware threads for process `proc`.
    pub fn start_offload(
        &mut self,
        now: SimTime,
        proc: ProcId,
        threads: u32,
        work: SimDuration,
        affinity: Affinity,
    ) -> Result<(), DeviceError> {
        let Some(entry) = self.procs.get(&proc) else {
            return Err(DeviceError::NotResident(proc));
        };
        if entry.active.is_some() {
            return Err(DeviceError::OffloadInProgress(proc));
        }
        if let Affinity::Pinned(set) = affinity {
            if !set.is_disjoint(self.pinned_union) {
                return Err(DeviceError::CoreOverlap(proc));
            }
            self.pinned_union = self.pinned_union.union(set);
        } else {
            self.unmanaged_cores += self.cfg.cores_for_threads(threads);
        }
        self.advance_to(now);
        self.n_active += 1;
        self.active_threads_total += threads;
        self.engine.join(proc.0, work.ticks() as f64);
        self.procs
            .get_mut(&proc)
            .expect("entry verified resident above")
            .active = Some(ActiveMeta { threads, affinity });
        self.reschedule(now);
        Ok(())
    }

    /// Complete an offload whose completion event just fired.
    ///
    /// # Panics
    /// Debug-panics if the offload still has more than one tick of work
    /// left — a stale event the generation guard should have dropped.
    pub fn finish_offload(&mut self, now: SimTime, proc: ProcId) -> Result<(), DeviceError> {
        self.advance_to(now);
        let Some(entry) = self.procs.get_mut(&proc) else {
            return Err(DeviceError::NoActiveOffload(proc));
        };
        let Some(meta) = entry.active.take() else {
            return Err(DeviceError::NoActiveOffload(proc));
        };
        let remaining = self.engine.leave(proc.0);
        debug_assert!(
            remaining <= self.engine.rate() + WORK_EPSILON,
            "finish_offload fired with {:.3} nominal ticks left (rate {:.4}): stale event?",
            remaining,
            self.engine.rate()
        );
        self.retire_active(meta);
        self.offloads_completed.incr();
        self.reschedule(now);
        Ok(())
    }

    /// Abort an active offload (job killed or preempted mid-offload).
    pub fn abort_offload(&mut self, now: SimTime, proc: ProcId) -> Result<(), DeviceError> {
        let Some(entry) = self.procs.get_mut(&proc) else {
            return Err(DeviceError::NoActiveOffload(proc));
        };
        let Some(meta) = entry.active.take() else {
            return Err(DeviceError::NoActiveOffload(proc));
        };
        self.advance_to(now);
        self.engine.leave(proc.0);
        self.retire_active(meta);
        self.reschedule(now);
        Ok(())
    }

    /// MPSS crash/restart: every resident is torn down and every active
    /// offload aborted, releasing all committed memory. Integrators and
    /// lifetime counters survive; the generation bumps so outstanding
    /// predictions go stale. The engine keeps its virtual-time warp — the
    /// warp is a coordinate system, not device state.
    pub fn reset(&mut self, now: SimTime) {
        self.advance_to(now);
        self.procs.clear();
        self.engine.clear();
        self.committed_total = 0;
        self.declared_total = 0;
        self.declared_threads_total = 0;
        self.active_threads_total = 0;
        self.n_active = 0;
        self.pinned_union = CoreSet::EMPTY;
        self.unmanaged_cores = 0;
        self.reschedule(now);
    }

    // ------------------------------------------------------------------
    // Completion predictions
    // ------------------------------------------------------------------

    /// Predicted completion instants for all active offloads under the
    /// current shared rate, in ascending [`ProcId`] order.
    pub fn completions(&self) -> Vec<(ProcId, SimTime)> {
        let mut v = Vec::new();
        self.for_each_completion(|proc, at| v.push((proc, at)));
        v
    }

    /// Visit every predicted completion in ascending [`ProcId`] order
    /// without allocating.
    pub fn for_each_completion(&self, mut f: impl FnMut(ProcId, SimTime)) {
        let base = self.last_update;
        self.engine
            .for_each_completion(|id, ticks| f(ProcId(id), base + SimDuration::from_ticks(ticks)));
    }

    /// The earliest predicted completion, ties to the lowest [`ProcId`];
    /// `None` when the device is idle. Valid for the current generation.
    pub fn next_completion(&self) -> Option<(ProcId, SimTime)> {
        self.engine.next_completion().map(|(id, ticks)| {
            (
                ProcId(id),
                self.last_update + SimDuration::from_ticks(ticks),
            )
        })
    }

    // ------------------------------------------------------------------
    // Execution integration
    // ------------------------------------------------------------------

    /// Refresh the shared rate from the degradation curve and bump the
    /// generation. Callers must have advanced to `now` first.
    fn reschedule(&mut self, now: SimTime) {
        debug_assert_eq!(self.last_update, now);
        if self.n_active > 0 {
            let mut rate = self.curve.per_activity_rate(
                self.n_active,
                self.procs.len(),
                self.active_threads_total,
                self.cfg.hw_threads(),
            );
            if self.rate_scale != 1.0 {
                rate *= self.rate_scale;
            }
            self.engine.set_rate(rate);
        }
        self.generation += 1;
        self.record_utilization(now);
    }

    /// Integrate execution progress at the current shared rate from
    /// `last_update` to `now` — one O(1) virtual-clock update regardless
    /// of how many offloads are active.
    fn advance_to(&mut self, now: SimTime) {
        let dt = now.since(self.last_update).ticks() as f64;
        if dt > 0.0 {
            self.engine.advance(dt);
            self.last_update = now;
        }
    }

    fn record_utilization(&mut self, now: SimTime) {
        let hw = self.cfg.hw_threads();
        let threads = self.active_threads_total.min(hw) as f64;
        if threads != self.busy_threads.value() {
            self.busy_threads.set(now, threads);
        }
        let cores = self.busy_core_estimate() as f64;
        if cores != self.busy_cores.value() {
            self.busy_cores.set(now, cores);
        }
        let committed = self.committed_total as f64;
        if committed != self.committed.value() {
            self.committed.set(now, committed);
        }
        let busy = if self.n_active == 0 { 0.0 } else { 1.0 };
        if busy != self.busy_any.value() {
            self.busy_any.set(now, busy);
        }
    }

    /// Estimated busy cores: pinned offloads occupy exactly their sets,
    /// unmanaged offloads spread over `ceil(threads/threads_per_core)`.
    fn busy_core_estimate(&self) -> u32 {
        (self.pinned_union.count() + self.unmanaged_cores).min(self.cfg.cores)
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// Number of resident COI processes.
    pub fn resident_count(&self) -> usize {
        self.procs.len()
    }

    /// True when `proc` is resident.
    pub fn is_resident(&self, proc: ProcId) -> bool {
        self.procs.contains_key(&proc)
    }

    /// True when `proc` has an active offload.
    pub fn has_active_offload(&self, proc: ProcId) -> bool {
        self.procs
            .get(&proc)
            .is_some_and(|entry| entry.active.is_some())
    }

    /// Sum of declared memory over residents (MB).
    pub fn declared_total_mb(&self) -> u64 {
        self.declared_total
    }

    /// Declared memory still unbudgeted (MB).
    pub fn free_declared_mb(&self) -> u64 {
        self.cfg.usable_mem_mb().saturating_sub(self.declared_total)
    }

    /// Sum of committed memory over residents (MB).
    pub fn committed_total_mb(&self) -> u64 {
        self.committed_total
    }

    /// Sum of declared threads over residents.
    pub fn declared_threads(&self) -> u32 {
        self.declared_threads_total
    }

    /// Thread sum over active offloads.
    pub fn active_threads(&self) -> u32 {
        self.active_threads_total
    }

    /// Number of active offloads.
    pub fn active_offloads(&self) -> usize {
        self.n_active
    }

    /// Energy consumed from creation through `end`, joules (same model as
    /// `PhiDevice`: idle draw plus busy-core fraction toward max draw).
    pub fn energy_joules(&self, end: SimTime) -> f64 {
        let elapsed = end.since(self.created).as_secs_f64();
        let busy_core_seconds = self.busy_cores.integral(end);
        self.cfg.idle_watts * elapsed
            + (self.cfg.max_watts - self.cfg.idle_watts) * busy_core_seconds / self.cfg.cores as f64
    }

    /// Time-integrated utilization from device creation through `end`.
    pub fn utilization(&self, end: SimTime) -> DeviceUtilization {
        let hw = self.cfg.hw_threads() as f64;
        let cores = self.cfg.cores as f64;
        let mem = self.cfg.usable_mem_mb() as f64;
        DeviceUtilization {
            thread_util: self.busy_threads.time_average(end) / hw,
            core_util: self.busy_cores.time_average(end) / cores,
            mem_util: self.committed.time_average(end) / mem,
            busy_fraction: self.busy_any.time_average(end),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (SharedThroughputDevice, NaiveSharedDevice) {
        (
            SharedDevice::new(PhiConfig::default(), SharingCurve::phi(), SimTime::ZERO),
            SharedDevice::new(PhiConfig::default(), SharingCurve::phi(), SimTime::ZERO),
        )
    }

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    fn assert_devices_identical(h: &SharedThroughputDevice, n: &NaiveSharedDevice, end: SimTime) {
        assert_eq!(h.generation(), n.generation());
        assert_eq!(h.resident_count(), n.resident_count());
        assert_eq!(h.active_offloads(), n.active_offloads());
        assert_eq!(h.committed_total_mb(), n.committed_total_mb());
        assert_eq!(h.next_completion(), n.next_completion());
        assert_eq!(h.completions(), n.completions());
        assert_eq!(
            h.energy_joules(end).to_bits(),
            n.energy_joules(end).to_bits()
        );
        let hu = h.utilization(end);
        let nu = n.utilization(end);
        assert_eq!(hu.thread_util.to_bits(), nu.thread_util.to_bits());
        assert_eq!(hu.core_util.to_bits(), nu.core_util.to_bits());
        assert_eq!(hu.mem_util.to_bits(), nu.mem_util.to_bits());
        assert_eq!(hu.busy_fraction.to_bits(), nu.busy_fraction.to_bits());
    }

    #[test]
    fn solo_offload_completes_at_nominal_time() {
        let (mut h, mut n) = pair();
        let mut r1 = DetRng::from_seed(1);
        let mut r2 = DetRng::from_seed(1);
        h.attach(t(0), ProcId(1), 1000, 240, 500, &mut r1).unwrap();
        n.attach(t(0), ProcId(1), 1000, 240, 500, &mut r2).unwrap();
        h.start_offload(
            t(0),
            ProcId(1),
            240,
            SimDuration::from_secs(10),
            Affinity::Unmanaged,
        )
        .unwrap();
        n.start_offload(
            t(0),
            ProcId(1),
            240,
            SimDuration::from_secs(10),
            Affinity::Unmanaged,
        )
        .unwrap();
        assert_eq!(h.next_completion(), Some((ProcId(1), t(10))));
        assert_devices_identical(&h, &n, t(10));
        h.finish_offload(t(10), ProcId(1)).unwrap();
        n.finish_offload(t(10), ProcId(1)).unwrap();
        assert_eq!(h.active_offloads(), 0);
        assert_eq!(h.offloads_completed.get(), 1);
        assert_devices_identical(&h, &n, t(10));
    }

    #[test]
    fn oversubscribed_offloads_share_one_degraded_rate() {
        let mut d: SharedThroughputDevice =
            SharedDevice::new(PhiConfig::default(), SharingCurve::phi(), SimTime::ZERO);
        let mut r = DetRng::from_seed(1);
        for p in 1..=2 {
            d.attach(t(0), ProcId(p), 1000, 240, 100, &mut r).unwrap();
            d.start_offload(
                t(0),
                ProcId(p),
                240,
                SimDuration::from_secs(10),
                Affinity::Unmanaged,
            )
            .unwrap();
        }
        // 480 threads on 240 hw threads → load 2 → rate 1/8: 10 s of
        // nominal work finishes at 80 s, both offloads alike.
        let comps = d.completions();
        assert_eq!(comps, vec![(ProcId(1), t(80)), (ProcId(2), t(80))]);
        assert_eq!(d.next_completion(), Some((ProcId(1), t(80))));
    }

    #[test]
    fn gpu_like_device_ignores_thread_oversubscription() {
        let mut d: SharedThroughputDevice = SharedDevice::new(
            PhiConfig::gpu_like(),
            SharingCurve::gpu_like(),
            SimTime::ZERO,
        );
        let mut r = DetRng::from_seed(1);
        // Two kernels whose thread sum would crush a Phi run at full rate
        // on the GPU-like card (32-kernel saturation point).
        for p in 1..=2 {
            d.attach(t(0), ProcId(p), 1000, 2000, 100, &mut r).unwrap();
            d.start_offload(
                t(0),
                ProcId(p),
                2000,
                SimDuration::from_secs(10),
                Affinity::Unmanaged,
            )
            .unwrap();
        }
        assert_eq!(d.next_completion(), Some((ProcId(1), t(10))));
    }

    #[test]
    fn oom_killer_draws_ascending_id_victims_identically() {
        let (mut h, mut n) = pair();
        let mut r1 = DetRng::from_seed(42);
        let mut r2 = DetRng::from_seed(42);
        let usable = PhiConfig::default().usable_mem_mb();
        for p in 1..=4 {
            h.attach(t(0), ProcId(p), 100, 60, usable / 4, &mut r1)
                .unwrap();
            n.attach(t(0), ProcId(p), 100, 60, usable / 4, &mut r2)
                .unwrap();
        }
        // Push proc 4 over the edge; both devices must kill the same
        // victims in the same order.
        let oh = h.commit_memory(t(1), ProcId(4), usable, &mut r1).unwrap();
        let on = n.commit_memory(t(1), ProcId(4), usable, &mut r2).unwrap();
        assert_eq!(oh, on);
        assert!(matches!(oh, CommitOutcome::OomKilled(ref v) if !v.is_empty()));
        assert_eq!(h.oom_kills.get(), n.oom_kills.get());
        assert_devices_identical(&h, &n, t(1));
    }

    #[test]
    fn reset_aborts_everything_but_keeps_counters() {
        let (mut h, mut n) = pair();
        let mut r1 = DetRng::from_seed(3);
        let mut r2 = DetRng::from_seed(3);
        for p in 1..=3 {
            h.attach(t(0), ProcId(p), 500, 120, 200, &mut r1).unwrap();
            n.attach(t(0), ProcId(p), 500, 120, 200, &mut r2).unwrap();
            h.start_offload(
                t(0),
                ProcId(p),
                120,
                SimDuration::from_secs(30),
                Affinity::Unmanaged,
            )
            .unwrap();
            n.start_offload(
                t(0),
                ProcId(p),
                120,
                SimDuration::from_secs(30),
                Affinity::Unmanaged,
            )
            .unwrap();
        }
        h.reset(t(5));
        n.reset(t(5));
        assert_eq!(h.resident_count(), 0);
        assert_eq!(h.next_completion(), None);
        assert_devices_identical(&h, &n, t(5));
        // The card is usable again after the crash, and the virtual-time
        // warp carried across the reset does not skew new predictions.
        h.attach(t(6), ProcId(9), 500, 120, 100, &mut r1).unwrap();
        n.attach(t(6), ProcId(9), 500, 120, 100, &mut r2).unwrap();
        h.start_offload(
            t(6),
            ProcId(9),
            120,
            SimDuration::from_secs(7),
            Affinity::Unmanaged,
        )
        .unwrap();
        n.start_offload(
            t(6),
            ProcId(9),
            120,
            SimDuration::from_secs(7),
            Affinity::Unmanaged,
        )
        .unwrap();
        assert_eq!(h.next_completion(), Some((ProcId(9), t(13))));
        assert_devices_identical(&h, &n, t(13));
    }

    #[test]
    fn pinned_overlap_rejected_and_disjoint_sets_coexist() {
        let mut d: SharedThroughputDevice =
            SharedDevice::new(PhiConfig::default(), SharingCurve::phi(), SimTime::ZERO);
        let mut r = DetRng::from_seed(1);
        let a = CoreSet::contiguous(0, 10);
        let b = CoreSet::contiguous(5, 10);
        let c = CoreSet::contiguous(10, 10);
        d.attach(t(0), ProcId(1), 100, 40, 0, &mut r).unwrap();
        d.attach(t(0), ProcId(2), 100, 40, 0, &mut r).unwrap();
        d.start_offload(
            t(0),
            ProcId(1),
            40,
            SimDuration::from_secs(5),
            Affinity::Pinned(a),
        )
        .unwrap();
        assert_eq!(
            d.start_offload(
                t(0),
                ProcId(2),
                40,
                SimDuration::from_secs(5),
                Affinity::Pinned(b)
            ),
            Err(DeviceError::CoreOverlap(ProcId(2)))
        );
        d.start_offload(
            t(0),
            ProcId(2),
            40,
            SimDuration::from_secs(5),
            Affinity::Pinned(c),
        )
        .unwrap();
        assert_eq!(d.active_offloads(), 2);
    }
}
