//! Core sets and the core allocator COSMIC uses for affinitization.
//!
//! The paper's node middleware "automatically affinitizes threads to cores
//! such that the jobs do not overlap and core utilization is maximized"
//! (§IV-D2). [`CoreAllocator`] hands out disjoint [`CoreSet`]s, preferring
//! contiguous runs (matching how `KMP_AFFINITY=compact` lays threads out on
//! the real card) and falling back to scattered cores under fragmentation.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A set of cores on one device, as a 64-bit mask (real Phi generations have
/// at most 61 cores).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct CoreSet(u64);

impl CoreSet {
    /// The empty set.
    pub const EMPTY: CoreSet = CoreSet(0);

    /// Build from a raw mask.
    #[inline]
    pub const fn from_mask(mask: u64) -> Self {
        CoreSet(mask)
    }

    /// The raw mask.
    #[inline]
    pub const fn mask(self) -> u64 {
        self.0
    }

    /// Number of cores in the set.
    #[inline]
    pub const fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// True when no cores are in the set.
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// True when the two sets share no core.
    #[inline]
    pub const fn is_disjoint(self, other: CoreSet) -> bool {
        self.0 & other.0 == 0
    }

    /// Set union.
    #[inline]
    pub const fn union(self, other: CoreSet) -> CoreSet {
        CoreSet(self.0 | other.0)
    }

    /// A contiguous run of `n` cores starting at `start`.
    pub fn contiguous(start: u32, n: u32) -> CoreSet {
        assert!(start + n <= 64, "core range out of mask bounds");
        if n == 0 {
            CoreSet::EMPTY
        } else if n == 64 {
            CoreSet(u64::MAX)
        } else {
            CoreSet(((1u64 << n) - 1) << start)
        }
    }
}

impl fmt::Display for CoreSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cores[{}]", self.count())
    }
}

/// Allocates disjoint core sets on one device.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CoreAllocator {
    total_cores: u32,
    used: CoreSet,
}

impl CoreAllocator {
    /// Create an allocator for a device with `total_cores` cores.
    pub fn new(total_cores: u32) -> Self {
        assert!(
            (1..=64).contains(&total_cores),
            "CoreAllocator supports 1..=64 cores"
        );
        CoreAllocator {
            total_cores,
            used: CoreSet::EMPTY,
        }
    }

    /// Cores currently free.
    pub fn free_cores(&self) -> u32 {
        self.total_cores - self.used.count()
    }

    /// Cores currently allocated.
    pub fn used_cores(&self) -> u32 {
        self.used.count()
    }

    /// Allocate `n` cores, preferring the lowest-indexed contiguous run and
    /// falling back to scattered free cores. Returns `None` when fewer than
    /// `n` cores are free.
    pub fn allocate(&mut self, n: u32) -> Option<CoreSet> {
        if n == 0 {
            return Some(CoreSet::EMPTY);
        }
        if n > self.free_cores() {
            return None;
        }
        // First fit: lowest contiguous run of n free cores.
        for start in 0..=(self.total_cores - n) {
            let candidate = CoreSet::contiguous(start, n);
            if candidate.is_disjoint(self.used) {
                self.used = self.used.union(candidate);
                return Some(candidate);
            }
        }
        // Fragmented: gather the lowest n free cores individually.
        let mut mask = 0u64;
        let mut got = 0;
        for core in 0..self.total_cores {
            let bit = 1u64 << core;
            if self.used.mask() & bit == 0 {
                mask |= bit;
                got += 1;
                if got == n {
                    break;
                }
            }
        }
        debug_assert_eq!(got, n, "free_cores() said {n} cores were available");
        let set = CoreSet::from_mask(mask);
        self.used = self.used.union(set);
        Some(set)
    }

    /// Return a previously allocated set.
    ///
    /// # Panics
    /// Panics if any core in `set` is not currently allocated (double free).
    pub fn release(&mut self, set: CoreSet) {
        assert_eq!(
            self.used.mask() & set.mask(),
            set.mask(),
            "releasing cores that were not allocated"
        );
        self.used = CoreSet::from_mask(self.used.mask() & !set.mask());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coreset_basics() {
        let a = CoreSet::contiguous(0, 4);
        let b = CoreSet::contiguous(4, 4);
        assert_eq!(a.count(), 4);
        assert!(a.is_disjoint(b));
        assert_eq!(a.union(b).count(), 8);
        assert!(CoreSet::EMPTY.is_empty());
        assert_eq!(CoreSet::contiguous(0, 64).count(), 64);
        assert_eq!(a.to_string(), "cores[4]");
    }

    #[test]
    fn allocations_are_disjoint() {
        let mut alloc = CoreAllocator::new(60);
        let a = alloc.allocate(30).unwrap();
        let b = alloc.allocate(30).unwrap();
        assert!(a.is_disjoint(b));
        assert_eq!(alloc.free_cores(), 0);
        assert_eq!(alloc.allocate(1), None);
    }

    #[test]
    fn release_enables_reuse() {
        let mut alloc = CoreAllocator::new(60);
        let a = alloc.allocate(45).unwrap();
        assert!(alloc.allocate(30).is_none());
        alloc.release(a);
        assert_eq!(alloc.free_cores(), 60);
        assert!(alloc.allocate(60).is_some());
    }

    #[test]
    fn fragmented_allocation_scatters() {
        let mut alloc = CoreAllocator::new(8);
        let a = alloc.allocate(2).unwrap(); // cores 0-1
        let b = alloc.allocate(2).unwrap(); // cores 2-3
        let c = alloc.allocate(2).unwrap(); // cores 4-5
        alloc.release(b); // free 2-3: free set = {2,3,6,7}, fragmented
        let d = alloc.allocate(3).unwrap(); // no contiguous run of 3
        assert_eq!(d.count(), 3);
        assert!(d.is_disjoint(a));
        assert!(d.is_disjoint(c));
        assert_eq!(alloc.free_cores(), 1);
    }

    #[test]
    fn zero_allocation_is_empty() {
        let mut alloc = CoreAllocator::new(4);
        assert_eq!(alloc.allocate(0), Some(CoreSet::EMPTY));
        assert_eq!(alloc.free_cores(), 4);
    }

    #[test]
    #[should_panic(expected = "not allocated")]
    fn double_free_panics() {
        let mut alloc = CoreAllocator::new(8);
        let a = alloc.allocate(2).unwrap();
        alloc.release(a);
        alloc.release(a);
    }

    #[test]
    fn prefers_contiguous_lowest() {
        let mut alloc = CoreAllocator::new(16);
        let a = alloc.allocate(4).unwrap();
        assert_eq!(a, CoreSet::contiguous(0, 4));
        let b = alloc.allocate(4).unwrap();
        assert_eq!(b, CoreSet::contiguous(4, 4));
    }
}
