//! Device configuration.

use serde::{Deserialize, Serialize};

/// Static description of one Xeon Phi card.
///
/// Defaults follow the paper's evaluation cluster: 60 usable cores with 4
/// hardware threads each (240 threads), 8 GB of device RAM of which a slice
/// is reserved for the coprocessor's Linux, file system and daemons (§II-A).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhiConfig {
    /// Number of usable compute cores.
    pub cores: u32,
    /// Hardware threads per core.
    pub threads_per_core: u32,
    /// Total physical device memory in MB.
    pub memory_mb: u64,
    /// Memory reserved for the on-card OS, daemons and file system, in MB.
    pub os_reserved_mb: u64,
    /// Card power draw when idle, watts (PCIe Phi cards idle around
    /// 90–110 W).
    pub idle_watts: f64,
    /// Card power draw with every core busy, watts (the 5110P's TDP is
    /// 225 W; actively cooled SKUs reach 245 W).
    pub max_watts: f64,
}

impl Default for PhiConfig {
    fn default() -> Self {
        PhiConfig {
            cores: 60,
            threads_per_core: 4,
            memory_mb: 8192,
            os_reserved_mb: 512,
            idle_watts: 100.0,
            max_watts: 225.0,
        }
    }
}

impl PhiConfig {
    /// The 5110P SKU: 60 usable cores, 8 GB GDDR5, 225 W TDP — the paper's
    /// evaluation card (the default configuration).
    pub fn phi_5110p() -> Self {
        PhiConfig::default()
    }

    /// The 7120P SKU: 61 cores, 16 GB, 300 W TDP — the top of the paper's
    /// "8-16 GB" range (§II-A). Doubling the card memory doubles how many
    /// jobs a knapsack can hold (EXT-3 measures the effect).
    pub fn phi_7120p() -> Self {
        PhiConfig {
            cores: 61,
            threads_per_core: 4,
            memory_mb: 16 * 1024,
            os_reserved_mb: 512,
            idle_watts: 120.0,
            max_watts: 300.0,
        }
    }

    /// The 3120A SKU: 57 cores, 6 GB, 300 W TDP — the budget end.
    pub fn phi_3120a() -> Self {
        PhiConfig {
            cores: 57,
            threads_per_core: 4,
            memory_mb: 6 * 1024,
            os_reserved_mb: 512,
            idle_watts: 110.0,
            max_watts: 300.0,
        }
    }

    /// A GPU-like accelerator shape: 64 SM-like cores × 32 resident warps
    /// (2048 hardware threads — effectively no thread cap at Phi-scale
    /// offload sizes), 24 GB device memory, passively cooled datacenter
    /// power envelope. Pairs with `SharingCurve::gpu_like()`, whose
    /// degradation ignores the thread sum entirely.
    pub fn gpu_like() -> Self {
        PhiConfig {
            cores: 64,
            threads_per_core: 32,
            memory_mb: 24 * 1024,
            os_reserved_mb: 512,
            idle_watts: 60.0,
            max_watts: 350.0,
        }
    }

    /// Total hardware threads (`cores × threads_per_core`; 240 by default).
    #[inline]
    pub const fn hw_threads(&self) -> u32 {
        self.cores * self.threads_per_core
    }

    /// Device memory available to user processes, in MB.
    #[inline]
    pub const fn usable_mem_mb(&self) -> u64 {
        self.memory_mb - self.os_reserved_mb
    }

    /// Cores needed to host `threads` hardware threads (one core runs up to
    /// `threads_per_core`).
    #[inline]
    pub fn cores_for_threads(&self, threads: u32) -> u32 {
        threads.div_ceil(self.threads_per_core)
    }

    /// Validate the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.cores == 0 || self.threads_per_core == 0 {
            return Err("device must have at least one core and one thread per core".into());
        }
        if self.cores > 64 {
            // CoreSet is a 64-bit mask; real Phi generations top out at 61.
            return Err(format!("at most 64 cores supported, got {}", self.cores));
        }
        if self.os_reserved_mb >= self.memory_mb {
            return Err("OS reserve exceeds device memory".into());
        }
        if !(self.idle_watts.is_finite() && self.max_watts.is_finite())
            || self.idle_watts < 0.0
            || self.max_watts < self.idle_watts
        {
            return Err("power model requires 0 ≤ idle_watts ≤ max_watts".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_hardware() {
        let c = PhiConfig::default();
        assert_eq!(c.hw_threads(), 240);
        assert_eq!(c.usable_mem_mb(), 8192 - 512);
        c.validate().unwrap();
    }

    #[test]
    fn cores_for_threads_rounds_up() {
        let c = PhiConfig::default();
        assert_eq!(c.cores_for_threads(1), 1);
        assert_eq!(c.cores_for_threads(4), 1);
        assert_eq!(c.cores_for_threads(5), 2);
        assert_eq!(c.cores_for_threads(240), 60);
    }

    #[test]
    fn sku_presets_are_valid() {
        for sku in [
            PhiConfig::phi_5110p(),
            PhiConfig::phi_7120p(),
            PhiConfig::phi_3120a(),
        ] {
            sku.validate().unwrap();
            assert!(sku.hw_threads() >= 228);
        }
        assert_eq!(PhiConfig::phi_7120p().hw_threads(), 244);
        assert_eq!(PhiConfig::phi_7120p().usable_mem_mb(), 16 * 1024 - 512);
        let gpu = PhiConfig::gpu_like();
        gpu.validate().unwrap();
        assert_eq!(gpu.hw_threads(), 2048);
        assert_eq!(gpu.usable_mem_mb(), 24 * 1024 - 512);
    }

    #[test]
    fn power_model_validation() {
        let inverted = PhiConfig {
            max_watts: 50.0,
            ..PhiConfig::default()
        }; // below idle
        assert!(inverted.validate().is_err());
        let negative = PhiConfig {
            idle_watts: -1.0,
            ..PhiConfig::default()
        };
        assert!(negative.validate().is_err());
    }

    #[test]
    fn validation_catches_bad_configs() {
        let coreless = PhiConfig {
            cores: 0,
            ..PhiConfig::default()
        };
        assert!(coreless.validate().is_err());
        let oversized = PhiConfig {
            cores: 65,
            ..PhiConfig::default()
        };
        assert!(oversized.validate().is_err());
        let memoryless = PhiConfig {
            os_reserved_mb: PhiConfig::default().memory_mb,
            ..PhiConfig::default()
        };
        assert!(memoryless.validate().is_err());
    }
}
