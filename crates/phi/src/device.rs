//! The device model: resident processes, active offloads, rate-rescaled
//! execution, oversubscription effects and utilization accounting.
//!
//! ## Storage layout (the substrate fast path)
//!
//! Resident-process and active-offload state live in one generation-stamped
//! slab ([`phishare_sim::Slab`]): each resident occupies a dense slot
//! holding its envelope, its committed memory and its (optional) active
//! offload. A [`ProcSlot`] handle is resolved once at attach time; every
//! hot-path operation — admission, rate updates, completion scans — is then
//! an array index instead of a `BTreeMap` walk. A small `ProcId → ProcSlot`
//! index is maintained *only* at attach/detach so the device still answers
//! id-keyed queries (and so OOM victim selection sees residents in
//! ascending-id order, exactly like the keyed oracle).
//!
//! Aggregate signals the keyed substrate recomputed by iteration
//! (committed/declared totals, thread sums, busy-core estimate) are kept
//! incrementally; they are integer-valued, so the incremental values are
//! *identical* — not merely close — to the recomputed ones, which is what
//! lets the differential proptests demand bit-equal results against
//! [`KeyedPhiDevice`](crate::keyed::KeyedPhiDevice).

use crate::alloc::CoreSet;
use crate::config::PhiConfig;
use crate::perf::PerfModel;
use crate::proc::ProcId;
use phishare_sim::{Counter, DetRng, SimDuration, SimTime, Slab, Slot, TimeWeighted};
use std::collections::BTreeMap;
use std::fmt;

/// How an offload's threads are placed on cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Affinity {
    /// COSMIC pinned the offload to a private, disjoint core set; it never
    /// interferes with other pinned offloads.
    Pinned(CoreSet),
    /// Raw MPSS: threads scatter across the whole device and overlapping
    /// offloads interfere (§IV-D2).
    Unmanaged,
}

/// Result of a memory commit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommitOutcome {
    /// The commit fits in physical memory.
    Fits,
    /// Physical memory was oversubscribed; the OOM killer terminated these
    /// processes (their offloads were aborted and they are no longer
    /// resident).
    OomKilled(Vec<ProcId>),
}

/// Errors from device operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeviceError {
    /// The process is already resident.
    AlreadyResident(ProcId),
    /// The process is not resident on this device.
    NotResident(ProcId),
    /// The process already has an active offload (the offload model is
    /// synchronous per COI process).
    OffloadInProgress(ProcId),
    /// The process has no active offload.
    NoActiveOffload(ProcId),
    /// A pinned core set overlaps an already-pinned offload.
    CoreOverlap(ProcId),
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::AlreadyResident(p) => write!(f, "{p} is already resident"),
            DeviceError::NotResident(p) => write!(f, "{p} is not resident"),
            DeviceError::OffloadInProgress(p) => write!(f, "{p} already has an active offload"),
            DeviceError::NoActiveOffload(p) => write!(f, "{p} has no active offload"),
            DeviceError::CoreOverlap(p) => {
                write!(f, "pinned cores for {p} overlap another offload")
            }
        }
    }
}

impl std::error::Error for DeviceError {}

/// One active (currently executing) offload.
#[derive(Debug, Clone)]
struct ActiveOffload {
    threads: u32,
    /// Nominal work remaining, in ticks at rate 1.
    remaining: f64,
    /// Current execution rate (nominal ticks per wall tick).
    rate: f64,
    affinity: Affinity,
}

/// One resident process's slab entry: envelope, commit, optional offload.
#[derive(Debug, Clone)]
struct ProcEntry {
    id: ProcId,
    declared_mem_mb: u64,
    declared_threads: u32,
    committed_mem_mb: u64,
    active: Option<ActiveOffload>,
}

/// Handle to a resident process, resolved once at [`PhiDevice::attach_slot`]
/// and valid until the process detaches, is OOM-killed or the device resets.
///
/// Generation-stamped: a handle that outlives its process goes stale rather
/// than aliasing the slot's next tenant — reads return `None`/`false`,
/// destructive operations panic (see [`phishare_sim::Slab`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProcSlot(Slot);

impl fmt::Display for ProcSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "proc-{}", self.0)
    }
}

/// Time-integrated utilization of one device over an interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceUtilization {
    /// Average fraction of hardware threads busy, in `[0, 1]`.
    pub thread_util: f64,
    /// Average fraction of cores busy, in `[0, 1]` — the paper's §III metric.
    pub core_util: f64,
    /// Average fraction of usable memory committed, in `[0, 1]`.
    pub mem_util: f64,
    /// Fraction of time at least one offload was executing.
    pub busy_fraction: f64,
}

/// A simulated Xeon Phi card (slab-backed fast substrate).
///
/// The device is a passive state machine: the owning event loop calls
/// [`PhiDevice::start_offload`] / [`PhiDevice::finish_offload`] etc. and uses
/// [`PhiDevice::completions`] + [`PhiDevice::generation`] to (re)schedule
/// completion events. Any mutation that changes execution rates bumps the
/// generation; events carrying a stale generation must be ignored by the
/// caller.
///
/// Every id-keyed method has a `_slot` twin taking a [`ProcSlot`]; hot
/// loops resolve the handle once at registration and skip the map lookup
/// thereafter. The id-keyed forms remain for tests, examples and the
/// one-shot call sites where the lookup is not on the critical path.
#[derive(Debug)]
pub struct PhiDevice {
    cfg: PhiConfig,
    perf: PerfModel,
    /// Dense per-resident state; the only per-process storage.
    procs: Slab<ProcEntry>,
    /// `ProcId → slot`, touched only at attach/detach/OOM/reset. Keeps
    /// ascending-id iteration (OOM victim order, `resident_ids_iter`) and
    /// id-keyed convenience lookups.
    index: BTreeMap<ProcId, ProcSlot>,
    created: SimTime,
    last_update: SimTime,
    generation: u64,
    // Incrementally-maintained aggregates (integer-exact mirrors of the
    // keyed substrate's per-call recomputations).
    committed_total: u64,
    declared_total: u64,
    declared_threads_total: u32,
    active_threads_total: u32,
    n_active: usize,
    /// Union of all pinned active offloads' core sets. Pinned sets are
    /// pairwise disjoint (enforced at start), so removal can subtract a
    /// member's exact mask.
    pinned_union: CoreSet,
    /// Core estimate contributed by unmanaged active offloads.
    unmanaged_cores: u32,
    /// Environmental rate multiplier (thermal derate), applied to every
    /// execution rate after the sharing model. `1.0` = nominal. Survives
    /// [`PhiDevice::reset`]: throttling is ambient, not card state.
    rate_scale: f64,
    busy_threads: TimeWeighted,
    busy_cores: TimeWeighted,
    committed: TimeWeighted,
    busy_any: TimeWeighted,
    /// Processes killed by the OOM killer over the device's lifetime.
    pub oom_kills: Counter,
    /// Offloads that ran to completion.
    pub offloads_completed: Counter,
}

/// Tolerance (in nominal ticks) below which remaining work counts as done.
pub(crate) const WORK_EPSILON: f64 = 1e-6;

impl PhiDevice {
    /// Create a device at simulation time `start`.
    pub fn new(cfg: PhiConfig, perf: PerfModel, start: SimTime) -> Self {
        cfg.validate().expect("invalid device configuration");
        PhiDevice {
            cfg,
            perf,
            procs: Slab::with_capacity(8),
            index: BTreeMap::new(),
            created: start,
            last_update: start,
            generation: 0,
            committed_total: 0,
            declared_total: 0,
            declared_threads_total: 0,
            active_threads_total: 0,
            n_active: 0,
            pinned_union: CoreSet::EMPTY,
            unmanaged_cores: 0,
            rate_scale: 1.0,
            busy_threads: TimeWeighted::new(start),
            busy_cores: TimeWeighted::new(start),
            committed: TimeWeighted::new(start),
            busy_any: TimeWeighted::new(start),
            oom_kills: Counter::new(),
            offloads_completed: Counter::new(),
        }
    }

    /// The device's static configuration.
    pub fn config(&self) -> &PhiConfig {
        &self.cfg
    }

    /// Monotone counter bumped whenever execution rates may have changed.
    /// Completion events scheduled under an older generation are stale.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The current environmental rate multiplier (thermal derate).
    pub fn rate_scale(&self) -> f64 {
        self.rate_scale
    }

    /// Thermal derate: integrate progress up to `now`, then multiply every
    /// execution rate by `scale` (in `(0, 1]`; `1.0` restores nominal)
    /// from `now` on, bumping the generation so every outstanding
    /// completion prediction goes stale. Survives [`PhiDevice::reset`].
    pub fn set_rate_scale(&mut self, now: SimTime, scale: f64) {
        debug_assert!(scale.is_finite() && scale > 0.0 && scale <= 1.0);
        self.rate_scale = scale;
        self.reschedule(now);
    }

    // ------------------------------------------------------------------
    // Process lifecycle
    // ------------------------------------------------------------------

    /// Attach a COI process with its declared envelope and an initial memory
    /// commit. The initial commit may already trigger the OOM killer when
    /// the device is physically oversubscribed (raw-MPSS scenarios).
    pub fn attach(
        &mut self,
        now: SimTime,
        proc: ProcId,
        declared_mem_mb: u64,
        declared_threads: u32,
        initial_commit_mb: u64,
        rng: &mut DetRng,
    ) -> Result<CommitOutcome, DeviceError> {
        self.attach_slot(
            now,
            proc,
            declared_mem_mb,
            declared_threads,
            initial_commit_mb,
            rng,
        )
        .map(|(_, outcome)| outcome)
    }

    /// [`PhiDevice::attach`], additionally returning the resident's slot
    /// handle for later array-indexed access.
    ///
    /// When the returned outcome lists the *attached process itself* among
    /// the OOM victims, the handle is already stale and must be discarded.
    pub fn attach_slot(
        &mut self,
        now: SimTime,
        proc: ProcId,
        declared_mem_mb: u64,
        declared_threads: u32,
        initial_commit_mb: u64,
        rng: &mut DetRng,
    ) -> Result<(ProcSlot, CommitOutcome), DeviceError> {
        if self.index.contains_key(&proc) {
            return Err(DeviceError::AlreadyResident(proc));
        }
        let slot = ProcSlot(self.procs.insert(ProcEntry {
            id: proc,
            declared_mem_mb,
            declared_threads,
            committed_mem_mb: 0,
            active: None,
        }));
        self.index.insert(proc, slot);
        self.declared_total += declared_mem_mb;
        self.declared_threads_total += declared_threads;
        let outcome = self.commit_memory_slot(now, slot, initial_commit_mb, rng);
        // Residency changed either way (attach, possibly minus OOM
        // victims): rates must be refreshed even when the commit fit.
        self.reschedule(now);
        Ok((slot, outcome))
    }

    /// Detach a process, freeing its memory and aborting any active offload.
    pub fn detach(&mut self, now: SimTime, proc: ProcId) -> Result<(), DeviceError> {
        if !self.index.contains_key(&proc) {
            return Err(DeviceError::NotResident(proc));
        }
        self.remove_entry(proc);
        self.reschedule(now);
        Ok(())
    }

    /// [`PhiDevice::detach`] through a slot handle.
    ///
    /// # Panics
    /// Panics when the handle is stale.
    pub fn detach_slot(&mut self, now: SimTime, slot: ProcSlot) {
        let proc = self.entry(slot).id;
        self.remove_entry(proc);
        self.reschedule(now);
    }

    /// Set a process's committed memory to `total_mb`. Shrinking is allowed.
    /// Growing past physical memory triggers the OOM killer, which
    /// terminates uniformly random resident processes until the commit fits
    /// (§II-C: Linux's OOM killer "randomly terminates processes").
    pub fn commit_memory(
        &mut self,
        now: SimTime,
        proc: ProcId,
        total_mb: u64,
        rng: &mut DetRng,
    ) -> Result<CommitOutcome, DeviceError> {
        let slot = *self
            .index
            .get(&proc)
            .ok_or(DeviceError::NotResident(proc))?;
        Ok(self.commit_memory_slot(now, slot, total_mb, rng))
    }

    /// [`PhiDevice::commit_memory`] through a slot handle. The committing
    /// process may itself be chosen as an OOM victim, in which case `slot`
    /// is stale on return.
    ///
    /// # Panics
    /// Panics when the handle is stale on entry.
    pub fn commit_memory_slot(
        &mut self,
        now: SimTime,
        slot: ProcSlot,
        total_mb: u64,
        rng: &mut DetRng,
    ) -> CommitOutcome {
        {
            let committed_total = &mut self.committed_total;
            let entry = self
                .procs
                .get_mut(slot.0)
                .unwrap_or_else(|| panic!("commit_memory through stale handle {slot}"));
            *committed_total = *committed_total - entry.committed_mem_mb + total_mb;
            entry.committed_mem_mb = total_mb;
        }
        let mut killed = Vec::new();
        while self.committed_total > self.cfg.usable_mem_mb() {
            let n = self.index.len();
            debug_assert!(n > 0);
            // Uniform victim over residents in ascending-id order — the
            // exact index stream the keyed oracle draws.
            let victim = *self
                .index
                .keys()
                .nth(rng.index(n))
                .expect("resident set is non-empty");
            self.remove_entry(victim);
            self.oom_kills.incr();
            killed.push(victim);
        }
        if killed.is_empty() {
            // Execution rates depend only on membership (active offloads,
            // residents, thread sums), which an in-bounds commit leaves
            // untouched: pending completion predictions stay valid, so no
            // generation bump and no rate recompute — only the
            // committed-memory signal moved. (The advance re-anchors
            // `last_update`, so *recomputing* a prediction after it can
            // land a float-rounding tick away from the still-live issued
            // one — which is why the runtime never re-syncs within a
            // generation.)
            self.advance_to(now);
            self.record_utilization(now);
            CommitOutcome::Fits
        } else {
            self.reschedule(now);
            CommitOutcome::OomKilled(killed)
        }
    }

    /// Remove `proc` from the slab, the id index and every aggregate.
    /// Does *not* reschedule; callers decide when rates refresh.
    fn remove_entry(&mut self, proc: ProcId) {
        let slot = self.index.remove(&proc).expect("proc is indexed");
        let entry = self.procs.remove(slot.0);
        self.declared_total -= entry.declared_mem_mb;
        self.declared_threads_total -= entry.declared_threads;
        self.committed_total -= entry.committed_mem_mb;
        if let Some(off) = entry.active {
            self.retire_active(&off);
        }
    }

    /// Deduct one active offload from the incremental aggregates.
    fn retire_active(&mut self, off: &ActiveOffload) {
        self.n_active -= 1;
        self.active_threads_total -= off.threads;
        match off.affinity {
            // Pinned sets are pairwise disjoint, so clearing this member's
            // bits removes exactly its contribution to the union.
            Affinity::Pinned(set) => {
                self.pinned_union = CoreSet::from_mask(self.pinned_union.mask() & !set.mask());
            }
            Affinity::Unmanaged => {
                self.unmanaged_cores -= self.cfg.cores_for_threads(off.threads);
            }
        }
    }

    /// The live entry at `slot`, panicking on a stale handle.
    fn entry(&self, slot: ProcSlot) -> &ProcEntry {
        self.procs
            .get(slot.0)
            .unwrap_or_else(|| panic!("device access through stale handle {slot}"))
    }

    // ------------------------------------------------------------------
    // Offload lifecycle
    // ------------------------------------------------------------------

    /// Begin executing an offload of `work` nominal duration using `threads`
    /// hardware threads for process `proc`.
    pub fn start_offload(
        &mut self,
        now: SimTime,
        proc: ProcId,
        threads: u32,
        work: SimDuration,
        affinity: Affinity,
    ) -> Result<(), DeviceError> {
        let slot = *self
            .index
            .get(&proc)
            .ok_or(DeviceError::NotResident(proc))?;
        self.start_offload_slot(now, slot, threads, work, affinity)
    }

    /// [`PhiDevice::start_offload`] through a slot handle.
    ///
    /// # Panics
    /// Panics when the handle is stale.
    pub fn start_offload_slot(
        &mut self,
        now: SimTime,
        slot: ProcSlot,
        threads: u32,
        work: SimDuration,
        affinity: Affinity,
    ) -> Result<(), DeviceError> {
        let entry = self.entry(slot);
        let proc = entry.id;
        if entry.active.is_some() {
            return Err(DeviceError::OffloadInProgress(proc));
        }
        if let Affinity::Pinned(set) = affinity {
            // Active pinned sets are pairwise disjoint, so overlapping any
            // of them is overlapping their union: one mask test replaces
            // the keyed substrate's scan over every active offload.
            if !set.is_disjoint(self.pinned_union) {
                return Err(DeviceError::CoreOverlap(proc));
            }
            self.pinned_union = self.pinned_union.union(set);
        } else {
            self.unmanaged_cores += self.cfg.cores_for_threads(threads);
        }
        self.n_active += 1;
        self.active_threads_total += threads;
        self.procs
            .get_mut(slot.0)
            .expect("entry verified live above")
            .active = Some(ActiveOffload {
            threads,
            remaining: work.ticks() as f64,
            rate: 1.0,
            affinity,
        });
        self.reschedule(now);
        Ok(())
    }

    /// Complete an offload whose completion event just fired.
    ///
    /// # Panics
    /// Panics (in debug builds) if called while the offload still has more
    /// than one tick of work left — that means the caller fired a stale
    /// event the generation guard should have dropped.
    pub fn finish_offload(&mut self, now: SimTime, proc: ProcId) -> Result<(), DeviceError> {
        self.advance_to(now);
        let Some(&slot) = self.index.get(&proc) else {
            return Err(DeviceError::NoActiveOffload(proc));
        };
        self.finish_after_advance(now, slot)
    }

    /// [`PhiDevice::finish_offload`] through a slot handle.
    ///
    /// # Panics
    /// Panics when the handle is stale; debug-panics on premature finish.
    pub fn finish_offload_slot(&mut self, now: SimTime, slot: ProcSlot) -> Result<(), DeviceError> {
        self.advance_to(now);
        self.finish_after_advance(now, slot)
    }

    fn finish_after_advance(&mut self, now: SimTime, slot: ProcSlot) -> Result<(), DeviceError> {
        let entry = self.entry(slot);
        let Some(off) = &entry.active else {
            return Err(DeviceError::NoActiveOffload(entry.id));
        };
        debug_assert!(
            off.remaining <= off.rate + WORK_EPSILON,
            "finish_offload fired with {:.3} nominal ticks left (rate {:.4}): stale event?",
            off.remaining,
            off.rate
        );
        let off = self
            .procs
            .get_mut(slot.0)
            .expect("entry verified live above")
            .active
            .take()
            .expect("offload verified active above");
        self.retire_active(&off);
        self.offloads_completed.incr();
        self.reschedule(now);
        Ok(())
    }

    /// Abort an active offload (job killed or preempted mid-offload).
    pub fn abort_offload(&mut self, now: SimTime, proc: ProcId) -> Result<(), DeviceError> {
        let Some(&slot) = self.index.get(&proc) else {
            return Err(DeviceError::NoActiveOffload(proc));
        };
        self.abort_offload_slot(now, slot)
    }

    /// [`PhiDevice::abort_offload`] through a slot handle.
    ///
    /// # Panics
    /// Panics when the handle is stale.
    pub fn abort_offload_slot(&mut self, now: SimTime, slot: ProcSlot) -> Result<(), DeviceError> {
        let id = self.entry(slot).id;
        let Some(off) = self
            .procs
            .get_mut(slot.0)
            .expect("entry verified live above")
            .active
            .take()
        else {
            return Err(DeviceError::NoActiveOffload(id));
        };
        self.retire_active(&off);
        self.reschedule(now);
        Ok(())
    }

    /// MPSS crash/restart: every resident COI process is torn down and
    /// every active offload aborted in one stroke, releasing all committed
    /// memory. Utilization integrators and lifetime counters survive —
    /// the card is the same card after the reboot — and the generation
    /// bumps so every outstanding completion prediction goes stale.
    pub fn reset(&mut self, now: SimTime) {
        self.procs.clear();
        self.index.clear();
        self.committed_total = 0;
        self.declared_total = 0;
        self.declared_threads_total = 0;
        self.active_threads_total = 0;
        self.n_active = 0;
        self.pinned_union = CoreSet::EMPTY;
        self.unmanaged_cores = 0;
        self.reschedule(now);
    }

    /// Predicted completion instants for all active offloads under current
    /// rates, in ascending [`ProcId`] order.
    ///
    /// Allocates one `Vec` per call; hot loops should use
    /// [`PhiDevice::completions_iter`] / [`PhiDevice::for_each_completion`]
    /// (same order, no allocation) or [`PhiDevice::next_completion`].
    pub fn completions(&self) -> Vec<(ProcId, SimTime)> {
        self.completions_iter().collect()
    }

    /// Allocation-free form of [`PhiDevice::completions`]: predicted
    /// completion instants in ascending [`ProcId`] order — the order
    /// per-offload completion events must be scheduled in to preserve
    /// same-tick tie-breaking.
    pub fn completions_iter(&self) -> impl Iterator<Item = (ProcId, SimTime)> + '_ {
        self.index.values().filter_map(|slot| {
            let entry = self.entry(*slot);
            entry.active.as_ref().map(|off| {
                let dt = (off.remaining / off.rate).ceil().max(0.0) as u64;
                (entry.id, self.last_update + SimDuration::from_ticks(dt))
            })
        })
    }

    /// Visit every predicted completion in ascending [`ProcId`] order
    /// without allocating (closure form of
    /// [`PhiDevice::completions_iter`], convenient for trait objects).
    pub fn for_each_completion(&self, mut f: impl FnMut(ProcId, SimTime)) {
        for (proc, at) in self.completions_iter() {
            f(proc, at);
        }
    }

    /// The earliest predicted completion under current rates, without
    /// allocating: `(proc, instant)` of the next offload to finish, or
    /// `None` when the device is idle. Ties go to the lowest [`ProcId`] —
    /// the same order per-offload events fire in when scheduled from
    /// [`PhiDevice::completions`], so the two scheduling schemes stay
    /// step-for-step equivalent.
    ///
    /// Valid for the current [`PhiDevice::generation`]; any mutation that
    /// bumps the generation invalidates the prediction and the caller must
    /// re-query.
    pub fn next_completion(&self) -> Option<(ProcId, SimTime)> {
        // Scans the dense slab (cache-friendly); min by (instant, id) is
        // iteration-order independent, so slot order here and ascending-id
        // order in the keyed oracle pick the same winner.
        let mut best: Option<(ProcId, SimTime)> = None;
        for (_, entry) in self.procs.iter() {
            if let Some(off) = &entry.active {
                let dt = (off.remaining / off.rate).ceil().max(0.0) as u64;
                let at = self.last_update + SimDuration::from_ticks(dt);
                if best
                    .map(|(bp, bt)| (at, entry.id) < (bt, bp))
                    .unwrap_or(true)
                {
                    best = Some((entry.id, at));
                }
            }
        }
        best
    }

    // ------------------------------------------------------------------
    // Execution integration
    // ------------------------------------------------------------------

    /// Integrate execution progress up to `now` and refresh all rates,
    /// bumping the generation.
    fn reschedule(&mut self, now: SimTime) {
        self.advance_to(now);
        let n_active = self.n_active;
        let n_resident = self.procs.len();
        let active_threads = self.active_threads_total;
        let hw = self.cfg.hw_threads();
        let perf = self.perf;
        perf.reshare_rates(
            n_active,
            n_resident,
            active_threads,
            hw,
            self.procs.iter_mut().filter_map(|(_, entry)| {
                entry
                    .active
                    .as_mut()
                    .map(|off| (matches!(off.affinity, Affinity::Pinned(_)), &mut off.rate))
            }),
        );
        if self.rate_scale != 1.0 {
            for (_, entry) in self.procs.iter_mut() {
                if let Some(off) = &mut entry.active {
                    off.rate *= self.rate_scale;
                }
            }
        }
        self.generation += 1;
        self.record_utilization(now);
    }

    /// Integrate remaining work at current rates from `last_update` to `now`.
    fn advance_to(&mut self, now: SimTime) {
        let dt = now.since(self.last_update).ticks() as f64;
        if dt > 0.0 {
            for (_, entry) in self.procs.iter_mut() {
                if let Some(off) = &mut entry.active {
                    off.remaining = (off.remaining - off.rate * dt).max(0.0);
                }
            }
            self.last_update = now;
        }
    }

    fn record_utilization(&mut self, now: SimTime) {
        // Each signal is piecewise constant, so re-setting an unchanged
        // value only restates the current segment — skip those updates.
        let hw = self.cfg.hw_threads();
        let threads = self.active_threads_total.min(hw) as f64;
        if threads != self.busy_threads.value() {
            self.busy_threads.set(now, threads);
        }
        let cores = self.busy_core_estimate() as f64;
        if cores != self.busy_cores.value() {
            self.busy_cores.set(now, cores);
        }
        let committed = self.committed_total as f64;
        if committed != self.committed.value() {
            self.committed.set(now, committed);
        }
        let busy = if self.n_active == 0 { 0.0 } else { 1.0 };
        if busy != self.busy_any.value() {
            self.busy_any.set(now, busy);
        }
    }

    /// Estimated number of busy cores: pinned offloads occupy exactly their
    /// core sets; unmanaged offloads spread over `ceil(threads/4)` cores.
    /// Capped at the core count. O(1) from the incremental aggregates.
    fn busy_core_estimate(&self) -> u32 {
        (self.pinned_union.count() + self.unmanaged_cores).min(self.cfg.cores)
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// Number of resident COI processes.
    pub fn resident_count(&self) -> usize {
        self.procs.len()
    }

    /// True when `proc` is resident.
    pub fn is_resident(&self, proc: ProcId) -> bool {
        self.index.contains_key(&proc)
    }

    /// The slot handle for a resident process, or `None` when not resident.
    pub fn slot_of(&self, proc: ProcId) -> Option<ProcSlot> {
        self.index.get(&proc).copied()
    }

    /// True when `slot` still names a live resident (its process has not
    /// detached, been OOM-killed or been swept by a reset).
    pub fn slot_is_live(&self, slot: ProcSlot) -> bool {
        self.procs.contains(slot.0)
    }

    /// True when `proc` has an active offload.
    pub fn has_active_offload(&self, proc: ProcId) -> bool {
        self.index
            .get(&proc)
            .is_some_and(|slot| self.entry(*slot).active.is_some())
    }

    /// Resident process ids in ascending order, without allocating.
    pub fn resident_ids_iter(&self) -> impl Iterator<Item = ProcId> + '_ {
        self.index.keys().copied()
    }

    /// Resident process ids in ascending order. Hot loops should prefer
    /// [`PhiDevice::resident_ids_iter`].
    pub fn resident_ids(&self) -> Vec<ProcId> {
        self.resident_ids_iter().collect()
    }

    /// Sum of declared memory over resident processes (MB) — what schedulers
    /// budget against.
    pub fn declared_total_mb(&self) -> u64 {
        self.declared_total
    }

    /// Declared memory still unbudgeted (MB), i.e. usable minus declared.
    pub fn free_declared_mb(&self) -> u64 {
        self.cfg.usable_mem_mb().saturating_sub(self.declared_total)
    }

    /// Sum of committed memory over resident processes (MB) — the physical
    /// constraint.
    pub fn committed_total_mb(&self) -> u64 {
        self.committed_total
    }

    /// Sum of declared threads over resident processes.
    pub fn declared_threads(&self) -> u32 {
        self.declared_threads_total
    }

    /// Thread sum over *active* offloads.
    pub fn active_threads(&self) -> u32 {
        self.active_threads_total
    }

    /// Number of active offloads.
    pub fn active_offloads(&self) -> usize {
        self.n_active
    }

    /// Energy consumed by the card from creation through `end`, in joules:
    /// idle draw for the whole interval plus the busy-core fraction scaled
    /// between idle and max draw. Backs the paper's footprint argument —
    /// fewer cards at equal makespan means proportionally less energy.
    pub fn energy_joules(&self, end: SimTime) -> f64 {
        let elapsed = end.since(self.created).as_secs_f64();
        let busy_core_seconds = self.busy_cores.integral(end);
        self.cfg.idle_watts * elapsed
            + (self.cfg.max_watts - self.cfg.idle_watts) * busy_core_seconds / self.cfg.cores as f64
    }

    /// Time-integrated utilization from device creation through `end`.
    pub fn utilization(&self, end: SimTime) -> DeviceUtilization {
        let hw = self.cfg.hw_threads() as f64;
        let cores = self.cfg.cores as f64;
        let mem = self.cfg.usable_mem_mb() as f64;
        DeviceUtilization {
            thread_util: self.busy_threads.time_average(end) / hw,
            core_util: self.busy_cores.time_average(end) / cores,
            mem_util: self.committed.time_average(end) / mem,
            busy_fraction: self.busy_any.time_average(end),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> PhiDevice {
        PhiDevice::new(PhiConfig::default(), PerfModel::default(), SimTime::ZERO)
    }

    fn rng() -> DetRng {
        DetRng::from_seed(1)
    }

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn attach_commit_detach_accounting() {
        let mut d = dev();
        let mut r = rng();
        assert_eq!(
            d.attach(t(0), ProcId(1), 1000, 120, 400, &mut r).unwrap(),
            CommitOutcome::Fits
        );
        assert_eq!(d.declared_total_mb(), 1000);
        assert_eq!(d.committed_total_mb(), 400);
        assert_eq!(d.free_declared_mb(), 7680 - 1000);
        assert_eq!(d.declared_threads(), 120);
        d.detach(t(1), ProcId(1)).unwrap();
        assert_eq!(d.resident_count(), 0);
        assert_eq!(d.committed_total_mb(), 0);
    }

    #[test]
    fn double_attach_rejected() {
        let mut d = dev();
        let mut r = rng();
        d.attach(t(0), ProcId(1), 100, 60, 0, &mut r).unwrap();
        assert_eq!(
            d.attach(t(0), ProcId(1), 100, 60, 0, &mut r),
            Err(DeviceError::AlreadyResident(ProcId(1)))
        );
    }

    #[test]
    fn solo_offload_completes_at_nominal_time() {
        let mut d = dev();
        let mut r = rng();
        d.attach(t(0), ProcId(1), 1000, 240, 500, &mut r).unwrap();
        d.start_offload(
            t(0),
            ProcId(1),
            240,
            SimDuration::from_secs(10),
            Affinity::Unmanaged,
        )
        .unwrap();
        let comps = d.completions();
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0], (ProcId(1), t(10)));
        d.finish_offload(t(10), ProcId(1)).unwrap();
        assert_eq!(d.active_offloads(), 0);
        assert_eq!(d.offloads_completed.get(), 1);
    }

    #[test]
    fn oversubscribed_offloads_slow_down_8x() {
        let mut d = dev();
        let mut r = rng();
        for p in 1..=2 {
            d.attach(t(0), ProcId(p), 1000, 240, 100, &mut r).unwrap();
            d.start_offload(
                t(0),
                ProcId(p),
                240,
                SimDuration::from_secs(10),
                Affinity::Unmanaged,
            )
            .unwrap();
        }
        // 480 threads on 240 hw → load 2 → rate 1/(8 oversub × 1.15
        // conflict); two residents sit below the sharing knee.
        let comps = d.completions();
        let expect_secs = 10.0 * 8.0 * 1.15;
        for (_, ct) in comps {
            assert!(
                (ct.as_secs_f64() - expect_secs).abs() < 0.01,
                "completion at {ct}, expected ≈{expect_secs}s"
            );
        }
    }

    #[test]
    fn pinned_offloads_overlap_at_full_rate_below_knee() {
        let mut d = dev();
        let mut r = rng();
        let a = CoreSet::contiguous(0, 30);
        let b = CoreSet::contiguous(30, 30);
        for (p, set) in [(1u64, a), (2u64, b)] {
            d.attach(t(0), ProcId(p), 1000, 120, 100, &mut r).unwrap();
            d.start_offload(
                t(0),
                ProcId(p),
                120,
                SimDuration::from_secs(10),
                Affinity::Pinned(set),
            )
            .unwrap();
        }
        // No core conflict, no oversubscription, residents below the knee:
        // both offloads run at full rate concurrently.
        for (_, ct) in d.completions() {
            assert_eq!(ct, t(10));
        }
    }

    #[test]
    fn solo_pinned_offload_runs_at_full_rate() {
        let mut d = dev();
        let mut r = rng();
        d.attach(t(0), ProcId(1), 1000, 120, 100, &mut r).unwrap();
        d.start_offload(
            t(0),
            ProcId(1),
            120,
            SimDuration::from_secs(10),
            Affinity::Pinned(CoreSet::contiguous(0, 30)),
        )
        .unwrap();
        assert_eq!(d.completions(), vec![(ProcId(1), t(10))]);
    }

    #[test]
    fn overlapping_pinned_sets_rejected() {
        let mut d = dev();
        let mut r = rng();
        let a = CoreSet::contiguous(0, 30);
        let overlapping = CoreSet::contiguous(20, 30);
        d.attach(t(0), ProcId(1), 1000, 120, 0, &mut r).unwrap();
        d.attach(t(0), ProcId(2), 1000, 120, 0, &mut r).unwrap();
        d.start_offload(
            t(0),
            ProcId(1),
            120,
            SimDuration::from_secs(5),
            Affinity::Pinned(a),
        )
        .unwrap();
        assert_eq!(
            d.start_offload(
                t(0),
                ProcId(2),
                120,
                SimDuration::from_secs(5),
                Affinity::Pinned(overlapping)
            ),
            Err(DeviceError::CoreOverlap(ProcId(2)))
        );
    }

    #[test]
    fn rate_change_mid_offload_integrates_progress() {
        let mut d = dev();
        let mut r = rng();
        d.attach(t(0), ProcId(1), 1000, 240, 0, &mut r).unwrap();
        d.attach(t(0), ProcId(2), 1000, 240, 0, &mut r).unwrap();
        // P1 runs alone for 5 s at full rate (two residents, below knee).
        d.start_offload(
            t(0),
            ProcId(1),
            240,
            SimDuration::from_secs(10),
            Affinity::Unmanaged,
        )
        .unwrap();
        // P2's offload joins at t=5: both now oversubscribed (load 2 → ×8)
        // and conflicting (×1.15).
        d.start_offload(
            t(5),
            ProcId(2),
            240,
            SimDuration::from_secs(10),
            Affinity::Unmanaged,
        )
        .unwrap();
        let comps = d.completions();
        let p1 = comps.iter().find(|(p, _)| *p == ProcId(1)).unwrap().1;
        // Remaining 5 s of nominal work at rate 1/9.2 → 46 s more.
        assert!(
            (p1.as_secs_f64() - (5.0 + 5.0 * 9.2)).abs() < 0.05,
            "P1 completion {p1}"
        );
    }

    #[test]
    fn generation_bumps_on_membership_changes() {
        let mut d = dev();
        let mut r = rng();
        let g0 = d.generation();
        d.attach(t(0), ProcId(1), 100, 60, 0, &mut r).unwrap();
        let g1 = d.generation();
        assert!(g1 > g0);
        d.start_offload(
            t(0),
            ProcId(1),
            60,
            SimDuration::from_secs(1),
            Affinity::Unmanaged,
        )
        .unwrap();
        assert!(d.generation() > g1);
    }

    #[test]
    fn next_completion_matches_earliest_prediction() {
        let mut d = dev();
        let mut r = rng();
        assert_eq!(d.next_completion(), None);
        for (p, secs) in [(1u64, 30), (2, 10), (3, 20)] {
            d.attach(t(0), ProcId(p), 500, 60, 100, &mut r).unwrap();
            d.start_offload(
                t(0),
                ProcId(p),
                60,
                SimDuration::from_secs(secs),
                Affinity::Unmanaged,
            )
            .unwrap();
        }
        let next = d.next_completion().unwrap();
        let earliest = d
            .completions()
            .into_iter()
            .min_by_key(|&(p, at)| (at, p))
            .unwrap();
        assert_eq!(next, earliest);
        assert_eq!(next.0, ProcId(2));
    }

    #[test]
    fn next_completion_ties_break_to_lowest_proc() {
        let mut d = dev();
        let mut r = rng();
        for p in [5u64, 2, 9] {
            d.attach(t(0), ProcId(p), 500, 60, 100, &mut r).unwrap();
            d.start_offload(
                t(0),
                ProcId(p),
                60,
                SimDuration::from_secs(10),
                Affinity::Unmanaged,
            )
            .unwrap();
        }
        // All three predictions coincide; the lowest ProcId wins — the
        // order per-offload events would fire in.
        assert_eq!(d.next_completion().unwrap().0, ProcId(2));
    }

    #[test]
    fn in_bounds_commit_preserves_generation_and_predictions() {
        let mut d = dev();
        let mut r = rng();
        d.attach(t(0), ProcId(1), 2000, 60, 100, &mut r).unwrap();
        d.start_offload(
            t(0),
            ProcId(1),
            60,
            SimDuration::from_secs(10),
            Affinity::Unmanaged,
        )
        .unwrap();
        let g = d.generation();
        let before = d.next_completion();
        // A commit that fits changes no execution rate: the pending
        // completion event must stay valid (no generation bump).
        assert_eq!(
            d.commit_memory(t(2), ProcId(1), 1500, &mut r).unwrap(),
            CommitOutcome::Fits
        );
        assert_eq!(d.generation(), g);
        assert_eq!(d.next_completion(), before);
        assert_eq!(d.committed_total_mb(), 1500);
    }

    #[test]
    fn resident_ids_iter_matches_vec_variant() {
        let mut d = dev();
        let mut r = rng();
        for p in [4u64, 1, 3] {
            d.attach(t(0), ProcId(p), 100, 60, 0, &mut r).unwrap();
        }
        let from_iter: Vec<ProcId> = d.resident_ids_iter().collect();
        assert_eq!(from_iter, d.resident_ids());
        assert_eq!(from_iter, vec![ProcId(1), ProcId(3), ProcId(4)]);
    }

    #[test]
    fn completions_iter_matches_vec_variant() {
        let mut d = dev();
        let mut r = rng();
        for (p, secs) in [(4u64, 30), (1, 10), (3, 20)] {
            d.attach(t(0), ProcId(p), 500, 60, 100, &mut r).unwrap();
            d.start_offload(
                t(0),
                ProcId(p),
                60,
                SimDuration::from_secs(secs),
                Affinity::Unmanaged,
            )
            .unwrap();
        }
        let from_iter: Vec<_> = d.completions_iter().collect();
        assert_eq!(from_iter, d.completions());
        let procs: Vec<ProcId> = from_iter.iter().map(|&(p, _)| p).collect();
        assert_eq!(procs, vec![ProcId(1), ProcId(3), ProcId(4)]);
        let mut visited = Vec::new();
        d.for_each_completion(|p, at| visited.push((p, at)));
        assert_eq!(visited, from_iter);
    }

    #[test]
    fn oom_killer_terminates_random_victims_until_fit() {
        let mut d = dev();
        let mut r = rng();
        // Three processes each committing 3000 MB: 9000 > 7680 usable.
        d.attach(t(0), ProcId(1), 3000, 60, 3000, &mut r).unwrap();
        d.attach(t(0), ProcId(2), 3000, 60, 3000, &mut r).unwrap();
        let out = d.attach(t(0), ProcId(3), 3000, 60, 3000, &mut r).unwrap();
        match out {
            CommitOutcome::OomKilled(victims) => {
                assert_eq!(victims.len(), 1);
                assert_eq!(d.resident_count(), 2);
                assert!(d.committed_total_mb() <= d.config().usable_mem_mb());
                assert_eq!(d.oom_kills.get(), 1);
            }
            CommitOutcome::Fits => panic!("expected an OOM kill"),
        }
    }

    #[test]
    fn oom_victim_offload_is_aborted() {
        let mut d = dev();
        let mut r = rng();
        d.attach(t(0), ProcId(1), 7000, 240, 7000, &mut r).unwrap();
        d.start_offload(
            t(0),
            ProcId(1),
            240,
            SimDuration::from_secs(100),
            Affinity::Unmanaged,
        )
        .unwrap();
        d.attach(t(1), ProcId(2), 7000, 240, 0, &mut r).unwrap();
        // P2 commits 7000 MB → 14000 > 7680 → someone dies.
        let out = d.commit_memory(t(1), ProcId(2), 7000, &mut r).unwrap();
        let CommitOutcome::OomKilled(victims) = out else {
            panic!("expected an OOM kill");
        };
        assert_eq!(victims.len(), 1);
        for v in &victims {
            assert!(!d.is_resident(*v));
            assert!(!d.has_active_offload(*v));
        }
        assert!(d.committed_total_mb() <= 7680);
    }

    #[test]
    fn oom_victim_slot_goes_stale() {
        let mut d = dev();
        let mut r = rng();
        let (s1, _) = d
            .attach_slot(t(0), ProcId(1), 7000, 60, 7000, &mut r)
            .unwrap();
        let (s2, out) = d
            .attach_slot(t(0), ProcId(2), 7000, 60, 7000, &mut r)
            .unwrap();
        let CommitOutcome::OomKilled(victims) = out else {
            panic!("expected an OOM kill");
        };
        assert_eq!(victims.len(), 1);
        let (dead, live) = if victims[0] == ProcId(1) {
            (s1, s2)
        } else {
            (s2, s1)
        };
        assert!(!d.slot_is_live(dead));
        assert!(d.slot_is_live(live));
        assert_eq!(d.slot_of(victims[0]), None);
        // The surviving slot still drives the full offload lifecycle.
        d.start_offload_slot(
            t(1),
            live,
            60,
            SimDuration::from_secs(5),
            Affinity::Unmanaged,
        )
        .unwrap();
        d.finish_offload_slot(t(6), live).unwrap();
        d.detach_slot(t(6), live);
        assert_eq!(d.resident_count(), 0);
        assert_eq!(d.offloads_completed.get(), 1);
    }

    #[test]
    fn slot_api_matches_id_api() {
        let mut d = dev();
        let mut r = rng();
        let (slot, out) = d
            .attach_slot(t(0), ProcId(7), 1000, 120, 400, &mut r)
            .unwrap();
        assert_eq!(out, CommitOutcome::Fits);
        assert_eq!(d.slot_of(ProcId(7)), Some(slot));
        assert!(d.slot_is_live(slot));
        assert_eq!(
            d.commit_memory_slot(t(1), slot, 900, &mut r),
            CommitOutcome::Fits
        );
        assert_eq!(d.committed_total_mb(), 900);
        d.start_offload_slot(
            t(1),
            slot,
            120,
            SimDuration::from_secs(10),
            Affinity::Unmanaged,
        )
        .unwrap();
        assert_eq!(
            d.start_offload_slot(
                t(1),
                slot,
                120,
                SimDuration::from_secs(10),
                Affinity::Unmanaged
            ),
            Err(DeviceError::OffloadInProgress(ProcId(7)))
        );
        d.abort_offload_slot(t(2), slot).unwrap();
        assert_eq!(
            d.abort_offload_slot(t(2), slot),
            Err(DeviceError::NoActiveOffload(ProcId(7)))
        );
        d.detach_slot(t(3), slot);
        assert!(!d.slot_is_live(slot));
        assert_eq!(d.slot_of(ProcId(7)), None);
    }

    #[test]
    #[should_panic(expected = "stale handle")]
    fn detached_slot_panics_on_destructive_use() {
        let mut d = dev();
        let mut r = rng();
        let (slot, _) = d.attach_slot(t(0), ProcId(1), 100, 60, 0, &mut r).unwrap();
        d.detach_slot(t(1), slot);
        d.detach_slot(t(2), slot);
    }

    #[test]
    fn utilization_tracks_busy_threads_and_cores() {
        let mut d = dev();
        let mut r = rng();
        d.attach(t(0), ProcId(1), 1000, 120, 600, &mut r).unwrap();
        // 120 threads (half the device) busy for 10 s of a 20 s window.
        d.start_offload(
            t(0),
            ProcId(1),
            120,
            SimDuration::from_secs(10),
            Affinity::Unmanaged,
        )
        .unwrap();
        d.finish_offload(t(10), ProcId(1)).unwrap();
        let u = d.utilization(t(20));
        assert!(
            (u.thread_util - 0.25).abs() < 1e-9,
            "thread_util {}",
            u.thread_util
        );
        // 120 threads → 30 of 60 cores for half the window → 0.25.
        assert!(
            (u.core_util - 0.25).abs() < 1e-9,
            "core_util {}",
            u.core_util
        );
        assert!((u.busy_fraction - 0.5).abs() < 1e-9);
        assert!(u.mem_util > 0.0);
    }

    #[test]
    fn energy_integrates_idle_plus_busy_cores() {
        let mut d = dev();
        let mut r = rng();
        d.attach(t(0), ProcId(1), 1000, 240, 0, &mut r).unwrap();
        // All 60 cores busy for 10 s of a 20 s window.
        d.start_offload(
            t(0),
            ProcId(1),
            240,
            SimDuration::from_secs(10),
            Affinity::Unmanaged,
        )
        .unwrap();
        d.finish_offload(t(10), ProcId(1)).unwrap();
        let e = d.energy_joules(t(20));
        // 100 W idle × 20 s + 125 W dynamic × 10 busy-seconds.
        let expect = 100.0 * 20.0 + 125.0 * 10.0;
        assert!((e - expect).abs() < 1e-6, "energy {e}, expected {expect}");
        // An idle device draws idle power only.
        let idle = PhiDevice::new(PhiConfig::default(), PerfModel::default(), SimTime::ZERO);
        assert!((idle.energy_joules(t(10)) - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn abort_offload_removes_without_completion() {
        let mut d = dev();
        let mut r = rng();
        d.attach(t(0), ProcId(1), 100, 60, 0, &mut r).unwrap();
        d.start_offload(
            t(0),
            ProcId(1),
            60,
            SimDuration::from_secs(10),
            Affinity::Unmanaged,
        )
        .unwrap();
        d.abort_offload(t(3), ProcId(1)).unwrap();
        assert_eq!(d.active_offloads(), 0);
        assert_eq!(d.offloads_completed.get(), 0);
        assert_eq!(
            d.abort_offload(t(3), ProcId(1)),
            Err(DeviceError::NoActiveOffload(ProcId(1)))
        );
    }

    #[test]
    fn reset_tears_down_everything_but_keeps_history() {
        let mut d = dev();
        let mut r = rng();
        let (s1, _) = d
            .attach_slot(t(0), ProcId(1), 1000, 120, 400, &mut r)
            .unwrap();
        d.attach(t(0), ProcId(2), 500, 60, 200, &mut r).unwrap();
        d.start_offload(
            t(0),
            ProcId(1),
            120,
            SimDuration::from_secs(10),
            Affinity::Unmanaged,
        )
        .unwrap();
        d.finish_offload(t(10), ProcId(1)).unwrap();
        d.start_offload(
            t(10),
            ProcId(2),
            60,
            SimDuration::from_secs(10),
            Affinity::Unmanaged,
        )
        .unwrap();
        let gen = d.generation();
        d.reset(t(15));
        // The card is empty: no residents, no commits, no active offloads,
        // no predicted completions.
        assert_eq!(d.resident_count(), 0);
        assert_eq!(d.committed_total_mb(), 0);
        assert_eq!(d.declared_total_mb(), 0);
        assert_eq!(d.active_offloads(), 0);
        assert!(d.next_completion().is_none());
        // Slot handles from before the reset are all stale.
        assert!(!d.slot_is_live(s1));
        // Predictions from before the reset are invalidated.
        assert!(d.generation() > gen);
        // History survives the reboot: the completed-offload counter keeps
        // its count and the card accepts new work immediately.
        assert_eq!(d.offloads_completed.get(), 1);
        d.attach(t(16), ProcId(3), 100, 60, 0, &mut r).unwrap();
        assert_eq!(d.resident_count(), 1);
    }

    #[test]
    fn detach_aborts_active_offload() {
        let mut d = dev();
        let mut r = rng();
        d.attach(t(0), ProcId(1), 100, 60, 50, &mut r).unwrap();
        d.start_offload(
            t(0),
            ProcId(1),
            60,
            SimDuration::from_secs(10),
            Affinity::Unmanaged,
        )
        .unwrap();
        d.detach(t(2), ProcId(1)).unwrap();
        assert_eq!(d.active_offloads(), 0);
        assert_eq!(d.resident_count(), 0);
    }

    #[test]
    fn errors_on_missing_process() {
        let mut d = dev();
        assert_eq!(
            d.start_offload(
                t(0),
                ProcId(9),
                60,
                SimDuration::from_secs(1),
                Affinity::Unmanaged
            ),
            Err(DeviceError::NotResident(ProcId(9)))
        );
        assert_eq!(
            d.detach(t(0), ProcId(9)),
            Err(DeviceError::NotResident(ProcId(9)))
        );
        assert_eq!(
            d.finish_offload(t(0), ProcId(9)),
            Err(DeviceError::NoActiveOffload(ProcId(9)))
        );
    }

    #[test]
    fn completion_prediction_is_stable_without_changes() {
        let mut d = dev();
        let mut r = rng();
        d.attach(t(0), ProcId(1), 100, 60, 0, &mut r).unwrap();
        d.start_offload(
            t(0),
            ProcId(1),
            60,
            SimDuration::from_secs(7),
            Affinity::Unmanaged,
        )
        .unwrap();
        let c1 = d.completions();
        let c2 = d.completions();
        assert_eq!(c1, c2);
    }

    #[test]
    fn pinned_accounting_survives_slot_reuse() {
        let mut d = dev();
        let mut r = rng();
        let a = CoreSet::contiguous(0, 30);
        let b = CoreSet::contiguous(30, 30);
        d.attach(t(0), ProcId(1), 100, 120, 0, &mut r).unwrap();
        d.attach(t(0), ProcId(2), 100, 120, 0, &mut r).unwrap();
        d.start_offload(
            t(0),
            ProcId(1),
            120,
            SimDuration::from_secs(5),
            Affinity::Pinned(a),
        )
        .unwrap();
        d.start_offload(
            t(0),
            ProcId(2),
            120,
            SimDuration::from_secs(5),
            Affinity::Pinned(b),
        )
        .unwrap();
        // Detach P1 (slot freed, pinned set released) and reuse the slot.
        d.detach(t(1), ProcId(1)).unwrap();
        d.attach(t(1), ProcId(3), 100, 120, 0, &mut r).unwrap();
        // P1's cores are free again; P2's are still held.
        d.start_offload(
            t(1),
            ProcId(3),
            120,
            SimDuration::from_secs(5),
            Affinity::Pinned(a),
        )
        .unwrap();
        assert_eq!(
            d.start_offload(
                t(1),
                ProcId(3),
                120,
                SimDuration::from_secs(5),
                Affinity::Pinned(b)
            ),
            Err(DeviceError::OffloadInProgress(ProcId(3)))
        );
    }
}
