//! The map-backed device substrate, retained as a differential oracle.
//!
//! [`KeyedPhiDevice`] is the seed's `BTreeMap`-keyed implementation of the
//! device model, preserved verbatim when the production
//! [`PhiDevice`](crate::PhiDevice) moved to generation-stamped slab storage.
//! It exists so the substrate fast path can never drift silently: the
//! cluster runtime compiles against both (`SubstrateMode::Keyed`), and the
//! differential proptests assert bit-identical `ExperimentResult`s and
//! traces between them — the same discipline as the per-offload event
//! oracle (`run_naive_events`) and the naive serial planner.
//!
//! Do not optimize this module. Its cost model *is* the keyed-substrate
//! floor the `perf_e2e` bench gate measures against.

use crate::alloc::CoreSet;
use crate::config::PhiConfig;
use crate::device::{Affinity, CommitOutcome, DeviceError, DeviceUtilization, WORK_EPSILON};
use crate::perf::PerfModel;
use crate::proc::{ProcId, Resident};
use phishare_sim::{Counter, DetRng, SimDuration, SimTime, TimeWeighted};
use std::collections::BTreeMap;

/// One active (currently executing) offload.
#[derive(Debug, Clone)]
struct ActiveOffload {
    threads: u32,
    /// Nominal work remaining, in ticks at rate 1.
    remaining: f64,
    /// Current execution rate (nominal ticks per wall tick).
    rate: f64,
    affinity: Affinity,
}

/// The seed's map-backed simulated Xeon Phi card (differential oracle).
///
/// Keyed by [`ProcId`] throughout: every operation pays a `BTreeMap`
/// lookup. See the module docs for why this is kept.
#[derive(Debug)]
pub struct KeyedPhiDevice {
    cfg: PhiConfig,
    perf: PerfModel,
    procs: BTreeMap<ProcId, Resident>,
    active: BTreeMap<ProcId, ActiveOffload>,
    created: SimTime,
    last_update: SimTime,
    generation: u64,
    /// Environmental rate multiplier (thermal derate); `1.0` = nominal.
    rate_scale: f64,
    busy_threads: TimeWeighted,
    busy_cores: TimeWeighted,
    committed: TimeWeighted,
    busy_any: TimeWeighted,
    /// Processes killed by the OOM killer over the device's lifetime.
    pub oom_kills: Counter,
    /// Offloads that ran to completion.
    pub offloads_completed: Counter,
}

impl KeyedPhiDevice {
    /// Create a device at simulation time `start`.
    pub fn new(cfg: PhiConfig, perf: PerfModel, start: SimTime) -> Self {
        cfg.validate().expect("invalid device configuration");
        KeyedPhiDevice {
            cfg,
            perf,
            procs: BTreeMap::new(),
            active: BTreeMap::new(),
            created: start,
            last_update: start,
            generation: 0,
            rate_scale: 1.0,
            busy_threads: TimeWeighted::new(start),
            busy_cores: TimeWeighted::new(start),
            committed: TimeWeighted::new(start),
            busy_any: TimeWeighted::new(start),
            oom_kills: Counter::new(),
            offloads_completed: Counter::new(),
        }
    }

    /// The device's static configuration.
    pub fn config(&self) -> &PhiConfig {
        &self.cfg
    }

    /// Monotone counter bumped whenever execution rates may have changed.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Thermal derate: multiply every execution rate by `scale` from `now`
    /// on, bumping the generation. Mirrors `PhiDevice::set_rate_scale`
    /// (same IEEE operations, so timelines stay bit-identical).
    pub fn set_rate_scale(&mut self, now: SimTime, scale: f64) {
        debug_assert!(scale.is_finite() && scale > 0.0 && scale <= 1.0);
        self.rate_scale = scale;
        self.reschedule(now);
    }

    /// Attach a COI process with its declared envelope and an initial memory
    /// commit.
    pub fn attach(
        &mut self,
        now: SimTime,
        proc: ProcId,
        declared_mem_mb: u64,
        declared_threads: u32,
        initial_commit_mb: u64,
        rng: &mut DetRng,
    ) -> Result<CommitOutcome, DeviceError> {
        if self.procs.contains_key(&proc) {
            return Err(DeviceError::AlreadyResident(proc));
        }
        self.procs.insert(
            proc,
            Resident {
                declared_mem_mb,
                declared_threads,
                committed_mem_mb: 0,
            },
        );
        let outcome = self.commit_memory(now, proc, initial_commit_mb, rng);
        // Residency changed either way (attach, possibly minus OOM
        // victims): rates must be refreshed even when the commit fit.
        self.reschedule(now);
        outcome
    }

    /// Detach a process, freeing its memory and aborting any active offload.
    pub fn detach(&mut self, now: SimTime, proc: ProcId) -> Result<(), DeviceError> {
        if !self.procs.contains_key(&proc) {
            return Err(DeviceError::NotResident(proc));
        }
        self.active.remove(&proc);
        self.procs.remove(&proc);
        self.reschedule(now);
        Ok(())
    }

    /// Set a process's committed memory to `total_mb`, running the OOM
    /// killer when physical memory oversubscribes.
    pub fn commit_memory(
        &mut self,
        now: SimTime,
        proc: ProcId,
        total_mb: u64,
        rng: &mut DetRng,
    ) -> Result<CommitOutcome, DeviceError> {
        {
            let r = self
                .procs
                .get_mut(&proc)
                .ok_or(DeviceError::NotResident(proc))?;
            r.committed_mem_mb = total_mb;
        }
        let mut killed = Vec::new();
        while self.committed_total_mb() > self.cfg.usable_mem_mb() {
            let n = self.procs.len();
            debug_assert!(n > 0);
            // Uniform victim without materializing the id list (draws the
            // same index stream `choose` over a collected Vec would).
            let victim = self
                .resident_ids_iter()
                .nth(rng.index(n))
                .expect("resident set is non-empty");
            self.active.remove(&victim);
            self.procs.remove(&victim);
            self.oom_kills.incr();
            killed.push(victim);
        }
        if killed.is_empty() {
            // In-bounds commit: no rate change, no generation bump (see the
            // fast substrate's `commit_memory` for the full contract).
            self.advance_to(now);
            self.record_utilization(now);
            Ok(CommitOutcome::Fits)
        } else {
            self.reschedule(now);
            Ok(CommitOutcome::OomKilled(killed))
        }
    }

    /// Begin executing an offload.
    pub fn start_offload(
        &mut self,
        now: SimTime,
        proc: ProcId,
        threads: u32,
        work: SimDuration,
        affinity: Affinity,
    ) -> Result<(), DeviceError> {
        if !self.procs.contains_key(&proc) {
            return Err(DeviceError::NotResident(proc));
        }
        if self.active.contains_key(&proc) {
            return Err(DeviceError::OffloadInProgress(proc));
        }
        if let Affinity::Pinned(set) = affinity {
            for off in self.active.values() {
                if let Affinity::Pinned(existing) = off.affinity {
                    if !set.is_disjoint(existing) {
                        return Err(DeviceError::CoreOverlap(proc));
                    }
                }
            }
        }
        self.active.insert(
            proc,
            ActiveOffload {
                threads,
                remaining: work.ticks() as f64,
                rate: 1.0,
                affinity,
            },
        );
        self.reschedule(now);
        Ok(())
    }

    /// Complete an offload whose completion event just fired.
    pub fn finish_offload(&mut self, now: SimTime, proc: ProcId) -> Result<(), DeviceError> {
        self.advance_to(now);
        let off = self
            .active
            .get(&proc)
            .ok_or(DeviceError::NoActiveOffload(proc))?;
        debug_assert!(
            off.remaining <= off.rate + WORK_EPSILON,
            "finish_offload fired with {:.3} nominal ticks left (rate {:.4}): stale event?",
            off.remaining,
            off.rate
        );
        self.active.remove(&proc);
        self.offloads_completed.incr();
        self.reschedule(now);
        Ok(())
    }

    /// Abort an active offload.
    pub fn abort_offload(&mut self, now: SimTime, proc: ProcId) -> Result<(), DeviceError> {
        if self.active.remove(&proc).is_none() {
            return Err(DeviceError::NoActiveOffload(proc));
        }
        self.reschedule(now);
        Ok(())
    }

    /// MPSS crash/restart: tear everything down, keep history.
    pub fn reset(&mut self, now: SimTime) {
        self.active.clear();
        self.procs.clear();
        self.reschedule(now);
    }

    /// Predicted completion instants for all active offloads (allocates;
    /// this is the seed's per-offload scheduling API).
    pub fn completions(&self) -> Vec<(ProcId, SimTime)> {
        self.active
            .iter()
            .map(|(proc, off)| {
                let dt = (off.remaining / off.rate).ceil().max(0.0) as u64;
                (*proc, self.last_update + SimDuration::from_ticks(dt))
            })
            .collect()
    }

    /// The earliest predicted completion; ties go to the lowest [`ProcId`].
    pub fn next_completion(&self) -> Option<(ProcId, SimTime)> {
        let mut best: Option<(ProcId, SimTime)> = None;
        for (proc, off) in &self.active {
            let dt = (off.remaining / off.rate).ceil().max(0.0) as u64;
            let at = self.last_update + SimDuration::from_ticks(dt);
            if best.map(|(_, b)| at < b).unwrap_or(true) {
                best = Some((*proc, at));
            }
        }
        best
    }

    /// Integrate execution progress up to `now` and refresh all rates,
    /// bumping the generation.
    fn reschedule(&mut self, now: SimTime) {
        self.advance_to(now);
        let n_active = self.active.len();
        let n_resident = self.procs.len();
        let active_threads = self.active_threads();
        let hw = self.cfg.hw_threads();
        let perf = self.perf;
        perf.reshare_rates(
            n_active,
            n_resident,
            active_threads,
            hw,
            self.active
                .values_mut()
                .map(|off| (matches!(off.affinity, Affinity::Pinned(_)), &mut off.rate)),
        );
        if self.rate_scale != 1.0 {
            for off in self.active.values_mut() {
                off.rate *= self.rate_scale;
            }
        }
        self.generation += 1;
        self.record_utilization(now);
    }

    /// Integrate remaining work at current rates from `last_update` to `now`.
    fn advance_to(&mut self, now: SimTime) {
        let dt = now.since(self.last_update).ticks() as f64;
        if dt > 0.0 {
            for off in self.active.values_mut() {
                off.remaining = (off.remaining - off.rate * dt).max(0.0);
            }
            self.last_update = now;
        }
    }

    fn record_utilization(&mut self, now: SimTime) {
        let hw = self.cfg.hw_threads();
        let threads = self.active_threads().min(hw) as f64;
        if threads != self.busy_threads.value() {
            self.busy_threads.set(now, threads);
        }
        let cores = self.busy_core_estimate() as f64;
        if cores != self.busy_cores.value() {
            self.busy_cores.set(now, cores);
        }
        let committed = self.committed_total_mb() as f64;
        if committed != self.committed.value() {
            self.committed.set(now, committed);
        }
        let busy = if self.active.is_empty() { 0.0 } else { 1.0 };
        if busy != self.busy_any.value() {
            self.busy_any.set(now, busy);
        }
    }

    fn busy_core_estimate(&self) -> u32 {
        let mut pinned_union = CoreSet::EMPTY;
        let mut unmanaged_cores = 0u32;
        for off in self.active.values() {
            match off.affinity {
                Affinity::Pinned(set) => pinned_union = pinned_union.union(set),
                Affinity::Unmanaged => {
                    unmanaged_cores += self.cfg.cores_for_threads(off.threads);
                }
            }
        }
        (pinned_union.count() + unmanaged_cores).min(self.cfg.cores)
    }

    /// Number of resident COI processes.
    pub fn resident_count(&self) -> usize {
        self.procs.len()
    }

    /// True when `proc` is resident.
    pub fn is_resident(&self, proc: ProcId) -> bool {
        self.procs.contains_key(&proc)
    }

    /// True when `proc` has an active offload.
    pub fn has_active_offload(&self, proc: ProcId) -> bool {
        self.active.contains_key(&proc)
    }

    /// Resident process ids in ascending order, without allocating.
    pub fn resident_ids_iter(&self) -> impl Iterator<Item = ProcId> + '_ {
        self.procs.keys().copied()
    }

    /// Sum of declared memory over resident processes (MB).
    pub fn declared_total_mb(&self) -> u64 {
        self.procs.values().map(|r| r.declared_mem_mb).sum()
    }

    /// Declared memory still unbudgeted (MB).
    pub fn free_declared_mb(&self) -> u64 {
        self.cfg
            .usable_mem_mb()
            .saturating_sub(self.declared_total_mb())
    }

    /// Sum of committed memory over resident processes (MB).
    pub fn committed_total_mb(&self) -> u64 {
        self.procs.values().map(|r| r.committed_mem_mb).sum()
    }

    /// Sum of declared threads over resident processes.
    pub fn declared_threads(&self) -> u32 {
        self.procs.values().map(|r| r.declared_threads).sum()
    }

    /// Thread sum over *active* offloads.
    pub fn active_threads(&self) -> u32 {
        self.active.values().map(|o| o.threads).sum()
    }

    /// Number of active offloads.
    pub fn active_offloads(&self) -> usize {
        self.active.len()
    }

    /// Energy consumed by the card from creation through `end`, in joules.
    pub fn energy_joules(&self, end: SimTime) -> f64 {
        let elapsed = end.since(self.created).as_secs_f64();
        let busy_core_seconds = self.busy_cores.integral(end);
        self.cfg.idle_watts * elapsed
            + (self.cfg.max_watts - self.cfg.idle_watts) * busy_core_seconds / self.cfg.cores as f64
    }

    /// Time-integrated utilization from device creation through `end`.
    pub fn utilization(&self, end: SimTime) -> DeviceUtilization {
        let hw = self.cfg.hw_threads() as f64;
        let cores = self.cfg.cores as f64;
        let mem = self.cfg.usable_mem_mb() as f64;
        DeviceUtilization {
            thread_util: self.busy_threads.time_average(end) / hw,
            core_util: self.busy_cores.time_average(end) / cores,
            mem_util: self.committed.time_average(end) / mem,
            busy_fraction: self.busy_any.time_average(end),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyed_device_basic_lifecycle() {
        let mut d = KeyedPhiDevice::new(PhiConfig::default(), PerfModel::default(), SimTime::ZERO);
        let mut r = DetRng::from_seed(1);
        let t0 = SimTime::ZERO;
        assert_eq!(
            d.attach(t0, ProcId(1), 1000, 120, 400, &mut r).unwrap(),
            CommitOutcome::Fits
        );
        d.start_offload(
            t0,
            ProcId(1),
            120,
            SimDuration::from_secs(10),
            Affinity::Unmanaged,
        )
        .unwrap();
        assert_eq!(d.next_completion().unwrap().0, ProcId(1));
        d.finish_offload(SimTime::from_secs(10), ProcId(1)).unwrap();
        d.detach(SimTime::from_secs(10), ProcId(1)).unwrap();
        assert_eq!(d.resident_count(), 0);
        assert_eq!(d.offloads_completed.get(), 1);
    }
}
