//! # phishare-phi — the Xeon Phi coprocessor model
//!
//! A discrete-event model of one Intel Xeon Phi card as the paper describes
//! it (§II): ~60 in-order cores × 4 hardware threads, 8 GB of device memory
//! shared by user processes, the embedded Linux and its daemons, and a COI
//! process per offloading host job.
//!
//! The model reproduces the *phenomena the paper's scheduler exists to
//! manage*:
//!
//! * **Intermittent offloads** — a job's offloads run at an effective rate
//!   that the device recomputes whenever its active set changes
//!   (rate-rescaling discrete-event execution);
//! * **Thread oversubscription** (§II-C) — when the active offloads' thread
//!   sum exceeds the hardware's 240, every offload slows superlinearly
//!   (context-switch cost of the huge vector state; [6] reports up to 800 %);
//! * **Affinity conflicts** — unmanaged (raw-MPSS) offloads that overlap
//!   interfere even without oversubscription, because their thread
//!   placements collide; COSMIC-pinned offloads run on disjoint cores and do
//!   not;
//! * **Memory oversubscription** (§II-C) — commits beyond physical memory
//!   wake an OOM killer that terminates a random resident process;
//! * **Utilization accounting** — time-integrated busy-thread and busy-core
//!   signals, the measurement behind the paper's "only 38–50 % of cores are
//!   busy" motivation (§III).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod config;
pub mod device;
pub mod keyed;
pub mod perf;
pub mod proc;
pub mod sharing;

pub use alloc::{CoreAllocator, CoreSet};
pub use config::PhiConfig;
pub use device::{Affinity, CommitOutcome, DeviceUtilization, PhiDevice, ProcSlot};
pub use keyed::KeyedPhiDevice;
pub use perf::PerfModel;
pub use phishare_throughput::SharingCurve;
pub use proc::ProcId;
pub use sharing::{NaiveSharedDevice, SharedDevice, SharedThroughputDevice};
