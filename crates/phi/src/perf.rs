//! The coprocessor performance model.
//!
//! Calibration targets come from the paper and its COSMIC reference [6]:
//!
//! * thread oversubscription on the Phi costs "as much as 800 %" — we model
//!   the slowdown as `(Σthreads / hw_threads)^κ` for loads above 1, with
//!   κ = 3 so a 2× oversubscribed device runs each offload 8× slower;
//! * overlapping offloads *without* affinitization lose performance even
//!   under the thread limit, "since two offloads with conflicting affinities
//!   may overlap and use the same cores leaving other cores idle" (§IV-D2) —
//!   modelled as a per-extra-offload conflict penalty;
//! * COSMIC-pinned offloads on disjoint cores run at full rate.

use serde::{Deserialize, Serialize};

/// Tunable performance-model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerfModel {
    /// Exponent κ of the oversubscription slowdown `load^κ` (load > 1).
    pub oversub_exponent: f64,
    /// Extra slowdown per additional concurrently-active unmanaged offload:
    /// an unmanaged offload sharing the device with `n-1` others runs at
    /// `1 / (1 + conflict_penalty × (n-1))` of its pinned rate.
    pub conflict_penalty: f64,
    /// Multiprocessing overhead from *resident* COI processes beyond the
    /// [`PerfModel::resident_knee`]: every active offload runs at
    /// `1 / (1 + resident_penalty × max(0, n_res − knee)²)` of its solo
    /// rate. Resident processes contend for PCIe/DMA bandwidth (host↔device
    /// transfers happen between offloads), device memory bandwidth and the
    /// ring interconnect, and run COI daemon threads. COSMIC [6] reports
    /// multiprocessing gains that flatten and reverse beyond a handful of
    /// co-resident processes — the knee models that sweet spot. The term
    /// applies to COSMIC-pinned offloads too: affinitization removes *core*
    /// conflicts, not bandwidth sharing.
    pub resident_penalty: f64,
    /// Resident-process count up to which sharing is free of bandwidth
    /// contention.
    pub resident_knee: u32,
    /// Floor on any offload's rate, so pathological configurations cannot
    /// stall the simulation entirely.
    pub min_rate: f64,
}

impl Default for PerfModel {
    fn default() -> Self {
        PerfModel {
            oversub_exponent: 3.0,
            conflict_penalty: 0.15,
            resident_penalty: 0.007,
            resident_knee: 4,
            min_rate: 1e-3,
        }
    }
}

impl PerfModel {
    /// Device-wide slowdown factor from thread oversubscription.
    ///
    /// `1.0` when the active thread sum fits in hardware; grows as
    /// `load^κ` beyond that.
    pub fn oversub_factor(&self, active_threads: u32, hw_threads: u32) -> f64 {
        debug_assert!(hw_threads > 0);
        let load = active_threads as f64 / hw_threads as f64;
        if load <= 1.0 {
            1.0
        } else {
            load.powf(self.oversub_exponent)
        }
    }

    /// Rate of one active offload given the device state.
    ///
    /// * `pinned` — whether COSMIC affinitized this offload to private cores;
    /// * `n_active` — number of offloads currently active on the device;
    /// * `n_resident` — number of COI processes resident on the device;
    /// * `active_threads` — the active offloads' thread sum.
    pub fn offload_rate(
        &self,
        pinned: bool,
        n_active: usize,
        n_resident: usize,
        active_threads: u32,
        hw_threads: u32,
    ) -> f64 {
        debug_assert!(n_active >= 1);
        debug_assert!(n_resident >= n_active.min(1));
        let oversub = self.oversub_factor(active_threads, hw_threads);
        let conflict = if pinned {
            1.0
        } else {
            1.0 + self.conflict_penalty * (n_active as f64 - 1.0)
        };
        let excess = n_resident.saturating_sub(self.resident_knee as usize) as f64;
        let sharing = 1.0 + self.resident_penalty * excess * excess;
        (1.0 / (oversub * conflict * sharing)).max(self.min_rate)
    }

    /// Both rates a device state admits, as `(pinned, unmanaged)`.
    ///
    /// Every factor of [`PerfModel::offload_rate`] depends only on
    /// device-wide aggregates, never on the individual offload — all active
    /// offloads share one of exactly two rates. A reschedule therefore
    /// needs two rate computations, not one per offload. Bit-identical to
    /// calling `offload_rate` twice (the factor products are evaluated in
    /// the same order).
    pub fn offload_rates(
        &self,
        n_active: usize,
        n_resident: usize,
        active_threads: u32,
        hw_threads: u32,
    ) -> (f64, f64) {
        debug_assert!(n_active >= 1);
        let oversub = self.oversub_factor(active_threads, hw_threads);
        let excess = n_resident.saturating_sub(self.resident_knee as usize) as f64;
        let sharing = 1.0 + self.resident_penalty * excess * excess;
        let conflict = 1.0 + self.conflict_penalty * (n_active as f64 - 1.0);
        let pinned = (1.0 / (oversub * 1.0 * sharing)).max(self.min_rate);
        let unmanaged = (1.0 / (oversub * conflict * sharing)).max(self.min_rate);
        (pinned, unmanaged)
    }

    /// Rewrite every active offload's rate from device-wide aggregates —
    /// the shared reschedule body of both device implementations.
    ///
    /// `offloads` yields `(is_pinned, rate_slot)` per active offload; a
    /// no-op when `n_active == 0` (idle devices keep stale rates, exactly
    /// as the previous per-device copies did). This is the single entry
    /// point any degradation-function plumbing must go through.
    pub fn reshare_rates<'a>(
        &self,
        n_active: usize,
        n_resident: usize,
        active_threads: u32,
        hw_threads: u32,
        offloads: impl Iterator<Item = (bool, &'a mut f64)>,
    ) {
        if n_active == 0 {
            return;
        }
        let (rate_pinned, rate_unmanaged) =
            self.offload_rates(n_active, n_resident, active_threads, hw_threads);
        for (pinned, rate) in offloads {
            *rate = if pinned { rate_pinned } else { rate_unmanaged };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_oversubscription_runs_at_full_rate() {
        let m = PerfModel::default();
        assert_eq!(m.oversub_factor(240, 240), 1.0);
        assert_eq!(m.oversub_factor(0, 240), 1.0);
        assert_eq!(m.offload_rate(true, 1, 1, 240, 240), 1.0);
    }

    #[test]
    fn double_oversubscription_costs_8x() {
        let m = PerfModel::default();
        // The paper's [6] calibration point: ≈800 % at 2× thread load.
        // Two residents sit below the sharing knee, so the factor is pure
        // oversubscription.
        assert!((m.oversub_factor(480, 240) - 8.0).abs() < 1e-12);
        assert!((m.offload_rate(true, 2, 2, 480, 240) - 1.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn oversubscription_is_monotone() {
        let m = PerfModel::default();
        let mut last = 0.0;
        for t in (240..=960).step_by(60) {
            let f = m.oversub_factor(t, 240);
            assert!(f >= last);
            last = f;
        }
    }

    #[test]
    fn unmanaged_overlap_pays_conflict_penalty() {
        let m = PerfModel::default();
        let solo = m.offload_rate(false, 1, 1, 120, 240);
        let shared = m.offload_rate(false, 2, 2, 240, 240);
        assert_eq!(solo, 1.0);
        assert!((shared - 1.0 / 1.15).abs() < 1e-12);
    }

    #[test]
    fn pinned_offloads_do_not_conflict_on_cores() {
        let m = PerfModel::default();
        // Four pinned offloads from four residents: no core conflict, no
        // oversubscription, and four residents sit at the sharing knee —
        // full rate.
        assert_eq!(m.offload_rate(true, 4, 4, 240, 240), 1.0);
    }

    #[test]
    fn resident_processes_beyond_knee_contend_for_bandwidth() {
        let m = PerfModel::default();
        // One active offload, eight resident processes: the offload pays
        // for its neighbours' transfers and daemons, quadratically past
        // the knee (8 − 4 = 4 excess → 1 + γ·16).
        let expected = 1.0 / (1.0 + m.resident_penalty * 16.0);
        assert!((m.offload_rate(true, 1, 8, 120, 240) - expected).abs() < 1e-12);
        // The sweet spot is flat: 2 and 4 residents run equally fast.
        assert_eq!(m.offload_rate(true, 1, 2, 120, 240), 1.0);
        assert_eq!(m.offload_rate(true, 1, 4, 120, 240), 1.0);
    }

    #[test]
    fn memoized_rate_pair_is_bit_identical_to_per_offload_rates() {
        let m = PerfModel::default();
        for n_active in 1usize..=12 {
            for n_resident in n_active..=16 {
                for threads in [60u32, 240, 480, 960, 24_000] {
                    let (pinned, unmanaged) = m.offload_rates(n_active, n_resident, threads, 240);
                    assert_eq!(
                        pinned.to_bits(),
                        m.offload_rate(true, n_active, n_resident, threads, 240)
                            .to_bits(),
                        "pinned rate diverged at ({n_active}, {n_resident}, {threads})"
                    );
                    assert_eq!(
                        unmanaged.to_bits(),
                        m.offload_rate(false, n_active, n_resident, threads, 240)
                            .to_bits(),
                        "unmanaged rate diverged at ({n_active}, {n_resident}, {threads})"
                    );
                }
            }
        }
    }

    #[test]
    fn rate_never_drops_below_floor() {
        let m = PerfModel::default();
        let r = m.offload_rate(false, 100, 100, 24_000, 240);
        assert!(r >= m.min_rate);
    }
}
