//! Coprocessor-side processes (COI processes).
//!
//! For every host job that offloads, the COI middleware creates one process
//! on the card (§II-B). The device model tracks these processes — their
//! declared envelope and their actually-committed memory — independently of
//! cluster-level job identity, so the device crate stays free of scheduling
//! concepts. The cluster layer maps `JobId ↔ ProcId`.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a coprocessor-side (COI) process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProcId(pub u64);

impl ProcId {
    /// The raw integer id.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "coi{}", self.0)
    }
}

/// A process resident on the device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Resident {
    /// Memory the job *declared* it may use at most (MB). Schedulers budget
    /// against this.
    pub declared_mem_mb: u64,
    /// Threads the job declared it may spawn at most.
    pub declared_threads: u32,
    /// Memory the process has actually committed so far (MB). Grows over the
    /// process lifetime (§II-C: stacks and commits grow late); the *physical*
    /// constraint applies to this.
    pub committed_mem_mb: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(ProcId(3).to_string(), "coi3");
        assert_eq!(ProcId(3).raw(), 3);
    }

    #[test]
    fn resident_is_plain_data() {
        let r = Resident {
            declared_mem_mb: 1000,
            declared_threads: 120,
            committed_mem_mb: 400,
        };
        assert!(r.committed_mem_mb <= r.declared_mem_mb);
    }
}
