//! Property tests for the device model: arbitrary operation sequences must
//! preserve the physical invariants.

use phishare_phi::{
    Affinity, CommitOutcome, CoreSet, KeyedPhiDevice, PerfModel, PhiConfig, PhiDevice, ProcId,
};
use phishare_sim::{DetRng, SimDuration, SimTime};
use proptest::prelude::*;

/// One step of a random device workout.
#[derive(Debug, Clone)]
enum Op {
    Attach {
        proc: u64,
        declared_mb: u64,
        threads: u32,
        commit_mb: u64,
    },
    Commit {
        proc: u64,
        total_mb: u64,
    },
    StartOffload {
        proc: u64,
        threads: u32,
        work_secs: u64,
    },
    FinishEarliest,
    AbortOffload {
        proc: u64,
    },
    Detach {
        proc: u64,
    },
    Advance {
        secs: u64,
    },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..6, 100u64..4000, 1u32..=60, 0u64..4000).prop_map(
            |(proc, declared_mb, cores, commit_mb)| {
                Op::Attach {
                    proc,
                    declared_mb,
                    threads: cores * 4,
                    commit_mb,
                }
            }
        ),
        (0u64..6, 0u64..5000).prop_map(|(proc, total_mb)| Op::Commit { proc, total_mb }),
        (0u64..6, 1u32..=60, 1u64..30).prop_map(|(proc, cores, work_secs)| Op::StartOffload {
            proc,
            threads: cores * 4,
            work_secs
        }),
        Just(Op::FinishEarliest),
        (0u64..6).prop_map(|proc| Op::AbortOffload { proc }),
        (0u64..6).prop_map(|proc| Op::Detach { proc }),
        (1u64..20).prop_map(|secs| Op::Advance { secs }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Under any operation sequence: committed memory never exceeds
    /// physical memory (the OOM killer enforces it), the generation is
    /// monotone, utilization stays in range, and errors are returned
    /// rather than panicking.
    #[test]
    fn device_invariants_hold_under_random_ops(
        ops in prop::collection::vec(arb_op(), 1..60),
        seed in 0u64..1000,
    ) {
        let cfg = PhiConfig::default();
        let mut device = PhiDevice::new(cfg, PerfModel::default(), SimTime::ZERO);
        let mut rng = DetRng::from_seed(seed);
        let mut now = SimTime::ZERO;
        let mut last_generation = device.generation();

        for op in ops {
            match op {
                Op::Attach { proc, declared_mb, threads, commit_mb } => {
                    let _ = device.attach(now, ProcId(proc), declared_mb, threads, commit_mb, &mut rng);
                }
                Op::Commit { proc, total_mb } => {
                    let outcome = device.commit_memory(now, ProcId(proc), total_mb, &mut rng);
                    if let Ok(CommitOutcome::OomKilled(victims)) = outcome {
                        prop_assert!(!victims.is_empty());
                        for v in victims {
                            prop_assert!(!device.is_resident(v));
                        }
                    }
                }
                Op::StartOffload { proc, threads, work_secs } => {
                    let _ = device.start_offload(
                        now,
                        ProcId(proc),
                        threads,
                        SimDuration::from_secs(work_secs),
                        Affinity::Unmanaged,
                    );
                }
                Op::FinishEarliest => {
                    if let Some((proc, at)) = device.completions().into_iter().min_by_key(|(_, t)| *t) {
                        now = at.max(now);
                        let _ = device.finish_offload(now, proc);
                    }
                }
                Op::AbortOffload { proc } => {
                    let _ = device.abort_offload(now, ProcId(proc));
                }
                Op::Detach { proc } => {
                    let _ = device.detach(now, ProcId(proc));
                }
                Op::Advance { secs } => {
                    now += SimDuration::from_secs(secs);
                }
            }

            // --- invariants after every step ---
            prop_assert!(
                device.committed_total_mb() <= cfg.usable_mem_mb(),
                "physical memory oversubscribed: {}",
                device.committed_total_mb()
            );
            prop_assert!(device.generation() >= last_generation, "generation went backwards");
            last_generation = device.generation();
            prop_assert!(device.active_offloads() <= device.resident_count());
            let u = device.utilization(now + SimDuration::from_secs(1));
            prop_assert!((0.0..=1.0 + 1e-9).contains(&u.thread_util));
            prop_assert!((0.0..=1.0 + 1e-9).contains(&u.core_util));
            prop_assert!((0.0..=1.0 + 1e-9).contains(&u.busy_fraction));
            prop_assert!(device.energy_joules(now + SimDuration::from_secs(1)) >= 0.0);
            // Completion predictions are relative to the device's last
            // mutation; they never precede it. (The driving event loop
            // always delivers events at their predicted time, so `now`
            // advancing between mutations — as `Op::Advance` does here —
            // legitimately passes a pending prediction.)
            prop_assert_eq!(device.completions().len(), device.active_offloads());
            // The fast path's single prediction is always the per-offload
            // scheme's earliest event: min by (time, proc), because
            // per-offload events are pushed in ascending-proc order and
            // same-tick events fire in push order.
            let naive_next = device
                .completions()
                .into_iter()
                .min_by_key(|&(p, at)| (at, p));
            prop_assert_eq!(device.next_completion(), naive_next);
        }
    }

    /// Driving the device solely through `next_completion()` — the fast
    /// path's contract — under random mid-offload aborts: an aborted
    /// offload never surfaces as a live prediction, every survivor is
    /// delivered exactly once, and each delivery lands with its nominal
    /// work fully integrated (`finish_offload` debug-asserts the remaining
    /// work is below one tick's worth, so a prediction that lost progress
    /// would panic here).
    #[test]
    fn next_completion_drains_under_random_aborts(
        works in prop::collection::vec(1u64..50, 1..6),
        abort_mask in prop::collection::vec(any::<bool>(), 6),
        seed in 0u64..1000,
    ) {
        let cfg = PhiConfig::default();
        let mut device = PhiDevice::new(cfg, PerfModel::default(), SimTime::ZERO);
        let mut rng = DetRng::from_seed(seed);
        let n = works.len();
        for (i, w) in works.iter().enumerate() {
            device
                .attach(SimTime::ZERO, ProcId(i as u64), 200, 60, 50, &mut rng)
                .unwrap();
            device
                .start_offload(
                    SimTime::ZERO,
                    ProcId(i as u64),
                    60,
                    SimDuration::from_secs(*w),
                    Affinity::Unmanaged,
                )
                .unwrap();
        }

        // Abort the masked subset strictly before the earliest prediction.
        let first_at = device.next_completion().expect("offloads active").1;
        let mid = SimTime::from_ticks(first_at.ticks() / 2);
        let aborted: Vec<bool> = abort_mask.into_iter().take(n).collect();
        for (i, &kill) in aborted.iter().enumerate() {
            if kill {
                device.abort_offload(mid, ProcId(i as u64)).unwrap();
                prop_assert!(
                    device.completions().iter().all(|(p, _)| p.raw() != i as u64),
                    "aborted offload still predicted"
                );
            }
        }

        // Drain: deliver predictions one at a time, exactly as the
        // next-completion runtime does.
        let mut finished = 0usize;
        while let Some((proc, at)) = device.next_completion() {
            prop_assert!(
                !aborted[proc.raw() as usize],
                "aborted offload surfaced as a live prediction"
            );
            device.finish_offload(at, proc).unwrap();
            finished += 1;
            prop_assert!(finished <= n, "an offload was delivered twice");
        }

        let survivors = aborted.iter().filter(|a| !**a).count();
        prop_assert_eq!(finished, survivors);
        prop_assert_eq!(device.active_offloads(), 0);
        prop_assert_eq!(device.offloads_completed.get(), survivors as u64);
    }

    /// Work conservation for a solo pinned offload: completion time equals
    /// nominal work exactly, regardless of when progress is sampled.
    #[test]
    fn solo_offload_conserves_work(
        work_secs in 1u64..100,
        sample_points in prop::collection::vec(1u64..100, 0..5),
    ) {
        let cfg = PhiConfig::default();
        let mut device = PhiDevice::new(cfg, PerfModel::default(), SimTime::ZERO);
        let mut rng = DetRng::from_seed(1);
        device.attach(SimTime::ZERO, ProcId(1), 500, 240, 100, &mut rng).unwrap();
        device
            .start_offload(SimTime::ZERO, ProcId(1), 240, SimDuration::from_secs(work_secs), Affinity::Unmanaged)
            .unwrap();
        // Sampling (queries) between start and completion must not change
        // the prediction.
        let mut sorted = sample_points;
        sorted.sort_unstable();
        for s in sorted.iter().filter(|s| **s < work_secs) {
            let _ = device.utilization(SimTime::from_secs(*s));
            let comps = device.completions();
            prop_assert_eq!(comps[0].1, SimTime::from_secs(work_secs));
        }
        device.finish_offload(SimTime::from_secs(work_secs), ProcId(1)).unwrap();
        prop_assert_eq!(device.offloads_completed.get(), 1);
    }

    /// Differential oracle: the slab-backed fast device and the map-backed
    /// keyed device, driven through the identical operation sequence with
    /// identically-seeded RNGs, must agree *bit-for-bit* on every
    /// observable after every step — outcomes (including errors and OOM
    /// victim lists), completion predictions, resident sets, aggregate
    /// accounting, utilization integrals and energy. Pinned affinities are
    /// included so the incremental pinned-union bookkeeping is exercised
    /// across slot reuse.
    #[test]
    fn fast_and_keyed_devices_are_bit_identical(
        ops in prop::collection::vec(arb_op(), 1..80),
        pin_mask in prop::collection::vec(any::<bool>(), 80),
        seed in 0u64..1000,
    ) {
        let cfg = PhiConfig::default();
        let mut fast = PhiDevice::new(cfg, PerfModel::default(), SimTime::ZERO);
        let mut keyed = KeyedPhiDevice::new(cfg, PerfModel::default(), SimTime::ZERO);
        let mut rng_f = DetRng::from_seed(seed);
        let mut rng_k = DetRng::from_seed(seed);
        let mut now = SimTime::ZERO;

        for (step, op) in ops.into_iter().enumerate() {
            match op {
                Op::Attach { proc, declared_mb, threads, commit_mb } => {
                    let f = fast.attach(now, ProcId(proc), declared_mb, threads, commit_mb, &mut rng_f);
                    let k = keyed.attach(now, ProcId(proc), declared_mb, threads, commit_mb, &mut rng_k);
                    prop_assert_eq!(f, k);
                }
                Op::Commit { proc, total_mb } => {
                    let f = fast.commit_memory(now, ProcId(proc), total_mb, &mut rng_f);
                    let k = keyed.commit_memory(now, ProcId(proc), total_mb, &mut rng_k);
                    prop_assert_eq!(f, k);
                }
                Op::StartOffload { proc, threads, work_secs } => {
                    // Every sixth proc id gets a pinned set disjoint per id,
                    // gated by the mask, so pinned and unmanaged paths mix.
                    let affinity = if pin_mask[step % pin_mask.len()] {
                        Affinity::Pinned(CoreSet::contiguous((proc * 10) as u32, 10))
                    } else {
                        Affinity::Unmanaged
                    };
                    let f = fast.start_offload(now, ProcId(proc), threads, SimDuration::from_secs(work_secs), affinity);
                    let k = keyed.start_offload(now, ProcId(proc), threads, SimDuration::from_secs(work_secs), affinity);
                    prop_assert_eq!(f, k);
                }
                Op::FinishEarliest => {
                    let f_next = fast.next_completion();
                    prop_assert_eq!(f_next, keyed.next_completion());
                    if let Some((proc, at)) = f_next {
                        now = at.max(now);
                        prop_assert_eq!(fast.finish_offload(now, proc), keyed.finish_offload(now, proc));
                    }
                }
                Op::AbortOffload { proc } => {
                    prop_assert_eq!(
                        fast.abort_offload(now, ProcId(proc)),
                        keyed.abort_offload(now, ProcId(proc))
                    );
                }
                Op::Detach { proc } => {
                    prop_assert_eq!(
                        fast.detach(now, ProcId(proc)),
                        keyed.detach(now, ProcId(proc))
                    );
                }
                Op::Advance { secs } => {
                    now += SimDuration::from_secs(secs);
                }
            }

            // --- every observable agrees, bit-for-bit ---
            prop_assert_eq!(fast.resident_count(), keyed.resident_count());
            prop_assert_eq!(fast.active_offloads(), keyed.active_offloads());
            prop_assert_eq!(fast.committed_total_mb(), keyed.committed_total_mb());
            prop_assert_eq!(fast.declared_total_mb(), keyed.declared_total_mb());
            prop_assert_eq!(fast.free_declared_mb(), keyed.free_declared_mb());
            prop_assert_eq!(fast.declared_threads(), keyed.declared_threads());
            prop_assert_eq!(fast.active_threads(), keyed.active_threads());
            prop_assert_eq!(fast.oom_kills.get(), keyed.oom_kills.get());
            prop_assert_eq!(fast.offloads_completed.get(), keyed.offloads_completed.get());
            let fast_ids: Vec<ProcId> = fast.resident_ids_iter().collect();
            let keyed_ids: Vec<ProcId> = keyed.resident_ids_iter().collect();
            prop_assert_eq!(fast_ids, keyed_ids);
            prop_assert_eq!(fast.completions(), keyed.completions());
            prop_assert_eq!(fast.next_completion(), keyed.next_completion());
            let probe = now + SimDuration::from_secs(1);
            prop_assert_eq!(fast.utilization(probe), keyed.utilization(probe));
            prop_assert_eq!(
                fast.energy_joules(probe).to_bits(),
                keyed.energy_joules(probe).to_bits()
            );
        }

        // A full reset leaves both substrates equally empty.
        fast.reset(now);
        keyed.reset(now);
        prop_assert_eq!(fast.resident_count(), keyed.resident_count());
        prop_assert_eq!(fast.committed_total_mb(), 0);
        prop_assert_eq!(keyed.committed_total_mb(), 0);
    }
}
