//! The sharing engines: virtual-time activity sets with heap-scheduled
//! (fast) and recompute-all (oracle) completion tracking.
//!
//! Both engines share one representation — a global virtual clock `v`, a
//! common `rate`, and a fixed virtual finish mark `fin = v_join + work`
//! per activity — and one tick formula ([`ticks_until`]). They differ
//! *only* in bookkeeping:
//!
//! * [`HeapEngine`] keeps activities in an indexed binary min-heap keyed
//!   by `(fin, id)`. `advance` is O(1) (the time warp), `join`/`leave`
//!   are O(log n), `next_completion` reads the root and resolves
//!   same-tick ties with a pruned DFS over the (downward-closed) tie
//!   region.
//! * [`NaiveEngine`] rematerializes every activity's predicted completion
//!   tick on **every mutation** — join, leave, rate change and advance
//!   all pay O(n), exactly the recompute-all-residents cost the fast
//!   algorithm removes. Do not optimize it: its cost model *is* the
//!   `perf_throughput` gate's floor.
//!
//! The identical-expression discipline makes the two engines
//! bit-identical, which the crate's differential proptests assert over
//! randomized churn.

use std::collections::BTreeMap;

/// Ticks until an activity with virtual finish mark `fin` completes, when
/// the virtual clock reads `v` and advances at `rate` per wall tick.
///
/// This is the **single** completion formula both engines evaluate; the
/// `max(0.0)` clamp keeps remaining work non-negative even after the
/// clock overshoots a finish mark (completion events fire on whole-tick
/// boundaries, so a small overshoot is normal).
#[inline]
pub fn ticks_until(fin: f64, v: f64, rate: f64) -> u64 {
    ((fin - v).max(0.0) / rate).ceil().max(0.0) as u64
}

/// A fair-shared activity set under a common, externally-set rate.
///
/// The owner (a shared device model) is responsible for ordering:
/// `advance` to the current instant *before* any `set_rate`, `join` or
/// `leave`, mirroring the device models' advance-then-reschedule
/// discipline. Activity ids must be unique while joined.
pub trait SharingEngine: std::fmt::Debug {
    /// Fresh, empty engine at virtual time zero with unit rate.
    fn new() -> Self;

    /// Advance the virtual clock by `dt` wall ticks at the current rate.
    fn advance(&mut self, dt: f64);

    /// Replace the shared per-activity rate (the degradation curve's
    /// output). Callers must have advanced to the current instant first.
    fn set_rate(&mut self, rate: f64);

    /// The current shared per-activity rate.
    fn rate(&self) -> f64;

    /// Add an activity with `work` nominal ticks of remaining work.
    ///
    /// # Panics
    /// Panics if `id` is already joined.
    fn join(&mut self, id: u64, work: f64);

    /// Remove an activity, returning its remaining work (≥ 0).
    ///
    /// # Panics
    /// Panics if `id` is not joined.
    fn leave(&mut self, id: u64) -> f64;

    /// Remaining work of a joined activity (≥ 0), `None` otherwise.
    fn remaining(&self, id: u64) -> Option<f64>;

    /// Whether `id` is currently joined.
    fn contains(&self, id: u64) -> bool;

    /// Number of joined activities.
    fn len(&self) -> usize;

    /// True when no activity is joined.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every activity (device reset). The virtual clock and rate are
    /// left untouched — the warp continues for future tenants.
    fn clear(&mut self);

    /// The earliest predicted completion as `(id, ticks-from-now)`; ties
    /// on the tick go to the smallest id. `None` when empty.
    fn next_completion(&self) -> Option<(u64, u64)>;

    /// Visit every activity's predicted completion in ascending-id order.
    fn for_each_completion(&self, f: impl FnMut(u64, u64));
}

// ---------------------------------------------------------------------
// Naive oracle
// ---------------------------------------------------------------------

/// The recompute-all-residents oracle.
///
/// Every mutation rebuilds the full prediction table — the O(n) cost a
/// per-resident rate rewrite pays in a conventional sharing model. Kept
/// deliberately naive as the differential oracle and the
/// `perf_throughput` gate's cost floor (see module docs).
#[derive(Debug)]
pub struct NaiveEngine {
    v: f64,
    rate: f64,
    /// Activity id → virtual finish mark, ascending id.
    fins: BTreeMap<u64, f64>,
    /// Materialized predictions `(id, ticks)`, ascending id — rebuilt in
    /// full on every mutation.
    predicted: Vec<(u64, u64)>,
}

impl NaiveEngine {
    /// Rebuild the whole prediction table (the honest O(n) reshare).
    fn rematerialize(&mut self) {
        self.predicted.clear();
        for (&id, &fin) in &self.fins {
            self.predicted
                .push((id, ticks_until(fin, self.v, self.rate)));
        }
    }
}

impl SharingEngine for NaiveEngine {
    fn new() -> Self {
        NaiveEngine {
            v: 0.0,
            rate: 1.0,
            fins: BTreeMap::new(),
            predicted: Vec::new(),
        }
    }

    fn advance(&mut self, dt: f64) {
        self.v += self.rate * dt;
        self.rematerialize();
    }

    fn set_rate(&mut self, rate: f64) {
        self.rate = rate;
        self.rematerialize();
    }

    fn rate(&self) -> f64 {
        self.rate
    }

    fn join(&mut self, id: u64, work: f64) {
        let fin = self.v + work;
        assert!(
            self.fins.insert(id, fin).is_none(),
            "activity {id} joined twice"
        );
        self.rematerialize();
    }

    fn leave(&mut self, id: u64) -> f64 {
        let fin = self.fins.remove(&id).expect("leaving activity is joined");
        self.rematerialize();
        (fin - self.v).max(0.0)
    }

    fn remaining(&self, id: u64) -> Option<f64> {
        self.fins.get(&id).map(|fin| (fin - self.v).max(0.0))
    }

    fn contains(&self, id: u64) -> bool {
        self.fins.contains_key(&id)
    }

    fn len(&self) -> usize {
        self.fins.len()
    }

    fn clear(&mut self) {
        self.fins.clear();
        self.predicted.clear();
    }

    fn next_completion(&self) -> Option<(u64, u64)> {
        // Linear min-scan over the materialized table; ascending-id
        // iteration makes "ties to the smallest id" a strict `<`.
        let mut best: Option<(u64, u64)> = None;
        for &(id, ticks) in &self.predicted {
            if best.map(|(_, bt)| ticks < bt).unwrap_or(true) {
                best = Some((id, ticks));
            }
        }
        best
    }

    fn for_each_completion(&self, mut f: impl FnMut(u64, u64)) {
        for &(id, ticks) in &self.predicted {
            f(id, ticks);
        }
    }
}

// ---------------------------------------------------------------------
// Heap-scheduled fast engine
// ---------------------------------------------------------------------

/// One heap slot: an activity's fixed finish mark and id.
#[derive(Debug, Clone, Copy)]
struct Entry {
    fin: f64,
    id: u64,
}

impl Entry {
    /// Strict heap order by `(fin, id)`. Total: ids are unique and fins
    /// are finite.
    #[inline]
    fn before(&self, other: &Entry) -> bool {
        self.fin < other.fin || (self.fin == other.fin && self.id < other.id)
    }
}

/// The heap-scheduled fast engine.
///
/// An indexed binary min-heap over `(fin, id)` plus an id → slot position
/// map. Rescaling on membership change is the global time warp (`v`,
/// `rate`) — no per-activity state is ever rewritten after join.
#[derive(Debug)]
pub struct HeapEngine {
    v: f64,
    rate: f64,
    heap: Vec<Entry>,
    /// id → current heap index; also serves ascending-id iteration for
    /// [`SharingEngine::for_each_completion`].
    pos: BTreeMap<u64, usize>,
}

impl HeapEngine {
    /// Move the entry at `i` toward the root while it precedes its parent.
    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap[i].before(&self.heap[parent]) {
                self.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    /// Move the entry at `i` toward the leaves while a child precedes it.
    fn sift_down(&mut self, mut i: usize) {
        loop {
            let mut smallest = i;
            for child in [2 * i + 1, 2 * i + 2] {
                if child < self.heap.len() && self.heap[child].before(&self.heap[smallest]) {
                    smallest = child;
                }
            }
            if smallest == i {
                break;
            }
            self.swap(i, smallest);
            i = smallest;
        }
    }

    /// Swap two heap slots, keeping the position index coherent.
    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.pos.insert(self.heap[a].id, a);
        self.pos.insert(self.heap[b].id, b);
    }

    /// Min-id within the same-tick tie region containing the root.
    ///
    /// `ticks_until` is monotone in `fin`, so the set of entries whose
    /// tick equals the root's is downward-closed toward the root: a DFS
    /// can prune every subtree whose head already ticks later. O(ties).
    fn tie_min_id(&self, i: usize, tick: u64, best: &mut u64) {
        let e = &self.heap[i];
        if ticks_until(e.fin, self.v, self.rate) > tick {
            return;
        }
        if e.id < *best {
            *best = e.id;
        }
        let left = 2 * i + 1;
        if left < self.heap.len() {
            self.tie_min_id(left, tick, best);
        }
        let right = 2 * i + 2;
        if right < self.heap.len() {
            self.tie_min_id(right, tick, best);
        }
    }
}

impl SharingEngine for HeapEngine {
    fn new() -> Self {
        HeapEngine {
            v: 0.0,
            rate: 1.0,
            heap: Vec::new(),
            pos: BTreeMap::new(),
        }
    }

    fn advance(&mut self, dt: f64) {
        // The whole population progresses in one update: the time warp.
        self.v += self.rate * dt;
    }

    fn set_rate(&mut self, rate: f64) {
        // Heap order is by `fin`, which a rate change does not touch.
        self.rate = rate;
    }

    fn rate(&self) -> f64 {
        self.rate
    }

    fn join(&mut self, id: u64, work: f64) {
        let fin = self.v + work;
        let i = self.heap.len();
        self.heap.push(Entry { fin, id });
        assert!(
            self.pos.insert(id, i).is_none(),
            "activity {id} joined twice"
        );
        self.sift_up(i);
    }

    fn leave(&mut self, id: u64) -> f64 {
        let i = self.pos.remove(&id).expect("leaving activity is joined");
        let fin = self.heap[i].fin;
        let last = self.heap.len() - 1;
        if i != last {
            self.heap.swap(i, last);
            self.pos.insert(self.heap[i].id, i);
        }
        self.heap.pop();
        if i < self.heap.len() {
            // The transplanted entry may violate either direction.
            self.sift_down(i);
            self.sift_up(i);
        }
        (fin - self.v).max(0.0)
    }

    fn remaining(&self, id: u64) -> Option<f64> {
        self.pos
            .get(&id)
            .map(|&i| (self.heap[i].fin - self.v).max(0.0))
    }

    fn contains(&self, id: u64) -> bool {
        self.pos.contains_key(&id)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn clear(&mut self) {
        self.heap.clear();
        self.pos.clear();
    }

    fn next_completion(&self) -> Option<(u64, u64)> {
        let root = self.heap.first()?;
        let tick = ticks_until(root.fin, self.v, self.rate);
        // Distinct fins can round to the same tick; resolve the tie to
        // the smallest id so both engines (and both event-scheduling
        // schemes upstream) pick the same winner.
        let mut best = root.id;
        self.tie_min_id(0, tick, &mut best);
        Some((best, tick))
    }

    fn for_each_completion(&self, mut f: impl FnMut(u64, u64)) {
        for (&id, &i) in &self.pos {
            f(id, ticks_until(self.heap[i].fin, self.v, self.rate));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn both() -> (HeapEngine, NaiveEngine) {
        (HeapEngine::new(), NaiveEngine::new())
    }

    /// Assert the two engines agree bit-for-bit on every observable.
    fn assert_identical(h: &HeapEngine, n: &NaiveEngine, ids: &[u64]) {
        assert_eq!(h.len(), n.len());
        assert_eq!(h.next_completion(), n.next_completion());
        let mut hv = Vec::new();
        let mut nv = Vec::new();
        h.for_each_completion(|id, t| hv.push((id, t)));
        n.for_each_completion(|id, t| nv.push((id, t)));
        assert_eq!(hv, nv);
        for &id in ids {
            match (h.remaining(id), n.remaining(id)) {
                (Some(a), Some(b)) => assert_eq!(a.to_bits(), b.to_bits()),
                (a, b) => assert_eq!(a, b),
            }
        }
    }

    #[test]
    fn solo_activity_completes_at_nominal_ticks() {
        let (mut h, mut n) = both();
        h.join(7, 1000.0);
        n.join(7, 1000.0);
        assert_eq!(h.next_completion(), Some((7, 1000)));
        assert_eq!(n.next_completion(), Some((7, 1000)));
        h.advance(1000.0);
        n.advance(1000.0);
        assert_eq!(h.leave(7).to_bits(), 0.0f64.to_bits());
        assert_eq!(n.leave(7).to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn rate_change_warps_everyone_at_once() {
        let (mut h, mut n) = both();
        for id in 0..4u64 {
            h.join(id, 100.0 * (id + 1) as f64);
            n.join(id, 100.0 * (id + 1) as f64);
        }
        h.advance(50.0);
        n.advance(50.0);
        h.set_rate(0.5);
        n.set_rate(0.5);
        // Activity 0: 50 nominal ticks left at rate ½ → 100 wall ticks.
        assert_eq!(h.next_completion(), Some((0, 100)));
        assert_identical(&h, &n, &[0, 1, 2, 3]);
    }

    #[test]
    fn ties_resolve_to_smallest_id() {
        let (mut h, mut n) = both();
        // Joined in descending id order so heap structure can't cheat.
        for id in (0..8u64).rev() {
            h.join(id, 100.0);
            n.join(id, 100.0);
        }
        assert_eq!(h.next_completion(), Some((0, 100)));
        assert_eq!(n.next_completion(), Some((0, 100)));
        // Distinct fins rounding to the same tick still tie on the tick.
        let (mut h2, mut n2) = both();
        h2.set_rate(1.0);
        n2.set_rate(1.0);
        h2.join(5, 99.2);
        n2.join(5, 99.2);
        h2.join(2, 99.7);
        n2.join(2, 99.7);
        // Both ceil to 100 ticks → id 2 wins.
        assert_eq!(h2.next_completion(), Some((2, 100)));
        assert_eq!(n2.next_completion(), Some((2, 100)));
    }

    #[test]
    fn leave_from_the_middle_keeps_heap_coherent() {
        let (mut h, mut n) = both();
        let works = [500.0, 100.0, 300.0, 200.0, 400.0, 50.0, 250.0];
        for (id, &w) in works.iter().enumerate() {
            h.join(id as u64, w);
            n.join(id as u64, w);
        }
        let gone = h.leave(2);
        assert_eq!(gone.to_bits(), n.leave(2).to_bits());
        assert_identical(&h, &n, &[0, 1, 3, 4, 5, 6]);
        h.advance(60.0);
        n.advance(60.0);
        assert_eq!(h.next_completion(), n.next_completion());
        // 5 had 50 ticks of work; it is done (and clamped, not negative).
        assert_eq!(h.next_completion().unwrap().0, 5);
        assert_eq!(h.remaining(5), Some(0.0));
    }

    #[test]
    fn clear_drops_activities_but_keeps_the_warp() {
        let (mut h, mut n) = both();
        h.join(1, 100.0);
        n.join(1, 100.0);
        h.advance(40.0);
        n.advance(40.0);
        h.clear();
        n.clear();
        assert!(h.is_empty() && n.is_empty());
        assert_eq!(h.next_completion(), None);
        assert_eq!(n.next_completion(), None);
        h.join(2, 10.0);
        n.join(2, 10.0);
        assert_eq!(h.next_completion(), Some((2, 10)));
        assert_identical(&h, &n, &[2]);
    }

    #[test]
    #[should_panic(expected = "joined twice")]
    fn double_join_panics() {
        let mut h = HeapEngine::new();
        h.join(1, 10.0);
        h.join(1, 20.0);
    }

    #[test]
    #[should_panic(expected = "is joined")]
    fn leaving_unknown_activity_panics() {
        let mut h = HeapEngine::new();
        h.leave(9);
    }

    #[test]
    fn remaining_is_never_negative_after_overshoot() {
        let (mut h, mut n) = both();
        h.join(3, 10.4);
        n.join(3, 10.4);
        // Completion fires at ceil(10.4) = 11 ticks; the clock overshoots
        // the finish mark by 0.6 nominal ticks.
        h.advance(11.0);
        n.advance(11.0);
        assert_eq!(h.remaining(3), Some(0.0));
        assert_eq!(n.remaining(3), Some(0.0));
        assert_eq!(h.leave(3), 0.0);
        assert_eq!(n.leave(3), 0.0);
    }
}
