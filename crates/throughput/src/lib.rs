//! # phishare-throughput — generic throughput-sharing engine
//!
//! A resource executes a set of *activities* concurrently; every activity
//! receives the same share of the resource's total throughput, and the
//! total throughput is a pluggable *degradation curve* of the resident
//! count / thread load (dslab's throughput-sharing model — SNIPPETS.md
//! snippets 1–3). Membership churn (join/leave) recomputes the shared
//! rate, so the naive implementation touches every activity on every
//! change: O(n) per join/leave and O(n) per next-completion query.
//!
//! The fast algorithm removes both costs with a **virtual-time warp**:
//!
//! * a global virtual clock `v` advances as `v += rate × dt` — one f64
//!   fused-multiply-free update regardless of population;
//! * an activity joining with `work` nominal ticks is assigned the fixed
//!   virtual finish mark `fin = v + work`; its remaining work at any later
//!   instant is `fin − v`, so a rate change *re-warps every activity at
//!   once* without rewriting any per-activity state;
//! * a binary min-heap keyed by `(fin, id)` (with an id → slot position
//!   index for O(log n) removal) yields the next completion from the
//!   root. Join, leave and next-completion are all O(log n).
//!
//! [`NaiveEngine`] is the retained differential oracle: it stores the
//! *same* `(v, rate, fin)` representation and evaluates the *same*
//! arithmetic expressions, but rematerializes every activity's predicted
//! completion tick on every mutation — the honest recompute-all-residents
//! cost model the `perf_throughput` bench gate measures against. Because
//! both engines evaluate identical f64 expressions in identical order,
//! their timelines are **bit-identical**, which is what lets the
//! differential proptests (here and end-to-end under fault injection in
//! `tests/prop_chaos.rs`) demand exact equality rather than tolerance.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod curve;
pub mod engine;

pub use curve::SharingCurve;
pub use engine::{ticks_until, HeapEngine, NaiveEngine, SharingEngine};
