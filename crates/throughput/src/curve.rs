//! Degradation curves: total-throughput models for shared accelerators.
//!
//! A curve maps device-wide aggregates (active offloads, resident
//! processes, active thread sum, hardware threads) to the rate each
//! active offload runs at under fair sharing. The curve is the *only*
//! SKU-specific part of the shared-throughput device model: a Phi-style
//! card degrades through thread oversubscription and resident bandwidth
//! contention, a GPU-style card has no hardware-thread cap and degrades
//! only once concurrent kernels exceed its SM saturation point.

use serde::{Deserialize, Serialize};

/// How a shared device's per-activity rate degrades with load.
///
/// All activities on a shared-throughput device run at one common rate
/// (fair sharing); affinity is an admission concern, not a rate concern.
/// Every variant floors its rate at `min_rate` so pathological loads can
/// never stall the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SharingCurve {
    /// Xeon-Phi-shaped degradation: superlinear slowdown once the active
    /// thread sum oversubscribes the hardware threads (`load^κ`, §II-C),
    /// plus quadratic bandwidth contention from resident processes beyond
    /// a knee (PCIe/DMA, ring interconnect, COI daemons).
    Phi {
        /// Exponent κ of the oversubscription slowdown `load^κ` (load > 1).
        oversub_exponent: f64,
        /// Quadratic per-excess-resident bandwidth penalty.
        resident_penalty: f64,
        /// Resident count up to which sharing is contention-free.
        resident_knee: u32,
        /// Floor on the per-activity rate.
        min_rate: f64,
    },
    /// GPU-shaped degradation: **no hardware-thread cap** — the thread sum
    /// never oversubscribes. Throughput is flat until the number of
    /// concurrently active kernels exceeds the SM saturation point, then
    /// degrades as `(n_active / saturation)^tail`.
    GpuLike {
        /// Concurrent kernels the SMs absorb at full rate.
        saturation: u32,
        /// Exponent of the past-saturation slowdown.
        tail_exponent: f64,
        /// Floor on the per-activity rate.
        min_rate: f64,
    },
}

impl Default for SharingCurve {
    fn default() -> Self {
        SharingCurve::phi()
    }
}

impl SharingCurve {
    /// The Phi curve with the workspace's calibrated defaults (κ = 3 for
    /// the ~800 % oversubscription cost, knee of 4 residents).
    pub fn phi() -> Self {
        SharingCurve::Phi {
            oversub_exponent: 3.0,
            resident_penalty: 0.007,
            resident_knee: 4,
            min_rate: 1e-3,
        }
    }

    /// A GPU-like curve: 32 concurrent kernels at full rate, linear decay
    /// beyond.
    pub fn gpu_like() -> Self {
        SharingCurve::GpuLike {
            saturation: 32,
            tail_exponent: 1.0,
            min_rate: 1e-3,
        }
    }

    /// The rate every active offload runs at under this curve.
    ///
    /// * `n_active` — offloads currently executing (≥ 1);
    /// * `n_resident` — processes resident on the device;
    /// * `active_threads` — the active offloads' thread sum;
    /// * `hw_threads` — the device's hardware-thread count.
    pub fn per_activity_rate(
        &self,
        n_active: usize,
        n_resident: usize,
        active_threads: u32,
        hw_threads: u32,
    ) -> f64 {
        debug_assert!(n_active >= 1);
        match *self {
            SharingCurve::Phi {
                oversub_exponent,
                resident_penalty,
                resident_knee,
                min_rate,
            } => {
                debug_assert!(hw_threads > 0);
                let load = active_threads as f64 / hw_threads as f64;
                let oversub = if load <= 1.0 {
                    1.0
                } else {
                    load.powf(oversub_exponent)
                };
                let excess = n_resident.saturating_sub(resident_knee as usize) as f64;
                let sharing = 1.0 + resident_penalty * excess * excess;
                (1.0 / (oversub * sharing)).max(min_rate)
            }
            SharingCurve::GpuLike {
                saturation,
                tail_exponent,
                min_rate,
            } => {
                let crowd = n_active as f64 / saturation.max(1) as f64;
                let slowdown = if crowd <= 1.0 {
                    1.0
                } else {
                    crowd.powf(tail_exponent)
                };
                (1.0 / slowdown).max(min_rate)
            }
        }
    }

    /// Validate curve parameters.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            SharingCurve::Phi {
                oversub_exponent,
                resident_penalty,
                min_rate,
                ..
            } => {
                if !(oversub_exponent.is_finite() && oversub_exponent >= 0.0) {
                    return Err("Phi curve needs a finite non-negative exponent".into());
                }
                if !(resident_penalty.is_finite() && resident_penalty >= 0.0) {
                    return Err("Phi curve needs a finite non-negative resident penalty".into());
                }
                if !(min_rate.is_finite() && min_rate > 0.0) {
                    return Err("Phi curve needs a positive min_rate".into());
                }
            }
            SharingCurve::GpuLike {
                saturation,
                tail_exponent,
                min_rate,
            } => {
                if saturation == 0 {
                    return Err("GpuLike curve needs a positive saturation".into());
                }
                if !(tail_exponent.is_finite() && tail_exponent >= 0.0) {
                    return Err("GpuLike curve needs a finite non-negative tail exponent".into());
                }
                if !(min_rate.is_finite() && min_rate > 0.0) {
                    return Err("GpuLike curve needs a positive min_rate".into());
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phi_curve_matches_oversubscription_calibration() {
        let c = SharingCurve::phi();
        // At or under hardware capacity, below the knee: full rate.
        assert_eq!(c.per_activity_rate(1, 1, 240, 240), 1.0);
        assert_eq!(c.per_activity_rate(4, 4, 240, 240), 1.0);
        // 2× thread load → ~8× slowdown (κ = 3).
        assert!((c.per_activity_rate(2, 2, 480, 240) - 1.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn phi_curve_penalizes_residents_past_knee() {
        let c = SharingCurve::phi();
        let expected = 1.0 / (1.0 + 0.007 * 16.0);
        assert!((c.per_activity_rate(1, 8, 120, 240) - expected).abs() < 1e-12);
    }

    #[test]
    fn gpu_curve_ignores_thread_load() {
        let c = SharingCurve::gpu_like();
        // Thread sums far past any Phi budget stay at full rate.
        assert_eq!(c.per_activity_rate(8, 8, 50_000, 240), 1.0);
        // Degradation starts only past kernel saturation.
        assert_eq!(c.per_activity_rate(32, 32, 0, 240), 1.0);
        assert!((c.per_activity_rate(64, 64, 0, 240) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rates_never_drop_below_floor() {
        for c in [SharingCurve::phi(), SharingCurve::gpu_like()] {
            let r = c.per_activity_rate(10_000, 10_000, 10_000_000, 240);
            assert!(r >= 1e-3);
        }
    }

    #[test]
    fn validation_rejects_degenerate_curves() {
        let bad = SharingCurve::Phi {
            oversub_exponent: f64::NAN,
            resident_penalty: 0.0,
            resident_knee: 0,
            min_rate: 1e-3,
        };
        assert!(bad.validate().is_err());
        let bad = SharingCurve::GpuLike {
            saturation: 0,
            tail_exponent: 1.0,
            min_rate: 1e-3,
        };
        assert!(bad.validate().is_err());
        let bad = SharingCurve::GpuLike {
            saturation: 8,
            tail_exponent: 1.0,
            min_rate: 0.0,
        };
        assert!(bad.validate().is_err());
        assert!(SharingCurve::phi().validate().is_ok());
        assert!(SharingCurve::gpu_like().validate().is_ok());
    }
}
