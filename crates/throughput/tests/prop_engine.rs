//! Differential proptests: the heap-scheduled fast engine against the
//! naive recompute-all oracle under randomized membership churn.
//!
//! Because both engines share the `(v, rate, fin)` representation and the
//! [`phishare_throughput::ticks_until`] formula, every observable —
//! next-completion `(id, tick)` pairs, the full per-activity prediction
//! table, remaining work down to the bit pattern — must be *exactly*
//! equal, not merely close. Any divergence means the heap's bookkeeping
//! (sift, transplant, tie scan) dropped or duplicated an activity.

use phishare_throughput::{HeapEngine, NaiveEngine, SharingEngine};
use proptest::prelude::*;

/// One churn step against both engines.
#[derive(Debug, Clone)]
enum Op {
    /// Join a fresh activity with this many nominal ticks of work.
    Join(f64),
    /// Leave the k-th live activity (mod population), if any.
    Leave(usize),
    /// Replace the shared rate.
    SetRate(f64),
    /// Advance the wall clock.
    Advance(f64),
    /// Drop everything (device reset).
    Clear,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (1.0f64..50_000.0).prop_map(Op::Join),
        3 => (0usize..64).prop_map(Op::Leave),
        2 => (0.01f64..4.0).prop_map(Op::SetRate),
        3 => (0.0f64..10_000.0).prop_map(Op::Advance),
        1 => Just(Op::Clear),
    ]
}

/// Ids currently joined, ascending — read off the oracle's table.
fn live_ids(n: &NaiveEngine) -> Vec<u64> {
    let mut ids = Vec::new();
    n.for_each_completion(|id, _| ids.push(id));
    ids
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Randomized join/leave/rate-change/advance churn: bit-identical
    /// completion timelines and never-negative remaining work.
    #[test]
    fn heap_engine_is_bit_identical_to_naive_oracle(
        ops in prop::collection::vec(arb_op(), 1..120),
    ) {
        let mut heap = HeapEngine::new();
        let mut naive = NaiveEngine::new();
        let mut next_id = 0u64;

        for op in ops {
            match op {
                Op::Join(work) => {
                    heap.join(next_id, work);
                    naive.join(next_id, work);
                    next_id += 1;
                }
                Op::Leave(k) => {
                    let ids = live_ids(&naive);
                    if let Some(&id) = ids.get(k % ids.len().max(1)) {
                        let a = heap.leave(id);
                        let b = naive.leave(id);
                        prop_assert_eq!(a.to_bits(), b.to_bits());
                        prop_assert!(a >= 0.0);
                    }
                }
                Op::SetRate(r) => {
                    heap.set_rate(r);
                    naive.set_rate(r);
                }
                Op::Advance(dt) => {
                    heap.advance(dt);
                    naive.advance(dt);
                }
                Op::Clear => {
                    heap.clear();
                    naive.clear();
                }
            }

            // Every observable agrees after every step.
            prop_assert_eq!(heap.len(), naive.len());
            prop_assert_eq!(heap.next_completion(), naive.next_completion());
            let mut hv = Vec::new();
            let mut nv = Vec::new();
            heap.for_each_completion(|id, t| hv.push((id, t)));
            naive.for_each_completion(|id, t| nv.push((id, t)));
            prop_assert_eq!(&hv, &nv);
            for &(id, _) in &hv {
                let a = heap.remaining(id).unwrap();
                let b = naive.remaining(id).unwrap();
                prop_assert_eq!(a.to_bits(), b.to_bits());
                prop_assert!(a >= 0.0, "remaining work went negative for {}", id);
            }
        }
    }

    /// Draining by repeatedly advancing to the predicted next completion
    /// retires activities in the same order on both engines, and the
    /// retired activity always has zero remaining work.
    #[test]
    fn completion_order_matches_under_drain(
        works in prop::collection::vec(1.0f64..10_000.0, 1..48),
        rate in 0.05f64..4.0,
    ) {
        let mut heap = HeapEngine::new();
        let mut naive = NaiveEngine::new();
        heap.set_rate(rate);
        naive.set_rate(rate);
        for (id, &w) in works.iter().enumerate() {
            heap.join(id as u64, w);
            naive.join(id as u64, w);
        }
        while let Some((id, ticks)) = heap.next_completion() {
            prop_assert_eq!(Some((id, ticks)), naive.next_completion());
            heap.advance(ticks as f64);
            naive.advance(ticks as f64);
            prop_assert_eq!(heap.remaining(id), Some(0.0));
            let a = heap.leave(id);
            let b = naive.leave(id);
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        prop_assert!(naive.is_empty());
    }
}
