//! Cluster configuration.

use crate::fault::{FaultConfig, RecoveryConfig};
use crate::perturb::PerturbConfig;
use phishare_condor::MatchPath;
use phishare_core::{ClusterPolicy, KnapsackConfig};
use phishare_cosmic::CosmicConfig;
use phishare_phi::{PerfModel, PhiConfig, SharingCurve};
use phishare_sim::SimDuration;
use serde::{Deserialize, Serialize};
use std::str::FromStr;

/// Everything a device substrate needs to materialize one card: hardware
/// shape, the per-offload performance model (Phi substrates) and the
/// fair-sharing degradation curve (shared-throughput substrates).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Hardware shape (cores, threads, memory, power).
    pub phi: PhiConfig,
    /// Per-offload rate model used by the Phi device substrates.
    pub perf: PerfModel,
    /// Degradation curve used by the shared-throughput substrates.
    pub curve: SharingCurve,
}

impl DeviceSpec {
    /// Validate the spec.
    pub fn validate(&self) -> Result<(), String> {
        self.phi.validate()?;
        self.curve.validate()
    }
}

/// A named accelerator SKU the pool can instantiate per node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeviceSku {
    /// The paper's evaluation card (60 cores, 8 GB).
    Phi5110p,
    /// Top-end Phi generation (61 cores, 16 GB).
    Phi7120p,
    /// Budget Phi generation (57 cores, 6 GB).
    Phi3120a,
    /// GPU-shaped accelerator: 2048 hardware threads (no effective thread
    /// cap), 24 GB, kernel-saturation degradation curve.
    GpuLike,
}

impl DeviceSku {
    /// The full device spec for this SKU under the given perf model.
    pub fn spec(&self, perf: PerfModel) -> DeviceSpec {
        match self {
            DeviceSku::Phi5110p => DeviceSpec {
                phi: PhiConfig::phi_5110p(),
                perf,
                curve: SharingCurve::phi(),
            },
            DeviceSku::Phi7120p => DeviceSpec {
                phi: PhiConfig::phi_7120p(),
                perf,
                curve: SharingCurve::phi(),
            },
            DeviceSku::Phi3120a => DeviceSpec {
                phi: PhiConfig::phi_3120a(),
                perf,
                curve: SharingCurve::phi(),
            },
            DeviceSku::GpuLike => DeviceSpec {
                phi: PhiConfig::gpu_like(),
                perf,
                curve: SharingCurve::gpu_like(),
            },
        }
    }
}

/// Which cards the cluster's nodes carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum DevicePool {
    /// Every node carries the card described by `ClusterConfig::{phi,
    /// perf, curve}` — the paper's homogeneous testbed.
    #[default]
    Uniform,
    /// Even-numbered nodes carry this SKU instead; odd-numbered nodes keep
    /// the uniform card. The smallest heterogeneous pool that still
    /// exercises every per-node capacity path.
    Alternate(DeviceSku),
}

impl FromStr for DevicePool {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "uniform" => Ok(DevicePool::Uniform),
            "gpu-mix" => Ok(DevicePool::Alternate(DeviceSku::GpuLike)),
            "phi-mix" => Ok(DevicePool::Alternate(DeviceSku::Phi3120a)),
            "phi7120-mix" => Ok(DevicePool::Alternate(DeviceSku::Phi7120p)),
            other => Err(format!(
                "unknown device pool '{other}' (expected uniform, gpu-mix, phi-mix or phi7120-mix)"
            )),
        }
    }
}

/// Full description of one simulated cluster and its software stack.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of compute nodes.
    pub nodes: u32,
    /// Xeon Phi cards per node (1 in the paper's testbed).
    pub devices_per_node: u32,
    /// Condor slots per node (one per host core; the paper's nodes have two
    /// 8-core Xeons → 16).
    pub slots_per_node: u32,
    /// Host cores per node available to jobs' host phases. With the default
    /// (16, matching the slot count) hosts are never contended — the
    /// paper's §V-A assumption; lowering it makes jobs' host phases fair-
    /// share the cores, the caveat measured by `abl_host_contention`.
    pub host_cores_per_node: u32,
    /// Device hardware shape (the uniform card; see `pool`).
    pub phi: PhiConfig,
    /// Device performance model.
    pub perf: PerfModel,
    /// Fair-sharing degradation curve for the shared-throughput
    /// substrates (ignored by the per-offload Phi substrates).
    pub curve: SharingCurve,
    /// Which cards the nodes carry: `Uniform` reproduces the paper's
    /// homogeneous testbed, `Alternate(sku)` puts that SKU on
    /// even-numbered nodes.
    pub pool: DevicePool,
    /// Node middleware configuration (used by MCC / MCCK).
    pub cosmic: CosmicConfig,
    /// Which software stack runs the cluster.
    pub policy: ClusterPolicy,
    /// Gap between periodic Condor negotiation cycles.
    pub negotiation_interval: SimDuration,
    /// Which negotiation implementation cycles run. `Delta` (the default)
    /// does incremental delta-driven matchmaking; `Full` re-matches every
    /// pending job each cycle. Both are proptested bit-identical.
    pub negotiation: MatchPath,
    /// Latency of an *update-triggered* negotiation: when qedited job
    /// requirements reach the collector (e.g. after a completion-driven
    /// repack), Condor starts an extra cycle after this delay (§IV-D1:
    /// "triggered when the Condor collector obtains the changed job
    /// requirements"). This, plus `dispatch_delay`, is the integration
    /// overhead the paper attributes its high-skew degradation to.
    pub negotiation_trigger_delay: SimDuration,
    /// Shadow/starter latency between a match and the job actually starting
    /// on the node (file transfer + process spawn).
    pub dispatch_delay: SimDuration,
    /// MCCK scheduler configuration (ignored by MC / MCC).
    pub knapsack: KnapsackConfig,
    /// Fraction of a job's peak memory committed at attach time; the rest
    /// grows across its offloads (§II-C: commits and stacks grow late).
    pub initial_commit_fraction: f64,
    /// Failure-injection rates (all zero by default: nothing is injected
    /// and every timeline is untouched).
    pub faults: FaultConfig,
    /// What the stack does with jobs hit by an injected failure.
    pub recovery: RecoveryConfig,
    /// Chaos perturbation stack (all disabled by default: nothing is
    /// perturbed and every timeline is untouched).
    pub perturb: PerturbConfig,
    /// Collector partition count for partition-parallel matchmaking.
    /// `0` (the default) resolves at `World` construction time — the
    /// `PHISHARE_COLLECTOR_PARTITIONS` env override when set, else 1.
    /// Results are partition-count-invariant; only wall-clock changes.
    pub partitions: usize,
    /// Whether the runtime may skip provably quiescent negotiation cycles
    /// (on by default). Skipped cycles are counted in
    /// `ExperimentResult::cycles_skipped`; every other result field is
    /// bit-identical either way.
    pub skip_quiescent: bool,
    /// Master seed for all stochastic components of the *cluster* (workload
    /// seeds live in the workload itself).
    pub seed: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nodes: 8,
            devices_per_node: 1,
            slots_per_node: 16,
            host_cores_per_node: 16,
            phi: PhiConfig::default(),
            perf: PerfModel::default(),
            curve: SharingCurve::default(),
            pool: DevicePool::default(),
            cosmic: CosmicConfig::default(),
            policy: ClusterPolicy::Mcck,
            negotiation_interval: SimDuration::from_secs(10),
            negotiation: MatchPath::default(),
            negotiation_trigger_delay: SimDuration::from_secs(2),
            dispatch_delay: SimDuration::from_secs(1),
            knapsack: KnapsackConfig::default(),
            initial_commit_fraction: 0.3,
            faults: FaultConfig::default(),
            recovery: RecoveryConfig::default(),
            perturb: PerturbConfig::default(),
            partitions: 0,
            skip_quiescent: true,
            seed: 0,
        }
    }
}

impl ClusterConfig {
    /// The paper's 8-node evaluation cluster under the given policy.
    pub fn paper_cluster(policy: ClusterPolicy) -> Self {
        ClusterConfig {
            policy,
            ..ClusterConfig::default()
        }
    }

    /// Same stack, different node count (for footprint searches and the
    /// Fig. 9 size sweep).
    pub fn with_nodes(mut self, nodes: u32) -> Self {
        self.nodes = nodes;
        self
    }

    /// Replace the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Total devices in the cluster.
    pub fn total_devices(&self) -> u32 {
        self.nodes * self.devices_per_node
    }

    /// The device spec node `node` carries (nodes are numbered from 1).
    ///
    /// `Uniform` pools return the config's own `phi`/`perf`/`curve` for
    /// every node; `Alternate(sku)` pools swap that SKU in on
    /// even-numbered nodes, so any multi-node cluster mixes generations.
    pub fn spec_for_node(&self, node: u32) -> DeviceSpec {
        match self.pool {
            DevicePool::Uniform => DeviceSpec {
                phi: self.phi,
                perf: self.perf,
                curve: self.curve,
            },
            DevicePool::Alternate(sku) => {
                if node.is_multiple_of(2) {
                    sku.spec(self.perf)
                } else {
                    DeviceSpec {
                        phi: self.phi,
                        perf: self.perf,
                        curve: self.curve,
                    }
                }
            }
        }
    }

    /// The largest per-device usable memory any node offers — the up-front
    /// admission bound: a job is only hopeless when *no* card in the pool
    /// could ever hold it.
    pub fn max_usable_mem_mb(&self) -> u64 {
        (1..=self.nodes)
            .map(|node| self.spec_for_node(node).phi.usable_mem_mb())
            .max()
            .unwrap_or(0)
    }

    /// Validate the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes == 0 {
            return Err("cluster needs at least one node".into());
        }
        if self.devices_per_node == 0 {
            return Err("nodes need at least one Phi device".into());
        }
        if self.slots_per_node == 0 {
            return Err("nodes need at least one Condor slot".into());
        }
        if self.host_cores_per_node == 0 {
            return Err("nodes need at least one host core".into());
        }
        if !(0.0..=1.0).contains(&self.initial_commit_fraction) {
            return Err("initial_commit_fraction must be in [0, 1]".into());
        }
        self.phi.validate()?;
        self.curve.validate()?;
        if let DevicePool::Alternate(sku) = self.pool {
            sku.spec(self.perf).validate()?;
        }
        self.faults.validate()?;
        self.recovery.validate()?;
        self.perturb.validate()?;
        if self.negotiation_interval.is_zero() {
            return Err("negotiation interval must be positive".into());
        }
        if self.partitions > phishare_condor::collector::MAX_PARTITIONS {
            return Err(format!(
                "partitions must be <= {} (0 = resolve from env)",
                phishare_condor::collector::MAX_PARTITIONS
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_testbed() {
        let c = ClusterConfig::default();
        assert_eq!(c.nodes, 8);
        assert_eq!(c.devices_per_node, 1);
        assert_eq!(c.slots_per_node, 16);
        assert_eq!(c.total_devices(), 8);
        c.validate().unwrap();
    }

    #[test]
    fn builders() {
        let c = ClusterConfig::paper_cluster(ClusterPolicy::Mc)
            .with_nodes(5)
            .with_seed(9);
        assert_eq!(c.policy, ClusterPolicy::Mc);
        assert_eq!(c.nodes, 5);
        assert_eq!(c.seed, 9);
    }

    #[test]
    fn uniform_pool_gives_every_node_the_config_card() {
        let c = ClusterConfig::default();
        for node in 1..=c.nodes {
            let spec = c.spec_for_node(node);
            assert_eq!(spec.phi, c.phi);
            assert_eq!(spec.curve, c.curve);
        }
        assert_eq!(c.max_usable_mem_mb(), c.phi.usable_mem_mb());
    }

    #[test]
    fn alternate_pool_swaps_even_nodes() {
        let c = ClusterConfig {
            pool: DevicePool::Alternate(DeviceSku::GpuLike),
            ..ClusterConfig::default()
        };
        c.validate().unwrap();
        assert_eq!(c.spec_for_node(1).phi, c.phi);
        assert_eq!(c.spec_for_node(2).phi, PhiConfig::gpu_like());
        assert_eq!(c.spec_for_node(2).curve, SharingCurve::gpu_like());
        assert_eq!(c.spec_for_node(3).phi, c.phi);
        // The GPU card's 24 GB dominates the admission bound.
        assert_eq!(c.max_usable_mem_mb(), PhiConfig::gpu_like().usable_mem_mb());
    }

    #[test]
    fn device_pool_parses_from_cli_names() {
        assert_eq!(
            "uniform".parse::<DevicePool>().unwrap(),
            DevicePool::Uniform
        );
        assert_eq!(
            "gpu-mix".parse::<DevicePool>().unwrap(),
            DevicePool::Alternate(DeviceSku::GpuLike)
        );
        assert_eq!(
            "phi-mix".parse::<DevicePool>().unwrap(),
            DevicePool::Alternate(DeviceSku::Phi3120a)
        );
        assert!("warp-drive".parse::<DevicePool>().is_err());
    }

    #[test]
    fn validation_rejects_degenerate_clusters() {
        for f in [
            |c: &mut ClusterConfig| c.nodes = 0,
            |c: &mut ClusterConfig| c.devices_per_node = 0,
            |c: &mut ClusterConfig| c.slots_per_node = 0,
            |c: &mut ClusterConfig| c.host_cores_per_node = 0,
            |c: &mut ClusterConfig| c.initial_commit_fraction = 1.5,
            |c: &mut ClusterConfig| c.negotiation_interval = SimDuration::ZERO,
            |c: &mut ClusterConfig| c.partitions = 1000,
            |c: &mut ClusterConfig| c.faults.device_mtbf_secs = f64::NAN,
            |c: &mut ClusterConfig| {
                c.faults.node_mtbf_secs = 100.0;
                c.faults.node_downtime_secs = 0.0;
            },
            |c: &mut ClusterConfig| c.recovery.retry_base = SimDuration::ZERO,
            |c: &mut ClusterConfig| c.recovery.host_fallback_slowdown = 0.0,
            |c: &mut ClusterConfig| c.perturb.jitter_max_secs = f64::NAN,
            |c: &mut ClusterConfig| {
                c.perturb.derate.mean_gap_secs = 100.0;
                c.perturb.derate.factor = 2.0;
            },
            |c: &mut ClusterConfig| {
                c.perturb.latency.mean_gap_secs = 100.0;
                c.perturb.latency.extra_secs = 0.0;
            },
        ] {
            let mut c = ClusterConfig::default();
            f(&mut c);
            assert!(c.validate().is_err());
        }
    }
}
