//! Structured execution traces.
//!
//! When enabled, the runtime records every job-lifecycle transition with its
//! timestamp. Traces serialize to JSON (for external plotting) and render as
//! ASCII Gantt charts (for the examples) — the closest thing the simulator
//! has to the paper's Figs. 2–3 instrumentation of a real card.

use phishare_sim::SimTime;
use phishare_workload::JobId;
use serde::{Deserialize, Serialize};

/// Why a job was terminated early.
///
/// Serializes to the same lowercase strings the `reason: String` field
/// carried historically (`"container"` / `"oom"`), so traces recorded
/// before the enum are still readable — and recording a kill no longer
/// heap-allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillReason {
    /// COSMIC container: committed more than declared.
    Container,
    /// Device OOM killer: physical memory oversubscribed.
    Oom,
}

// Hand-rolled to keep the historical lowercase wire strings (the vendored
// derive has no `#[serde(rename_all)]` support).
impl Serialize for KillReason {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.to_string())
    }
}

impl Deserialize for KillReason {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        match v {
            serde::Value::Str(s) if s == "container" => Ok(KillReason::Container),
            serde::Value::Str(s) if s == "oom" => Ok(KillReason::Oom),
            other => Err(serde::Error::custom(format!(
                "invalid kill reason: {other:?}"
            ))),
        }
    }
}

impl std::fmt::Display for KillReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            KillReason::Container => "container",
            KillReason::Oom => "oom",
        })
    }
}

/// One recorded lifecycle event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// Job entered the queue.
    Submitted {
        /// The job.
        job: JobId,
        /// When.
        at: SimTime,
    },
    /// The cluster scheduler pinned the job to a node.
    Pinned {
        /// The job.
        job: JobId,
        /// Destination node.
        node: u32,
        /// When.
        at: SimTime,
    },
    /// The job started running on a node/device.
    Dispatched {
        /// The job.
        job: JobId,
        /// Node it runs on.
        node: u32,
        /// Device index on the node.
        device: u32,
        /// When.
        at: SimTime,
    },
    /// An offload began executing on the device.
    OffloadStarted {
        /// The job.
        job: JobId,
        /// Offload thread count.
        threads: u32,
        /// When.
        at: SimTime,
    },
    /// An offload was queued by COSMIC admission control.
    OffloadQueued {
        /// The job.
        job: JobId,
        /// When.
        at: SimTime,
    },
    /// An offload finished.
    OffloadFinished {
        /// The job.
        job: JobId,
        /// When.
        at: SimTime,
    },
    /// The job completed successfully.
    Completed {
        /// The job.
        job: JobId,
        /// When.
        at: SimTime,
    },
    /// The job was killed.
    Killed {
        /// The job.
        job: JobId,
        /// What terminated it.
        reason: KillReason,
        /// When.
        at: SimTime,
    },
    /// The job was vacated by a fault and returned to the queue with a
    /// backoff release delay.
    Requeued {
        /// The job.
        job: JobId,
        /// How many times the job has now been vacated (1-based).
        attempt: u32,
        /// When.
        at: SimTime,
    },
    /// The job's card reset under it; it degrades to host-only execution
    /// for the rest of its life.
    FallbackStarted {
        /// The job.
        job: JobId,
        /// Node it keeps running on.
        node: u32,
        /// When.
        at: SimTime,
    },
    /// The job exhausted its retries and was held for good.
    HeldMaxRetries {
        /// The job.
        job: JobId,
        /// When.
        at: SimTime,
    },
    /// A card crashed (MPSS reset); its node stays up.
    DeviceReset {
        /// Node owning the card.
        node: u32,
        /// Device index on the node.
        device: u32,
        /// When.
        at: SimTime,
    },
    /// A crashed card came back.
    DeviceRecovered {
        /// Node owning the card.
        node: u32,
        /// Device index on the node.
        device: u32,
        /// When.
        at: SimTime,
    },
    /// A node vanished (startd died); its ads were invalidated.
    NodeDown {
        /// The node.
        node: u32,
        /// When.
        at: SimTime,
    },
    /// A churned node rejoined and re-advertised.
    NodeUp {
        /// The node.
        node: u32,
        /// When.
        at: SimTime,
    },
}

impl TraceEvent {
    /// The job the event concerns; `None` for infrastructure events
    /// (device resets, node churn).
    pub fn job(&self) -> Option<JobId> {
        match self {
            TraceEvent::Submitted { job, .. }
            | TraceEvent::Pinned { job, .. }
            | TraceEvent::Dispatched { job, .. }
            | TraceEvent::OffloadStarted { job, .. }
            | TraceEvent::OffloadQueued { job, .. }
            | TraceEvent::OffloadFinished { job, .. }
            | TraceEvent::Completed { job, .. }
            | TraceEvent::Killed { job, .. }
            | TraceEvent::Requeued { job, .. }
            | TraceEvent::FallbackStarted { job, .. }
            | TraceEvent::HeldMaxRetries { job, .. } => Some(*job),
            TraceEvent::DeviceReset { .. }
            | TraceEvent::DeviceRecovered { .. }
            | TraceEvent::NodeDown { .. }
            | TraceEvent::NodeUp { .. } => None,
        }
    }

    /// The event's timestamp.
    pub fn at(&self) -> SimTime {
        match self {
            TraceEvent::Submitted { at, .. }
            | TraceEvent::Pinned { at, .. }
            | TraceEvent::Dispatched { at, .. }
            | TraceEvent::OffloadStarted { at, .. }
            | TraceEvent::OffloadQueued { at, .. }
            | TraceEvent::OffloadFinished { at, .. }
            | TraceEvent::Completed { at, .. }
            | TraceEvent::Killed { at, .. }
            | TraceEvent::Requeued { at, .. }
            | TraceEvent::FallbackStarted { at, .. }
            | TraceEvent::HeldMaxRetries { at, .. }
            | TraceEvent::DeviceReset { at, .. }
            | TraceEvent::DeviceRecovered { at, .. }
            | TraceEvent::NodeDown { at, .. }
            | TraceEvent::NodeUp { at, .. } => *at,
        }
    }
}

/// An offload execution interval extracted from a trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OffloadSpan {
    /// The job.
    pub job: JobId,
    /// Node it ran on.
    pub node: u32,
    /// Thread count.
    pub threads: u32,
    /// Start instant.
    pub start: SimTime,
    /// End instant.
    pub end: SimTime,
}

/// A recorded run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Events in chronological (simulation) order.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Create an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Append an event. Events must be recorded in simulation order.
    pub fn record(&mut self, event: TraceEvent) {
        debug_assert!(
            self.events
                .last()
                .map(|e| e.at() <= event.at())
                .unwrap_or(true),
            "trace events out of order"
        );
        self.events.push(event);
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Extract completed offload execution intervals, resolving each
    /// `OffloadStarted` against the matching `OffloadFinished`.
    pub fn offload_spans(&self) -> Vec<OffloadSpan> {
        use std::collections::BTreeMap;
        let mut node_of: BTreeMap<JobId, u32> = BTreeMap::new();
        let mut open: BTreeMap<JobId, (SimTime, u32)> = BTreeMap::new();
        let mut spans = Vec::new();
        for ev in &self.events {
            match ev {
                TraceEvent::Dispatched { job, node, .. } => {
                    node_of.insert(*job, *node);
                }
                TraceEvent::OffloadStarted { job, threads, at } => {
                    open.insert(*job, (*at, *threads));
                }
                TraceEvent::OffloadFinished { job, at } => {
                    if let Some((start, threads)) = open.remove(job) {
                        spans.push(OffloadSpan {
                            job: *job,
                            node: node_of.get(job).copied().unwrap_or(0),
                            threads,
                            start,
                            end: *at,
                        });
                    }
                }
                _ => {}
            }
        }
        spans
    }

    /// Render a per-node Gantt chart of offload activity over the trace's
    /// time span. Each node row shows the number of concurrently executing
    /// offloads (`.` idle, `1`–`9` offload count).
    pub fn node_gantt(&self, width: usize) -> String {
        let spans = self.offload_spans();
        let end = self
            .events
            .last()
            .map(|e| e.at().as_secs_f64())
            .unwrap_or(0.0);
        if spans.is_empty() || end == 0.0 {
            return String::from("(no offload activity)\n");
        }
        let nodes: std::collections::BTreeSet<u32> = spans.iter().map(|s| s.node).collect();
        let mut out = String::new();
        for node in nodes {
            // Sample true offload concurrency at each column's midpoint, so
            // a digit really means "this many offloads executing at once"
            // (not "this many spans touched the bucket").
            let mut counts = vec![0u32; width];
            for (i, c) in counts.iter_mut().enumerate() {
                let t = end * (i as f64 + 0.5) / width as f64;
                *c = spans
                    .iter()
                    .filter(|s| {
                        s.node == node && s.start.as_secs_f64() <= t && t < s.end.as_secs_f64()
                    })
                    .count() as u32;
            }
            let row: String = counts
                .iter()
                .map(|&c| match c {
                    0 => '.',
                    1..=9 => char::from_digit(c, 10).expect("single digit"),
                    _ => '+',
                })
                .collect();
            out.push_str(&format!("  node{node}: {row}\n"));
        }
        out
    }

    /// Peak concurrent offload thread sum observed on `node` (an event
    /// sweep over the extracted spans). The COSMIC safety property is
    /// `max_concurrent_threads(node) ≤ 240` for every node.
    pub fn max_concurrent_threads(&self, node: u32) -> u32 {
        let mut deltas: Vec<(u64, i64)> = Vec::new();
        for s in self.offload_spans().iter().filter(|s| s.node == node) {
            deltas.push((s.start.ticks(), s.threads as i64));
            deltas.push((s.end.ticks(), -(s.threads as i64)));
        }
        // Ends sort before starts at the same tick: a completing offload
        // frees its threads before a successor starts on that tick.
        deltas.sort_by_key(|(t, d)| (*t, *d));
        let mut current = 0i64;
        let mut peak = 0i64;
        for (_, d) in deltas {
            current += d;
            peak = peak.max(current);
        }
        peak.max(0) as u32
    }

    /// Nodes that executed at least one offload.
    pub fn nodes(&self) -> Vec<u32> {
        let set: std::collections::BTreeSet<u32> =
            self.offload_spans().iter().map(|s| s.node).collect();
        set.into_iter().collect()
    }

    /// Serialize the trace as JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("trace serialization cannot fail")
    }

    /// Deserialize a trace from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn sample() -> Trace {
        let mut tr = Trace::new();
        tr.record(TraceEvent::Submitted {
            job: JobId(1),
            at: t(0),
        });
        tr.record(TraceEvent::Pinned {
            job: JobId(1),
            node: 1,
            at: t(1),
        });
        tr.record(TraceEvent::Dispatched {
            job: JobId(1),
            node: 1,
            device: 0,
            at: t(2),
        });
        tr.record(TraceEvent::OffloadStarted {
            job: JobId(1),
            threads: 120,
            at: t(3),
        });
        tr.record(TraceEvent::OffloadFinished {
            job: JobId(1),
            at: t(8),
        });
        tr.record(TraceEvent::Completed {
            job: JobId(1),
            at: t(10),
        });
        tr
    }

    #[test]
    fn spans_pair_start_and_finish() {
        let spans = sample().offload_spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].job, JobId(1));
        assert_eq!(spans[0].node, 1);
        assert_eq!(spans[0].threads, 120);
        assert_eq!(spans[0].start, t(3));
        assert_eq!(spans[0].end, t(8));
    }

    #[test]
    fn gantt_shows_activity() {
        let g = sample().node_gantt(20);
        assert!(g.contains("node1:"));
        assert!(g.contains('1'), "{g}");
        assert!(g.contains('.'));
    }

    #[test]
    fn empty_trace_is_harmless() {
        let tr = Trace::new();
        assert!(tr.is_empty());
        assert!(tr.offload_spans().is_empty());
        assert_eq!(tr.node_gantt(10), "(no offload activity)\n");
    }

    #[test]
    fn json_round_trip() {
        let tr = sample();
        let back = Trace::from_json(&tr.to_json()).unwrap();
        assert_eq!(tr, back);
    }

    #[test]
    fn event_accessors() {
        let tr = sample();
        assert_eq!(tr.len(), 6);
        assert!(tr.events.iter().all(|e| e.job() == Some(JobId(1))));
        assert_eq!(tr.events[0].at(), t(0));
        // Infrastructure events concern no job but still carry a time.
        let infra = TraceEvent::DeviceReset {
            node: 3,
            device: 0,
            at: t(5),
        };
        assert_eq!(infra.job(), None);
        assert_eq!(infra.at(), t(5));
        assert_eq!(
            TraceEvent::NodeUp { node: 2, at: t(9) }.job(),
            None,
            "node churn events are infrastructure too"
        );
    }

    #[test]
    fn peak_concurrency_sweep() {
        let mut tr = Trace::new();
        tr.record(TraceEvent::Dispatched {
            job: JobId(1),
            node: 1,
            device: 0,
            at: t(0),
        });
        tr.record(TraceEvent::Dispatched {
            job: JobId(2),
            node: 1,
            device: 0,
            at: t(0),
        });
        tr.record(TraceEvent::OffloadStarted {
            job: JobId(1),
            threads: 120,
            at: t(1),
        });
        tr.record(TraceEvent::OffloadStarted {
            job: JobId(2),
            threads: 100,
            at: t(2),
        });
        tr.record(TraceEvent::OffloadFinished {
            job: JobId(1),
            at: t(4),
        });
        // Back-to-back at t=4: the free must land before the start.
        tr.record(TraceEvent::OffloadStarted {
            job: JobId(1),
            threads: 140,
            at: t(4),
        });
        tr.record(TraceEvent::OffloadFinished {
            job: JobId(2),
            at: t(5),
        });
        tr.record(TraceEvent::OffloadFinished {
            job: JobId(1),
            at: t(6),
        });
        assert_eq!(tr.max_concurrent_threads(1), 240);
        assert_eq!(tr.max_concurrent_threads(9), 0);
        assert_eq!(tr.nodes(), vec![1]);
    }

    #[test]
    fn unmatched_start_is_dropped() {
        let mut tr = Trace::new();
        tr.record(TraceEvent::OffloadStarted {
            job: JobId(2),
            threads: 60,
            at: t(1),
        });
        tr.record(TraceEvent::Killed {
            job: JobId(2),
            reason: KillReason::Oom,
            at: t(2),
        });
        assert!(tr.offload_spans().is_empty());
    }

    /// Every variant survives a JSON round trip, and [`KillReason`] keeps
    /// the lowercase wire format the old `reason: String` field used.
    #[test]
    fn every_variant_round_trips_through_json() {
        let mut tr = Trace::new();
        for (i, ev) in [
            TraceEvent::Submitted {
                job: JobId(1),
                at: t(0),
            },
            TraceEvent::Pinned {
                job: JobId(1),
                node: 2,
                at: t(1),
            },
            TraceEvent::Dispatched {
                job: JobId(1),
                node: 2,
                device: 1,
                at: t(2),
            },
            TraceEvent::OffloadStarted {
                job: JobId(1),
                threads: 120,
                at: t(3),
            },
            TraceEvent::OffloadQueued {
                job: JobId(3),
                at: t(4),
            },
            TraceEvent::OffloadFinished {
                job: JobId(1),
                at: t(5),
            },
            TraceEvent::Completed {
                job: JobId(1),
                at: t(6),
            },
            TraceEvent::Killed {
                job: JobId(3),
                reason: KillReason::Container,
                at: t(7),
            },
            TraceEvent::Killed {
                job: JobId(4),
                reason: KillReason::Oom,
                at: t(8),
            },
            TraceEvent::Requeued {
                job: JobId(5),
                attempt: 2,
                at: t(9),
            },
            TraceEvent::FallbackStarted {
                job: JobId(5),
                node: 1,
                at: t(10),
            },
            TraceEvent::HeldMaxRetries {
                job: JobId(5),
                at: t(11),
            },
            TraceEvent::DeviceReset {
                node: 1,
                device: 0,
                at: t(12),
            },
            TraceEvent::DeviceRecovered {
                node: 1,
                device: 0,
                at: t(13),
            },
            TraceEvent::NodeDown { node: 2, at: t(14) },
            TraceEvent::NodeUp { node: 2, at: t(15) },
        ]
        .into_iter()
        .enumerate()
        {
            tr.record(ev);
            // Each variant above must appear exactly once per index.
            assert_eq!(tr.len(), i + 1);
        }
        let json = tr.to_json();
        // Wire compatibility: kill reasons stay lowercase strings.
        assert!(json.contains(r#""reason":"container""#), "{json}");
        assert!(json.contains(r#""reason":"oom""#), "{json}");
        let back = Trace::from_json(&json).unwrap();
        assert_eq!(tr, back);
        // And the pre-enum wire format still parses.
        let legacy = r#"{"events":[{"Killed":{"job":9,"reason":"oom","at":42}}]}"#;
        let parsed = Trace::from_json(legacy).unwrap();
        assert_eq!(
            parsed.events[0],
            TraceEvent::Killed {
                job: JobId(9),
                reason: KillReason::Oom,
                at: SimTime::from_ticks(42),
            }
        );
    }
}
