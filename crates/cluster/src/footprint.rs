//! Coprocessor-footprint search (Tables II and III).
//!
//! The paper's footprint metric: the smallest cluster (number of Xeon
//! Phi-equipped nodes) on which a configuration achieves the *same makespan*
//! the baseline achieved on the full 8-node cluster. Because the sharing
//! configurations finish the job set faster per node, they can match the
//! baseline with fewer coprocessors — a direct cluster-size reduction for
//! coprocessor-intensive workloads.

use crate::config::ClusterConfig;
use crate::metrics::ExperimentResult;
use crate::runtime::Experiment;
use phishare_workload::Workload;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Result of a footprint search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FootprintResult {
    /// The makespan to match, seconds.
    pub target_makespan_secs: f64,
    /// Smallest node count whose makespan ≤ target (within tolerance), or
    /// `None` if even `max_nodes` missed it.
    pub nodes_required: Option<u32>,
    /// Every `(nodes, makespan_secs)` pair measured along the way — the raw
    /// series behind Fig. 9.
    pub curve: Vec<(u32, f64)>,
}

impl FootprintResult {
    /// Footprint reduction (in %) relative to a reference cluster size.
    pub fn reduction_vs(&self, reference_nodes: u32) -> Option<f64> {
        self.nodes_required
            .map(|n| 100.0 * (1.0 - n as f64 / reference_nodes as f64))
    }
}

/// A footprint searcher that memoizes per-node-count experiment results.
///
/// The makespan at a given cluster size is a pure function of `(base,
/// workload, nodes)` — simulations are deterministic — so a size simulated
/// once never needs to run again. Repeated searches over the same
/// configuration (different targets or tolerances, as in a sensitivity
/// sweep over Table II/III baselines) pay only for sizes not yet visited.
pub struct FootprintSearcher<'a> {
    base: &'a ClusterConfig,
    workload: &'a Workload,
    cache: BTreeMap<u32, ExperimentResult>,
    runs: u64,
}

impl<'a> FootprintSearcher<'a> {
    /// A searcher for `base` (its `nodes` field is overridden per probe)
    /// over `workload`.
    pub fn new(base: &'a ClusterConfig, workload: &'a Workload) -> Self {
        FootprintSearcher {
            base,
            workload,
            cache: BTreeMap::new(),
            runs: 0,
        }
    }

    /// Simulations actually executed (cache misses) so far.
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// The experiment result at `nodes`, simulating at most once per size.
    pub fn result_at(&mut self, nodes: u32) -> Result<&ExperimentResult, String> {
        if !self.cache.contains_key(&nodes) {
            let cfg = self.base.with_nodes(nodes);
            let result = Experiment::run(&cfg, self.workload)?;
            self.runs += 1;
            self.cache.insert(nodes, result);
        }
        Ok(self.cache.get(&nodes).expect("just inserted"))
    }

    /// Find the smallest cluster that matches `target_makespan_secs`.
    ///
    /// Walks node counts upward from 1 to `max_nodes`, running the full
    /// simulation at each size not already cached (the paper does the same:
    /// "we measure makespan on clusters of progressively increasing sizes",
    /// §V-B). `tolerance` is the fractional slack allowed over the target
    /// (0.0 = strict).
    pub fn search(
        &mut self,
        target_makespan_secs: f64,
        max_nodes: u32,
        tolerance: f64,
    ) -> Result<FootprintResult, String> {
        assert!(max_nodes >= 1);
        assert!(tolerance >= 0.0);
        let mut curve = Vec::new();
        let mut nodes_required = None;
        for nodes in 1..=max_nodes {
            let makespan_secs = self.result_at(nodes)?.makespan_secs;
            curve.push((nodes, makespan_secs));
            if nodes_required.is_none() && makespan_secs <= target_makespan_secs * (1.0 + tolerance)
            {
                nodes_required = Some(nodes);
                // Keep walking only if the caller wants the full curve;
                // stopping here keeps Table II cheap. Fig. 9 uses `sweep`
                // directly.
                break;
            }
        }
        Ok(FootprintResult {
            target_makespan_secs,
            nodes_required,
            curve,
        })
    }
}

/// One-shot [`FootprintSearcher::search`] (the Table II/III entry point).
pub fn footprint_search(
    base: &ClusterConfig,
    workload: &Workload,
    target_makespan_secs: f64,
    max_nodes: u32,
    tolerance: f64,
) -> Result<FootprintResult, String> {
    FootprintSearcher::new(base, workload).search(target_makespan_secs, max_nodes, tolerance)
}

#[cfg(test)]
mod tests {
    use super::*;
    use phishare_core::ClusterPolicy;
    use phishare_workload::{WorkloadBuilder, WorkloadKind};

    fn workload() -> Workload {
        WorkloadBuilder::new(WorkloadKind::Table1Mix)
            .count(40)
            .seed(11)
            .build()
    }

    #[test]
    fn sharing_needs_fewer_nodes_than_exclusive() {
        let wl = workload();
        let mut mc_cfg = ClusterConfig::paper_cluster(ClusterPolicy::Mc);
        mc_cfg.nodes = 4;
        mc_cfg.knapsack.window = 64;
        let mc = Experiment::run(&mc_cfg, &wl).unwrap();

        let mut mcck_cfg = ClusterConfig::paper_cluster(ClusterPolicy::Mcck);
        mcck_cfg.knapsack.window = 64;
        let fp = footprint_search(&mcck_cfg, &wl, mc.makespan_secs, 4, 0.0).unwrap();
        let needed = fp.nodes_required.expect("4 nodes must suffice");
        assert!(needed < 4, "MCCK needed {needed} nodes to match MC@4");
        assert!(fp.reduction_vs(4).unwrap() > 0.0);
    }

    #[test]
    fn unreachable_target_returns_none() {
        let wl = workload();
        let mut cfg = ClusterConfig::paper_cluster(ClusterPolicy::Mc);
        cfg.knapsack.window = 64;
        let fp = footprint_search(&cfg, &wl, 1.0, 2, 0.0).unwrap();
        assert_eq!(fp.nodes_required, None);
        assert_eq!(fp.curve.len(), 2);
    }

    #[test]
    fn searcher_never_simulates_a_size_twice() {
        let wl = workload();
        let mut cfg = ClusterConfig::paper_cluster(ClusterPolicy::Mcck);
        cfg.knapsack.window = 64;
        let mut searcher = FootprintSearcher::new(&cfg, &wl);

        // An unreachable target probes every size once.
        let miss = searcher.search(1.0, 3, 0.0).unwrap();
        assert_eq!(miss.nodes_required, None);
        assert_eq!(searcher.runs(), 3);

        // Re-searching with a different target touches only the cache.
        let hit = searcher.search(1e9, 3, 0.0).unwrap();
        assert_eq!(hit.nodes_required, Some(1));
        assert_eq!(searcher.runs(), 3, "second search must not re-simulate");

        // Raising the ceiling pays only for the sizes not yet visited.
        let widened = searcher.search(1.0, 4, 0.0).unwrap();
        assert_eq!(widened.curve.len(), 4);
        assert_eq!(searcher.runs(), 4);

        // Cached results match a fresh one-shot search exactly.
        let fresh = footprint_search(&cfg, &wl, 1.0, 4, 0.0).unwrap();
        assert_eq!(widened, fresh);
    }

    #[test]
    fn curve_is_recorded_up_to_the_hit() {
        let wl = workload();
        let mut cfg = ClusterConfig::paper_cluster(ClusterPolicy::Mcck);
        cfg.knapsack.window = 64;
        // A very loose target: one node suffices.
        let fp = footprint_search(&cfg, &wl, 1e9, 8, 0.0).unwrap();
        assert_eq!(fp.nodes_required, Some(1));
        assert_eq!(fp.curve.len(), 1);
    }
}
