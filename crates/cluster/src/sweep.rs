//! Parallel parameter-sweep harness.
//!
//! Each figure-scale experiment is a grid of *independent* simulations
//! (policy × distribution × cluster size × seed). Single simulations stay
//! single-threaded for determinism; the sweep fans the grid out over worker
//! threads with a crossbeam work channel, workers send `(index, outcome)`
//! back on a result channel, and the collector reassembles submission order
//! from the indices — so a sweep's output is as deterministic as a single
//! run, and no lock is ever contended (each result is touched by exactly
//! one worker and then the collector).
//!
//! For grids too large for one process, [`crate::shard`] fans the same
//! cells out over worker *processes*; both paths share [`run_cell`] and
//! the [`OrderedSlots`] merge, so the sharded output stays bit-identical
//! to the in-process one.

use crate::config::ClusterConfig;
use crate::metrics::ExperimentResult;
use crate::runtime::{Experiment, ExperimentScratch, SubstrateMode};
use phishare_workload::Workload;
use std::sync::Arc;

/// One cell of a sweep grid.
#[derive(Debug, Clone)]
pub struct SweepJob {
    /// Label reported back with the result (e.g. `"MCCK/normal/8"`).
    pub label: String,
    /// Cluster configuration for this cell.
    pub config: ClusterConfig,
    /// Workload for this cell (shared, not cloned, across cells).
    pub workload: Arc<Workload>,
}

/// The outcome of one sweep cell, as reported back to the caller.
pub type SweepOutcome = (String, Result<ExperimentResult, String>);

/// Run one sweep cell on the given substrate, recycling `scratch`.
///
/// The single worker body shared by every sweep mode — the in-process
/// workers of [`run_sweep`]/[`run_sweep_keyed`] and the per-process
/// workers of [`crate::shard`] all execute cells through here, so every
/// path gets scratch recycling and every path is bit-identical.
pub(crate) fn run_cell(
    job: &SweepJob,
    substrate: SubstrateMode,
    scratch: &mut ExperimentScratch,
) -> Result<ExperimentResult, String> {
    Experiment::run_with_substrate_scratch(&job.config, &job.workload, substrate, scratch)
}

/// Submission-order reassembly of indexed sweep outcomes.
///
/// Shared by the in-process collector and the sharded merge: inserting the
/// same index twice or finishing with a hole is a *hard* error in both, so
/// a completed merge proves every cell ran exactly once.
pub(crate) struct OrderedSlots {
    slots: Vec<Option<SweepOutcome>>,
}

impl OrderedSlots {
    pub(crate) fn new(n: usize) -> Self {
        Self {
            slots: (0..n).map(|_| None).collect(),
        }
    }

    /// Place `outcome` at `idx`; errors on an out-of-range or duplicate index.
    pub(crate) fn insert(&mut self, idx: usize, outcome: SweepOutcome) -> Result<(), String> {
        let n = self.slots.len();
        let slot = self
            .slots
            .get_mut(idx)
            .ok_or_else(|| format!("sweep cell index {idx} out of range for {n} cells"))?;
        if slot.is_some() {
            return Err(format!("sweep cell {idx} ran twice"));
        }
        *slot = Some(outcome);
        Ok(())
    }

    /// Consume the slots; errors if any cell never reported a result.
    pub(crate) fn finish(self) -> Result<Vec<SweepOutcome>, String> {
        self.slots
            .into_iter()
            .enumerate()
            .map(|(idx, slot)| slot.ok_or_else(|| format!("sweep cell {idx} never ran")))
            .collect()
    }
}

/// Run every job in the grid, using up to `threads` worker threads.
/// Results come back in the same order as `jobs`.
///
/// Each worker owns one [`ExperimentScratch`] and recycles its event heap
/// and grant buffers across the cells it processes — steady-state cells
/// allocate O(1), and recycling is asserted bit-identical to fresh runs.
pub fn run_sweep(jobs: Vec<SweepJob>, threads: usize) -> Vec<SweepOutcome> {
    sweep_inner(jobs, threads, SubstrateMode::Fast)
}

/// [`run_sweep`] on the seed's keyed substrate ([`SubstrateMode::Keyed`]),
/// with the same per-worker scratch recycling as the fast path.
///
/// The differential oracle and the timing floor for the `perf_e2e` bench
/// gate: its results must be bit-identical to [`run_sweep`]'s.
pub fn run_sweep_keyed(jobs: Vec<SweepJob>, threads: usize) -> Vec<SweepOutcome> {
    sweep_inner(jobs, threads, SubstrateMode::Keyed)
}

/// [`run_sweep`] on an explicitly chosen substrate, sized to the machine
/// like [`run_sweep_auto`]. The heterogeneous-SKU experiments run their
/// grids on [`SubstrateMode::Shared`] through this.
pub fn run_sweep_substrate_auto(
    jobs: Vec<SweepJob>,
    substrate: SubstrateMode,
) -> Vec<SweepOutcome> {
    sweep_inner(jobs, default_threads(), substrate)
}

fn sweep_inner(jobs: Vec<SweepJob>, threads: usize, substrate: SubstrateMode) -> Vec<SweepOutcome> {
    assert!(threads >= 1, "need at least one worker");
    let n = jobs.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.min(n);

    let (tx, rx) = crossbeam::channel::unbounded::<(usize, SweepJob)>();
    for item in jobs.into_iter().enumerate() {
        tx.send(item).expect("open channel");
    }
    drop(tx);

    type Outcome = (usize, String, Result<ExperimentResult, String>);
    let (res_tx, res_rx) = crossbeam::channel::unbounded::<Outcome>();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let rx = rx.clone();
            let res_tx = res_tx.clone();
            scope.spawn(move || {
                let mut scratch = ExperimentScratch::new();
                while let Ok((idx, job)) = rx.recv() {
                    let outcome = run_cell(&job, substrate, &mut scratch);
                    res_tx
                        .send((idx, job.label, outcome))
                        .expect("open channel");
                }
            });
        }
    });
    drop(res_tx);

    // All workers have exited the scope; the indexed results reassemble
    // submission order regardless of which worker finished when.
    let mut slots = OrderedSlots::new(n);
    for (idx, label, outcome) in res_rx.iter() {
        slots
            .insert(idx, (label, outcome))
            .expect("in-process sweep delivered a duplicate cell");
    }
    slots
        .finish()
        .expect("every sweep cell reports exactly once")
}

/// [`run_sweep`] sized to the machine: worker count from
/// [`std::thread::available_parallelism`] via [`default_threads`]. The
/// bench harness entry point — benches should not hand-pick thread counts.
pub fn run_sweep_auto(jobs: Vec<SweepJob>) -> Vec<SweepOutcome> {
    run_sweep(jobs, default_threads())
}

/// Default worker count: the `PHISHARE_SWEEP_THREADS` environment variable
/// when set to a positive integer, otherwise physical parallelism minus
/// one, at least one.
pub fn default_threads() -> usize {
    let raw = std::env::var("PHISHARE_SWEEP_THREADS").ok();
    threads_override(raw.as_deref()).unwrap_or_else(auto_threads)
}

/// Parse a thread-count override (the value of `PHISHARE_SWEEP_THREADS`).
/// Returns `None` for absent, non-numeric, or non-positive values — the
/// caller falls back to machine sizing. Injectable so the parse rules are
/// testable without mutating process-global environment state.
pub fn threads_override(raw: Option<&str>) -> Option<usize> {
    raw.and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
}

fn auto_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().saturating_sub(1).max(1))
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use phishare_core::ClusterPolicy;
    use phishare_workload::{WorkloadBuilder, WorkloadKind};

    fn grid() -> Vec<SweepJob> {
        let wl = Arc::new(
            WorkloadBuilder::new(WorkloadKind::Table1Mix)
                .count(20)
                .seed(13)
                .build(),
        );
        ClusterPolicy::ALL
            .iter()
            .flat_map(|&policy| {
                [2u32, 4].into_iter().map({
                    let wl = Arc::clone(&wl);
                    move |nodes| {
                        let mut config = ClusterConfig::paper_cluster(policy).with_nodes(nodes);
                        config.knapsack.window = 64;
                        SweepJob {
                            label: format!("{policy}/{nodes}"),
                            config,
                            workload: Arc::clone(&wl),
                        }
                    }
                })
            })
            .collect()
    }

    #[test]
    fn sweep_matches_serial_execution() {
        let parallel = run_sweep(grid(), 4);
        let serial = run_sweep(grid(), 1);
        assert_eq!(parallel.len(), 6);
        for ((pl, pr), (sl, sr)) in parallel.iter().zip(serial.iter()) {
            assert_eq!(pl, sl);
            assert_eq!(pr, sr, "parallel and serial sweeps diverged on {pl}");
        }
    }

    #[test]
    fn labels_preserve_order() {
        let out = run_sweep(grid(), 3);
        let labels: Vec<&str> = out.iter().map(|(l, _)| l.as_str()).collect();
        assert_eq!(
            labels,
            vec!["MC/2", "MC/4", "MCC/2", "MCC/4", "MCCK/2", "MCCK/4"]
        );
    }

    #[test]
    fn empty_grid_is_fine() {
        assert!(run_sweep(Vec::new(), 4).is_empty());
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn keyed_sweep_matches_fast_sweep() {
        let fast = run_sweep(grid(), 3);
        let keyed = run_sweep_keyed(grid(), 3);
        for ((fl, fr), (kl, kr)) in fast.iter().zip(keyed.iter()) {
            assert_eq!(fl, kl);
            assert_eq!(fr, kr, "substrates diverged on {fl}");
        }
    }

    #[test]
    fn threads_override_parses_without_env() {
        // The parse rules, exercised through the injectable parameter —
        // no process-global environment mutation required.
        assert_eq!(threads_override(Some("3")), Some(3));
        assert_eq!(threads_override(Some("  8 ")), Some(8));
        assert_eq!(threads_override(Some("0")), None, "0 falls back to auto");
        assert_eq!(threads_override(Some("not-a-number")), None);
        assert_eq!(threads_override(Some("-2")), None);
        assert_eq!(threads_override(None), None);
    }

    #[test]
    fn sweep_threads_env_override_is_honored() {
        // The one test that really mutates the variable, serialized behind
        // the crate-wide env lock so no concurrent test observes the write.
        let _guard = phishare_test_util::env_lock();
        std::env::set_var("PHISHARE_SWEEP_THREADS", "3");
        assert_eq!(default_threads(), 3);
        std::env::remove_var("PHISHARE_SWEEP_THREADS");
        assert_eq!(default_threads(), auto_threads());
    }

    #[test]
    fn ordered_slots_rejects_duplicates_and_holes() {
        let ok = |label: &str| (label.to_string(), Err::<ExperimentResult, _>("x".into()));
        let mut slots = OrderedSlots::new(2);
        slots.insert(1, ok("b")).unwrap();
        assert!(slots.insert(1, ok("b2")).unwrap_err().contains("twice"));
        assert!(slots
            .insert(5, ok("z"))
            .unwrap_err()
            .contains("out of range"));
        // Hole at index 0 is a hard error on finish.
        assert!(slots.finish().unwrap_err().contains("never ran"));

        let mut slots = OrderedSlots::new(2);
        slots.insert(1, ok("b")).unwrap();
        slots.insert(0, ok("a")).unwrap();
        let merged = slots.finish().unwrap();
        assert_eq!(merged[0].0, "a");
        assert_eq!(merged[1].0, "b");
    }

    #[test]
    fn auto_sweep_matches_explicit_thread_count() {
        let auto = run_sweep_auto(grid());
        let serial = run_sweep(grid(), 1);
        assert_eq!(auto, serial);
    }
}
