//! Parallel parameter-sweep harness.
//!
//! Each figure-scale experiment is a grid of *independent* simulations
//! (policy × distribution × cluster size × seed). Single simulations stay
//! single-threaded for determinism; the sweep fans the grid out over worker
//! threads with a crossbeam work channel, workers send `(index, outcome)`
//! back on a result channel, and the collector reassembles submission order
//! from the indices — so a sweep's output is as deterministic as a single
//! run, and no lock is ever contended (each result is touched by exactly
//! one worker and then the collector).

use crate::config::ClusterConfig;
use crate::metrics::ExperimentResult;
use crate::runtime::{Experiment, ExperimentScratch, SubstrateMode};
use phishare_workload::Workload;
use std::sync::Arc;

/// One cell of a sweep grid.
#[derive(Debug, Clone)]
pub struct SweepJob {
    /// Label reported back with the result (e.g. `"MCCK/normal/8"`).
    pub label: String,
    /// Cluster configuration for this cell.
    pub config: ClusterConfig,
    /// Workload for this cell (shared, not cloned, across cells).
    pub workload: Arc<Workload>,
}

/// Run every job in the grid, using up to `threads` worker threads.
/// Results come back in the same order as `jobs`.
///
/// Each worker owns one [`ExperimentScratch`] and recycles its event heap
/// and grant buffers across the cells it processes — steady-state cells
/// allocate O(1), and recycling is asserted bit-identical to fresh runs.
pub fn run_sweep(
    jobs: Vec<SweepJob>,
    threads: usize,
) -> Vec<(String, Result<ExperimentResult, String>)> {
    sweep_inner(jobs, threads, SubstrateMode::Fast)
}

/// [`run_sweep`] on the seed's keyed substrate ([`SubstrateMode::Keyed`]),
/// without scratch recycling.
///
/// The differential oracle and the timing floor for the `perf_e2e` bench
/// gate: its results must be bit-identical to [`run_sweep`]'s.
pub fn run_sweep_keyed(
    jobs: Vec<SweepJob>,
    threads: usize,
) -> Vec<(String, Result<ExperimentResult, String>)> {
    sweep_inner(jobs, threads, SubstrateMode::Keyed)
}

/// [`run_sweep`] on an explicitly chosen substrate, sized to the machine
/// like [`run_sweep_auto`]. The heterogeneous-SKU experiments run their
/// grids on [`SubstrateMode::Shared`] through this.
pub fn run_sweep_substrate_auto(
    jobs: Vec<SweepJob>,
    substrate: SubstrateMode,
) -> Vec<(String, Result<ExperimentResult, String>)> {
    sweep_inner(jobs, default_threads(), substrate)
}

fn sweep_inner(
    jobs: Vec<SweepJob>,
    threads: usize,
    substrate: SubstrateMode,
) -> Vec<(String, Result<ExperimentResult, String>)> {
    assert!(threads >= 1, "need at least one worker");
    let n = jobs.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.min(n);

    let (tx, rx) = crossbeam::channel::unbounded::<(usize, SweepJob)>();
    for item in jobs.into_iter().enumerate() {
        tx.send(item).expect("open channel");
    }
    drop(tx);

    type Outcome = (usize, String, Result<ExperimentResult, String>);
    let (res_tx, res_rx) = crossbeam::channel::unbounded::<Outcome>();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let rx = rx.clone();
            let res_tx = res_tx.clone();
            scope.spawn(move || {
                let mut scratch = ExperimentScratch::new();
                while let Ok((idx, job)) = rx.recv() {
                    let outcome = match substrate {
                        SubstrateMode::Fast => {
                            Experiment::run_with_scratch(&job.config, &job.workload, &mut scratch)
                        }
                        SubstrateMode::Keyed
                        | SubstrateMode::Shared
                        | SubstrateMode::SharedNaive => {
                            Experiment::run_with_substrate(&job.config, &job.workload, substrate)
                        }
                    };
                    res_tx
                        .send((idx, job.label, outcome))
                        .expect("open channel");
                }
            });
        }
    });
    drop(res_tx);

    // All workers have exited the scope; the indexed results reassemble
    // submission order regardless of which worker finished when.
    let mut slots: Vec<Option<(String, Result<ExperimentResult, String>)>> =
        (0..n).map(|_| None).collect();
    for (idx, label, outcome) in res_rx.iter() {
        debug_assert!(slots[idx].is_none(), "sweep cell {idx} ran twice");
        slots[idx] = Some((label, outcome));
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every sweep cell ran"))
        .collect()
}

/// [`run_sweep`] sized to the machine: worker count from
/// [`std::thread::available_parallelism`] via [`default_threads`]. The
/// bench harness entry point — benches should not hand-pick thread counts.
pub fn run_sweep_auto(jobs: Vec<SweepJob>) -> Vec<(String, Result<ExperimentResult, String>)> {
    run_sweep(jobs, default_threads())
}

/// Default worker count: the `PHISHARE_SWEEP_THREADS` environment variable
/// when set to a positive integer, otherwise physical parallelism minus
/// one, at least one.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("PHISHARE_SWEEP_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get().saturating_sub(1).max(1))
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use phishare_core::ClusterPolicy;
    use phishare_workload::{WorkloadBuilder, WorkloadKind};

    fn grid() -> Vec<SweepJob> {
        let wl = Arc::new(
            WorkloadBuilder::new(WorkloadKind::Table1Mix)
                .count(20)
                .seed(13)
                .build(),
        );
        ClusterPolicy::ALL
            .iter()
            .flat_map(|&policy| {
                [2u32, 4].into_iter().map({
                    let wl = Arc::clone(&wl);
                    move |nodes| {
                        let mut config = ClusterConfig::paper_cluster(policy).with_nodes(nodes);
                        config.knapsack.window = 64;
                        SweepJob {
                            label: format!("{policy}/{nodes}"),
                            config,
                            workload: Arc::clone(&wl),
                        }
                    }
                })
            })
            .collect()
    }

    #[test]
    fn sweep_matches_serial_execution() {
        let parallel = run_sweep(grid(), 4);
        let serial = run_sweep(grid(), 1);
        assert_eq!(parallel.len(), 6);
        for ((pl, pr), (sl, sr)) in parallel.iter().zip(serial.iter()) {
            assert_eq!(pl, sl);
            assert_eq!(pr, sr, "parallel and serial sweeps diverged on {pl}");
        }
    }

    #[test]
    fn labels_preserve_order() {
        let out = run_sweep(grid(), 3);
        let labels: Vec<&str> = out.iter().map(|(l, _)| l.as_str()).collect();
        assert_eq!(
            labels,
            vec!["MC/2", "MC/4", "MCC/2", "MCC/4", "MCCK/2", "MCCK/4"]
        );
    }

    #[test]
    fn empty_grid_is_fine() {
        assert!(run_sweep(Vec::new(), 4).is_empty());
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn keyed_sweep_matches_fast_sweep() {
        let fast = run_sweep(grid(), 3);
        let keyed = run_sweep_keyed(grid(), 3);
        for ((fl, fr), (kl, kr)) in fast.iter().zip(keyed.iter()) {
            assert_eq!(fl, kl);
            assert_eq!(fr, kr, "substrates diverged on {fl}");
        }
    }

    #[test]
    fn sweep_threads_env_override_is_honored() {
        // Serialized within this test; no other test reads the variable.
        std::env::set_var("PHISHARE_SWEEP_THREADS", "3");
        assert_eq!(default_threads(), 3);
        std::env::set_var("PHISHARE_SWEEP_THREADS", "0");
        let fallback = std::thread::available_parallelism()
            .map(|n| n.get().saturating_sub(1).max(1))
            .unwrap_or(1);
        assert_eq!(default_threads(), fallback, "0 falls back to auto");
        std::env::set_var("PHISHARE_SWEEP_THREADS", "not-a-number");
        assert_eq!(default_threads(), fallback);
        std::env::remove_var("PHISHARE_SWEEP_THREADS");
        assert_eq!(default_threads(), fallback);
    }

    #[test]
    fn auto_sweep_matches_explicit_thread_count() {
        let auto = run_sweep_auto(grid());
        let serial = run_sweep(grid(), 1);
        assert_eq!(auto, serial);
    }
}
