//! Host-processor model.
//!
//! The paper's footprint argument explicitly assumes "there is no contention
//! for the host by reducing cluster size" (§V-A): jobs' host phases always
//! run at full speed. That holds on the testbed (two 8-core Xeons versus a
//! handful of co-resident jobs), but it stops holding exactly when sharing
//! packs many jobs per node — so we model it and measure the caveat
//! (`abl_host_contention`).
//!
//! Each node has `cores` host cores; every job in a host phase needs one.
//! When more jobs are in host phases than there are cores, all of them
//! proceed at the fair-share rate `cores / n_active` (a processor-sharing
//! queue — the right model for timeslice-scheduled CPU-bound phases).

use phishare_sim::{SimDuration, SimTime, TimeWeighted};
use phishare_workload::JobId;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
struct ActiveSegment {
    /// Nominal work remaining, in ticks at rate 1.
    remaining: f64,
}

/// The host CPUs of one node, executing jobs' host phases.
#[derive(Debug)]
pub struct HostCpu {
    cores: u32,
    active: BTreeMap<JobId, ActiveSegment>,
    rate: f64,
    last_update: SimTime,
    generation: u64,
    busy: TimeWeighted,
}

impl HostCpu {
    /// Create a host with `cores` cores at simulation time `start`.
    pub fn new(cores: u32, start: SimTime) -> Self {
        assert!(cores > 0, "a node needs at least one host core");
        HostCpu {
            cores,
            active: BTreeMap::new(),
            rate: 1.0,
            last_update: start,
            generation: 0,
            busy: TimeWeighted::new(start),
        }
    }

    /// Monotone counter bumped whenever rates change; completion events
    /// carrying an older generation are stale.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of host phases currently executing.
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// True when `job` has an active host phase here.
    pub fn is_active(&self, job: JobId) -> bool {
        self.active.contains_key(&job)
    }

    /// Begin a host phase of nominal `duration` for `job`.
    ///
    /// # Panics
    /// Panics if the job already has an active host phase.
    pub fn start_segment(&mut self, now: SimTime, job: JobId, duration: SimDuration) {
        self.advance_to(now);
        let prior = self.active.insert(
            job,
            ActiveSegment {
                remaining: duration.ticks() as f64,
            },
        );
        assert!(prior.is_none(), "{job} already in a host phase");
        self.reschedule(now);
    }

    /// Complete a host phase whose completion event just fired.
    ///
    /// # Panics
    /// Panics (debug) if called with more than one tick of work left —
    /// the caller fired a stale event the generation guard should drop.
    pub fn finish_segment(&mut self, now: SimTime, job: JobId) {
        self.advance_to(now);
        let seg = self
            .active
            .remove(&job)
            .unwrap_or_else(|| panic!("{job} has no active host phase"));
        debug_assert!(
            seg.remaining <= self.rate + 1e-6,
            "finish_segment fired with {:.3} ticks left: stale event?",
            seg.remaining
        );
        self.reschedule(now);
    }

    /// Abort a host phase (job killed mid-phase). No-op if absent.
    pub fn abort(&mut self, now: SimTime, job: JobId) {
        self.advance_to(now);
        if self.active.remove(&job).is_some() {
            self.reschedule(now);
        }
    }

    /// Predicted completion instants under the current fair-share rate,
    /// valid for the current generation.
    pub fn completions(&self) -> Vec<(JobId, SimTime)> {
        self.active
            .iter()
            .map(|(job, seg)| {
                let dt = (seg.remaining / self.rate).ceil().max(0.0) as u64;
                (*job, self.last_update + SimDuration::from_ticks(dt))
            })
            .collect()
    }

    /// Earliest predicted completion `(job, at)`, valid for the current
    /// generation, without allocating.
    ///
    /// Ties break to the lowest [`JobId`] — the order the per-phase events
    /// of [`HostCpu::completions`] would fire in (they are pushed in
    /// ascending-id order), so a single-event driver sees the same phase
    /// finish first as a per-phase one.
    pub fn next_completion(&self) -> Option<(JobId, SimTime)> {
        let mut best: Option<(JobId, SimTime)> = None;
        for (job, seg) in &self.active {
            let dt = (seg.remaining / self.rate).ceil().max(0.0) as u64;
            let at = self.last_update + SimDuration::from_ticks(dt);
            if best.map(|(_, b)| at < b).unwrap_or(true) {
                best = Some((*job, at));
            }
        }
        best
    }

    /// Time-average number of busy host cores through `end`.
    pub fn busy_core_average(&self, end: SimTime) -> f64 {
        self.busy.time_average(end)
    }

    fn advance_to(&mut self, now: SimTime) {
        let dt = now.since(self.last_update).ticks() as f64;
        if dt > 0.0 {
            for seg in self.active.values_mut() {
                seg.remaining = (seg.remaining - self.rate * dt).max(0.0);
            }
            self.last_update = now;
        }
    }

    fn reschedule(&mut self, now: SimTime) {
        let n = self.active.len() as f64;
        self.rate = if n <= self.cores as f64 {
            1.0
        } else {
            self.cores as f64 / n
        };
        self.generation += 1;
        self.busy.set(now, n.min(self.cores as f64));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn d(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    #[test]
    fn uncontended_phases_run_at_full_rate() {
        let mut h = HostCpu::new(4, SimTime::ZERO);
        for j in 0..4u64 {
            h.start_segment(t(0), JobId(j), d(10));
        }
        for (_, at) in h.completions() {
            assert_eq!(at, t(10));
        }
    }

    #[test]
    fn oversubscribed_phases_fair_share() {
        let mut h = HostCpu::new(2, SimTime::ZERO);
        for j in 0..4u64 {
            h.start_segment(t(0), JobId(j), d(10));
        }
        // 4 phases on 2 cores → rate 0.5 → 20 s.
        for (_, at) in h.completions() {
            assert_eq!(at, t(20));
        }
    }

    #[test]
    fn departure_speeds_up_the_rest() {
        let mut h = HostCpu::new(1, SimTime::ZERO);
        h.start_segment(t(0), JobId(1), d(10));
        h.start_segment(t(0), JobId(2), d(10));
        // Rate 0.5 each. At t=10, each has 5 s of work left; kill job 2.
        h.abort(t(10), JobId(2));
        let comps = h.completions();
        assert_eq!(comps, vec![(JobId(1), t(15))]); // 5 s at rate 1
        h.finish_segment(t(15), JobId(1));
        assert_eq!(h.active_count(), 0);
    }

    #[test]
    fn generation_tracks_rate_changes() {
        let mut h = HostCpu::new(2, SimTime::ZERO);
        let g0 = h.generation();
        h.start_segment(t(0), JobId(1), d(5));
        assert!(h.generation() > g0);
        let g1 = h.generation();
        h.abort(t(1), JobId(9)); // absent → no change
        assert_eq!(h.generation(), g1);
        h.abort(t(1), JobId(1));
        assert!(h.generation() > g1);
    }

    #[test]
    fn next_completion_is_first_min_of_completions() {
        let mut h = HostCpu::new(4, SimTime::ZERO);
        assert_eq!(h.next_completion(), None);
        h.start_segment(t(0), JobId(7), d(10));
        h.start_segment(t(0), JobId(2), d(10));
        h.start_segment(t(0), JobId(5), d(20));
        // Jobs 2 and 7 tie at t=10; the lower id wins, matching the order
        // per-phase events are pushed (and therefore fire) in.
        assert_eq!(h.next_completion(), Some((JobId(2), t(10))));
        let earliest = h
            .completions()
            .into_iter()
            .min_by_key(|&(j, at)| (at, j))
            .unwrap();
        assert_eq!(h.next_completion(), Some(earliest));
    }

    #[test]
    fn busy_core_accounting() {
        let mut h = HostCpu::new(4, SimTime::ZERO);
        h.start_segment(t(0), JobId(1), d(10));
        h.start_segment(t(0), JobId(2), d(10));
        h.finish_segment(t(10), JobId(1));
        h.finish_segment(t(10), JobId(2));
        // 2 busy cores for half a 20 s window → average 1.
        assert!((h.busy_core_average(t(20)) - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "already in a host phase")]
    fn double_start_panics() {
        let mut h = HostCpu::new(2, SimTime::ZERO);
        h.start_segment(t(0), JobId(1), d(5));
        h.start_segment(t(0), JobId(1), d(5));
    }
}
