//! Plain-text report formatting for the bench harnesses.
//!
//! Every table/figure bench prints its result through these helpers so the
//! output of `cargo bench` lines up visually with the paper's tables.

/// Render an aligned ASCII table.
///
/// ```
/// use phishare_cluster::report::table;
/// let t = table(
///     &["Configuration", "Makespan", "Reduction"],
///     &[
///         vec!["MC".into(), "3568".into(), "-".into()],
///         vec!["MCCK".into(), "2183".into(), "39%".into()],
///     ],
/// );
/// assert!(t.contains("MCCK"));
/// ```
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width mismatch");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let mut out = String::new();
    let sep = |out: &mut String| {
        for w in &widths {
            out.push('+');
            out.push_str(&"-".repeat(w + 2));
        }
        out.push_str("+\n");
    };
    let line = |out: &mut String, cells: &[String]| {
        for (i, cell) in cells.iter().enumerate() {
            out.push_str("| ");
            out.push_str(cell);
            out.push_str(&" ".repeat(widths[i] - cell.chars().count() + 1));
        }
        out.push_str("|\n");
    };
    sep(&mut out);
    line(
        &mut out,
        &headers.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
    );
    sep(&mut out);
    for row in rows {
        line(&mut out, row);
    }
    sep(&mut out);
    out
}

/// Render a horizontal ASCII bar chart (one bar per labelled value), the
/// bench-harness stand-in for the paper's figures.
pub fn bar_chart(title: &str, series: &[(String, f64)], width: usize) -> String {
    let max = series.iter().map(|(_, v)| *v).fold(0.0f64, f64::max);
    let label_w = series
        .iter()
        .map(|(l, _)| l.chars().count())
        .max()
        .unwrap_or(0);
    let mut out = format!("{title}\n");
    for (label, value) in series {
        let bar_len = if max > 0.0 {
            ((value / max) * width as f64).round() as usize
        } else {
            0
        };
        out.push_str(&format!(
            "  {label:<label_w$} | {} {value:.1}\n",
            "#".repeat(bar_len)
        ));
    }
    out
}

/// Format a percentage with one decimal, e.g. `39.0%`.
pub fn pct(x: f64) -> String {
    format!("{x:.1}%")
}

/// Format seconds with one decimal.
pub fn secs(x: f64) -> String {
    format!("{x:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["A", "Long header"],
            &[
                vec!["x".into(), "1".into()],
                vec!["longer cell".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        // All non-separator lines have the same width.
        let widths: std::collections::HashSet<usize> =
            lines.iter().map(|l| l.chars().count()).collect();
        assert_eq!(widths.len(), 1, "{t}");
        assert!(t.contains("| longer cell |"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_rows_panic() {
        let _ = table(&["A", "B"], &[vec!["only one".into()]]);
    }

    #[test]
    fn bar_chart_scales_to_max() {
        let c = bar_chart(
            "Makespan",
            &[("MC".into(), 100.0), ("MCCK".into(), 50.0)],
            20,
        );
        assert!(c.contains("MC   | #################### 100.0"));
        assert!(c.contains("MCCK | ########## 50.0"));
    }

    #[test]
    fn bar_chart_handles_zero_series() {
        let c = bar_chart("Empty", &[("x".into(), 0.0)], 10);
        assert!(c.contains("x |  0.0"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(39.04), "39.0%");
        assert_eq!(secs(3568.04), "3568.0");
    }
}
