//! Deterministic fault injection and recovery policy.
//!
//! The paper's deployment stack survives in production because each layer
//! has a recovery story: MPSS restarts a wedged Phi card (tearing down every
//! resident COI process), HTCondor's negotiator stops matching against a
//! startd whose ClassAd expired, and the schedd requeues vacated jobs with
//! an exponential-backoff release delay until `MaxRetries` turns them into
//! held jobs. This module models the *injection* side of that world: a
//! [`FaultPlan`] is a pre-materialized, seed-deterministic list of device
//! resets and node churn events that the runtime folds into its event queue.
//! Recovery behaviour is governed by [`RecoveryConfig`] and implemented in
//! `runtime.rs`; the invariants it must uphold are checked by
//! [`crate::audit`].
//!
//! Determinism: the plan is drawn from [`DetRng::substream`] with the
//! dedicated `"fault-plan"` label, so enabling faults never perturbs any
//! other random stream (OOM victim selection, workload draws), and a
//! disabled [`FaultConfig`] produces an empty plan without touching any RNG
//! at all — the zero-fault timeline is bit-identical to a build without
//! this module.

use crate::config::ClusterConfig;
use phishare_sim::{DetRng, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// What kind of failure strikes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// MPSS crash/restart of one card: every resident COI process is torn
    /// down, COSMIC registrations flush, and the card admits nothing until
    /// recovery. The node (and its startd) stays up.
    DeviceReset,
    /// The whole node vanishes (startd dies, machine reboots): its ClassAds
    /// are invalidated at the collector, running jobs are vacated, and every
    /// card on the node restarts with the node.
    NodeChurn,
}

/// One scheduled failure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Failure kind.
    pub kind: FaultKind,
    /// Target node (1-based, as everywhere in the cluster crate).
    pub node: u32,
    /// Target device index on the node (ignored for [`FaultKind::NodeChurn`]).
    pub device: u32,
    /// When the failure strikes.
    pub at: SimTime,
    /// How long the target stays down before it recovers.
    pub downtime: SimDuration,
}

/// A deterministic, pre-materialized failure schedule.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Failures ordered by (time, node, device, kind).
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// A plan with no failures. Running with this plan is bit-identical to
    /// running without fault support at all (asserted by
    /// `prop_runtime_diff`).
    pub fn empty() -> Self {
        FaultPlan::default()
    }

    /// Number of scheduled failures.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no failure is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Materialize the plan described by `config.faults`.
    ///
    /// Each target (node for churn, card for resets) fails as a renewal
    /// process: the gap between a recovery and the next failure of the same
    /// target is exponential with the configured MTBF, so a single target
    /// never has overlapping failures of the same kind. Draws come from the
    /// `"fault-plan"` substream of the cluster seed and stop at
    /// `horizon_secs`.
    pub fn generate(config: &ClusterConfig) -> Self {
        let f = config.faults;
        if !f.enabled() {
            return FaultPlan::empty();
        }
        let mut rng = DetRng::substream(config.seed, "fault-plan");
        let mut events = Vec::new();
        if f.node_mtbf_secs > 0.0 {
            for node in 1..=config.nodes {
                push_renewals(
                    &mut events,
                    &mut rng,
                    FaultKind::NodeChurn,
                    node,
                    0,
                    f.node_mtbf_secs,
                    f.node_downtime_secs,
                    f.horizon_secs,
                );
            }
        }
        if f.device_mtbf_secs > 0.0 {
            for node in 1..=config.nodes {
                for device in 0..config.devices_per_node {
                    push_renewals(
                        &mut events,
                        &mut rng,
                        FaultKind::DeviceReset,
                        node,
                        device,
                        f.device_mtbf_secs,
                        f.device_downtime_secs,
                        f.horizon_secs,
                    );
                }
            }
        }
        events.sort_by_key(|e| {
            (
                e.at,
                e.node,
                e.device,
                match e.kind {
                    FaultKind::DeviceReset => 0u8,
                    FaultKind::NodeChurn => 1u8,
                },
            )
        });
        FaultPlan { events }
    }

    /// Check the plan against a configuration: every event must target an
    /// existing node/device and carry a positive downtime.
    pub fn validate(&self, config: &ClusterConfig) -> Result<(), String> {
        for (i, e) in self.events.iter().enumerate() {
            if e.node == 0 || e.node > config.nodes {
                return Err(format!(
                    "fault plan event {i} targets node {} of a {}-node cluster",
                    e.node, config.nodes
                ));
            }
            if e.kind == FaultKind::DeviceReset && e.device >= config.devices_per_node {
                return Err(format!(
                    "fault plan event {i} targets device {} but nodes have {}",
                    e.device, config.devices_per_node
                ));
            }
            if e.downtime.is_zero() {
                return Err(format!("fault plan event {i} has zero downtime"));
            }
        }
        Ok(())
    }

    /// Serialize to pretty JSON, the committed-artifact format used by the
    /// CLI's `--dump-fault-plan` and the chaos proptest's failure dumps.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("fault plan serializes")
    }

    /// Parse a plan back from [`FaultPlan::to_json`] output.
    pub fn from_json(s: &str) -> Result<Self, String> {
        serde_json::from_str(s).map_err(|e| format!("bad fault plan JSON: {e}"))
    }
}

#[allow(clippy::too_many_arguments)]
fn push_renewals(
    events: &mut Vec<FaultEvent>,
    rng: &mut DetRng,
    kind: FaultKind,
    node: u32,
    device: u32,
    mtbf_secs: f64,
    downtime_secs: f64,
    horizon_secs: f64,
) {
    let downtime = SimDuration::from_secs_f64(downtime_secs);
    let mut t = rng.exponential(mtbf_secs);
    while t <= horizon_secs {
        events.push(FaultEvent {
            kind,
            node,
            device,
            at: SimTime::ZERO + SimDuration::from_secs_f64(t),
            downtime,
        });
        t += downtime_secs + rng.exponential(mtbf_secs);
    }
}

/// Failure-rate knobs. All rates default to zero: the default configuration
/// injects nothing and leaves every timeline untouched.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Mean time between MPSS crashes per card, in seconds. `0` disables
    /// device resets.
    pub device_mtbf_secs: f64,
    /// How long a crashed card stays down (MPSS restart + card reboot).
    pub device_downtime_secs: f64,
    /// Mean time between node failures per node, in seconds. `0` disables
    /// node churn.
    pub node_mtbf_secs: f64,
    /// How long a churned node stays gone before its startd re-advertises.
    pub node_downtime_secs: f64,
    /// Failures are only injected in `[0, horizon_secs]`; the tail of a long
    /// run drains fault-free. `0` disables injection entirely.
    pub horizon_secs: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            device_mtbf_secs: 0.0,
            device_downtime_secs: 30.0,
            node_mtbf_secs: 0.0,
            node_downtime_secs: 120.0,
            horizon_secs: 0.0,
        }
    }
}

impl FaultConfig {
    /// True when this configuration can inject at least one failure.
    pub fn enabled(&self) -> bool {
        self.horizon_secs > 0.0 && (self.device_mtbf_secs > 0.0 || self.node_mtbf_secs > 0.0)
    }

    /// Validate the knobs.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("device_mtbf_secs", self.device_mtbf_secs),
            ("device_downtime_secs", self.device_downtime_secs),
            ("node_mtbf_secs", self.node_mtbf_secs),
            ("node_downtime_secs", self.node_downtime_secs),
            ("horizon_secs", self.horizon_secs),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(format!("fault config: {name} must be finite and >= 0"));
            }
        }
        if self.device_mtbf_secs > 0.0 && self.device_downtime_secs <= 0.0 {
            return Err("fault config: device resets need a positive downtime".into());
        }
        if self.node_mtbf_secs > 0.0 && self.node_downtime_secs <= 0.0 {
            return Err("fault config: node churn needs a positive downtime".into());
        }
        Ok(())
    }
}

/// What happens to jobs hit by a failure — HTCondor's schedd-side policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoveryConfig {
    /// How many times a job may be vacated-and-requeued before it is held
    /// for good (HTCondor's `MaxRetries` / `JobMaxVacateTime` regime).
    pub max_retries: u32,
    /// Base of the exponential release backoff: the k-th requeue releases
    /// after `retry_base · 2^k`.
    pub retry_base: SimDuration,
    /// Cap on the release backoff.
    pub retry_cap: SimDuration,
    /// What a running job does when its card resets under it while the node
    /// stays up.
    pub fallback: FallbackPolicy,
    /// Slowdown factor applied to an offload segment executed on host cores
    /// under [`FallbackPolicy::HostOnly`] — the `__MIC__`-absent compilation
    /// path runs the same kernel without the coprocessor.
    pub host_fallback_slowdown: f64,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            max_retries: 3,
            retry_base: SimDuration::from_secs(10),
            retry_cap: SimDuration::from_secs(300),
            fallback: FallbackPolicy::HostOnly,
            host_fallback_slowdown: 3.0,
        }
    }
}

impl RecoveryConfig {
    /// Release delay after the k-th vacate: `min(base·2^k, cap)`.
    pub fn backoff(&self, prior_attempts: u32) -> SimDuration {
        let shift = prior_attempts.min(32);
        let ticks = self
            .retry_base
            .ticks()
            .saturating_mul(1u64 << shift)
            .min(self.retry_cap.ticks());
        SimDuration::from_ticks(ticks)
    }

    /// Validate the knobs.
    pub fn validate(&self) -> Result<(), String> {
        if self.retry_base.is_zero() {
            return Err("recovery config: retry_base must be positive".into());
        }
        if self.retry_cap < self.retry_base {
            return Err("recovery config: retry_cap must be >= retry_base".into());
        }
        if !self.host_fallback_slowdown.is_finite() || self.host_fallback_slowdown < 1.0 {
            return Err("recovery config: host_fallback_slowdown must be >= 1".into());
        }
        Ok(())
    }
}

/// Fate of a job whose device resets while its node stays up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FallbackPolicy {
    /// Degrade gracefully: the job keeps its slot and finishes on host
    /// cores, paying [`RecoveryConfig::host_fallback_slowdown`] on each
    /// remaining offload segment. It never returns to the card.
    HostOnly,
    /// Vacate and requeue the job with backoff, like a node failure would.
    Requeue,
}

#[cfg(test)]
mod tests {
    use super::*;
    use phishare_core::ClusterPolicy;

    fn faulty_config() -> ClusterConfig {
        let mut c = ClusterConfig::paper_cluster(ClusterPolicy::Mcck);
        c.faults.device_mtbf_secs = 400.0;
        c.faults.node_mtbf_secs = 900.0;
        c.faults.horizon_secs = 2000.0;
        c
    }

    #[test]
    fn disabled_config_generates_nothing_deterministically() {
        let c = ClusterConfig::default();
        assert!(!c.faults.enabled());
        assert!(FaultPlan::generate(&c).is_empty());
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let c = faulty_config();
        let a = FaultPlan::generate(&c);
        let b = FaultPlan::generate(&c);
        assert!(!a.is_empty());
        assert_eq!(a, b);
        let other = FaultPlan::generate(&faulty_config().with_seed(99));
        assert_ne!(a, other, "different seeds draw different plans");
    }

    #[test]
    fn plans_are_sorted_within_horizon_and_valid() {
        let c = faulty_config();
        let plan = FaultPlan::generate(&c);
        plan.validate(&c).unwrap();
        let horizon = SimTime::ZERO + SimDuration::from_secs_f64(c.faults.horizon_secs);
        for pair in plan.events.windows(2) {
            assert!(pair[0].at <= pair[1].at, "plan out of order");
        }
        for e in &plan.events {
            assert!(e.at <= horizon);
            assert!(!e.downtime.is_zero());
        }
    }

    #[test]
    fn same_target_failures_never_overlap() {
        let c = faulty_config();
        let plan = FaultPlan::generate(&c);
        use std::collections::BTreeMap;
        let mut last_up: BTreeMap<(u8, u32, u32), SimTime> = BTreeMap::new();
        for e in &plan.events {
            let k = (
                match e.kind {
                    FaultKind::DeviceReset => 0u8,
                    FaultKind::NodeChurn => 1,
                },
                e.node,
                e.device,
            );
            if let Some(up) = last_up.get(&k) {
                assert!(e.at >= *up, "same target failed while still down");
            }
            last_up.insert(k, e.at + e.downtime);
        }
    }

    #[test]
    fn validation_catches_bad_targets() {
        let c = ClusterConfig::default().with_nodes(2);
        let mk = |node, device, downtime| FaultPlan {
            events: vec![FaultEvent {
                kind: FaultKind::DeviceReset,
                node,
                device,
                at: SimTime::ZERO,
                downtime: SimDuration::from_secs(downtime),
            }],
        };
        assert!(mk(3, 0, 10).validate(&c).is_err());
        assert!(mk(0, 0, 10).validate(&c).is_err());
        assert!(mk(1, 5, 10).validate(&c).is_err());
        assert!(mk(1, 0, 0).validate(&c).is_err());
        assert!(mk(2, 0, 10).validate(&c).is_ok());
    }

    #[test]
    fn plans_round_trip_through_json() {
        let c = faulty_config();
        let plan = FaultPlan::generate(&c);
        assert!(!plan.is_empty());
        let back = FaultPlan::from_json(&plan.to_json()).unwrap();
        assert_eq!(plan, back);
        assert_eq!(
            FaultPlan::from_json(&FaultPlan::empty().to_json()).unwrap(),
            FaultPlan::empty()
        );
        assert!(FaultPlan::from_json("not json").is_err());
        assert!(FaultPlan::from_json("{\"events\": [{}]}").is_err());
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let r = RecoveryConfig::default();
        assert_eq!(r.backoff(0), SimDuration::from_secs(10));
        assert_eq!(r.backoff(1), SimDuration::from_secs(20));
        assert_eq!(r.backoff(2), SimDuration::from_secs(40));
        assert_eq!(r.backoff(10), SimDuration::from_secs(300), "capped");
        assert_eq!(r.backoff(64), SimDuration::from_secs(300), "no overflow");
    }

    #[test]
    fn config_validation() {
        let mut f = FaultConfig::default();
        f.validate().unwrap();
        f.device_mtbf_secs = -1.0;
        assert!(f.validate().is_err());
        let f = FaultConfig {
            device_mtbf_secs: 100.0,
            device_downtime_secs: 0.0,
            ..Default::default()
        };
        assert!(f.validate().is_err());

        let mut r = RecoveryConfig::default();
        r.validate().unwrap();
        r.host_fallback_slowdown = 0.5;
        assert!(r.validate().is_err());
        let r = RecoveryConfig {
            retry_cap: SimDuration::from_secs(1),
            ..Default::default()
        };
        assert!(r.validate().is_err());
    }
}
