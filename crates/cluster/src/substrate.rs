//! Substrate abstraction: slab-indexed vs map-keyed per-device state.
//!
//! The runtime's per-offload hot path (admission, memory commits, rate
//! updates, completion scans) talks to two stateful substrates per
//! coprocessor: the device model ([`phishare_phi::PhiDevice`]) and the
//! COSMIC middleware ([`phishare_cosmic::CosmicDevice`]). Both exist in two
//! storage layouts:
//!
//! * **Fast (production)** — generation-stamped slab storage. The runtime
//!   resolves each job's `ProcId`/`JobId` to a small dense slot **once, at
//!   registration**, and every subsequent touch is an array index plus a
//!   stamp check. Grant collection goes through caller-recycled buffers, so
//!   steady-state offload traffic allocates nothing.
//! * **Keyed (oracle)** — the seed's `BTreeMap`-keyed implementations
//!   ([`phishare_phi::KeyedPhiDevice`], [`phishare_cosmic::KeyedCosmicDevice`]),
//!   retained verbatim. Every operation pays a map lookup, aggregates are
//!   recomputed by iteration, and grant paths allocate fresh `Vec`s — the
//!   honest pre-optimization cost model the `perf_e2e` gate measures
//!   against.
//!
//! [`DeviceSubstrate`] and [`CosmicSubstrate`] are the seams the generic
//! runtime ([`crate::runtime::Experiment`]) is instantiated over. Both
//! substrates must produce **bit-identical** [`crate::ExperimentResult`]s
//! and traces — the same differential-oracle discipline as
//! `Experiment::run_naive_events` (event schemes) and the planner's
//! `NaiveSerial` mode. That contract is enforced by the substrate-axis
//! proptests in `cluster/tests/prop_runtime_diff.rs` and re-asserted
//! pin-for-pin by the `perf_e2e` bench gate before it times anything.
//!
//! Trait methods panic (rather than returning `Result`) on contract
//! violations: the runtime guarantees it never operates on a departed
//! process, and the fast substrate's stale-stamp panics are exactly that
//! guarantee made loud.

use crate::config::DeviceSpec;
use phishare_cosmic::{
    Admission, ContainerVerdict, CosmicConfig, CosmicDevice, JobSlot, KeyedCosmicDevice,
    OffloadGrant,
};
use phishare_phi::{
    Affinity, CommitOutcome, DeviceUtilization, KeyedPhiDevice, PhiConfig, PhiDevice, ProcId,
    ProcSlot,
};
use phishare_sim::{DetRng, SimDuration, SimTime};
use phishare_workload::JobId;

/// One coprocessor's state store, as the runtime drives it.
///
/// `Handle` is the substrate's name for a resident process: a dense
/// [`ProcSlot`] on the fast substrate, the [`ProcId`] itself on the keyed
/// oracle. Handles are obtained from [`DeviceSubstrate::attach`] and stay
/// valid until the process departs (detach, OOM kill, or device reset);
/// using one after that is a runtime bug and may panic.
pub trait DeviceSubstrate {
    /// Per-resident handle resolved once at attach time.
    type Handle: Copy + std::fmt::Debug;

    /// Fresh device state for one card, built from the node's spec: the
    /// Phi substrates read `spec.phi` + `spec.perf`, the shared-throughput
    /// substrates read `spec.phi` + `spec.curve`.
    fn create(spec: &DeviceSpec, start: SimTime) -> Self;

    /// Monotone counter bumped whenever execution rates may have changed.
    fn generation(&self) -> u64;

    /// Attach a COI process with its declared envelope and initial commit.
    /// The returned handle is stale if the initial commit OOM-killed the
    /// attaching process itself (the runtime detects that case through the
    /// outcome's victim list, never through the handle).
    fn attach(
        &mut self,
        now: SimTime,
        proc: ProcId,
        declared_mem_mb: u64,
        declared_threads: u32,
        initial_commit_mb: u64,
        rng: &mut DetRng,
    ) -> (Self::Handle, CommitOutcome);

    /// Detach a resident process, releasing its declared envelope.
    fn detach(&mut self, now: SimTime, handle: Self::Handle);

    /// Set a resident process's committed memory, possibly invoking the
    /// OOM killer on physical oversubscription.
    fn commit(
        &mut self,
        now: SimTime,
        handle: Self::Handle,
        total_mb: u64,
        rng: &mut DetRng,
    ) -> CommitOutcome;

    /// Start an offload for a resident process with no active offload.
    fn start_offload(
        &mut self,
        now: SimTime,
        handle: Self::Handle,
        threads: u32,
        work: SimDuration,
        affinity: Affinity,
    );

    /// Retire the process's active offload at its predicted completion.
    fn finish_offload(&mut self, now: SimTime, handle: Self::Handle);

    /// MPSS crash: drop every resident and all active offloads.
    fn reset(&mut self, now: SimTime);

    /// Thermal derate: multiply every execution rate by `scale` (in
    /// `(0, 1]`; `1.0` restores nominal) from `now` on, bumping the
    /// generation. Survives [`DeviceSubstrate::reset`].
    fn set_rate_scale(&mut self, now: SimTime, scale: f64);

    /// Visit every predicted completion in ascending [`ProcId`] order —
    /// the order per-offload events must be scheduled in.
    fn for_each_completion(&self, f: impl FnMut(ProcId, SimTime));

    /// The earliest predicted completion, ties to the lowest [`ProcId`].
    fn next_completion(&self) -> Option<(ProcId, SimTime)>;

    /// Number of resident processes.
    fn resident_count(&self) -> usize;

    /// Declared memory still unbudgeted (MB).
    fn free_declared_mb(&self) -> u64;

    /// Sum of committed memory over residents (MB).
    fn committed_total_mb(&self) -> u64;

    /// Sum of declared threads over residents.
    fn declared_threads(&self) -> u32;

    /// Processes terminated by this device's OOM killer so far.
    fn oom_kill_count(&self) -> u64;

    /// Energy consumed through `end`, joules.
    fn energy_joules(&self, end: SimTime) -> f64;

    /// Time-integrated utilization through `end`.
    fn utilization(&self, end: SimTime) -> DeviceUtilization;
}

impl DeviceSubstrate for PhiDevice {
    type Handle = ProcSlot;

    fn create(spec: &DeviceSpec, start: SimTime) -> Self {
        PhiDevice::new(spec.phi, spec.perf, start)
    }

    fn generation(&self) -> u64 {
        self.generation()
    }

    fn attach(
        &mut self,
        now: SimTime,
        proc: ProcId,
        declared_mem_mb: u64,
        declared_threads: u32,
        initial_commit_mb: u64,
        rng: &mut DetRng,
    ) -> (Self::Handle, CommitOutcome) {
        self.attach_slot(
            now,
            proc,
            declared_mem_mb,
            declared_threads,
            initial_commit_mb,
            rng,
        )
        .expect("proc ids are unique per job")
    }

    fn detach(&mut self, now: SimTime, handle: Self::Handle) {
        self.detach_slot(now, handle);
    }

    fn commit(
        &mut self,
        now: SimTime,
        handle: Self::Handle,
        total_mb: u64,
        rng: &mut DetRng,
    ) -> CommitOutcome {
        self.commit_memory_slot(now, handle, total_mb, rng)
    }

    fn start_offload(
        &mut self,
        now: SimTime,
        handle: Self::Handle,
        threads: u32,
        work: SimDuration,
        affinity: Affinity,
    ) {
        self.start_offload_slot(now, handle, threads, work, affinity)
            .expect("offload starts on an idle resident");
    }

    fn finish_offload(&mut self, now: SimTime, handle: Self::Handle) {
        self.finish_offload_slot(now, handle)
            .expect("generation-valid completion");
    }

    fn reset(&mut self, now: SimTime) {
        PhiDevice::reset(self, now);
    }

    fn set_rate_scale(&mut self, now: SimTime, scale: f64) {
        PhiDevice::set_rate_scale(self, now, scale);
    }

    fn for_each_completion(&self, f: impl FnMut(ProcId, SimTime)) {
        PhiDevice::for_each_completion(self, f);
    }

    fn next_completion(&self) -> Option<(ProcId, SimTime)> {
        PhiDevice::next_completion(self)
    }

    fn resident_count(&self) -> usize {
        PhiDevice::resident_count(self)
    }

    fn free_declared_mb(&self) -> u64 {
        PhiDevice::free_declared_mb(self)
    }

    fn committed_total_mb(&self) -> u64 {
        PhiDevice::committed_total_mb(self)
    }

    fn declared_threads(&self) -> u32 {
        PhiDevice::declared_threads(self)
    }

    fn oom_kill_count(&self) -> u64 {
        self.oom_kills.get()
    }

    fn energy_joules(&self, end: SimTime) -> f64 {
        PhiDevice::energy_joules(self, end)
    }

    fn utilization(&self, end: SimTime) -> DeviceUtilization {
        PhiDevice::utilization(self, end)
    }
}

impl DeviceSubstrate for KeyedPhiDevice {
    /// The keyed oracle "resolves" a process to itself: every operation
    /// pays the map lookup the fast substrate resolved away.
    type Handle = ProcId;

    fn create(spec: &DeviceSpec, start: SimTime) -> Self {
        KeyedPhiDevice::new(spec.phi, spec.perf, start)
    }

    fn generation(&self) -> u64 {
        self.generation()
    }

    fn attach(
        &mut self,
        now: SimTime,
        proc: ProcId,
        declared_mem_mb: u64,
        declared_threads: u32,
        initial_commit_mb: u64,
        rng: &mut DetRng,
    ) -> (Self::Handle, CommitOutcome) {
        let outcome = KeyedPhiDevice::attach(
            self,
            now,
            proc,
            declared_mem_mb,
            declared_threads,
            initial_commit_mb,
            rng,
        )
        .expect("proc ids are unique per job");
        (proc, outcome)
    }

    fn detach(&mut self, now: SimTime, handle: Self::Handle) {
        KeyedPhiDevice::detach(self, now, handle).expect("departing job was attached");
    }

    fn commit(
        &mut self,
        now: SimTime,
        handle: Self::Handle,
        total_mb: u64,
        rng: &mut DetRng,
    ) -> CommitOutcome {
        KeyedPhiDevice::commit_memory(self, now, handle, total_mb, rng)
            .expect("running job is attached")
    }

    fn start_offload(
        &mut self,
        now: SimTime,
        handle: Self::Handle,
        threads: u32,
        work: SimDuration,
        affinity: Affinity,
    ) {
        KeyedPhiDevice::start_offload(self, now, handle, threads, work, affinity)
            .expect("offload starts on an idle resident");
    }

    fn finish_offload(&mut self, now: SimTime, handle: Self::Handle) {
        KeyedPhiDevice::finish_offload(self, now, handle).expect("generation-valid completion");
    }

    fn reset(&mut self, now: SimTime) {
        KeyedPhiDevice::reset(self, now);
    }

    fn set_rate_scale(&mut self, now: SimTime, scale: f64) {
        KeyedPhiDevice::set_rate_scale(self, now, scale);
    }

    fn for_each_completion(&self, mut f: impl FnMut(ProcId, SimTime)) {
        // The seed's allocation: one fresh Vec per membership change.
        for (proc, at) in self.completions() {
            f(proc, at);
        }
    }

    fn next_completion(&self) -> Option<(ProcId, SimTime)> {
        KeyedPhiDevice::next_completion(self)
    }

    fn resident_count(&self) -> usize {
        KeyedPhiDevice::resident_count(self)
    }

    fn free_declared_mb(&self) -> u64 {
        KeyedPhiDevice::free_declared_mb(self)
    }

    fn committed_total_mb(&self) -> u64 {
        KeyedPhiDevice::committed_total_mb(self)
    }

    fn declared_threads(&self) -> u32 {
        KeyedPhiDevice::declared_threads(self)
    }

    fn oom_kill_count(&self) -> u64 {
        self.oom_kills.get()
    }

    fn energy_joules(&self, end: SimTime) -> f64 {
        KeyedPhiDevice::energy_joules(self, end)
    }

    fn utilization(&self, end: SimTime) -> DeviceUtilization {
        KeyedPhiDevice::utilization(self, end)
    }
}

/// Both shared-throughput devices ([`phishare_phi::SharedThroughputDevice`]
/// heap-fast, [`phishare_phi::NaiveSharedDevice`] recompute-all oracle)
/// drive one generic impl:
/// every line of substrate glue is shared, so a behavioral divergence
/// between the two modes can only come from the engine itself — the
/// property the `perf_throughput` gate re-asserts before timing.
impl<E: phishare_throughput::SharingEngine> DeviceSubstrate for phishare_phi::SharedDevice<E> {
    /// Shared devices are keyed by id; the engine's position index makes
    /// the lookup O(log n) rather than a scan.
    type Handle = ProcId;

    fn create(spec: &DeviceSpec, start: SimTime) -> Self {
        phishare_phi::SharedDevice::new(spec.phi, spec.curve, start)
    }

    fn generation(&self) -> u64 {
        self.generation()
    }

    fn attach(
        &mut self,
        now: SimTime,
        proc: ProcId,
        declared_mem_mb: u64,
        declared_threads: u32,
        initial_commit_mb: u64,
        rng: &mut DetRng,
    ) -> (Self::Handle, CommitOutcome) {
        let outcome = phishare_phi::SharedDevice::attach(
            self,
            now,
            proc,
            declared_mem_mb,
            declared_threads,
            initial_commit_mb,
            rng,
        )
        .expect("proc ids are unique per job");
        (proc, outcome)
    }

    fn detach(&mut self, now: SimTime, handle: Self::Handle) {
        phishare_phi::SharedDevice::detach(self, now, handle).expect("departing job was attached");
    }

    fn commit(
        &mut self,
        now: SimTime,
        handle: Self::Handle,
        total_mb: u64,
        rng: &mut DetRng,
    ) -> CommitOutcome {
        phishare_phi::SharedDevice::commit_memory(self, now, handle, total_mb, rng)
            .expect("running job is attached")
    }

    fn start_offload(
        &mut self,
        now: SimTime,
        handle: Self::Handle,
        threads: u32,
        work: SimDuration,
        affinity: Affinity,
    ) {
        phishare_phi::SharedDevice::start_offload(self, now, handle, threads, work, affinity)
            .expect("offload starts on an idle resident");
    }

    fn finish_offload(&mut self, now: SimTime, handle: Self::Handle) {
        phishare_phi::SharedDevice::finish_offload(self, now, handle)
            .expect("generation-valid completion");
    }

    fn reset(&mut self, now: SimTime) {
        phishare_phi::SharedDevice::reset(self, now);
    }

    fn set_rate_scale(&mut self, now: SimTime, scale: f64) {
        phishare_phi::SharedDevice::set_rate_scale(self, now, scale);
    }

    fn for_each_completion(&self, f: impl FnMut(ProcId, SimTime)) {
        phishare_phi::SharedDevice::for_each_completion(self, f);
    }

    fn next_completion(&self) -> Option<(ProcId, SimTime)> {
        phishare_phi::SharedDevice::next_completion(self)
    }

    fn resident_count(&self) -> usize {
        phishare_phi::SharedDevice::resident_count(self)
    }

    fn free_declared_mb(&self) -> u64 {
        phishare_phi::SharedDevice::free_declared_mb(self)
    }

    fn committed_total_mb(&self) -> u64 {
        phishare_phi::SharedDevice::committed_total_mb(self)
    }

    fn declared_threads(&self) -> u32 {
        phishare_phi::SharedDevice::declared_threads(self)
    }

    fn oom_kill_count(&self) -> u64 {
        self.oom_kills.get()
    }

    fn energy_joules(&self, end: SimTime) -> f64 {
        phishare_phi::SharedDevice::energy_joules(self, end)
    }

    fn utilization(&self, end: SimTime) -> DeviceUtilization {
        phishare_phi::SharedDevice::utilization(self, end)
    }
}

/// One coprocessor's COSMIC admission state, as the runtime drives it.
///
/// Registration resolves a [`JobId`] to a `Handle` used on the per-offload
/// hot path (request, complete, container check). Departure goes through
/// the id — the OOM killer can remove a job whose handle the runtime must
/// then never touch again.
pub trait CosmicSubstrate {
    /// Per-registration handle resolved once at register time.
    type Handle: Copy + std::fmt::Debug;

    /// Fresh middleware state for a device with the given hardware shape.
    fn create(cfg: CosmicConfig, phi: &PhiConfig) -> Self;

    /// Register a placed job; panics if it is already registered.
    fn register(&mut self, job: JobId, declared_mem_mb: u64, declared_threads: u32)
        -> Self::Handle;

    /// Remove a job (completed or killed), appending any unblocked grants
    /// to `grants` (not cleared first). Safe for unknown jobs.
    fn unregister_into(&mut self, now: SimTime, job: JobId, grants: &mut Vec<OffloadGrant>);

    /// Card reset: flush registrations, actives and the wait queue.
    fn reset(&mut self);

    /// A registered job wants to start an offload.
    fn request_offload(
        &mut self,
        now: SimTime,
        handle: Self::Handle,
        threads: u32,
        work: SimDuration,
    ) -> Admission;

    /// An active offload finished; append unblocked grants to `grants`.
    fn complete_offload_into(
        &mut self,
        now: SimTime,
        handle: Self::Handle,
        grants: &mut Vec<OffloadGrant>,
    );

    /// Container check on a memory commit.
    fn on_commit(&self, handle: Self::Handle, committed_mb: u64) -> ContainerVerdict;

    /// Number of registered jobs (drain/leak audits).
    fn registered_jobs(&self) -> usize;

    /// Queue-wait samples recorded so far.
    fn queue_wait_count(&self) -> usize;

    /// Mean queue wait, seconds.
    fn queue_wait_mean(&self) -> f64;
}

impl CosmicSubstrate for CosmicDevice {
    type Handle = JobSlot;

    fn create(cfg: CosmicConfig, phi: &PhiConfig) -> Self {
        CosmicDevice::new(cfg, phi)
    }

    fn register(
        &mut self,
        job: JobId,
        declared_mem_mb: u64,
        declared_threads: u32,
    ) -> Self::Handle {
        self.register_job_slot(job, declared_mem_mb, declared_threads)
    }

    fn unregister_into(&mut self, now: SimTime, job: JobId, grants: &mut Vec<OffloadGrant>) {
        self.unregister_job_into(now, job, grants);
    }

    fn reset(&mut self) {
        CosmicDevice::reset(self);
    }

    fn request_offload(
        &mut self,
        now: SimTime,
        handle: Self::Handle,
        threads: u32,
        work: SimDuration,
    ) -> Admission {
        self.request_offload_slot(now, handle, threads, work)
    }

    fn complete_offload_into(
        &mut self,
        now: SimTime,
        handle: Self::Handle,
        grants: &mut Vec<OffloadGrant>,
    ) {
        self.complete_offload_slot_into(now, handle, grants);
    }

    fn on_commit(&self, handle: Self::Handle, committed_mb: u64) -> ContainerVerdict {
        self.on_commit_slot(handle, committed_mb)
    }

    fn registered_jobs(&self) -> usize {
        CosmicDevice::registered_jobs(self)
    }

    fn queue_wait_count(&self) -> usize {
        self.queue_wait.count()
    }

    fn queue_wait_mean(&self) -> f64 {
        self.queue_wait.mean()
    }
}

impl CosmicSubstrate for KeyedCosmicDevice {
    type Handle = JobId;

    fn create(cfg: CosmicConfig, phi: &PhiConfig) -> Self {
        KeyedCosmicDevice::new(cfg, phi)
    }

    fn register(
        &mut self,
        job: JobId,
        declared_mem_mb: u64,
        declared_threads: u32,
    ) -> Self::Handle {
        self.register_job(job, declared_mem_mb, declared_threads);
        job
    }

    fn unregister_into(&mut self, now: SimTime, job: JobId, grants: &mut Vec<OffloadGrant>) {
        // The seed's allocation: unregister builds and returns a fresh Vec.
        grants.extend(self.unregister_job(now, job));
    }

    fn reset(&mut self) {
        KeyedCosmicDevice::reset(self);
    }

    fn request_offload(
        &mut self,
        now: SimTime,
        handle: Self::Handle,
        threads: u32,
        work: SimDuration,
    ) -> Admission {
        KeyedCosmicDevice::request_offload(self, now, handle, threads, work)
    }

    fn complete_offload_into(
        &mut self,
        now: SimTime,
        handle: Self::Handle,
        grants: &mut Vec<OffloadGrant>,
    ) {
        // The seed's allocation: complete builds and returns a fresh Vec.
        grants.extend(self.complete_offload(now, handle));
    }

    fn on_commit(&self, handle: Self::Handle, committed_mb: u64) -> ContainerVerdict {
        KeyedCosmicDevice::on_commit(self, handle, committed_mb)
    }

    fn registered_jobs(&self) -> usize {
        KeyedCosmicDevice::registered_jobs(self)
    }

    fn queue_wait_count(&self) -> usize {
        self.queue_wait.count()
    }

    fn queue_wait_mean(&self) -> f64 {
        self.queue_wait.mean()
    }
}
