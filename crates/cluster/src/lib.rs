//! # phishare-cluster — end-to-end cluster simulation
//!
//! Assembles the full stack the paper evaluates (§V):
//!
//! ```text
//!            ┌──────────────────────────────────┐
//!            │ sharing-aware scheduler (MCCK)   │  phishare-core
//!            │   or random selection (MCC)      │
//!            └────────────┬─────────────────────┘
//!                         │ condor_qedit pinning
//!            ┌────────────▼─────────────────────┐
//!            │ mini-HTCondor: queue, collector, │  phishare-condor
//!            │ negotiator (periodic cycles)     │
//!            └────────────┬─────────────────────┘
//!                         │ dispatch
//!   per node  ┌───────────▼──────────────────────┐
//!            │ COSMIC middleware (admission,     │  phishare-cosmic
//!            │ affinity, containers)             │
//!            └────────────┬──────────────────────┘
//!                         │ offloads
//!            ┌────────────▼──────────────────────┐
//!            │ Xeon Phi device model             │  phishare-phi
//!            └───────────────────────────────────┘
//! ```
//!
//! driven by the deterministic event engine of `phishare-sim`.
//!
//! * [`config`] — cluster shape and software-stack configuration;
//! * [`fault`] — deterministic fault injection (device resets, node churn)
//!   and the recovery knobs (retry backoff, host fallback);
//! * [`perturb`] — deterministic chaos perturbations (thermal derates,
//!   offload-latency spikes, stale collector ads, negotiation jitter);
//! * [`runtime`] — the discrete-event world: job lifecycle, negotiation
//!   cycles, offload execution, failures;
//! * [`metrics`] — the measurements the paper reports (makespan, core
//!   utilization, waits, crashes);
//! * [`footprint`] — "smallest cluster that matches a target makespan"
//!   search (Tables II and III);
//! * [`sweep`] — a parallel parameter-sweep harness for the figure-scale
//!   experiments (many independent simulations across worker threads);
//! * [`shard`] — the process-sharded sweep engine: manifest + lease-claimed
//!   worker processes + fsync'd JSONL checkpoints with `--resume`, merged
//!   bit-identical to [`sweep::run_sweep`];
//! * [`substrate`] — the state-storage seam: slab-backed fast device/COSMIC
//!   state vs. the seed's map-backed oracle, kept bit-identical;
//! * [`report`] — plain-text table formatting for the bench harnesses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod config;
pub mod fault;
pub mod footprint;
pub mod host;
pub mod metrics;
pub mod perturb;
pub mod report;
pub mod runtime;
pub mod shard;
pub mod substrate;
pub mod sweep;
pub mod trace;

pub use audit::audit;
pub use config::{ClusterConfig, DevicePool, DeviceSku, DeviceSpec};
pub use fault::{FallbackPolicy, FaultConfig, FaultEvent, FaultKind, FaultPlan, RecoveryConfig};
pub use footprint::{footprint_search, FootprintResult, FootprintSearcher};
pub use metrics::ExperimentResult;
pub use perturb::{
    DerateSpec, LatencySpec, PerturbConfig, PerturbEvent, PerturbKind, PerturbPlan, Perturbation,
    StaleAdsSpec,
};
pub use runtime::{Experiment, ExperimentScratch, SubstrateMode};
pub use shard::{
    default_workers, run_sweep_sharded, run_worker, run_worker_with, worker_main, CellRecord,
    ManifestCell, ShardManifest, ShardOptions,
};
pub use substrate::{CosmicSubstrate, DeviceSubstrate};
pub use sweep::{
    default_threads, run_sweep, run_sweep_auto, run_sweep_keyed, run_sweep_substrate_auto,
    SweepJob, SweepOutcome,
};
pub use trace::{KillReason, Trace, TraceEvent};
