//! Experiment measurements.

use phishare_core::ClusterPolicy;
use phishare_sim::SimTime;
use serde::{Deserialize, Serialize};

/// Everything one simulation run reports — the quantities behind the paper's
/// tables and figures.
///
/// Equality is implemented manually: [`ExperimentResult::plan_ms`] is
/// wall-clock measurement, not simulation output, and
/// [`ExperimentResult::cycles_skipped`] only records how much work the
/// quiescence fast path avoided, so both are excluded — bit-identity
/// assertions across event modes, planner modes, partition counts, and
/// quiescence settings compare everything else.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// Which stack ran.
    pub policy: ClusterPolicy,
    /// Cluster size (nodes).
    pub nodes: u32,
    /// Workload label.
    pub workload: String,
    /// Number of jobs submitted.
    pub jobs: usize,
    /// Jobs that completed successfully.
    pub completed: usize,
    /// Jobs killed by COSMIC containers (declared-limit overrun).
    pub container_kills: usize,
    /// Jobs killed by the device OOM killer (physical oversubscription).
    pub oom_kills: usize,
    /// Time of the last job completion — the makespan, seconds.
    pub makespan_secs: f64,
    /// Mean fraction of hardware threads busy across all devices.
    pub thread_utilization: f64,
    /// Mean fraction of cores busy across all devices — the §III metric.
    pub core_utilization: f64,
    /// Mean fraction of usable device memory committed.
    pub mem_utilization: f64,
    /// Mean fraction of time each device had at least one active offload.
    pub device_busy_fraction: f64,
    /// Mean fraction of host cores busy with jobs' host phases.
    pub host_core_utilization: f64,
    /// Mean job wait (submission → dispatch), seconds.
    pub mean_wait_secs: f64,
    /// Mean job turnaround (submission → completion), seconds.
    pub mean_turnaround_secs: f64,
    /// Mean time offloads spent queued by COSMIC admission, seconds.
    pub mean_offload_queue_secs: f64,
    /// Negotiation cycles that ran.
    pub negotiation_cycles: u64,
    /// Negotiation cycles skipped by quiescence detection: the runtime
    /// proved the cycle a no-op (no world mutation since the last cycle,
    /// every idle certificate standing) and bumped only this counter.
    /// Included in `negotiation_cycles`. Excluded from equality — skipping
    /// is a wall-clock optimization whose on/off state must not make two
    /// otherwise-identical runs compare unequal.
    pub cycles_skipped: u64,
    /// Placement pins issued by the cluster scheduler (0 for MC).
    pub pins_issued: u64,
    /// Total coprocessor energy over the run, kWh (idle + dynamic draw of
    /// every card; the footprint argument in joules).
    pub energy_kwh: f64,
    /// Live discrete events handled (simulation cost, for the perf
    /// benches). Stale prediction deliveries are excluded, so the count is
    /// identical across event-scheduling modes.
    pub events_processed: u64,
    /// Injected MPSS/device resets that actually struck (strikes on an
    /// already-down target are absorbed and not counted).
    pub device_resets: u64,
    /// Injected node-churn events that actually struck.
    pub node_churns: u64,
    /// Fault-vacated jobs returned to the queue with a backoff delay.
    pub retries: u64,
    /// Offload segments that ran host-side under the fallback policy.
    pub fallback_offloads: u64,
    /// Chaos perturbation windows that opened during the run.
    pub perturb_windows: u64,
    /// Negotiation cycles that ran on stale collector ads (the refresh
    /// was skipped because a stale-ads window was open).
    pub stale_ad_skips: u64,
    /// Cycle requests whose trigger instant was delayed by injected
    /// jitter. Counts requests, not executions — a jittered request can
    /// still be superseded by an earlier one, so this may exceed
    /// `negotiation_cycles`.
    pub jittered_cycles: u64,
    /// Offload segments whose service demand was inflated by a latency
    /// spike window.
    pub inflated_offloads: u64,
    /// Matches gracefully undone because stale ads promised a device the
    /// node could no longer supply.
    pub stale_match_rejects: u64,
    /// Jobs held permanently after exhausting their retry budget.
    pub held_after_retries: usize,
    /// Planner solves answered from the solve memo (MCCK fast path; 0 for
    /// other policies and for the naive-serial planner).
    pub plan_cache_hits: u64,
    /// Planner solves that ran a DP serially.
    pub plan_cache_misses: u64,
    /// Wall-clock spent inside `ClusterScheduler::plan` over the whole run,
    /// milliseconds. Measurement only — excluded from equality.
    pub plan_ms: f64,
}

impl PartialEq for ExperimentResult {
    fn eq(&self, other: &Self) -> bool {
        // Every field except `plan_ms` (nondeterministic wall-clock) and
        // `cycles_skipped` (work-avoidance accounting; differs between
        // skip-on and skip-off twins whose results are otherwise equal).
        self.policy == other.policy
            && self.nodes == other.nodes
            && self.workload == other.workload
            && self.jobs == other.jobs
            && self.completed == other.completed
            && self.container_kills == other.container_kills
            && self.oom_kills == other.oom_kills
            && self.makespan_secs == other.makespan_secs
            && self.thread_utilization == other.thread_utilization
            && self.core_utilization == other.core_utilization
            && self.mem_utilization == other.mem_utilization
            && self.device_busy_fraction == other.device_busy_fraction
            && self.host_core_utilization == other.host_core_utilization
            && self.mean_wait_secs == other.mean_wait_secs
            && self.mean_turnaround_secs == other.mean_turnaround_secs
            && self.mean_offload_queue_secs == other.mean_offload_queue_secs
            && self.negotiation_cycles == other.negotiation_cycles
            && self.pins_issued == other.pins_issued
            && self.energy_kwh == other.energy_kwh
            && self.events_processed == other.events_processed
            && self.device_resets == other.device_resets
            && self.node_churns == other.node_churns
            && self.retries == other.retries
            && self.fallback_offloads == other.fallback_offloads
            && self.perturb_windows == other.perturb_windows
            && self.stale_ad_skips == other.stale_ad_skips
            && self.jittered_cycles == other.jittered_cycles
            && self.inflated_offloads == other.inflated_offloads
            && self.stale_match_rejects == other.stale_match_rejects
            && self.held_after_retries == other.held_after_retries
            && self.plan_cache_hits == other.plan_cache_hits
            && self.plan_cache_misses == other.plan_cache_misses
    }
}

impl ExperimentResult {
    /// Makespan as a [`SimTime`] (for footprint comparisons).
    pub fn makespan(&self) -> SimTime {
        SimTime::from_ticks((self.makespan_secs * 1000.0).round() as u64)
    }

    /// Percentage reduction of this run's makespan relative to `baseline`.
    pub fn makespan_reduction_vs(&self, baseline: &ExperimentResult) -> f64 {
        if baseline.makespan_secs == 0.0 {
            return 0.0;
        }
        100.0 * (1.0 - self.makespan_secs / baseline.makespan_secs)
    }

    /// True when every submitted job completed (no kills, no leftovers).
    pub fn all_completed(&self) -> bool {
        self.completed == self.jobs
    }

    /// Fraction of submitted jobs that completed (degradation metric for
    /// the fault experiments).
    pub fn completion_rate(&self) -> f64 {
        if self.jobs == 0 {
            return 1.0;
        }
        self.completed as f64 / self.jobs as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(makespan: f64) -> ExperimentResult {
        ExperimentResult {
            policy: ClusterPolicy::Mc,
            nodes: 8,
            workload: "test".into(),
            jobs: 10,
            completed: 10,
            container_kills: 0,
            oom_kills: 0,
            makespan_secs: makespan,
            thread_utilization: 0.5,
            core_utilization: 0.5,
            mem_utilization: 0.2,
            device_busy_fraction: 0.6,
            host_core_utilization: 0.1,
            mean_wait_secs: 1.0,
            mean_turnaround_secs: 2.0,
            mean_offload_queue_secs: 0.0,
            negotiation_cycles: 3,
            cycles_skipped: 0,
            pins_issued: 0,
            energy_kwh: 1.0,
            events_processed: 100,
            device_resets: 0,
            node_churns: 0,
            retries: 0,
            fallback_offloads: 0,
            perturb_windows: 0,
            stale_ad_skips: 0,
            jittered_cycles: 0,
            inflated_offloads: 0,
            stale_match_rejects: 0,
            held_after_retries: 0,
            plan_cache_hits: 0,
            plan_cache_misses: 0,
            plan_ms: 0.0,
        }
    }

    #[test]
    fn equality_ignores_plan_wall_clock_only() {
        let a = result(1.0);
        let mut b = result(1.0);
        b.plan_ms = 123.456;
        assert_eq!(a, b, "plan_ms is measurement, not simulation output");
        b.cycles_skipped = 2;
        assert_eq!(a, b, "cycles_skipped is work-avoidance accounting");
        b.plan_cache_hits = 1;
        assert_ne!(a, b, "cache counters are deterministic and must compare");
    }

    #[test]
    fn reduction_math() {
        let base = result(1000.0);
        let better = result(610.0);
        assert!((better.makespan_reduction_vs(&base) - 39.0).abs() < 1e-9);
        assert_eq!(base.makespan_reduction_vs(&base), 0.0);
    }

    #[test]
    fn makespan_round_trip() {
        let r = result(12.345);
        assert_eq!(r.makespan().as_secs_f64(), 12.345);
    }

    #[test]
    fn completion_check() {
        let mut r = result(1.0);
        assert!(r.all_completed());
        assert_eq!(r.completion_rate(), 1.0);
        r.completed = 9;
        assert!(!r.all_completed());
        assert!((r.completion_rate() - 0.9).abs() < 1e-12);
    }
}
