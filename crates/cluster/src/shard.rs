//! Process-sharded sweep engine with checkpoint/resume.
//!
//! [`crate::sweep`] fans a grid out over worker *threads*; this module fans
//! the same grid out over worker *processes*, so figure-scale studies can
//! outgrow one address space (and, with a shared filesystem, one machine)
//! without changing their results:
//!
//! 1. The parent serializes the grid into a JSON **manifest**: a small
//!    `manifest.json` (the substrate and one cell per grid index — label +
//!    config + workload reference) plus one `workloads/wl-<i>.json` file
//!    per deduplicated workload. Workloads live outside the cell manifest
//!    so a worker only ever deserializes the ones behind cells it actually
//!    claims — per-worker load cost is O(claimed cells), not O(grid),
//!    which is what keeps weak scaling flat as the grid grows with the
//!    worker count.
//! 2. It spawns N workers (`<exe> --worker --dir <dir> --worker-id <k>`).
//!    Workers claim cells work-stealing-style: an atomic
//!    `O_CREAT|O_EXCL` create of `leases/cell-<idx>.lease` is the claim, so
//!    each cell is executed by exactly one worker per generation.
//! 3. Each worker appends finished cells to its own `results-w<k>.jsonl`
//!    log — one fsync'd record per line — and every record carries the
//!    cell's grid index.
//! 4. The parent merges all logs through the same [`OrderedSlots`]
//!    submission-order reassembly the in-process sweep uses: duplicate
//!    indices and holes are hard errors, so a successful merge proves every
//!    cell ran exactly once.
//!
//! Because workers execute cells through the same
//! [`run_cell`](crate::sweep) body as the thread sweep and the merge is
//! index-ordered, a sharded sweep is **bit-identical** to
//! [`run_sweep`](crate::sweep::run_sweep) on the same grid — the sharded
//! path stays a differential oracle of the in-process one.
//!
//! **Checkpoint/resume:** the JSONL logs are the checkpoint. A killed sweep
//! relaunched with [`ShardOptions::resume`] re-verifies the manifest
//! against the rebuilt grid, clears stale leases, and spawns a fresh worker
//! generation that skips every cell already recorded — including repairing
//! a torn final record in a log (a partial line is truncated away and the
//! cell re-runs). The resumed merge is bit-identical to an uninterrupted
//! run.

use crate::config::ClusterConfig;
use crate::metrics::ExperimentResult;
use crate::runtime::{ExperimentScratch, SubstrateMode};
use crate::sweep::{run_cell, OrderedSlots, SweepJob, SweepOutcome};
use phishare_workload::Workload;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::str::FromStr;
use std::sync::Arc;

/// One grid cell as persisted in the manifest. `workload` indexes into
/// [`ShardManifest::workloads`] (workloads are shared across cells, so the
/// manifest stores each distinct one once).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ManifestCell {
    /// Label reported back with the result.
    pub label: String,
    /// Cluster configuration for this cell.
    pub config: ClusterConfig,
    /// Index into the manifest's workload table.
    pub workload: usize,
}

/// The sweep grid a worker process reconstructs its jobs from. On disk
/// this splits into a small `manifest.json` ([`ManifestHeader`]) and one
/// `workloads/wl-<i>.json` per distinct workload, so workers can load
/// workloads lazily; in memory it carries everything.
#[derive(Debug, Clone)]
pub struct ShardManifest {
    /// Substrate mode for every cell, in its CLI spelling
    /// (round-trips through [`SubstrateMode::from_str`]).
    pub substrate: String,
    /// Distinct workloads, referenced by index from the cells.
    pub workloads: Vec<Workload>,
    /// The grid, in submission order.
    pub cells: Vec<ManifestCell>,
}

/// What `manifest.json` actually holds: everything except the workload
/// bodies, which sit in `workloads/wl-<i>.json` and are loaded on demand.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ManifestHeader {
    substrate: String,
    workloads: usize,
    cells: Vec<ManifestCell>,
}

/// One fsync'd line of a worker's `results-w<k>.jsonl` checkpoint log.
/// Exactly one of `ok`/`err` is populated (both fields are always
/// serialized; the vendored serde treats a missing key as corruption).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CellRecord {
    /// Grid index of the cell (position in [`ShardManifest::cells`]).
    pub index: usize,
    /// The cell's label, re-checked against the manifest at merge time.
    pub label: String,
    /// The result, when the simulation succeeded.
    pub ok: Option<ExperimentResult>,
    /// The error string, when it failed.
    pub err: Option<String>,
}

/// How [`run_sweep_sharded`] lays out and drives a sharded sweep.
#[derive(Debug, Clone)]
pub struct ShardOptions {
    /// Worker processes to spawn (clamped to the cell count, min 1).
    pub workers: usize,
    /// Executable to spawn workers from; it must understand
    /// `--worker --dir <dir> --worker-id <k>` (both `phishare` and
    /// `phishare-bench` do).
    pub worker_exe: PathBuf,
    /// Checkpoint directory. `None` uses a fresh temp dir that is removed
    /// on success and kept (and printed in the error) on failure.
    pub dir: Option<PathBuf>,
    /// Resume a previous run in `dir`: verify the manifest still matches
    /// the grid, then skip every cell already checkpointed.
    pub resume: bool,
    /// Keep an auto temp dir even after a fully successful merge (for
    /// inspection). Caller-supplied dirs are always kept — the checkpoint
    /// belongs to whoever created the directory.
    pub keep_dir: bool,
    /// Substrate every cell runs on.
    pub substrate: SubstrateMode,
}

impl ShardOptions {
    /// Options for `workers` processes spawned from this process's own
    /// executable — the common case for benches and the CLI, whose
    /// binaries all accept the worker-mode flags.
    pub fn from_current_exe(workers: usize) -> Result<Self, String> {
        let exe = std::env::current_exe()
            .map_err(|e| format!("cannot locate current executable for worker spawn: {e}"))?;
        Ok(Self {
            workers,
            worker_exe: exe,
            dir: None,
            resume: false,
            keep_dir: false,
            substrate: SubstrateMode::Fast,
        })
    }
}

/// Default worker-process count: the `PHISHARE_SWEEP_WORKERS` environment
/// variable when set to a positive integer, otherwise the thread-sweep
/// default ([`crate::sweep::default_threads`]).
pub fn default_workers() -> usize {
    let raw = std::env::var("PHISHARE_SWEEP_WORKERS").ok();
    crate::sweep::threads_override(raw.as_deref()).unwrap_or_else(crate::sweep::default_threads)
}

fn manifest_path(dir: &Path) -> PathBuf {
    dir.join("manifest.json")
}

fn leases_dir(dir: &Path) -> PathBuf {
    dir.join("leases")
}

fn workload_path(dir: &Path, index: usize) -> PathBuf {
    dir.join("workloads").join(format!("wl-{index}.json"))
}

fn log_path(dir: &Path, worker_id: usize) -> PathBuf {
    dir.join(format!("results-w{worker_id}.jsonl"))
}

/// Build the manifest for a grid: deduplicate the `Arc<Workload>`s by
/// pointer identity and reference them by index from the cells.
pub fn build_manifest(jobs: &[SweepJob], substrate: SubstrateMode) -> ShardManifest {
    let mut workloads: Vec<Workload> = Vec::new();
    let mut by_ptr: HashMap<usize, usize> = HashMap::new();
    let cells = jobs
        .iter()
        .map(|job| {
            let ptr = Arc::as_ptr(&job.workload) as usize;
            let widx = *by_ptr.entry(ptr).or_insert_with(|| {
                workloads.push((*job.workload).clone());
                workloads.len() - 1
            });
            ManifestCell {
                label: job.label.clone(),
                config: job.config,
                workload: widx,
            }
        })
        .collect();
    ShardManifest {
        substrate: substrate.to_string(),
        workloads,
        cells,
    }
}

fn write_json_file<T: Serialize>(path: &Path, value: &T) -> Result<(), String> {
    let json = serde_json::to_string(value).map_err(|e| format!("serialize: {e}"))?;
    let mut file =
        File::create(path).map_err(|e| format!("cannot create {}: {e}", path.display()))?;
    file.write_all(json.as_bytes())
        .and_then(|_| file.sync_data())
        .map_err(|e| format!("cannot write {}: {e}", path.display()))
}

/// Create the checkpoint directory layout and persist the manifest: the
/// workload files first, then `manifest.json` as the commit point.
/// Refuses to overwrite an existing manifest — resuming is explicit.
pub fn write_manifest(dir: &Path, manifest: &ShardManifest) -> Result<(), String> {
    fs::create_dir_all(leases_dir(dir))
        .map_err(|e| format!("cannot create shard dir {}: {e}", dir.display()))?;
    fs::create_dir_all(dir.join("workloads"))
        .map_err(|e| format!("cannot create shard dir {}: {e}", dir.display()))?;
    let path = manifest_path(dir);
    if path.exists() {
        return Err(format!(
            "{} already holds a sweep manifest; pass resume to continue it",
            dir.display()
        ));
    }
    for (idx, workload) in manifest.workloads.iter().enumerate() {
        write_json_file(&workload_path(dir, idx), workload)?;
    }
    let header = ManifestHeader {
        substrate: manifest.substrate.clone(),
        workloads: manifest.workloads.len(),
        cells: manifest.cells.clone(),
    };
    write_json_file(&path, &header)
}

fn load_header(dir: &Path) -> Result<ManifestHeader, String> {
    let path = manifest_path(dir);
    let text =
        fs::read_to_string(&path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    serde_json::from_str(&text).map_err(|e| format!("bad manifest {}: {e}", path.display()))
}

fn load_workload(dir: &Path, index: usize) -> Result<Workload, String> {
    let path = workload_path(dir, index);
    let text =
        fs::read_to_string(&path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    serde_json::from_str(&text).map_err(|e| format!("bad workload {}: {e}", path.display()))
}

/// Load the full manifest of an existing checkpoint directory, workload
/// bodies included. Workers don't use this — they load the header and then
/// only the workloads behind cells they claim.
pub fn load_manifest(dir: &Path) -> Result<ShardManifest, String> {
    let header = load_header(dir)?;
    let workloads = (0..header.workloads)
        .map(|idx| load_workload(dir, idx))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(ShardManifest {
        substrate: header.substrate,
        workloads,
        cells: header.cells,
    })
}

/// Reconstruct the sweep jobs a manifest describes (each distinct workload
/// is materialized once and shared across its cells, like the original
/// grid).
pub fn manifest_jobs(manifest: &ShardManifest) -> Result<Vec<SweepJob>, String> {
    let workloads: Vec<Arc<Workload>> = manifest
        .workloads
        .iter()
        .map(|w| Arc::new(w.clone()))
        .collect();
    manifest
        .cells
        .iter()
        .map(|cell| {
            let workload = workloads.get(cell.workload).ok_or_else(|| {
                format!(
                    "cell {:?} references workload {} but the manifest has {}",
                    cell.label,
                    cell.workload,
                    workloads.len()
                )
            })?;
            Ok(SweepJob {
                label: cell.label.clone(),
                config: cell.config,
                workload: Arc::clone(workload),
            })
        })
        .collect()
}

/// Parse one checkpoint log. Complete lines must parse as [`CellRecord`]s;
/// a torn *final* line (a crash mid-append, or a log truncated by the
/// recovery tests) is tolerated and reported via the second tuple element
/// so the caller can re-run that cell. Garbage anywhere else is corruption
/// and a hard error.
fn scan_log(path: &Path) -> Result<(Vec<CellRecord>, bool), String> {
    let bytes = match fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok((Vec::new(), false)),
        Err(e) => return Err(format!("cannot read {}: {e}", path.display())),
    };
    let mut records = Vec::new();
    let mut chunks = bytes.split(|&b| b == b'\n').peekable();
    let mut line_no = 0usize;
    while let Some(chunk) = chunks.next() {
        let is_last = chunks.peek().is_none();
        line_no += 1;
        if chunk.is_empty() {
            continue;
        }
        let parsed = std::str::from_utf8(chunk)
            .map_err(|e| e.to_string())
            .and_then(|line| serde_json::from_str::<CellRecord>(line).map_err(|e| e.to_string()));
        match parsed {
            Ok(record) => records.push(record),
            // Only the unterminated tail may be torn; it is simply not a
            // checkpoint yet.
            Err(_) if is_last => return Ok((records, true)),
            Err(e) => {
                return Err(format!(
                    "corrupt checkpoint record at {}:{line_no}: {e}",
                    path.display()
                ))
            }
        }
    }
    Ok((records, false))
}

/// Truncate a torn final record off this worker's own log so appends start
/// at a record boundary. (Records are single-`write` lines flushed with
/// `fsync`, so only the final line can ever be torn.)
fn repair_log(path: &Path) -> Result<(), String> {
    let bytes = match fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
        Err(e) => return Err(format!("cannot read {}: {e}", path.display())),
    };
    let keep = match bytes.iter().rposition(|&b| b == b'\n') {
        Some(pos) if pos + 1 < bytes.len() => pos + 1,
        None if !bytes.is_empty() => 0,
        _ => return Ok(()), // already ends at a record boundary
    };
    let file = OpenOptions::new()
        .write(true)
        .open(path)
        .map_err(|e| format!("cannot open {} for repair: {e}", path.display()))?;
    file.set_len(keep as u64)
        .and_then(|_| file.sync_data())
        .map_err(|e| format!("cannot truncate {}: {e}", path.display()))
}

fn record_outcome(record: CellRecord) -> Result<(usize, SweepOutcome), String> {
    let CellRecord {
        index,
        label,
        ok,
        err,
    } = record;
    match (ok, err) {
        (Some(result), None) => Ok((index, (label, Ok(result)))),
        (None, Some(message)) => Ok((index, (label, Err(message)))),
        _ => Err(format!(
            "checkpoint record for cell {index} ({label:?}) must have exactly one of ok/err"
        )),
    }
}

/// Every checkpointed record across all worker logs in `dir`, in log order.
fn scan_all_logs(dir: &Path) -> Result<Vec<CellRecord>, String> {
    let mut paths: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| format!("cannot list {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("results-w") && n.ends_with(".jsonl"))
        })
        .collect();
    paths.sort();
    let mut records = Vec::new();
    for path in paths {
        let (mut recs, _torn_tail) = scan_log(&path)?;
        records.append(&mut recs);
    }
    Ok(records)
}

/// Run one worker process's share of the sweep in `dir`: repair our own
/// log, skip everything already checkpointed, then claim cells through
/// lease files until the grid is exhausted. Returns the number of cells
/// this worker executed.
///
/// This is the body behind `--worker --dir <dir> --worker-id <k>`.
pub fn run_worker(dir: &Path, worker_id: usize) -> Result<usize, String> {
    run_worker_with(dir, worker_id, None)
}

/// [`run_worker`] with an optional collector-partition override applied to
/// every cell this worker executes (the `--partitions` worker flag).
/// Results are partition-count-invariant, so two workers on the same grid
/// may use different values without corrupting the merge.
pub fn run_worker_with(
    dir: &Path,
    worker_id: usize,
    partitions: Option<usize>,
) -> Result<usize, String> {
    let header = load_header(dir)?;
    let substrate = SubstrateMode::from_str(&header.substrate)?;

    let own_log = log_path(dir, worker_id);
    repair_log(&own_log)?;
    let mut completed = vec![false; header.cells.len()];
    for record in scan_all_logs(dir)? {
        let Some(slot) = completed.get_mut(record.index) else {
            return Err(format!(
                "checkpoint record index {} out of range for {} cells",
                record.index,
                header.cells.len()
            ));
        };
        *slot = true;
    }

    let mut log = OpenOptions::new()
        .append(true)
        .create(true)
        .open(&own_log)
        .map_err(|e| format!("cannot open {}: {e}", own_log.display()))?;
    let leases = leases_dir(dir);
    let mut scratch = ExperimentScratch::new();
    // Workload bodies load lazily, only after winning a claim — a worker
    // never pays for cells another worker runs. Cells sharing a workload
    // share one materialization, exactly like the original grid.
    let mut workload_cache: HashMap<usize, Arc<Workload>> = HashMap::new();
    let mut ran = 0usize;
    for (idx, cell) in header.cells.iter().enumerate() {
        if completed[idx] {
            continue;
        }
        // The claim: O_CREAT|O_EXCL is atomic, so exactly one worker per
        // generation wins each cell.
        let lease = leases.join(format!("cell-{idx}.lease"));
        match OpenOptions::new().write(true).create_new(true).open(&lease) {
            Ok(_) => {}
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => continue,
            Err(e) => return Err(format!("cannot claim {}: {e}", lease.display())),
        }
        let workload = match workload_cache.get(&cell.workload) {
            Some(wl) => Arc::clone(wl),
            None => {
                let wl = Arc::new(load_workload(dir, cell.workload)?);
                workload_cache.insert(cell.workload, Arc::clone(&wl));
                wl
            }
        };
        let mut config = cell.config;
        if let Some(p) = partitions {
            config.partitions = p;
        }
        let job = SweepJob {
            label: cell.label.clone(),
            config,
            workload,
        };
        let outcome = run_cell(&job, substrate, &mut scratch);
        let record = CellRecord {
            index: idx,
            label: job.label.clone(),
            ok: outcome.as_ref().ok().cloned(),
            err: outcome.as_ref().err().cloned(),
        };
        let json = serde_json::to_string(&record).map_err(|e| format!("record serialize: {e}"))?;
        // One write for the whole line, then fsync: the record is either
        // durably whole or a torn tail the next generation truncates.
        log.write_all(format!("{json}\n").as_bytes())
            .and_then(|_| log.sync_data())
            .map_err(|e| format!("cannot checkpoint to {}: {e}", own_log.display()))?;
        ran += 1;
    }
    Ok(ran)
}

/// Parse the worker-mode command line shared by every binary that can be
/// spawned as a sweep worker:
/// `--worker --dir <dir> --worker-id <k> [--partitions <p>]`
/// (the leading `--worker` may or may not still be in `args`). Returns the
/// checkpoint dir, the worker id, and the optional collector-partition
/// override. `--partitions` is safe to vary per invocation because match
/// results are partition-count-invariant: it changes how fast cells run,
/// never what they report. When absent, each cell's own config decides
/// (and a config of 0 defers to `PHISHARE_COLLECTOR_PARTITIONS`).
pub fn parse_worker_args(args: &[String]) -> Result<(PathBuf, usize, Option<usize>), String> {
    let mut dir: Option<PathBuf> = None;
    let mut worker_id: Option<usize> = None;
    let mut partitions: Option<usize> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--worker" => {}
            "--dir" => {
                let value = iter.next().ok_or("--dir needs a value")?;
                dir = Some(PathBuf::from(value));
            }
            "--worker-id" => {
                let value = iter.next().ok_or("--worker-id needs a value")?;
                worker_id = Some(
                    value
                        .parse::<usize>()
                        .map_err(|_| format!("bad --worker-id '{value}'"))?,
                );
            }
            "--partitions" => {
                let value = iter.next().ok_or("--partitions needs a value")?;
                let p = value
                    .parse::<usize>()
                    .map_err(|_| format!("bad --partitions '{value}'"))?;
                if p == 0 || p > phishare_condor::collector::MAX_PARTITIONS {
                    return Err(format!(
                        "--partitions must be 1..={}, got {p}",
                        phishare_condor::collector::MAX_PARTITIONS
                    ));
                }
                partitions = Some(p);
            }
            other => return Err(format!("unknown worker-mode flag '{other}'")),
        }
    }
    Ok((
        dir.ok_or("worker mode needs --dir <checkpoint dir>")?,
        worker_id.ok_or("worker mode needs --worker-id <n>")?,
        partitions,
    ))
}

/// The full worker-mode entry point: parse `args`, run our share of the
/// sweep, and report the executed-cell count on success. Binaries call
/// this when their first argument is `--worker`.
pub fn worker_main(args: &[String]) -> Result<usize, String> {
    let (dir, worker_id, partitions) = parse_worker_args(args)?;
    run_worker_with(&dir, worker_id, partitions)
}

/// Merge every worker log in `dir` back into submission order. Labels are
/// re-checked against the manifest, and — exactly like the in-process
/// collector — a duplicate index or a missing cell is a hard error, so a
/// successful merge proves each cell ran exactly once.
pub fn merge_results(dir: &Path) -> Result<Vec<SweepOutcome>, String> {
    let header = load_header(dir)?;
    let mut slots = OrderedSlots::new(header.cells.len());
    for record in scan_all_logs(dir)? {
        let (idx, outcome) = record_outcome(record)?;
        let expected = header
            .cells
            .get(idx)
            .map(|c| c.label.as_str())
            .unwrap_or("<out of range>");
        if outcome.0 != expected {
            return Err(format!(
                "checkpoint record for cell {idx} is labeled {:?} but the manifest says {:?}",
                outcome.0, expected
            ));
        }
        slots.insert(idx, outcome)?;
    }
    slots.finish()
}

/// Remove stale lease files so a fresh worker generation re-arbitrates
/// every not-yet-checkpointed cell (a worker killed after claiming but
/// before checkpointing must not orphan its cell).
fn clear_leases(dir: &Path) -> Result<(), String> {
    let leases = leases_dir(dir);
    fs::create_dir_all(&leases).map_err(|e| format!("cannot create {}: {e}", leases.display()))?;
    for entry in
        fs::read_dir(&leases).map_err(|e| format!("cannot list {}: {e}", leases.display()))?
    {
        let path = entry
            .map_err(|e| format!("cannot list {}: {e}", leases.display()))?
            .path();
        fs::remove_file(&path).map_err(|e| format!("cannot clear {}: {e}", path.display()))?;
    }
    Ok(())
}

/// Check that the manifest in a resumed directory still describes the grid
/// the caller rebuilt — same substrate, same cells, same workloads — so a
/// resume can never silently merge results from a different experiment.
fn verify_manifest(manifest: &ShardManifest, fresh: &ShardManifest) -> Result<(), String> {
    if manifest.substrate != fresh.substrate {
        return Err(format!(
            "resume substrate mismatch: checkpoint ran {:?}, caller wants {:?}",
            manifest.substrate, fresh.substrate
        ));
    }
    if manifest.cells.len() != fresh.cells.len() {
        return Err(format!(
            "resume grid mismatch: checkpoint has {} cells, caller built {}",
            manifest.cells.len(),
            fresh.cells.len()
        ));
    }
    for (idx, (old, new)) in manifest.cells.iter().zip(fresh.cells.iter()).enumerate() {
        if old.label != new.label || old.config != new.config {
            return Err(format!(
                "resume grid mismatch at cell {idx}: checkpoint has {:?}, caller built {:?}",
                old.label, new.label
            ));
        }
        let old_wl = manifest.workloads.get(old.workload);
        let new_wl = fresh.workloads.get(new.workload);
        match (old_wl, new_wl) {
            (Some(a), Some(b)) if a == b => {}
            _ => {
                return Err(format!(
                    "resume workload mismatch at cell {idx} ({:?})",
                    old.label
                ))
            }
        }
    }
    Ok(())
}

fn unique_temp_dir() -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos())
        .unwrap_or(0);
    std::env::temp_dir().join(format!(
        "phishare-sweep-{}-{}-{nanos}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Run a sweep grid across worker processes and merge the results back
/// into submission order — bit-identical to
/// [`run_sweep`](crate::sweep::run_sweep) on the same grid.
///
/// Fresh runs write the manifest (refusing to clobber an existing one);
/// resumed runs verify it against the rebuilt grid and skip checkpointed
/// cells. Stale leases are always cleared before the worker generation
/// starts. On failure the checkpoint directory is kept so the sweep can be
/// resumed; an auto temp dir is removed only after a fully successful
/// merge.
pub fn run_sweep_sharded(
    jobs: Vec<SweepJob>,
    opts: &ShardOptions,
) -> Result<Vec<SweepOutcome>, String> {
    if jobs.is_empty() {
        return Ok(Vec::new());
    }
    let (dir, auto_dir) = match &opts.dir {
        Some(dir) => (dir.clone(), false),
        None => (unique_temp_dir(), true),
    };
    let fresh = build_manifest(&jobs, opts.substrate);
    if opts.resume {
        verify_manifest(&load_manifest(&dir)?, &fresh)?;
    } else {
        write_manifest(&dir, &fresh)?;
    }
    clear_leases(&dir)?;

    let workers = opts.workers.min(jobs.len()).max(1);
    let mut children = Vec::with_capacity(workers);
    for worker_id in 0..workers {
        let child = std::process::Command::new(&opts.worker_exe)
            .arg("--worker")
            .arg("--dir")
            .arg(&dir)
            .arg("--worker-id")
            .arg(worker_id.to_string())
            .spawn()
            .map_err(|e| {
                format!(
                    "cannot spawn worker {} from {}: {e}",
                    worker_id,
                    opts.worker_exe.display()
                )
            })?;
        children.push((worker_id, child));
    }
    let mut failures = Vec::new();
    for (worker_id, mut child) in children {
        match child.wait() {
            Ok(status) if status.success() => {}
            Ok(status) => failures.push(format!("worker {worker_id} exited with {status}")),
            Err(e) => failures.push(format!("worker {worker_id} could not be waited on: {e}")),
        }
    }
    if !failures.is_empty() {
        return Err(format!(
            "sharded sweep failed ({}); checkpoint kept at {} — rerun with resume",
            failures.join("; "),
            dir.display()
        ));
    }
    let merged = merge_results(&dir).map_err(|e| {
        format!(
            "{e}; checkpoint kept at {} — rerun with resume",
            dir.display()
        )
    })?;
    if auto_dir && !opts.keep_dir {
        let _ = fs::remove_dir_all(&dir);
    }
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use phishare_core::ClusterPolicy;
    use phishare_workload::{WorkloadBuilder, WorkloadKind};

    fn grid() -> Vec<SweepJob> {
        let wl = Arc::new(
            WorkloadBuilder::new(WorkloadKind::Table1Mix)
                .count(16)
                .seed(5)
                .build(),
        );
        [ClusterPolicy::Mcc, ClusterPolicy::Mcck]
            .iter()
            .flat_map(|&policy| {
                [2u32, 3].into_iter().map({
                    let wl = Arc::clone(&wl);
                    move |nodes| {
                        let mut config = ClusterConfig::paper_cluster(policy).with_nodes(nodes);
                        config.knapsack.window = 64;
                        SweepJob {
                            label: format!("{policy}/{nodes}"),
                            config,
                            workload: Arc::clone(&wl),
                        }
                    }
                })
            })
            .collect()
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("phishare-shard-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn manifest_round_trips_and_rebuilds_jobs() {
        let dir = temp_dir("roundtrip");
        let jobs = grid();
        let manifest = build_manifest(&jobs, SubstrateMode::Keyed);
        assert_eq!(manifest.substrate, "keyed");
        assert_eq!(manifest.workloads.len(), 1, "shared workload deduped");
        write_manifest(&dir, &manifest).unwrap();
        // The on-disk layout splits workload bodies out of the cell
        // manifest so workers can load them lazily.
        assert!(workload_path(&dir, 0).exists());
        let back = load_manifest(&dir).unwrap();
        assert_eq!(back.substrate, manifest.substrate);
        assert_eq!(back.workloads, manifest.workloads);
        let rebuilt = manifest_jobs(&back).unwrap();
        assert_eq!(rebuilt.len(), jobs.len());
        for (a, b) in jobs.iter().zip(rebuilt.iter()) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.config, b.config);
            assert_eq!(*a.workload, *b.workload);
        }
        // All rebuilt cells share one materialized workload.
        assert!(Arc::ptr_eq(&rebuilt[0].workload, &rebuilt[3].workload));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn worker_and_merge_match_in_process_sweep() {
        let dir = temp_dir("merge");
        let manifest = build_manifest(&grid(), SubstrateMode::Fast);
        write_manifest(&dir, &manifest).unwrap();
        // Two sequential worker "processes" in-process: the second finds
        // everything leased/checkpointed and runs nothing.
        let ran = run_worker(&dir, 0).unwrap();
        assert_eq!(ran, 4);
        assert_eq!(run_worker(&dir, 1).unwrap(), 0);
        let merged = merge_results(&dir).unwrap();
        let expected = crate::sweep::run_sweep(grid(), 1);
        assert_eq!(merged, expected, "sharded merge diverged from run_sweep");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn partitioned_worker_merge_matches_unpartitioned_sweep() {
        let dir = temp_dir("parts");
        let manifest = build_manifest(&grid(), SubstrateMode::Fast);
        write_manifest(&dir, &manifest).unwrap();
        // Override every cell to 4 collector partitions: the merge must
        // still equal the serial, single-partition in-process sweep.
        assert_eq!(run_worker_with(&dir, 0, Some(4)).unwrap(), 4);
        let merged = merge_results(&dir).unwrap();
        assert_eq!(
            merged,
            crate::sweep::run_sweep(grid(), 1),
            "--partitions changed sweep results"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn worker_args_parse_the_partitions_flag() {
        let args = |s: &str| -> Vec<String> { s.split(' ').map(String::from).collect() };
        let (dir, id, parts) =
            parse_worker_args(&args("--worker --dir /tmp/x --worker-id 3 --partitions 8")).unwrap();
        assert_eq!(dir, PathBuf::from("/tmp/x"));
        assert_eq!(id, 3);
        assert_eq!(parts, Some(8));
        let (_, _, parts) = parse_worker_args(&args("--dir /tmp/x --worker-id 0")).unwrap();
        assert_eq!(parts, None);
        for bad in ["--partitions 0", "--partitions 17", "--partitions lots"] {
            let line = format!("--dir /tmp/x --worker-id 0 {bad}");
            assert!(parse_worker_args(&args(&line)).is_err(), "{bad} accepted");
        }
    }

    #[test]
    fn fresh_run_refuses_existing_manifest() {
        let dir = temp_dir("clobber");
        let manifest = build_manifest(&grid(), SubstrateMode::Fast);
        write_manifest(&dir, &manifest).unwrap();
        let err = write_manifest(&dir, &manifest).unwrap_err();
        assert!(err.contains("resume"), "unexpected error: {err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_skips_checkpointed_cells_after_lease_wipe() {
        let dir = temp_dir("resume");
        let manifest = build_manifest(&grid(), SubstrateMode::Fast);
        write_manifest(&dir, &manifest).unwrap();
        // First generation checkpoints everything...
        assert_eq!(run_worker(&dir, 0).unwrap(), 4);
        // ...a resume clears leases (simulated) and re-runs nothing.
        clear_leases(&dir).unwrap();
        assert_eq!(run_worker(&dir, 1).unwrap(), 0);
        let merged = merge_results(&dir).unwrap();
        assert_eq!(merged, crate::sweep::run_sweep(grid(), 1));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_final_record_is_repaired_and_rerun() {
        let dir = temp_dir("torn");
        let manifest = build_manifest(&grid(), SubstrateMode::Fast);
        write_manifest(&dir, &manifest).unwrap();
        assert_eq!(run_worker(&dir, 0).unwrap(), 4);
        // Tear the final record: chop the log mid-line.
        let log = log_path(&dir, 0);
        let bytes = fs::read(&log).unwrap();
        fs::write(&log, &bytes[..bytes.len() - 7]).unwrap();
        let (records, torn) = scan_log(&log).unwrap();
        assert_eq!(records.len(), 3);
        assert!(torn);
        // Next generation: leases cleared, the torn cell re-runs.
        clear_leases(&dir).unwrap();
        assert_eq!(run_worker(&dir, 0).unwrap(), 1);
        let merged = merge_results(&dir).unwrap();
        assert_eq!(merged, crate::sweep::run_sweep(grid(), 1));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn merge_rejects_duplicate_records() {
        let dir = temp_dir("dup");
        let manifest = build_manifest(&grid(), SubstrateMode::Fast);
        write_manifest(&dir, &manifest).unwrap();
        assert_eq!(run_worker(&dir, 0).unwrap(), 4);
        // Forge a duplicate of the first record into a second log.
        let first_line = fs::read_to_string(log_path(&dir, 0))
            .unwrap()
            .lines()
            .next()
            .unwrap()
            .to_string();
        fs::write(log_path(&dir, 1), format!("{first_line}\n")).unwrap();
        let err = merge_results(&dir).unwrap_err();
        assert!(err.contains("twice"), "unexpected error: {err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn merge_rejects_label_drift() {
        let dir = temp_dir("label");
        let manifest = build_manifest(&grid(), SubstrateMode::Fast);
        write_manifest(&dir, &manifest).unwrap();
        assert_eq!(run_worker(&dir, 0).unwrap(), 4);
        let log = log_path(&dir, 0);
        let text = fs::read_to_string(&log)
            .unwrap()
            .replacen("MCC/2", "MCC/9", 1);
        fs::write(&log, text).unwrap();
        let err = merge_results(&dir).unwrap_err();
        assert!(err.contains("manifest says"), "unexpected error: {err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_verifies_grid_shape() {
        let manifest = build_manifest(&grid(), SubstrateMode::Fast);
        let mut other = manifest.clone();
        other.substrate = "keyed".to_string();
        assert!(verify_manifest(&manifest, &other)
            .unwrap_err()
            .contains("substrate"));
        let mut other = manifest.clone();
        other.cells.pop();
        assert!(verify_manifest(&manifest, &other)
            .unwrap_err()
            .contains("cells"));
        let mut other = manifest.clone();
        other.cells[1].label = "MCC/7".to_string();
        assert!(verify_manifest(&manifest, &other)
            .unwrap_err()
            .contains("cell 1"));
        assert!(verify_manifest(&manifest, &manifest.clone()).is_ok());
    }

    #[test]
    fn workers_override_env_is_injectable() {
        assert_eq!(crate::sweep::threads_override(Some("6")), Some(6));
        assert!(default_workers() >= 1);
    }
}
