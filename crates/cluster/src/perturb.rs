//! Deterministic chaos perturbations layered on top of fault injection.
//!
//! [`crate::fault`] models the *hard* failures of the paper's deployment
//! stack (MPSS crashes, startd death). A production scheduler degrades long
//! before anything dies: cards throttle thermally, collector ads go stale,
//! offloads stall on a congested PCIe bus, and negotiation cycles jitter
//! under daemon load. This module models that *soft* degradation as a stack
//! of composable [`Perturbation`]s, each materialized into a
//! pre-computed, seed-deterministic [`PerturbPlan`] of bounded windows that
//! the runtime folds into its event queue exactly like fault events.
//!
//! Determinism contract (mirrors the fault plan's):
//!
//! * every perturbation kind draws from its **own**
//!   [`DetRng::substream`] label (`"perturb-derate"`, `"perturb-latency"`,
//!   `"perturb-stale-ads"`; cycle jitter draws lazily from
//!   `"perturb-jitter"` indexed by cycle sequence number), so enabling one
//!   never shifts another's draws — or any pre-existing stream (OOM
//!   victims, workload, fault plan);
//! * a disabled spec touches no RNG at all, so the **empty stack is
//!   bit-identical** to a build without this module;
//! * windows are materialized up front as a renewal process per target
//!   (per card for derate/latency, global for stale ads): the gap between
//!   a window closing and the next opening on the same target is
//!   exponential with the configured mean, so same-target windows of one
//!   kind never overlap. Windows of *different* kinds may overlap freely;
//!   overlapping derates compose by folding their factors in ascending
//!   plan order, overlapping latency windows add their extra ticks.
//!
//! Cycle jitter is the one perturbation that cannot be pre-materialized —
//! negotiation cycles are scheduled on demand — so it is applied lazily in
//! `runtime.rs`: the offset of cycle `k` is a pure function of
//! `(seed, "perturb-jitter", k)` via [`DetRng::substream_indexed`], immune
//! to call-order drift between event modes and substrates.

use crate::config::ClusterConfig;
use phishare_sim::{DetRng, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// One composable source of soft degradation. Implementations are
/// materialized into [`PerturbEvent`] windows by [`PerturbPlan::generate`],
/// each from its own seed substream.
pub trait Perturbation {
    /// The [`DetRng::substream`] label this perturbation draws from.
    /// Labels must be unique across the stack.
    fn label(&self) -> &'static str;

    /// True when this perturbation will emit at least one window for some
    /// horizon. Disabled perturbations must not touch any RNG.
    fn enabled(&self) -> bool;

    /// Append this perturbation's windows for `[0, horizon_secs]` to `out`,
    /// drawing only from `rng` (a fresh substream for [`Self::label`]).
    fn materialize(
        &self,
        config: &ClusterConfig,
        horizon_secs: f64,
        rng: &mut DetRng,
        out: &mut Vec<PerturbEvent>,
    );
}

/// Thermal throttling: while a window is open, every execution rate on the
/// struck card is multiplied by `factor` — after `PerfModel::reshare_rates`
/// on the slab/keyed substrates and on the `SharingCurve` output on the
/// shared substrates, so all oracle pairs degrade through identical IEEE
/// operations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DerateSpec {
    /// Mean gap between windows per card, in seconds. `0` disables.
    pub mean_gap_secs: f64,
    /// How long each throttling window lasts.
    pub duration_secs: f64,
    /// Rate multiplier while throttled, in `(0, 1]`.
    pub factor: f64,
}

impl Default for DerateSpec {
    fn default() -> Self {
        DerateSpec {
            mean_gap_secs: 0.0,
            duration_secs: 60.0,
            factor: 0.5,
        }
    }
}

impl Perturbation for DerateSpec {
    fn label(&self) -> &'static str {
        "perturb-derate"
    }

    fn enabled(&self) -> bool {
        self.mean_gap_secs > 0.0
    }

    fn materialize(
        &self,
        config: &ClusterConfig,
        horizon_secs: f64,
        rng: &mut DetRng,
        out: &mut Vec<PerturbEvent>,
    ) {
        let kind = PerturbKind::DeviceDerate {
            factor: self.factor,
        };
        for node in 1..=config.nodes {
            for device in 0..config.devices_per_node {
                push_windows(
                    out,
                    rng,
                    kind,
                    node,
                    device,
                    self.mean_gap_secs,
                    self.duration_secs,
                    horizon_secs,
                );
            }
        }
    }
}

/// Offload-latency spikes (congested PCIe bus / DMA stalls): offload
/// segments *starting* on the struck card while a window is open carry
/// `extra_secs` of additional nominal work. Applied at request time, so a
/// COSMIC-queued offload keeps the inflation it was admitted with.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencySpec {
    /// Mean gap between windows per card, in seconds. `0` disables.
    pub mean_gap_secs: f64,
    /// How long each spike window lasts.
    pub duration_secs: f64,
    /// Extra nominal seconds added to each offload started in a window.
    pub extra_secs: f64,
}

impl Default for LatencySpec {
    fn default() -> Self {
        LatencySpec {
            mean_gap_secs: 0.0,
            duration_secs: 30.0,
            extra_secs: 2.0,
        }
    }
}

impl Perturbation for LatencySpec {
    fn label(&self) -> &'static str {
        "perturb-latency"
    }

    fn enabled(&self) -> bool {
        self.mean_gap_secs > 0.0
    }

    fn materialize(
        &self,
        config: &ClusterConfig,
        horizon_secs: f64,
        rng: &mut DetRng,
        out: &mut Vec<PerturbEvent>,
    ) {
        let kind = PerturbKind::OffloadLatency {
            extra: SimDuration::from_secs_f64(self.extra_secs),
        };
        for node in 1..=config.nodes {
            for device in 0..config.devices_per_node {
                push_windows(
                    out,
                    rng,
                    kind,
                    node,
                    device,
                    self.mean_gap_secs,
                    self.duration_secs,
                    horizon_secs,
                );
            }
        }
    }
}

/// Delayed collector updates: while a window is open the negotiator matches
/// against frozen machine ads (`refresh_ads` is skipped), so claims can be
/// granted on state that no longer exists — the runtime gracefully undoes
/// a match whose ground-truth device is gone instead of panicking.
/// Interacts with the delta negotiation path: stale windows freeze the
/// dirty-set clock along with the ads, so `MatchPath::Delta` and
/// `MatchPath::Full` stay bit-identical under staleness.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StaleAdsSpec {
    /// Mean gap between stale windows (cluster-global), in seconds.
    /// `0` disables.
    pub mean_gap_secs: f64,
    /// How long each stale window lasts.
    pub duration_secs: f64,
}

impl Default for StaleAdsSpec {
    fn default() -> Self {
        StaleAdsSpec {
            mean_gap_secs: 0.0,
            duration_secs: 45.0,
        }
    }
}

impl Perturbation for StaleAdsSpec {
    fn label(&self) -> &'static str {
        "perturb-stale-ads"
    }

    fn enabled(&self) -> bool {
        self.mean_gap_secs > 0.0
    }

    fn materialize(
        &self,
        _config: &ClusterConfig,
        horizon_secs: f64,
        rng: &mut DetRng,
        out: &mut Vec<PerturbEvent>,
    ) {
        // The collector is cluster-global; stale windows target node 0 by
        // convention (no real node is 0 — they are 1-based everywhere).
        push_windows(
            out,
            rng,
            PerturbKind::StaleAds,
            0,
            0,
            self.mean_gap_secs,
            self.duration_secs,
            horizon_secs,
        );
    }
}

/// What kind of soft degradation a window applies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PerturbKind {
    /// Multiply every execution rate on the target card by `factor`.
    DeviceDerate {
        /// Rate multiplier in `(0, 1]`.
        factor: f64,
    },
    /// Inflate offload segments started on the target card by `extra`.
    OffloadLatency {
        /// Extra nominal work per offload segment.
        extra: SimDuration,
    },
    /// Freeze collector machine ads cluster-wide.
    StaleAds,
}

impl PerturbKind {
    fn rank(&self) -> u8 {
        match self {
            PerturbKind::DeviceDerate { .. } => 0,
            PerturbKind::OffloadLatency { .. } => 1,
            PerturbKind::StaleAds => 2,
        }
    }
}

/// One scheduled perturbation window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerturbEvent {
    /// What degradation applies while the window is open.
    pub kind: PerturbKind,
    /// Target node (1-based; `0` for cluster-global kinds).
    pub node: u32,
    /// Target device index on the node (ignored for global kinds).
    pub device: u32,
    /// When the window opens.
    pub at: SimTime,
    /// How long the window stays open.
    pub duration: SimDuration,
}

/// A deterministic, pre-materialized perturbation schedule.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PerturbPlan {
    /// Windows ordered by (open time, node, device, kind).
    pub events: Vec<PerturbEvent>,
}

impl PerturbPlan {
    /// A plan with no windows. Running with this plan is bit-identical to
    /// running without perturbation support at all (asserted by
    /// `empty_perturb_plan_is_bit_identical_to_plain_run`).
    pub fn empty() -> Self {
        PerturbPlan::default()
    }

    /// Number of scheduled windows.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no window is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Materialize the stack described by `config.perturb`. Each enabled
    /// [`Perturbation`] draws from a fresh substream for its own label, so
    /// any sub-stack reproduces the exact windows it contributes to the
    /// full stack.
    pub fn generate(config: &ClusterConfig) -> Self {
        let p = config.perturb;
        if !p.enabled() {
            return PerturbPlan::empty();
        }
        let mut events = Vec::new();
        let stack: [&dyn Perturbation; 3] = [&p.derate, &p.latency, &p.stale_ads];
        for pert in stack {
            if !pert.enabled() {
                continue;
            }
            let mut rng = DetRng::substream(config.seed, pert.label());
            pert.materialize(config, p.horizon_secs, &mut rng, &mut events);
        }
        events.sort_by_key(|e| (e.at, e.node, e.device, e.kind.rank()));
        PerturbPlan { events }
    }

    /// Check the plan against a configuration: every window must target an
    /// existing card (or node 0 for global kinds), stay open a positive
    /// duration, and carry sane parameters.
    pub fn validate(&self, config: &ClusterConfig) -> Result<(), String> {
        for (i, e) in self.events.iter().enumerate() {
            match e.kind {
                PerturbKind::StaleAds => {
                    if e.node != 0 || e.device != 0 {
                        return Err(format!(
                            "perturb plan event {i}: global kinds must target node 0"
                        ));
                    }
                }
                PerturbKind::DeviceDerate { factor } => {
                    check_card_target(config, i, e)?;
                    if !factor.is_finite() || factor <= 0.0 || factor > 1.0 {
                        return Err(format!(
                            "perturb plan event {i}: derate factor {factor} not in (0, 1]"
                        ));
                    }
                }
                PerturbKind::OffloadLatency { extra } => {
                    check_card_target(config, i, e)?;
                    if extra.is_zero() {
                        return Err(format!("perturb plan event {i}: zero latency extra"));
                    }
                }
            }
            if e.duration.is_zero() {
                return Err(format!("perturb plan event {i}: zero duration"));
            }
        }
        Ok(())
    }

    /// Serialize to pretty JSON, the committed-artifact format.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("perturb plan serializes")
    }

    /// Parse a plan back from [`PerturbPlan::to_json`] output.
    pub fn from_json(s: &str) -> Result<Self, String> {
        serde_json::from_str(s).map_err(|e| format!("bad perturb plan JSON: {e}"))
    }
}

fn check_card_target(config: &ClusterConfig, i: usize, e: &PerturbEvent) -> Result<(), String> {
    if e.node == 0 || e.node > config.nodes {
        return Err(format!(
            "perturb plan event {i} targets node {} of a {}-node cluster",
            e.node, config.nodes
        ));
    }
    if e.device >= config.devices_per_node {
        return Err(format!(
            "perturb plan event {i} targets device {} but nodes have {}",
            e.device, config.devices_per_node
        ));
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn push_windows(
    events: &mut Vec<PerturbEvent>,
    rng: &mut DetRng,
    kind: PerturbKind,
    node: u32,
    device: u32,
    mean_gap_secs: f64,
    duration_secs: f64,
    horizon_secs: f64,
) {
    let duration = SimDuration::from_secs_f64(duration_secs);
    let mut t = rng.exponential(mean_gap_secs);
    while t <= horizon_secs {
        events.push(PerturbEvent {
            kind,
            node,
            device,
            at: SimTime::ZERO + SimDuration::from_secs_f64(t),
            duration,
        });
        t += duration_secs + rng.exponential(mean_gap_secs);
    }
}

/// Knobs for the whole perturbation stack. Everything defaults to
/// disabled: the default configuration perturbs nothing and leaves every
/// timeline untouched.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerturbConfig {
    /// Thermal-throttling windows per card.
    pub derate: DerateSpec,
    /// Offload-latency spike windows per card.
    pub latency: LatencySpec,
    /// Cluster-global stale-ad windows.
    pub stale_ads: StaleAdsSpec,
    /// Maximum negotiation-cycle jitter, in seconds. Cycle `k` is delayed
    /// by `uniform(0, jitter_max_secs)` drawn from
    /// `substream_indexed(seed, "perturb-jitter", k)`. `0` disables (and
    /// draws nothing).
    pub jitter_max_secs: f64,
    /// Windows are only opened in `[0, horizon_secs]`; the tail of a long
    /// run drains perturbation-free. `0` disables window injection
    /// entirely (jitter is horizon-independent).
    pub horizon_secs: f64,
}

impl Default for PerturbConfig {
    fn default() -> Self {
        PerturbConfig {
            derate: DerateSpec::default(),
            latency: LatencySpec::default(),
            stale_ads: StaleAdsSpec::default(),
            jitter_max_secs: 0.0,
            horizon_secs: 0.0,
        }
    }
}

impl PerturbConfig {
    /// True when this configuration can open at least one window.
    pub fn enabled(&self) -> bool {
        self.horizon_secs > 0.0
            && (self.derate.enabled() || self.latency.enabled() || self.stale_ads.enabled())
    }

    /// True when negotiation cycles are jittered.
    pub fn jitter_enabled(&self) -> bool {
        self.jitter_max_secs > 0.0
    }

    /// Validate the knobs.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("derate.mean_gap_secs", self.derate.mean_gap_secs),
            ("derate.duration_secs", self.derate.duration_secs),
            ("derate.factor", self.derate.factor),
            ("latency.mean_gap_secs", self.latency.mean_gap_secs),
            ("latency.duration_secs", self.latency.duration_secs),
            ("latency.extra_secs", self.latency.extra_secs),
            ("stale_ads.mean_gap_secs", self.stale_ads.mean_gap_secs),
            ("stale_ads.duration_secs", self.stale_ads.duration_secs),
            ("jitter_max_secs", self.jitter_max_secs),
            ("horizon_secs", self.horizon_secs),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(format!("perturb config: {name} must be finite and >= 0"));
            }
        }
        if self.derate.enabled() {
            if self.derate.duration_secs <= 0.0 {
                return Err("perturb config: derate windows need a positive duration".into());
            }
            if self.derate.factor <= 0.0 || self.derate.factor > 1.0 {
                return Err("perturb config: derate factor must be in (0, 1]".into());
            }
        }
        if self.latency.enabled() {
            if self.latency.duration_secs <= 0.0 {
                return Err("perturb config: latency windows need a positive duration".into());
            }
            if self.latency.extra_secs <= 0.0 {
                return Err("perturb config: latency spikes need a positive extra".into());
            }
        }
        if self.stale_ads.enabled() && self.stale_ads.duration_secs <= 0.0 {
            return Err("perturb config: stale-ad windows need a positive duration".into());
        }
        Ok(())
    }

    /// Parse a stack spec like
    /// `derate:600:60:0.5,latency:300:30:2,stale-ads:400:45,jitter:3,horizon:3600`.
    /// Each comma-separated item enables one perturbation; `horizon`
    /// defaults to 3600 s when any window item is present without one.
    pub fn from_spec(spec: &str) -> Result<Self, String> {
        let mut cfg = PerturbConfig::default();
        let mut horizon_set = false;
        for item in spec.split(',').filter(|s| !s.is_empty()) {
            let parts: Vec<&str> = item.split(':').collect();
            let nums = |want: usize| -> Result<Vec<f64>, String> {
                if parts.len() != want + 1 {
                    return Err(format!(
                        "perturb spec item `{item}`: expected {want} parameters"
                    ));
                }
                parts[1..]
                    .iter()
                    .map(|p| {
                        p.parse::<f64>()
                            .map_err(|_| format!("perturb spec item `{item}`: bad number `{p}`"))
                    })
                    .collect()
            };
            match parts[0] {
                "derate" => {
                    let v = nums(3)?;
                    cfg.derate = DerateSpec {
                        mean_gap_secs: v[0],
                        duration_secs: v[1],
                        factor: v[2],
                    };
                }
                "latency" => {
                    let v = nums(3)?;
                    cfg.latency = LatencySpec {
                        mean_gap_secs: v[0],
                        duration_secs: v[1],
                        extra_secs: v[2],
                    };
                }
                "stale-ads" => {
                    let v = nums(2)?;
                    cfg.stale_ads = StaleAdsSpec {
                        mean_gap_secs: v[0],
                        duration_secs: v[1],
                    };
                }
                "jitter" => {
                    let v = nums(1)?;
                    cfg.jitter_max_secs = v[0];
                }
                "horizon" => {
                    let v = nums(1)?;
                    cfg.horizon_secs = v[0];
                    horizon_set = true;
                }
                other => {
                    return Err(format!(
                        "unknown perturbation `{other}` (want derate, latency, \
                         stale-ads, jitter or horizon)"
                    ));
                }
            }
        }
        if !horizon_set
            && (cfg.derate.enabled() || cfg.latency.enabled() || cfg.stale_ads.enabled())
        {
            cfg.horizon_secs = 3600.0;
        }
        cfg.validate()?;
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phishare_core::ClusterPolicy;

    fn perturbed_config() -> ClusterConfig {
        let mut c = ClusterConfig::paper_cluster(ClusterPolicy::Mcck);
        c.perturb.derate.mean_gap_secs = 300.0;
        c.perturb.latency.mean_gap_secs = 400.0;
        c.perturb.stale_ads.mean_gap_secs = 500.0;
        c.perturb.jitter_max_secs = 2.0;
        c.perturb.horizon_secs = 2000.0;
        c
    }

    #[test]
    fn disabled_config_generates_nothing_deterministically() {
        let c = ClusterConfig::default();
        assert!(!c.perturb.enabled());
        assert!(PerturbPlan::generate(&c).is_empty());
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let c = perturbed_config();
        let a = PerturbPlan::generate(&c);
        let b = PerturbPlan::generate(&c);
        assert!(!a.is_empty());
        assert_eq!(a, b);
        let other = PerturbPlan::generate(&perturbed_config().with_seed(99));
        assert_ne!(a, other, "different seeds draw different plans");
    }

    #[test]
    fn each_kind_draws_its_own_substream() {
        // Disabling one kind must not move another kind's windows.
        let full = PerturbPlan::generate(&perturbed_config());
        let mut only_derate = perturbed_config();
        only_derate.perturb.latency.mean_gap_secs = 0.0;
        only_derate.perturb.stale_ads.mean_gap_secs = 0.0;
        let derate_alone = PerturbPlan::generate(&only_derate);
        assert!(!derate_alone.is_empty());
        let derate_in_full: Vec<_> = full
            .events
            .iter()
            .filter(|e| matches!(e.kind, PerturbKind::DeviceDerate { .. }))
            .copied()
            .collect();
        assert_eq!(derate_in_full, derate_alone.events);
    }

    #[test]
    fn plans_are_sorted_within_horizon_and_valid() {
        let c = perturbed_config();
        let plan = PerturbPlan::generate(&c);
        plan.validate(&c).unwrap();
        let horizon = SimTime::ZERO + SimDuration::from_secs_f64(c.perturb.horizon_secs);
        for pair in plan.events.windows(2) {
            assert!(pair[0].at <= pair[1].at, "plan out of order");
        }
        for e in &plan.events {
            assert!(e.at <= horizon);
            assert!(!e.duration.is_zero());
        }
    }

    #[test]
    fn same_target_windows_never_overlap() {
        let c = perturbed_config();
        let plan = PerturbPlan::generate(&c);
        use std::collections::BTreeMap;
        let mut last_close: BTreeMap<(u8, u32, u32), SimTime> = BTreeMap::new();
        for e in &plan.events {
            let k = (e.kind.rank(), e.node, e.device);
            if let Some(close) = last_close.get(&k) {
                assert!(e.at >= *close, "same target window opened while open");
            }
            last_close.insert(k, e.at + e.duration);
        }
    }

    #[test]
    fn validation_catches_bad_targets() {
        let c = ClusterConfig::default().with_nodes(2);
        let mk = |kind, node, device, duration| PerturbPlan {
            events: vec![PerturbEvent {
                kind,
                node,
                device,
                at: SimTime::ZERO,
                duration: SimDuration::from_secs(duration),
            }],
        };
        let derate = PerturbKind::DeviceDerate { factor: 0.5 };
        assert!(mk(derate, 3, 0, 10).validate(&c).is_err());
        assert!(mk(derate, 0, 0, 10).validate(&c).is_err());
        assert!(mk(derate, 1, 5, 10).validate(&c).is_err());
        assert!(mk(derate, 1, 0, 0).validate(&c).is_err());
        assert!(mk(derate, 2, 0, 10).validate(&c).is_ok());
        assert!(mk(PerturbKind::DeviceDerate { factor: 0.0 }, 1, 0, 10)
            .validate(&c)
            .is_err());
        assert!(mk(PerturbKind::DeviceDerate { factor: 1.5 }, 1, 0, 10)
            .validate(&c)
            .is_err());
        assert!(mk(PerturbKind::StaleAds, 1, 0, 10).validate(&c).is_err());
        assert!(mk(PerturbKind::StaleAds, 0, 0, 10).validate(&c).is_ok());
        assert!(mk(
            PerturbKind::OffloadLatency {
                extra: SimDuration::ZERO
            },
            1,
            0,
            10
        )
        .validate(&c)
        .is_err());
    }

    #[test]
    fn plans_round_trip_through_json() {
        let c = perturbed_config();
        let plan = PerturbPlan::generate(&c);
        assert!(!plan.is_empty());
        let back = PerturbPlan::from_json(&plan.to_json()).unwrap();
        assert_eq!(plan, back);
        assert_eq!(
            PerturbPlan::from_json(&PerturbPlan::empty().to_json()).unwrap(),
            PerturbPlan::empty()
        );
        assert!(PerturbPlan::from_json("not json").is_err());
    }

    #[test]
    fn config_validation() {
        let mut p = PerturbConfig::default();
        p.validate().unwrap();
        p.derate.mean_gap_secs = -1.0;
        assert!(p.validate().is_err());
        let p = PerturbConfig {
            derate: DerateSpec {
                mean_gap_secs: 100.0,
                duration_secs: 10.0,
                factor: 1.5,
            },
            ..Default::default()
        };
        assert!(p.validate().is_err());
        let p = PerturbConfig {
            latency: LatencySpec {
                mean_gap_secs: 100.0,
                duration_secs: 10.0,
                extra_secs: 0.0,
            },
            ..Default::default()
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn spec_strings_parse() {
        let p = PerturbConfig::from_spec("derate:600:60:0.5,latency:300:30:2,stale-ads:400:45")
            .unwrap();
        assert!(p.derate.enabled() && p.latency.enabled() && p.stale_ads.enabled());
        assert_eq!(p.horizon_secs, 3600.0, "horizon defaults when omitted");
        assert_eq!(p.derate.factor, 0.5);

        let p = PerturbConfig::from_spec("jitter:3").unwrap();
        assert!(p.jitter_enabled() && !p.enabled());

        let p = PerturbConfig::from_spec("derate:600:60:0.5,horizon:1000").unwrap();
        assert_eq!(p.horizon_secs, 1000.0);

        assert!(PerturbConfig::from_spec("bogus:1").is_err());
        assert!(PerturbConfig::from_spec("derate:600").is_err());
        assert!(PerturbConfig::from_spec("derate:600:60:1.5").is_err());
    }
}
