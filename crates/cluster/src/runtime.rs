//! The discrete-event world: full job lifecycle on the simulated cluster.
//!
//! One [`Experiment::run`] call simulates a complete workload under one
//! cluster configuration and returns the measurements the paper reports.
//!
//! ## Lifecycle of a job
//!
//! 1. **Arrive** → submitted to the schedd queue. MC jobs carry
//!    exclusive-card requirements; jobs under an external scheduler are
//!    submitted *on hold* (`condor_submit -hold`) so the scheduler's
//!    release + requirement pin is the only path to placement.
//! 2. **Negotiation cycle** → the external scheduler (if any) packs pending
//!    jobs into device knapsacks and applies `condor_qedit` pins, then the
//!    negotiator matches pinned/eligible jobs to free slots in FIFO order.
//! 3. **Dispatch** (shadow/starter latency later) → a COI process attaches
//!    to the chosen device, memory is committed and the job begins its
//!    profile.
//! 4. Segments alternate **host** phases (timer) and **offloads** (COSMIC
//!    admission + device execution). Memory commits grow across offloads;
//!    overruns trigger COSMIC container kills, physical oversubscription
//!    triggers the OOM killer.
//! 5. **Complete** → the device frees capacity; completion-triggered
//!    negotiation (after the collector-update delay) lets the scheduler
//!    repack the freed knapsack — Fig. 4's "while jobs remaining" loop.
//!
//! ## Event scheduling modes
//!
//! Completion predictions are invalidated wholesale whenever a device's (or
//! host's) membership changes — the generation counter bumps and every
//! pending prediction event goes stale. Two schemes deliver them:
//!
//! * **Next-completion (default, [`Experiment::run`])** — exactly one
//!   prediction event per device per generation, chosen by the allocation-
//!   free `next_completion()`. Stale entries are drained lazily at pop time
//!   ([`phishare_sim::Sim::step_live`]); handling the winner bumps the
//!   generation and schedules the next winner. O(1) heap entries per device.
//! * **Per-offload ([`Experiment::run_naive_events`])** — the seed's
//!   original scheme: one event per active offload per generation, stale
//!   ones dropped by the generation guard as they fire. O(n) heap churn per
//!   membership change; retained as the differential oracle — both modes
//!   must produce bit-identical metrics, traces, and audits (the fast
//!   path's event pushes are a subsequence of the naive ones, and `(time,
//!   insertion-seq)` ordering makes the surviving live events fire in the
//!   same order).

use crate::config::ClusterConfig;
use crate::fault::{FallbackPolicy, FaultKind, FaultPlan};
use crate::host::HostCpu;
use crate::metrics::ExperimentResult;
use crate::perturb::{PerturbKind, PerturbPlan};
use crate::substrate::{CosmicSubstrate, DeviceSubstrate};
use crate::trace::{KillReason, Trace, TraceEvent};
use phishare_condor::attrs;
use phishare_condor::{Collector, JobQueue, Negotiator, SlotId, Startd};
use phishare_core::{
    ClairvoyantLpt, ClusterPolicy, ClusterScheduler, DeviceView, KnapsackScheduler, PendingJob,
    Pin, RandomScheduler,
};
use phishare_cosmic::{Admission, ContainerVerdict, CosmicDevice, KeyedCosmicDevice, OffloadGrant};
use phishare_phi::{
    Affinity, CommitOutcome, KeyedPhiDevice, NaiveSharedDevice, PhiDevice, ProcId,
    SharedThroughputDevice,
};
use phishare_sim::{DetRng, EventQueue, Sim, SimDuration, SimTime, Summary};
use phishare_workload::{JobId, Segment, Workload};
use std::collections::{BTreeMap, BTreeSet};

/// Key of one device: `(node, device-on-node)`.
type DevKey = (u32, u32);

/// Simulation events.
#[derive(Debug)]
enum Ev {
    /// Job `workload[idx]` arrives in the queue.
    Arrive(usize),
    /// A negotiation cycle with its sequence number (stale cycles are
    /// dropped so completion-triggered cycles can supersede periodic ones).
    Cycle(u64),
    /// Shadow/starter finished; the job starts on its matched slot.
    Dispatch(JobId),
    /// A node's host CPUs predict this job's host phase finishes now
    /// (valid for `generation`).
    HostDone {
        job: JobId,
        node: u32,
        generation: u64,
    },
    /// A device predicts this offload finishes now (valid for `generation`).
    OffloadComplete {
        job: JobId,
        key: DevKey,
        generation: u64,
    },
    /// Injected failure `plan[idx]` strikes.
    Fault(usize),
    /// The failure injected as `plan[idx]` heals (card back up / node
    /// rejoins).
    Recover(usize),
    /// Perturbation window `perturbs[idx]` opens.
    Perturb(usize),
    /// Perturbation window `perturbs[idx]` closes.
    PerturbEnd(usize),
    /// A vacated job's backoff expired; it may be scheduled again.
    Release(JobId),
}

/// How completion predictions are turned into events (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventMode {
    /// One event per device/host per generation (the fast path).
    NextCompletion,
    /// One event per active offload/phase per generation (the oracle).
    PerOffload,
}

/// Which per-device state store backs a run (see [`crate::substrate`]).
///
/// `Fast`/`Keyed` must produce bit-identical [`ExperimentResult`]s and
/// traces, as must `Shared`/`SharedNaive`; each oracle exists to prove
/// that and to serve as the cost floor for its bench gate (`perf_e2e`,
/// `perf_throughput`). The per-offload pair and the shared-throughput
/// pair model *different physics* (two-rate affinity model vs one
/// fair-shared curve rate), so results are only comparable within a pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubstrateMode {
    /// Generation-stamped slab storage with handle-indexed hot paths
    /// (production).
    Fast,
    /// The seed's `BTreeMap`-keyed storage (differential oracle).
    Keyed,
    /// Fair-shared throughput devices on the heap-scheduled O(log n)
    /// engine, with the node pool's degradation curves (production for
    /// heterogeneous SKU runs).
    Shared,
    /// Fair-shared throughput devices on the naive recompute-all engine
    /// (differential oracle and `perf_throughput` cost floor).
    SharedNaive,
}

impl std::str::FromStr for SubstrateMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "fast" => Ok(SubstrateMode::Fast),
            "keyed" => Ok(SubstrateMode::Keyed),
            "shared" => Ok(SubstrateMode::Shared),
            "shared-naive" => Ok(SubstrateMode::SharedNaive),
            other => Err(format!(
                "unknown substrate '{other}' (expected fast, keyed, shared or shared-naive)"
            )),
        }
    }
}

impl std::fmt::Display for SubstrateMode {
    /// The CLI spelling; round-trips through [`SubstrateMode::from_str`]
    /// (the sweep manifests of [`crate::shard`] persist this form).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SubstrateMode::Fast => "fast",
            SubstrateMode::Keyed => "keyed",
            SubstrateMode::Shared => "shared",
            SubstrateMode::SharedNaive => "shared-naive",
        })
    }
}

/// Per-worker recycled buffers for back-to-back experiments.
///
/// A figure-scale sweep runs hundreds of independent simulations per
/// worker thread. Each run's event heap and grant buffers grow to a
/// steady-state size and are then thrown away; recycling them across cells
/// (the same discipline as the planner's `DpScratch`) makes the per-cell
/// allocation cost O(1) after warm-up. Recycling is invisible to results:
/// `Experiment::run_with_scratch` is asserted bit-identical to
/// [`Experiment::run`] by the runtime tests and the substrate proptests.
#[derive(Debug)]
pub struct ExperimentScratch {
    /// Drained event heap from the previous cell (capacity retained).
    events: EventQueue<Ev>,
    /// Grant-collection buffer (empty between uses, capacity retained).
    grants: Vec<OffloadGrant>,
}

impl ExperimentScratch {
    /// Fresh, empty scratch. Buffers grow on first use and are retained
    /// across runs.
    pub fn new() -> Self {
        ExperimentScratch {
            events: EventQueue::new(),
            grants: Vec::new(),
        }
    }
}

impl Default for ExperimentScratch {
    fn default() -> Self {
        Self::new()
    }
}

#[derive(Debug)]
struct RunningJob<DH, CH> {
    idx: usize,
    slot: SlotId,
    key: DevKey,
    /// Device-substrate handle, resolved once at attach time. Stale the
    /// instant the process departs (detach, OOM kill, device reset) — the
    /// runtime drops the `RunningJob` (or flips `fallback`) on every such
    /// path before the handle could be touched again.
    dslot: DH,
    /// COSMIC-substrate handle, resolved once at registration; `None` when
    /// the policy runs without COSMIC.
    cslot: Option<CH>,
    /// Index of the segment currently executing.
    seg: usize,
    /// Offload segments completed so far (drives the memory-growth model).
    offloads_done: usize,
    /// The job's card reset under it and [`FallbackPolicy::HostOnly`]
    /// applies: remaining offload segments run on host cores, the device
    /// and COSMIC are never touched again.
    fallback: bool,
}

/// Entry point: run one experiment.
pub struct Experiment;

impl Experiment {
    /// Simulate `workload` on the cluster described by `config`.
    ///
    /// Fails fast (rather than deadlocking) when the configuration is
    /// invalid or a job cannot fit on any device.
    pub fn run(config: &ClusterConfig, workload: &Workload) -> Result<ExperimentResult, String> {
        let plan = FaultPlan::generate(config);
        let perturbs = PerturbPlan::generate(config);
        Self::run_inner::<PhiDevice, CosmicDevice>(
            config,
            workload,
            &plan,
            &perturbs,
            false,
            EventMode::NextCompletion,
            None,
        )
        .map(|(r, _)| r)
    }

    /// Like [`Experiment::run`] but also records a full lifecycle
    /// [`Trace`] (submission, pinning, dispatch, offloads, completion).
    pub fn run_traced(
        config: &ClusterConfig,
        workload: &Workload,
    ) -> Result<(ExperimentResult, Trace), String> {
        let plan = FaultPlan::generate(config);
        let perturbs = PerturbPlan::generate(config);
        Self::run_inner::<PhiDevice, CosmicDevice>(
            config,
            workload,
            &plan,
            &perturbs,
            true,
            EventMode::NextCompletion,
            None,
        )
        .map(|(r, t)| (r, t.expect("tracing was enabled")))
    }

    /// [`Experiment::run`] with an explicit fault-injection plan instead of
    /// the one derived from `config.faults`.
    ///
    /// An empty plan is guaranteed to leave the timeline bit-identical to
    /// [`Experiment::run`] with faults disabled (asserted by the
    /// differential proptests).
    pub fn run_with_faults(
        config: &ClusterConfig,
        workload: &Workload,
        plan: &FaultPlan,
    ) -> Result<ExperimentResult, String> {
        let perturbs = PerturbPlan::generate(config);
        Self::run_inner::<PhiDevice, CosmicDevice>(
            config,
            workload,
            plan,
            &perturbs,
            false,
            EventMode::NextCompletion,
            None,
        )
        .map(|(r, _)| r)
    }

    /// [`Experiment::run_with_faults`] with lifecycle tracing.
    pub fn run_with_faults_traced(
        config: &ClusterConfig,
        workload: &Workload,
        plan: &FaultPlan,
    ) -> Result<(ExperimentResult, Trace), String> {
        let perturbs = PerturbPlan::generate(config);
        Self::run_inner::<PhiDevice, CosmicDevice>(
            config,
            workload,
            plan,
            &perturbs,
            true,
            EventMode::NextCompletion,
            None,
        )
        .map(|(r, t)| (r, t.expect("tracing was enabled")))
    }

    /// [`Experiment::run_with_faults_traced`] under the per-offload oracle
    /// event scheme (differential testing only).
    pub fn run_naive_events_with_faults_traced(
        config: &ClusterConfig,
        workload: &Workload,
        plan: &FaultPlan,
    ) -> Result<(ExperimentResult, Trace), String> {
        let perturbs = PerturbPlan::generate(config);
        Self::run_inner::<PhiDevice, CosmicDevice>(
            config,
            workload,
            plan,
            &perturbs,
            true,
            EventMode::PerOffload,
            None,
        )
        .map(|(r, t)| (r, t.expect("tracing was enabled")))
    }

    /// [`Experiment::run`] under the seed's per-offload event scheme.
    ///
    /// Kept as the differential oracle for the next-completion fast path:
    /// results must be bit-identical to [`Experiment::run`] (asserted by
    /// the `perf_sim` bench gate and the differential proptests). Not a
    /// production entry point.
    pub fn run_naive_events(
        config: &ClusterConfig,
        workload: &Workload,
    ) -> Result<ExperimentResult, String> {
        let plan = FaultPlan::generate(config);
        let perturbs = PerturbPlan::generate(config);
        Self::run_inner::<PhiDevice, CosmicDevice>(
            config,
            workload,
            &plan,
            &perturbs,
            false,
            EventMode::PerOffload,
            None,
        )
        .map(|(r, _)| r)
    }

    /// [`Experiment::run_traced`] under the seed's per-offload event scheme.
    pub fn run_naive_events_traced(
        config: &ClusterConfig,
        workload: &Workload,
    ) -> Result<(ExperimentResult, Trace), String> {
        let plan = FaultPlan::generate(config);
        let perturbs = PerturbPlan::generate(config);
        Self::run_inner::<PhiDevice, CosmicDevice>(
            config,
            workload,
            &plan,
            &perturbs,
            true,
            EventMode::PerOffload,
            None,
        )
        .map(|(r, t)| (r, t.expect("tracing was enabled")))
    }

    /// [`Experiment::run`] on an explicitly chosen substrate.
    ///
    /// [`SubstrateMode::Keyed`] replays the run on the seed's map-backed
    /// device/COSMIC state; results must be bit-identical to the default
    /// slab-backed run (asserted by the differential proptests and the
    /// `perf_e2e` bench gate, where the keyed run is the timing floor).
    pub fn run_with_substrate(
        config: &ClusterConfig,
        workload: &Workload,
        substrate: SubstrateMode,
    ) -> Result<ExperimentResult, String> {
        let plan = FaultPlan::generate(config);
        let perturbs = PerturbPlan::generate(config);
        Self::run_substrate_inner(config, workload, &plan, &perturbs, false, substrate, None)
            .map(|(r, _)| r)
    }

    /// [`Experiment::run_with_substrate`] recycling `scratch`'s buffers
    /// across calls — [`Experiment::run_with_scratch`] generalized to every
    /// substrate, so sweep workers use one cell body regardless of mode.
    /// Bit-identical to the scratch-free forms (the sweep tests pin every
    /// substrate's recycled results against fresh runs).
    pub fn run_with_substrate_scratch(
        config: &ClusterConfig,
        workload: &Workload,
        substrate: SubstrateMode,
        scratch: &mut ExperimentScratch,
    ) -> Result<ExperimentResult, String> {
        let plan = FaultPlan::generate(config);
        let perturbs = PerturbPlan::generate(config);
        Self::run_substrate_inner(
            config,
            workload,
            &plan,
            &perturbs,
            false,
            substrate,
            Some(scratch),
        )
        .map(|(r, _)| r)
    }

    /// [`Experiment::run_with_faults_traced`] on an explicitly chosen
    /// substrate (differential testing of the fault paths).
    pub fn run_with_substrate_faults_traced(
        config: &ClusterConfig,
        workload: &Workload,
        plan: &FaultPlan,
        substrate: SubstrateMode,
    ) -> Result<(ExperimentResult, Trace), String> {
        let perturbs = PerturbPlan::generate(config);
        Self::run_substrate_inner(config, workload, plan, &perturbs, true, substrate, None)
            .map(|(r, t)| (r, t.expect("tracing was enabled")))
    }

    /// Chaos entry point: explicit fault *and* perturbation plans on an
    /// explicitly chosen substrate, with lifecycle tracing.
    ///
    /// An empty perturbation plan (with `config.perturb` disabled) is
    /// guaranteed bit-identical to
    /// [`Experiment::run_with_substrate_faults_traced`], and the oracle
    /// pairs (`Fast`/`Keyed`, `Shared`/`SharedNaive`) stay bit-identical
    /// under every (stack, trace, fault-plan) triple — asserted by
    /// `tests/prop_chaos.rs`.
    pub fn run_chaos_traced(
        config: &ClusterConfig,
        workload: &Workload,
        plan: &FaultPlan,
        perturbs: &PerturbPlan,
        substrate: SubstrateMode,
    ) -> Result<(ExperimentResult, Trace), String> {
        Self::run_substrate_inner(config, workload, plan, perturbs, true, substrate, None)
            .map(|(r, t)| (r, t.expect("tracing was enabled")))
    }

    #[allow(clippy::too_many_arguments)]
    fn run_substrate_inner(
        config: &ClusterConfig,
        workload: &Workload,
        plan: &FaultPlan,
        perturbs: &PerturbPlan,
        traced: bool,
        substrate: SubstrateMode,
        scratch: Option<&mut ExperimentScratch>,
    ) -> Result<(ExperimentResult, Option<Trace>), String> {
        match substrate {
            SubstrateMode::Fast => Self::run_inner::<PhiDevice, CosmicDevice>(
                config,
                workload,
                plan,
                perturbs,
                traced,
                EventMode::NextCompletion,
                scratch,
            ),
            SubstrateMode::Keyed => Self::run_inner::<KeyedPhiDevice, KeyedCosmicDevice>(
                config,
                workload,
                plan,
                perturbs,
                traced,
                EventMode::NextCompletion,
                scratch,
            ),
            SubstrateMode::Shared => Self::run_inner::<SharedThroughputDevice, CosmicDevice>(
                config,
                workload,
                plan,
                perturbs,
                traced,
                EventMode::NextCompletion,
                scratch,
            ),
            SubstrateMode::SharedNaive => Self::run_inner::<NaiveSharedDevice, CosmicDevice>(
                config,
                workload,
                plan,
                perturbs,
                traced,
                EventMode::NextCompletion,
                scratch,
            ),
        }
    }

    /// [`Experiment::run`] recycling `scratch`'s buffers across calls.
    ///
    /// Sweep workers call this once per grid cell so the event heap and
    /// grant buffers are allocated once per worker, not once per cell.
    /// Bit-identical to [`Experiment::run`] (asserted by the runtime
    /// tests).
    pub fn run_with_scratch(
        config: &ClusterConfig,
        workload: &Workload,
        scratch: &mut ExperimentScratch,
    ) -> Result<ExperimentResult, String> {
        let plan = FaultPlan::generate(config);
        let perturbs = PerturbPlan::generate(config);
        Self::run_inner::<PhiDevice, CosmicDevice>(
            config,
            workload,
            &plan,
            &perturbs,
            false,
            EventMode::NextCompletion,
            Some(scratch),
        )
        .map(|(r, _)| r)
    }

    #[allow(clippy::too_many_arguments)]
    fn run_inner<D: DeviceSubstrate, C: CosmicSubstrate>(
        config: &ClusterConfig,
        workload: &Workload,
        plan: &FaultPlan,
        perturbs: &PerturbPlan,
        traced: bool,
        mode: EventMode,
        mut scratch: Option<&mut ExperimentScratch>,
    ) -> Result<(ExperimentResult, Option<Trace>), String> {
        config.validate()?;
        plan.validate(config)?;
        perturbs.validate(config)?;
        workload
            .validate()
            .map_err(|(id, e)| format!("invalid job {id}: {e}"))?;
        // With a heterogeneous pool, a job is only hopeless when even the
        // *largest* card couldn't hold it (for Uniform pools this is the
        // same per-device bound as before).
        let usable = config.max_usable_mem_mb();
        // Under a knapsack-family scheduler, a job whose declared threads
        // exceed the per-device thread budget can never be packed — reject
        // it up front instead of letting it starve in the queue forever.
        let thread_cap = match config.policy {
            ClusterPolicy::Mcck | ClusterPolicy::Oracle
                if config.knapsack.count_resident_threads =>
            {
                Some(
                    (config.knapsack.thread_limit as f64 * config.knapsack.thread_overcommit)
                        .round() as u32,
                )
            }
            _ => None,
        };
        for job in &workload.jobs {
            if job.mem_req_mb > usable {
                return Err(format!(
                    "job {} declares {} MB but devices only have {usable} MB usable",
                    job.id, job.mem_req_mb
                ));
            }
            if let Some(cap) = thread_cap {
                if job.thread_req > cap {
                    return Err(format!(
                        "job {} declares {} threads but the scheduler's per-device                          thread budget is {cap}; it could never be placed",
                        job.id, job.thread_req
                    ));
                }
            }
        }

        let mut world: World<'_, D, C> = World::new(config, workload, plan, perturbs, mode);
        if traced {
            world.trace = Some(Trace::new());
        }
        // Pending events are dominated by jobs × lifecycle stages (arrive,
        // cycle, dispatch, one live prediction per device/host); pre-size
        // the heap so large experiments never pay growth reallocations.
        // With scratch, the previous cell's (drained, capacity-retaining)
        // heap and grant buffer are recycled instead.
        let mut sim: Sim<Ev> = if let Some(s) = scratch.as_deref_mut() {
            world.grants_buf = std::mem::take(&mut s.grants);
            let queue = std::mem::replace(&mut s.events, EventQueue::new());
            let mut sim = Sim::from_recycled(queue);
            sim.reserve(workload.len() * 4 + 64);
            sim
        } else {
            match mode {
                EventMode::NextCompletion => Sim::with_capacity(workload.len() * 4 + 64),
                EventMode::PerOffload => Sim::new(),
            }
        };
        for (idx, at) in workload.arrivals.iter().enumerate() {
            sim.schedule_at(*at, Ev::Arrive(idx));
        }
        // The first cycle runs at t = 0 (right after same-tick arrivals,
        // which were scheduled first).
        world.cycle_seq += 1;
        let seq = world.cycle_seq;
        world.next_cycle = Some(SimTime::ZERO);
        sim.schedule_at(SimTime::ZERO, Ev::Cycle(seq));
        // Fault strikes are pre-scheduled from the (sorted) plan; same-tick
        // ties resolve by insertion order identically in both event modes.
        for (idx, f) in plan.events.iter().enumerate() {
            sim.schedule_at(f.at, Ev::Fault(idx));
        }
        // Perturbation windows likewise; the close event is scheduled from
        // the open handler, mirroring the fault→recover pattern.
        for (idx, p) in perturbs.events.iter().enumerate() {
            sim.schedule_at(p.at, Ev::Perturb(idx));
        }

        match mode {
            EventMode::PerOffload => {
                sim.run(|sim, ev| world.handle(sim, ev));
            }
            EventMode::NextCompletion => {
                // Stale predictions never reach the handler: the liveness
                // predicate drains them at pop time without advancing the
                // clock or consuming event budget.
                while !sim.budget_exhausted() {
                    let Some(ev) = sim.step_live(|ev| world.event_is_live(ev)) else {
                        break;
                    };
                    world.handle(&mut sim, ev);
                }
            }
        }

        // Jobs retired after exhausting their retry budget stay Held
        // forever (the operator must intervene); they are terminal for
        // drain purposes. Anything else still live is a scheduler bug.
        let (idle, matched, running) = world.queue.active_counts();
        let live_idle = idle - world.retired.len();
        if matched != 0 || running != 0 || live_idle != 0 || !world.parked.is_empty() {
            return Err(format!(
                "simulation drained with live jobs: {live_idle} idle, {matched} matched, \
                 {running} running, {} awaiting release",
                world.parked.len()
            ));
        }
        // Post-drain leak audit: every fault must have been matched by a
        // recovery path that returned its capacity.
        for (key, device) in &world.devices {
            if device.resident_count() != 0 || device.committed_total_mb() != 0 {
                return Err(format!(
                    "capacity leak: device ({}, {}) drained with {} residents, {} MB committed",
                    key.0,
                    key.1,
                    device.resident_count(),
                    device.committed_total_mb()
                ));
            }
        }
        for (key, cos) in &world.cosmic {
            if cos.registered_jobs() != 0 {
                return Err(format!(
                    "capacity leak: COSMIC on ({}, {}) drained with {} registered jobs",
                    key.0,
                    key.1,
                    cos.registered_jobs()
                ));
            }
        }
        for (node, host) in &world.hosts {
            if host.active_count() != 0 {
                return Err(format!(
                    "capacity leak: host {node} drained with {} active segments",
                    host.active_count()
                ));
            }
        }
        let trace = world.trace.take();
        // Hand the (drained) buffers back for the next cell. Error paths
        // above skip this: the caller's scratch simply starts fresh again.
        if let Some(s) = scratch {
            let mut grants = std::mem::take(&mut world.grants_buf);
            grants.clear();
            s.grants = grants;
            s.events = sim.into_queue();
        }
        Ok((world.into_result(config, workload), trace))
    }
}

struct World<'a, D: DeviceSubstrate, C: CosmicSubstrate> {
    cfg: &'a ClusterConfig,
    wl: &'a Workload,
    plan: &'a FaultPlan,
    perturbs: &'a PerturbPlan,
    queue: JobQueue,
    collector: Collector,
    negotiator: Negotiator,
    startds: Vec<Startd>,
    devices: BTreeMap<DevKey, D>,
    cosmic: BTreeMap<DevKey, C>,
    hosts: BTreeMap<u32, HostCpu>,
    scheduler: Option<Box<dyn ClusterScheduler>>,
    /// JobId → index into the workload.
    job_index: BTreeMap<JobId, usize>,
    running: BTreeMap<JobId, RunningJob<D::Handle, C::Handle>>,
    /// Reusable buffer for collecting COSMIC grants (completion, kill and
    /// unregister paths); taken/restored around each use so the hot loop
    /// never allocates. Recycled across runs via [`ExperimentScratch`].
    grants_buf: Vec<OffloadGrant>,
    /// Device chosen at match time, consumed at dispatch.
    matched_dev: BTreeMap<JobId, DevKey>,
    /// Device the external scheduler planned for each pinned job, consumed
    /// at match time. The packing is per device (each knapsack is one
    /// coprocessor); re-placing at match time could break a feasible plan.
    pinned_dev: BTreeMap<JobId, DevKey>,
    /// Declared memory of matched-but-not-yet-attached jobs, per device.
    inflight_declared: BTreeMap<DevKey, u64>,
    /// Count of matched-but-not-yet-attached jobs, per device.
    inflight_count: BTreeMap<DevKey, u32>,
    /// Declared threads of matched-but-not-yet-attached jobs, per device.
    inflight_threads: BTreeMap<DevKey, u32>,
    /// Sequence number of the latest scheduled cycle; stale cycles no-op.
    cycle_seq: u64,
    /// When the next cycle is due (None once the cluster drained).
    next_cycle: Option<SimTime>,
    /// How completion predictions become events.
    mode: EventMode,
    /// Device generation a prediction event was last scheduled for
    /// (next-completion mode only): repeated syncs within one generation
    /// are no-ops, so each generation costs at most one heap push.
    synced_dev_gen: BTreeMap<DevKey, u64>,
    /// Host analog of `synced_dev_gen`.
    synced_host_gen: BTreeMap<u32, u64>,
    /// Events that passed the staleness guards and were actually handled.
    /// Identical across event modes (stale deliveries are a scheme
    /// artefact), so it is the mode-independent simulation-cost metric.
    live_events: u64,
    rng_oom: DetRng,
    /// Lifecycle trace (None unless `run_traced` was used).
    trace: Option<Trace>,
    // --- fault state ---
    /// Nodes whose startd vanished (churn); no ads, no dispatch, no hosts.
    down_nodes: BTreeSet<u32>,
    /// Devices mid-reset on otherwise-live nodes.
    down_devs: BTreeSet<DevKey>,
    /// Times each job has been vacated by a fault and requeued.
    attempts: BTreeMap<JobId, u32>,
    /// Vacated jobs sitting out their backoff (held, invisible to the
    /// scheduler until their `Release` fires).
    parked: BTreeSet<JobId>,
    /// Jobs held permanently after exhausting `recovery.max_retries`.
    retired: BTreeSet<JobId>,
    /// Jobs whose first dispatch already recorded a queue-wait sample
    /// (re-dispatches after a fault must not re-count).
    wait_recorded: BTreeSet<JobId>,
    // --- perturbation state ---
    /// Open derate windows per device, keyed by plan index. The device's
    /// effective scale is the product folded in ascending index order, so
    /// overlapping windows compose deterministically.
    derate_active: BTreeMap<DevKey, BTreeMap<usize, f64>>,
    /// Open latency-spike windows per device, keyed by plan index; extras
    /// of overlapping windows add (integer ticks, order-independent).
    latency_active: BTreeMap<DevKey, BTreeMap<usize, SimDuration>>,
    /// Nesting depth of open stale-ad windows; ads refresh only at 0.
    stale_ad_depth: u32,
    /// Whether any non-cycle event ran since the last *executed* cycle —
    /// arrivals, dispatches, completions, faults, perturbations all set
    /// it, as does an executed cycle that pinned, matched, or rejected
    /// anything. While false, device ground truth and the queue are
    /// exactly as the last cycle left them, so `refresh_ads` and the
    /// scheduler plan would both be no-ops — one leg of the quiescence
    /// predicate ([`World::cycle_is_quiescent`]).
    world_dirty: bool,
    // --- statistics ---
    waits: Summary,
    turnarounds: Summary,
    completed: usize,
    container_kills: usize,
    oom_kills: usize,
    negotiation_cycles: u64,
    cycles_skipped: u64,
    pins_issued: u64,
    device_resets: u64,
    node_churns: u64,
    retries: u64,
    fallback_offloads: u64,
    perturb_windows: u64,
    stale_ad_skips: u64,
    jittered_cycles: u64,
    inflated_offloads: u64,
    stale_match_rejects: u64,
    last_terminal: SimTime,
    /// Wall-clock nanoseconds spent inside `ClusterScheduler::plan` —
    /// planner cost measurement, never simulation state.
    plan_nanos: u64,
}

impl<'a, D: DeviceSubstrate, C: CosmicSubstrate> World<'a, D, C> {
    fn new(
        cfg: &'a ClusterConfig,
        wl: &'a Workload,
        plan: &'a FaultPlan,
        perturbs: &'a PerturbPlan,
        mode: EventMode,
    ) -> Self {
        let parts = if cfg.partitions > 0 {
            cfg.partitions
        } else {
            phishare_condor::collector::default_partitions()
        };
        let mut collector = Collector::with_partitions(parts);
        let mut startds = Vec::new();
        let mut devices = BTreeMap::new();
        let mut cosmic = BTreeMap::new();
        let mut hosts = BTreeMap::new();
        for node in 1..=cfg.nodes {
            let spec = cfg.spec_for_node(node);
            hosts.insert(node, HostCpu::new(cfg.host_cores_per_node, SimTime::ZERO));
            let startd = Startd::new(
                node,
                cfg.slots_per_node,
                cfg.devices_per_node,
                spec.phi.memory_mb,
            );
            startd.advertise(
                &mut collector,
                spec.phi.usable_mem_mb() * cfg.devices_per_node as u64,
                cfg.devices_per_node,
            );
            startds.push(startd);
            for dev in 0..cfg.devices_per_node {
                devices.insert((node, dev), D::create(&spec, SimTime::ZERO));
                if cfg.policy.uses_cosmic() {
                    cosmic.insert((node, dev), C::create(cfg.cosmic, &spec.phi));
                }
            }
        }

        let scheduler: Option<Box<dyn ClusterScheduler>> = match cfg.policy {
            ClusterPolicy::Mc => None,
            ClusterPolicy::Mcc => Some(Box::new(RandomScheduler::new(cfg.seed))),
            ClusterPolicy::Mcck => Some(Box::new(KnapsackScheduler::new(cfg.knapsack))),
            ClusterPolicy::Oracle => Some(Box::new(ClairvoyantLpt::new(cfg.knapsack))),
        };

        let job_index = wl.jobs.iter().enumerate().map(|(i, j)| (j.id, i)).collect();

        World {
            cfg,
            wl,
            plan,
            perturbs,
            queue: JobQueue::new(),
            collector,
            negotiator: Negotiator::new(cfg.negotiation_interval)
                .with_path(cfg.negotiation)
                .with_quiescence(cfg.skip_quiescent),
            startds,
            devices,
            cosmic,
            hosts,
            scheduler,
            job_index,
            running: BTreeMap::new(),
            grants_buf: Vec::new(),
            matched_dev: BTreeMap::new(),
            pinned_dev: BTreeMap::new(),
            inflight_declared: BTreeMap::new(),
            inflight_count: BTreeMap::new(),
            inflight_threads: BTreeMap::new(),
            cycle_seq: 0,
            next_cycle: None,
            mode,
            synced_dev_gen: BTreeMap::new(),
            synced_host_gen: BTreeMap::new(),
            live_events: 0,
            rng_oom: DetRng::substream(cfg.seed, "oom-killer"),
            trace: None,
            down_nodes: BTreeSet::new(),
            down_devs: BTreeSet::new(),
            attempts: BTreeMap::new(),
            parked: BTreeSet::new(),
            retired: BTreeSet::new(),
            wait_recorded: BTreeSet::new(),
            derate_active: BTreeMap::new(),
            latency_active: BTreeMap::new(),
            stale_ad_depth: 0,
            world_dirty: true,
            waits: Summary::new(),
            turnarounds: Summary::new(),
            completed: 0,
            container_kills: 0,
            oom_kills: 0,
            negotiation_cycles: 0,
            cycles_skipped: 0,
            pins_issued: 0,
            device_resets: 0,
            node_churns: 0,
            retries: 0,
            fallback_offloads: 0,
            perturb_windows: 0,
            stale_ad_skips: 0,
            jittered_cycles: 0,
            inflated_offloads: 0,
            stale_match_rejects: 0,
            last_terminal: SimTime::ZERO,
            plan_nanos: 0,
        }
    }

    /// Record a trace event (no-op, and no allocation, unless tracing).
    fn trace_ev(&mut self, make: impl FnOnce() -> TraceEvent) {
        if let Some(tr) = self.trace.as_mut() {
            tr.record(make());
        }
    }

    // ------------------------------------------------------------------
    // Event dispatch
    // ------------------------------------------------------------------

    /// Whether `ev` would survive the handlers' staleness guards.
    ///
    /// This is the next-completion mode's pop-time liveness predicate and
    /// the per-offload mode's pre-handler filter, so [`World::live_events`]
    /// counts the same deliveries in both modes. A matching generation
    /// implies the predicted entity is still active: every membership
    /// change (start, finish, abort, attach, detach) bumps the generation,
    /// so a generation-current prediction cannot name a departed job.
    fn event_is_live(&self, ev: &Ev) -> bool {
        match *ev {
            Ev::Arrive(_) | Ev::Dispatch(_) => true,
            // Fault, recovery, perturbation and backoff events carry their
            // own state and are handled identically in both modes.
            Ev::Fault(_) | Ev::Recover(_) | Ev::Perturb(_) | Ev::PerturbEnd(_) | Ev::Release(_) => {
                true
            }
            Ev::Cycle(seq) => seq == self.cycle_seq,
            Ev::HostDone {
                node, generation, ..
            } => self
                .hosts
                .get(&node)
                .map(|h| h.generation() == generation)
                .unwrap_or(false),
            Ev::OffloadComplete {
                key, generation, ..
            } => self
                .devices
                .get(&key)
                .map(|d| d.generation() == generation)
                .unwrap_or(false),
        }
    }

    fn handle(&mut self, sim: &mut Sim<Ev>, ev: Ev) {
        if !self.event_is_live(&ev) {
            return; // stale delivery (per-offload mode only)
        }
        self.live_events += 1;
        // Any non-cycle event can move device ground truth, the queue, or
        // the perturbation state — conservatively defeat quiescence.
        if !matches!(ev, Ev::Cycle(_)) {
            self.world_dirty = true;
        }
        match ev {
            Ev::Arrive(idx) => self.on_arrive(sim, idx),
            Ev::Cycle(seq) => self.on_cycle(sim, seq),
            Ev::Dispatch(job) => self.on_dispatch(sim, job),
            Ev::HostDone {
                job,
                node,
                generation,
            } => self.on_host_done(sim, job, node, generation),
            Ev::OffloadComplete {
                job,
                key,
                generation,
            } => self.on_offload_complete(sim, job, key, generation),
            Ev::Fault(idx) => self.on_fault(sim, idx),
            Ev::Recover(idx) => self.on_recover(sim, idx),
            Ev::Perturb(idx) => self.on_perturb(sim, idx),
            Ev::PerturbEnd(idx) => self.on_perturb_end(sim, idx),
            Ev::Release(job) => self.on_release(sim, job),
        }
    }

    fn on_arrive(&mut self, sim: &mut Sim<Ev>, idx: usize) {
        let spec = &self.wl.jobs[idx];
        let id = spec.id;
        // MC jobs go straight to matchmaking with exclusive-card
        // requirements; jobs under an external scheduler are submitted on
        // hold, so the scheduler's release+pin is the only way they ever
        // match (the paper's add-on owns all placements).
        match self.cfg.policy {
            ClusterPolicy::Mc => self
                .queue
                .submit(id, attrs::exclusive_job_ad(spec), sim.now())
                .expect("workload ids are unique"),
            ClusterPolicy::Mcc | ClusterPolicy::Mcck | ClusterPolicy::Oracle => self
                .queue
                .submit_held(id, attrs::sharing_job_ad(spec), sim.now())
                .expect("workload ids are unique"),
        }
        self.trace_ev(|| TraceEvent::Submitted {
            job: id,
            at: sim.now(),
        });
        // A fresh arrival can trigger negotiation (collector update).
        self.request_cycle(sim, sim.now() + self.cfg.negotiation_trigger_delay);
    }

    fn on_cycle(&mut self, sim: &mut Sim<Ev>, seq: u64) {
        if seq != self.cycle_seq {
            return; // superseded by a later (earlier-scheduled) cycle
        }
        self.next_cycle = None;
        self.negotiation_cycles += 1;
        let now = sim.now();

        // 0. Quiescence: when the cycle is provably a no-op — no event
        // since the last executed cycle, no stale-ad window, nothing for
        // the scheduler to plan, every idle certificate covering the
        // collector's newest watermark — skip all of it: the plan call,
        // the ad refresh, and the negotiation would each leave every piece
        // of state bit-identical. Only the skip counter records it; the
        // heartbeat re-arms exactly as the executed path would.
        if self.cfg.skip_quiescent && self.cycle_is_quiescent() {
            self.cycles_skipped += 1;
            #[cfg(debug_assertions)]
            self.audit_quiescent_skip();
            if !self.drained() {
                self.request_cycle(sim, now + self.cfg.negotiation_interval);
            }
            return;
        }
        // This cycle executes against current ground truth; from here on
        // only new events (or this cycle's own actions) can re-dirty it.
        self.world_dirty = false;

        // 1. External scheduler packs pending jobs and pins them.
        if self.scheduler.is_some() {
            let pending_jobs = self.pending_views();
            let device_views = self.device_views();
            let scheduler = self.scheduler.as_mut().expect("checked above");
            let plan_start = std::time::Instant::now();
            let pins = scheduler.plan(&pending_jobs, &device_views);
            self.plan_nanos += plan_start.elapsed().as_nanos() as u64;
            for Pin { job, node, device } in pins {
                self.world_dirty = true;
                let node_name = format!("node{node}");
                self.queue
                    .qedit_expr(job, "Requirements", &attrs::pin_to_node(&node_name))
                    .expect("pinned job is queued");
                self.queue.release(job).expect("pinned job was held");
                self.pinned_dev.insert(job, (node, device));
                self.pins_issued += 1;
                self.trace_ev(|| TraceEvent::Pinned { job, node, at: now });
            }
        }

        // 2. Refresh machine ads from ground truth — unless a stale-ad
        // window froze the collector (delayed updates): the negotiator then
        // matches against whatever the ads said when the window opened.
        if self.stale_ad_depth == 0 {
            self.refresh_ads();
        } else {
            self.stale_ad_skips += 1;
        }

        // 3. Matchmaking.
        let matches = self
            .negotiator
            .negotiate(&mut self.queue, &mut self.collector);
        for m in matches {
            self.world_dirty = true;
            let spec = &self.wl.jobs[self.job_index[&m.job]];
            // Pinned jobs go to the device their packing round reserved;
            // unpinned (MC) jobs pick a free device now.
            let key = match self.pinned_dev.remove(&m.job) {
                Some(key) => {
                    debug_assert_eq!(key.0, m.slot.node, "pin/match node mismatch");
                    key
                }
                None => match self.choose_device(m.slot.node, spec.mem_req_mb) {
                    Some(key) => key,
                    None => {
                        // With fresh ads exclusive matchmaking guarantees a
                        // free device; under a stale-ad window the claim can
                        // name a node whose cards are gone or full. Undo the
                        // match like a schedd whose claim activation failed:
                        // release the slot, put the job back in the idle
                        // queue, let a later cycle retry.
                        debug_assert!(
                            self.stale_ad_depth > 0,
                            "matchmaking over-promised on fresh ads"
                        );
                        self.collector.release(m.slot);
                        self.queue
                            .requeue(m.job)
                            .expect("matched job can be vacated");
                        self.queue.release(m.job).expect("vacated job is held");
                        self.stale_match_rejects += 1;
                        continue;
                    }
                },
            };
            self.matched_dev.insert(m.job, key);
            *self.inflight_declared.entry(key).or_insert(0) += spec.mem_req_mb;
            *self.inflight_count.entry(key).or_insert(0) += 1;
            *self.inflight_threads.entry(key).or_insert(0) += spec.thread_req;
            if let Some(s) = self.scheduler.as_mut() {
                s.on_dispatched(m.job);
            }
            sim.schedule_after(self.cfg.dispatch_delay, Ev::Dispatch(m.job));
        }

        // 4. Keep the periodic heartbeat alive while work remains.
        if !self.drained() {
            self.request_cycle(sim, now + self.cfg.negotiation_interval);
        }
    }

    fn on_dispatch(&mut self, sim: &mut Sim<Ev>, job: JobId) {
        let now = sim.now();
        let idx = self.job_index[&job];
        let spec = &self.wl.jobs[idx];
        // A fault between match and dispatch revokes the match and requeues
        // the job; the in-flight Dispatch then finds nothing to start. (If
        // the job was *re*-matched before the stale event fires, the stale
        // delivery consumes the fresh match a little early — deterministic
        // and harmless, like a starter racing the shadow.)
        let Some(key) = self.matched_dev.remove(&job) else {
            return;
        };
        *self
            .inflight_declared
            .get_mut(&key)
            .expect("inflight entry") -= spec.mem_req_mb;
        *self.inflight_count.get_mut(&key).expect("inflight entry") -= 1;
        *self.inflight_threads.get_mut(&key).expect("inflight entry") -= spec.thread_req;

        self.queue.set_running(job).expect("matched job starts");
        let slot = match self.queue.get(job).expect("queued").state {
            phishare_condor::JobState::Running(slot) => slot,
            _ => unreachable!("just set running"),
        };
        let submitted = self.queue.get(job).expect("queued").submitted;
        if self.wait_recorded.insert(job) {
            self.waits.record(now.since(submitted).as_secs_f64());
        }

        self.trace_ev(|| TraceEvent::Dispatched {
            job,
            node: key.0,
            device: key.1,
            at: now,
        });
        // Attach the COI process and make the initial memory commit. The
        // substrate handles come back from registration/attach, so the
        // `RunningJob` is inserted right after (attach never consults
        // `running`; a job OOM-killing *itself* on attach is handled below).
        let initial_commit =
            ((spec.actual_peak_mem_mb as f64) * self.cfg.initial_commit_fraction).round() as u64;
        let cslot = self
            .cosmic
            .get_mut(&key)
            .map(|cos| cos.register(job, spec.mem_req_mb, spec.thread_req));
        let (dslot, outcome) = self.devices.get_mut(&key).expect("device exists").attach(
            now,
            ProcId(job.raw()),
            spec.mem_req_mb,
            spec.thread_req,
            initial_commit,
            &mut self.rng_oom,
        );
        self.running.insert(
            job,
            RunningJob {
                idx,
                slot,
                key,
                dslot,
                cslot,
                seg: 0,
                offloads_done: 0,
                fallback: false,
            },
        );
        self.handle_commit_outcome(sim, key, outcome);
        if !self.running.contains_key(&job) {
            return; // the job itself was an OOM victim of its own attach
        }
        if self.container_check(sim, key, job, initial_commit) {
            return;
        }
        self.advance_segment(sim, job);
    }

    fn on_host_done(&mut self, sim: &mut Sim<Ev>, job: JobId, node: u32, generation: u64) {
        let now = sim.now();
        {
            let host = self.hosts.get(&node).expect("node exists");
            if host.generation() != generation || !host.is_active(job) {
                return; // stale prediction, or the job was killed
            }
        }
        let Some(run) = self.running.get_mut(&job) else {
            return;
        };
        run.seg += 1;
        self.hosts
            .get_mut(&node)
            .expect("node exists")
            .finish_segment(now, job);
        self.sync_host(sim, node);
        self.advance_segment(sim, job);
    }

    fn on_offload_complete(&mut self, sim: &mut Sim<Ev>, job: JobId, key: DevKey, generation: u64) {
        let now = sim.now();
        {
            let device = self.devices.get(&key).expect("device exists");
            if device.generation() != generation {
                return; // stale prediction
            }
        }
        let Some(run) = self.running.get_mut(&job) else {
            return;
        };
        let (dslot, cslot) = (run.dslot, run.cslot);
        run.seg += 1;
        run.offloads_done += 1;

        self.devices
            .get_mut(&key)
            .expect("device exists")
            .finish_offload(now, dslot);
        self.trace_ev(|| TraceEvent::OffloadFinished { job, at: now });
        if let Some(cslot) = cslot {
            let mut grants = std::mem::take(&mut self.grants_buf);
            self.cosmic
                .get_mut(&key)
                .expect("handle implies cosmic")
                .complete_offload_into(now, cslot, &mut grants);
            self.start_grants(sim, key, &grants);
            grants.clear();
            self.grants_buf = grants;
        }
        self.sync_completions(sim, key);
        self.advance_segment(sim, job);
    }

    // ------------------------------------------------------------------
    // Job execution
    // ------------------------------------------------------------------

    /// Begin the job's current segment (or complete the job).
    fn advance_segment(&mut self, sim: &mut Sim<Ev>, job: JobId) {
        let now = sim.now();
        let (idx, seg, key, offloads_done) = {
            let run = self.running.get(&job).expect("advancing a live job");
            (run.idx, run.seg, run.key, run.offloads_done)
        };
        let spec = &self.wl.jobs[idx];
        match spec.profile.segments.get(seg) {
            None => self.complete_job(sim, job),
            Some(Segment::Host { duration }) => {
                let node = key.0;
                self.hosts
                    .get_mut(&node)
                    .expect("node exists")
                    .start_segment(now, job, *duration);
                self.sync_host(sim, node);
            }
            Some(Segment::Offload { threads, work }) => {
                if self.running[&job].fallback {
                    // Host-fallback: the card reset under this job, so the
                    // offload's work runs on host cores at the configured
                    // slowdown. No memory commit, no COSMIC admission — the
                    // kernel never leaves the host.
                    let _ = threads;
                    let slow = work.mul_f64(self.cfg.recovery.host_fallback_slowdown);
                    self.fallback_offloads += 1;
                    let node = key.0;
                    self.hosts
                        .get_mut(&node)
                        .expect("node exists")
                        .start_segment(now, job, slow);
                    self.sync_host(sim, node);
                    return;
                }
                // Memory-growth model: commits approach the actual peak as
                // offloads execute.
                let total_offloads = spec.profile.offload_count().max(1);
                let initial = ((spec.actual_peak_mem_mb as f64) * self.cfg.initial_commit_fraction)
                    .round() as u64;
                let grown = initial
                    + ((spec.actual_peak_mem_mb - initial.min(spec.actual_peak_mem_mb)) as f64
                        * (offloads_done + 1) as f64
                        / total_offloads as f64)
                        .round() as u64;
                let (dslot, cslot) = {
                    let run = &self.running[&job];
                    (run.dslot, run.cslot)
                };
                let outcome = self.devices.get_mut(&key).expect("device exists").commit(
                    now,
                    dslot,
                    grown,
                    &mut self.rng_oom,
                );
                self.handle_commit_outcome(sim, key, outcome);
                if !self.running.contains_key(&job) {
                    return; // OOM-killed by its own growth
                }
                if self.container_check(sim, key, job, grown) {
                    return;
                }
                self.sync_completions(sim, key); // commit may have killed others

                let threads = *threads;
                let mut work = *work;
                // Latency spike: offloads *started* inside an open window
                // carry the window's extra nominal work. Applied at request
                // time (before COSMIC admission), so a queued offload keeps
                // the inflation it was admitted with — deterministic across
                // event modes and substrates.
                let extra = self.latency_extra(key);
                if !extra.is_zero() {
                    work += extra;
                    self.inflated_offloads += 1;
                }
                if let Some(cslot) = cslot {
                    let cos = self.cosmic.get_mut(&key).expect("handle implies cosmic");
                    match cos.request_offload(now, cslot, threads, work) {
                        Admission::Started(grant) => {
                            self.start_grants(sim, key, std::slice::from_ref(&grant));
                            self.sync_completions(sim, key);
                        }
                        Admission::Queued => {
                            // The job parks here; a future completion or
                            // departure grants the offload.
                            self.trace_ev(|| TraceEvent::OffloadQueued { job, at: now });
                        }
                    }
                } else {
                    self.devices
                        .get_mut(&key)
                        .expect("device exists")
                        .start_offload(now, dslot, threads, work, Affinity::Unmanaged);
                    self.trace_ev(|| TraceEvent::OffloadStarted {
                        job,
                        threads,
                        at: now,
                    });
                    self.sync_completions(sim, key);
                }
            }
        }
    }

    /// Start COSMIC-granted offloads on the device.
    ///
    /// Takes a slice (callers recycle [`World::grants_buf`]); a grant
    /// implies its job is running on this device, so its handle is live.
    fn start_grants(&mut self, sim: &mut Sim<Ev>, key: DevKey, grants: &[OffloadGrant]) {
        let now = sim.now();
        for grant in grants {
            let dslot = self.running[&grant.job].dslot;
            self.devices
                .get_mut(&key)
                .expect("device exists")
                .start_offload(now, dslot, grant.threads, grant.work, grant.affinity);
            self.trace_ev(|| TraceEvent::OffloadStarted {
                job: grant.job,
                threads: grant.threads,
                at: now,
            });
        }
        self.sync_completions(sim, key);
    }

    /// (Re)schedule completion prediction events for a node's host CPUs.
    ///
    /// Next-completion mode pushes the single earliest prediction;
    /// per-offload mode pushes one event per active phase. Both push at
    /// most once per generation: an in-bounds memory commit re-anchors the
    /// progress integrator without bumping the generation, and a
    /// prediction *recomputed* from the new anchor can land a
    /// float-rounding tick away from the still-live issued one — re-pushed
    /// it would race the original and make the two modes diverge.
    fn sync_host(&mut self, sim: &mut Sim<Ev>, node: u32) {
        let generation = self.hosts.get(&node).expect("node exists").generation();
        if self.synced_host_gen.insert(node, generation) == Some(generation) {
            return; // this generation's predictions are already queued
        }
        let host = self.hosts.get(&node).expect("node exists");
        match self.mode {
            EventMode::PerOffload => {
                for (job, at) in host.completions() {
                    sim.schedule_at(
                        at,
                        Ev::HostDone {
                            job,
                            node,
                            generation,
                        },
                    );
                }
            }
            EventMode::NextCompletion => {
                if let Some((job, at)) = host.next_completion() {
                    sim.schedule_at(
                        at,
                        Ev::HostDone {
                            job,
                            node,
                            generation,
                        },
                    );
                }
            }
        }
    }

    /// (Re)schedule completion prediction events for a device (see
    /// [`World::sync_host`] for the per-mode and once-per-generation
    /// contract).
    fn sync_completions(&mut self, sim: &mut Sim<Ev>, key: DevKey) {
        let generation = self.devices.get(&key).expect("device exists").generation();
        if self.synced_dev_gen.insert(key, generation) == Some(generation) {
            return; // this generation's predictions are already queued
        }
        let device = self.devices.get(&key).expect("device exists");
        match self.mode {
            EventMode::PerOffload => {
                device.for_each_completion(|proc, at| {
                    sim.schedule_at(
                        at,
                        Ev::OffloadComplete {
                            job: JobId(proc.raw()),
                            key,
                            generation,
                        },
                    );
                });
            }
            EventMode::NextCompletion => {
                if let Some((proc, at)) = device.next_completion() {
                    sim.schedule_at(
                        at,
                        Ev::OffloadComplete {
                            job: JobId(proc.raw()),
                            key,
                            generation,
                        },
                    );
                }
            }
        }
    }

    fn complete_job(&mut self, sim: &mut Sim<Ev>, job: JobId) {
        let now = sim.now();
        let run = self.running.remove(&job).expect("completing a live job");
        if !run.fallback {
            self.devices
                .get_mut(&run.key)
                .expect("device exists")
                .detach(now, run.dslot);
            if run.cslot.is_some() {
                let mut grants = std::mem::take(&mut self.grants_buf);
                self.cosmic
                    .get_mut(&run.key)
                    .expect("handle implies cosmic")
                    .unregister_into(now, job, &mut grants);
                self.start_grants(sim, run.key, &grants);
                grants.clear();
                self.grants_buf = grants;
            }
            self.sync_completions(sim, run.key);
        }

        self.queue
            .set_completed(job)
            .expect("running job completes");
        self.collector.release(run.slot);
        let submitted = self.queue.get(job).expect("queued").submitted;
        self.turnarounds.record(now.since(submitted).as_secs_f64());
        self.completed += 1;
        self.last_terminal = now;
        self.trace_ev(|| TraceEvent::Completed { job, at: now });

        // Completion-triggered negotiation (Fig. 4's while-loop): see
        // `completion_triggers_cycle` for which policies get it.
        if !self.drained() && self.completion_triggers_cycle() {
            self.request_cycle(sim, now + self.cfg.negotiation_trigger_delay);
        }
    }

    /// Whether a completion leads to a prompt negotiation, or only the
    /// periodic cycle will notice the freed capacity.
    ///
    /// * **MCCK** — yes: the scheduler's `condor_qedit` batch reaches the
    ///   collector and "a negotiation cycle ... is triggered when the Condor
    ///   collector obtains the changed job requirements" (§IV-D1).
    /// * **MC** — yes: exclusive claims with identical requirements are
    ///   reused by the schedd (Condor claim reuse), so the next queued job
    ///   backfills the freed card without a full negotiation.
    /// * **MCC** — no: sharing placements depend on the node's *remaining*
    ///   Phi memory, which is a node-level ad attribute, not part of claim
    ///   compatibility; a freed slice of device memory is only observable
    ///   at the next periodic negotiation cycle.
    fn completion_triggers_cycle(&self) -> bool {
        !matches!(self.cfg.policy, ClusterPolicy::Mcc)
    }

    /// Terminate a job early. `already_detached` is true when the device
    /// removed the process itself (OOM kill).
    fn kill_job(
        &mut self,
        sim: &mut Sim<Ev>,
        job: JobId,
        reason: KillReason,
        already_detached: bool,
    ) {
        let now = sim.now();
        let Some(run) = self.running.remove(&job) else {
            return;
        };
        if !run.fallback && !already_detached {
            self.devices
                .get_mut(&run.key)
                .expect("device exists")
                .detach(now, run.dslot);
        }
        // The victim may have been mid-host-phase (e.g. an OOM victim whose
        // offload had not started yet).
        self.hosts
            .get_mut(&run.key.0)
            .expect("node exists")
            .abort(now, job);
        self.sync_host(sim, run.key.0);
        if !run.fallback {
            if run.cslot.is_some() {
                let mut grants = std::mem::take(&mut self.grants_buf);
                self.cosmic
                    .get_mut(&run.key)
                    .expect("handle implies cosmic")
                    .unregister_into(now, job, &mut grants);
                self.start_grants(sim, run.key, &grants);
                grants.clear();
                self.grants_buf = grants;
            }
            self.sync_completions(sim, run.key);
        }

        self.queue.set_removed(job).expect("live job is removable");
        self.collector.release(run.slot);
        match reason {
            KillReason::Container => self.container_kills += 1,
            KillReason::Oom => self.oom_kills += 1,
        }
        self.trace_ev(|| TraceEvent::Killed {
            job,
            reason,
            at: now,
        });
        self.last_terminal = now;
        if !self.drained() && self.completion_triggers_cycle() {
            self.request_cycle(sim, now + self.cfg.negotiation_trigger_delay);
        }
    }

    /// Process OOM fallout from a memory commit.
    fn handle_commit_outcome(&mut self, sim: &mut Sim<Ev>, _key: DevKey, outcome: CommitOutcome) {
        if let CommitOutcome::OomKilled(victims) = outcome {
            for victim in victims {
                self.kill_job(sim, JobId(victim.raw()), KillReason::Oom, true);
            }
        }
    }

    /// COSMIC container enforcement; returns true when the job was killed.
    fn container_check(
        &mut self,
        sim: &mut Sim<Ev>,
        key: DevKey,
        job: JobId,
        committed: u64,
    ) -> bool {
        let Some(cslot) = self.running[&job].cslot else {
            return false;
        };
        let cos = self.cosmic.get(&key).expect("handle implies cosmic");
        match cos.on_commit(cslot, committed) {
            ContainerVerdict::Allowed => false,
            ContainerVerdict::KillExceededLimit { .. } => {
                self.kill_job(sim, job, KillReason::Container, false);
                true
            }
        }
    }

    // ------------------------------------------------------------------
    // Fault injection & recovery
    // ------------------------------------------------------------------

    fn on_fault(&mut self, sim: &mut Sim<Ev>, idx: usize) {
        let f = self.plan.events[idx];
        match f.kind {
            FaultKind::DeviceReset => self.on_device_reset(sim, idx),
            FaultKind::NodeChurn => self.on_node_churn(sim, idx),
        }
    }

    /// MPSS crash: the card reboots. Resident offloads abort, COSMIC
    /// registrations flush, and the device advertises zero capacity until
    /// its `Recover` event fires. Jobs caught on the card either degrade
    /// to host-only execution or vacate, per [`FallbackPolicy`].
    fn on_device_reset(&mut self, sim: &mut Sim<Ev>, idx: usize) {
        let f = self.plan.events[idx];
        let key = (f.node, f.device);
        if self.down_nodes.contains(&f.node) || self.down_devs.contains(&key) {
            return; // target already down: the strike is absorbed silently
        }
        let now = sim.now();
        self.device_resets += 1;
        self.down_devs.insert(key);
        self.trace_ev(|| TraceEvent::DeviceReset {
            node: f.node,
            device: f.device,
            at: now,
        });
        self.flush_device(sim, key);
        // Matched-but-undispatched jobs lose their reservation; their
        // pending Dispatch event no-ops once the match is gone.
        for job in self.matched_jobs_on(|k| k == key) {
            self.unmatch_for_fault(job);
            self.fault_requeue(sim, job);
        }
        // Idle jobs pinned to this card go back to Held for re-planning.
        self.pull_back_pins(|k| k == key);
        // Jobs executing on the card degrade or vacate.
        for job in self.running_jobs_on(|r| r.key == key && !r.fallback) {
            match self.cfg.recovery.fallback {
                FallbackPolicy::HostOnly => {
                    self.running
                        .get_mut(&job)
                        .expect("listed as running")
                        .fallback = true;
                    self.trace_ev(|| TraceEvent::FallbackStarted {
                        job,
                        node: f.node,
                        at: now,
                    });
                    // Mid-host-phase jobs keep running and fall back at
                    // their next offload; a job whose offload the reset
                    // aborted (active or COSMIC-queued) restarts the
                    // segment host-side now.
                    let mid_host = self.hosts.get(&f.node).expect("node exists").is_active(job);
                    if !mid_host {
                        self.advance_segment(sim, job);
                    }
                }
                FallbackPolicy::Requeue => {
                    self.hosts
                        .get_mut(&f.node)
                        .expect("node exists")
                        .abort(now, job);
                    self.sync_host(sim, f.node);
                    let run = self.running.remove(&job).expect("listed as running");
                    self.collector.release(run.slot);
                    self.fault_requeue(sim, job);
                }
            }
        }
        sim.schedule_after(f.downtime, Ev::Recover(idx));
    }

    /// Startd vanishes: its ads are invalidated, every job on the node is
    /// killed and requeued, and the node's cards flush (MPSS restarts with
    /// the node). Nothing on the node matches until `Recover` re-advertises.
    fn on_node_churn(&mut self, sim: &mut Sim<Ev>, idx: usize) {
        let f = self.plan.events[idx];
        if self.down_nodes.contains(&f.node) {
            return; // already down
        }
        let now = sim.now();
        self.node_churns += 1;
        self.down_nodes.insert(f.node);
        self.trace_ev(|| TraceEvent::NodeDown {
            node: f.node,
            at: now,
        });
        self.collector.invalidate_node(f.node);
        for dev in 0..self.cfg.devices_per_node {
            self.flush_device(sim, (f.node, dev));
        }
        for job in self.matched_jobs_on(|k| k.0 == f.node) {
            self.unmatch_for_fault(job); // slot release no-ops: ads are gone
            self.fault_requeue(sim, job);
        }
        self.pull_back_pins(|k| k.0 == f.node);
        for job in self.running_jobs_on(|r| r.key.0 == f.node) {
            self.hosts
                .get_mut(&f.node)
                .expect("node exists")
                .abort(now, job);
            self.running.remove(&job);
            self.fault_requeue(sim, job);
        }
        self.sync_host(sim, f.node);
        sim.schedule_after(f.downtime, Ev::Recover(idx));
    }

    fn on_recover(&mut self, sim: &mut Sim<Ev>, idx: usize) {
        let f = self.plan.events[idx];
        let now = sim.now();
        match f.kind {
            FaultKind::DeviceReset => {
                self.down_devs.remove(&(f.node, f.device));
                self.trace_ev(|| TraceEvent::DeviceRecovered {
                    node: f.node,
                    device: f.device,
                    at: now,
                });
            }
            FaultKind::NodeChurn => {
                self.down_nodes.remove(&f.node);
                self.trace_ev(|| TraceEvent::NodeUp {
                    node: f.node,
                    at: now,
                });
                self.advertise_node(f.node);
            }
        }
        // Restored capacity can unblock queued work.
        if !self.drained() {
            self.request_cycle(sim, now + self.cfg.negotiation_trigger_delay);
        }
    }

    /// Backoff expiry: the vacated job becomes schedulable again.
    fn on_release(&mut self, sim: &mut Sim<Ev>, job: JobId) {
        if !self.parked.remove(&job) {
            return;
        }
        // MC jobs negotiate straight from Idle; scheduler-driven policies
        // leave the job Held so the next planning round re-pins it (it is
        // visible to `pending_views` again now that it is un-parked).
        if self.scheduler.is_none() {
            self.queue.release(job).expect("parked job is held");
        }
        self.request_cycle(sim, sim.now() + self.cfg.negotiation_trigger_delay);
    }

    // ------------------------------------------------------------------
    // Chaos perturbations
    // ------------------------------------------------------------------

    /// A perturbation window opens: record it and schedule its close.
    ///
    /// Unlike faults, perturbation windows are never absorbed by node
    /// churn — a derate on a down node is harmless (the device has no
    /// active offloads) and keeping the open/close pairing unconditional
    /// keeps the bookkeeping trivially balanced.
    fn on_perturb(&mut self, sim: &mut Sim<Ev>, idx: usize) {
        let p = self.perturbs.events[idx];
        self.perturb_windows += 1;
        match p.kind {
            PerturbKind::DeviceDerate { factor } => {
                let key = (p.node, p.device);
                self.derate_active
                    .entry(key)
                    .or_default()
                    .insert(idx, factor);
                self.apply_derate(sim, key);
            }
            PerturbKind::OffloadLatency { extra } => {
                self.latency_active
                    .entry((p.node, p.device))
                    .or_default()
                    .insert(idx, extra);
            }
            PerturbKind::StaleAds => self.stale_ad_depth += 1,
        }
        sim.schedule_after(p.duration, Ev::PerturbEnd(idx));
    }

    /// A perturbation window closes: undo exactly what `on_perturb` did.
    fn on_perturb_end(&mut self, sim: &mut Sim<Ev>, idx: usize) {
        let p = self.perturbs.events[idx];
        match p.kind {
            PerturbKind::DeviceDerate { .. } => {
                let key = (p.node, p.device);
                if let Some(m) = self.derate_active.get_mut(&key) {
                    m.remove(&idx);
                }
                self.apply_derate(sim, key);
            }
            PerturbKind::OffloadLatency { .. } => {
                if let Some(m) = self.latency_active.get_mut(&(p.node, p.device)) {
                    m.remove(&idx);
                }
            }
            PerturbKind::StaleAds => self.stale_ad_depth -= 1,
        }
    }

    /// Recompute the composite derate for one card and push it into the
    /// substrate.
    ///
    /// Overlapping windows multiply. The product folds over plan indices
    /// in ascending order (`BTreeMap` iteration), so every event mode and
    /// substrate performs the same IEEE operations in the same order.
    fn apply_derate(&mut self, sim: &mut Sim<Ev>, key: DevKey) {
        let scale = self
            .derate_active
            .get(&key)
            .filter(|m| !m.is_empty())
            .map(|m| m.values().product())
            .unwrap_or(1.0);
        self.devices
            .get_mut(&key)
            .expect("perturbed device exists")
            .set_rate_scale(sim.now(), scale);
        self.sync_completions(sim, key);
    }

    /// Sum of the offload-latency extras currently open on `key`.
    fn latency_extra(&self, key: DevKey) -> SimDuration {
        self.latency_active
            .get(&key)
            .map(|m| m.values().fold(SimDuration::ZERO, |acc, &d| acc + d))
            .unwrap_or(SimDuration::ZERO)
    }

    /// Reset one card and flush its COSMIC state.
    fn flush_device(&mut self, sim: &mut Sim<Ev>, key: DevKey) {
        let now = sim.now();
        self.devices
            .get_mut(&key)
            .expect("device exists")
            .reset(now);
        if let Some(cos) = self.cosmic.get_mut(&key) {
            cos.reset();
        }
        // Marks the bumped generation synced (nothing is resident, so no
        // prediction is pushed) and invalidates in-flight completions.
        self.sync_completions(sim, key);
    }

    /// Revoke a match that has not dispatched yet: restore the in-flight
    /// accounting and free the claimed slot.
    fn unmatch_for_fault(&mut self, job: JobId) {
        let key = self
            .matched_dev
            .remove(&job)
            .expect("matched job has a device");
        let spec = &self.wl.jobs[self.job_index[&job]];
        *self
            .inflight_declared
            .get_mut(&key)
            .expect("inflight entry") -= spec.mem_req_mb;
        *self.inflight_count.get_mut(&key).expect("inflight entry") -= 1;
        *self.inflight_threads.get_mut(&key).expect("inflight entry") -= spec.thread_req;
        if let phishare_condor::JobState::Matched(slot) = self.queue.get(job).expect("queued").state
        {
            // No-op when the node churned away (its ads were invalidated).
            self.collector.release(slot);
        }
    }

    /// Return a vacated (matched/running) job to the queue with
    /// exponential backoff, or hold it permanently once its retry budget
    /// is exhausted — HTCondor's periodic-release / `MaxRetries` policy.
    fn fault_requeue(&mut self, sim: &mut Sim<Ev>, job: JobId) {
        let now = sim.now();
        self.queue
            .requeue(job)
            .expect("vacated job was matched or running");
        if let Some(s) = self.scheduler.as_mut() {
            s.on_job_gone(job);
        }
        let attempts = self.attempts.get(&job).copied().unwrap_or(0);
        if attempts >= self.cfg.recovery.max_retries {
            self.retired.insert(job);
            self.trace_ev(|| TraceEvent::HeldMaxRetries { job, at: now });
            // Retirement is terminal: the run can end on it.
            self.last_terminal = now;
        } else {
            self.attempts.insert(job, attempts + 1);
            self.retries += 1;
            self.parked.insert(job);
            self.trace_ev(|| TraceEvent::Requeued {
                job,
                attempt: attempts + 1,
                at: now,
            });
            sim.schedule_after(self.cfg.recovery.backoff(attempts), Ev::Release(job));
        }
    }

    /// Jobs released+pinned but not yet matched whose target satisfies
    /// `pred` go back on hold; the scheduler re-plans them next cycle.
    fn pull_back_pins(&mut self, pred: impl Fn(DevKey) -> bool) {
        let jobs: Vec<JobId> = self
            .pinned_dev
            .iter()
            .filter(|(_, &k)| pred(k))
            .map(|(&j, _)| j)
            .collect();
        for job in jobs {
            self.pinned_dev.remove(&job);
            self.queue.hold(job).expect("pinned job is idle");
            if let Some(s) = self.scheduler.as_mut() {
                s.on_job_gone(job);
            }
        }
    }

    fn matched_jobs_on(&self, pred: impl Fn(DevKey) -> bool) -> Vec<JobId> {
        self.matched_dev
            .iter()
            .filter(|(_, &k)| pred(k))
            .map(|(&j, _)| j)
            .collect()
    }

    fn running_jobs_on(
        &self,
        pred: impl Fn(&RunningJob<D::Handle, C::Handle>) -> bool,
    ) -> Vec<JobId> {
        self.running
            .iter()
            .filter(|(_, r)| pred(r))
            .map(|(&j, _)| j)
            .collect()
    }

    /// Full re-advertise of a recovered node from ground truth (its ads
    /// were invalidated, so `refresh` has nothing to update).
    fn advertise_node(&mut self, node: u32) {
        let startd = &self.startds[(node - 1) as usize];
        debug_assert_eq!(startd.node, node, "startds are indexed by node - 1");
        let mut free_mem = 0u64;
        let mut devices_free = 0u32;
        for dev in 0..self.cfg.devices_per_node {
            let key = (node, dev);
            if self.down_devs.contains(&key) {
                continue; // a card still mid-reset advertises nothing
            }
            let device = self.devices.get(&key).expect("device exists");
            let inflight_mem = self.inflight_declared.get(&key).copied().unwrap_or(0);
            let inflight_n = self.inflight_count.get(&key).copied().unwrap_or(0);
            free_mem += device.free_declared_mb().saturating_sub(inflight_mem);
            if device.resident_count() == 0 && inflight_n == 0 {
                devices_free += 1;
            }
        }
        startd.advertise(&mut self.collector, free_mem, devices_free);
    }

    // ------------------------------------------------------------------
    // Scheduling support
    // ------------------------------------------------------------------

    /// Unplaced (held) jobs, in FIFO order, as the external scheduler sees
    /// them.
    fn pending_views(&self) -> Vec<PendingJob> {
        self.queue
            .held()
            .into_iter()
            // Parked (backing off) and retired jobs are held too, but the
            // scheduler must not plan them.
            .filter(|id| !self.parked.contains(id) && !self.retired.contains(id))
            .map(|id| {
                let spec = &self.wl.jobs[self.job_index[&id]];
                PendingJob {
                    id,
                    mem_mb: spec.mem_req_mb,
                    threads: spec.thread_req,
                    nominal_secs: spec.nominal_duration().as_secs_f64(),
                }
            })
            .collect()
    }

    /// Per-device free envelopes as the external scheduler sees them.
    fn device_views(&self) -> Vec<DeviceView> {
        self.devices
            .iter()
            .filter(|(&(node, dev), _)| {
                !self.down_nodes.contains(&node) && !self.down_devs.contains(&(node, dev))
            })
            .map(|(&(node, dev), device)| {
                let inflight = self
                    .inflight_declared
                    .get(&(node, dev))
                    .copied()
                    .unwrap_or(0);
                let inflight_threads = self
                    .inflight_threads
                    .get(&(node, dev))
                    .copied()
                    .unwrap_or(0);
                DeviceView {
                    node,
                    device: dev,
                    free_declared_mb: device.free_declared_mb().saturating_sub(inflight),
                    // Matched-but-undispatched jobs consume thread budget
                    // too, or successive cycles would overfill a device.
                    resident_threads: device.declared_threads() + inflight_threads,
                }
            })
            .collect()
    }

    /// Refresh every node's slot ads from device ground truth.
    fn refresh_ads(&mut self) {
        for startd in &self.startds {
            let node = startd.node;
            if self.down_nodes.contains(&node) {
                // A churned node has no ads to refresh; `refresh` would
                // fall back to a full advertise and resurrect the dead
                // startd. It re-advertises on recovery instead.
                continue;
            }
            let mut free_mem = 0u64;
            let mut devices_free = 0u32;
            for dev in 0..self.cfg.devices_per_node {
                let key = (node, dev);
                if self.down_devs.contains(&key) {
                    continue; // a card mid-reset contributes no capacity
                }
                let device = self.devices.get(&key).expect("device exists");
                let inflight_mem = self.inflight_declared.get(&key).copied().unwrap_or(0);
                let inflight_n = self.inflight_count.get(&key).copied().unwrap_or(0);
                free_mem += device.free_declared_mb().saturating_sub(inflight_mem);
                if device.resident_count() == 0 && inflight_n == 0 {
                    devices_free += 1;
                }
            }
            startd.refresh(&mut self.collector, free_mem, devices_free);
        }
    }

    /// Pick the device on `node` with the most free declared memory that
    /// fits `mem_mb` (and, for the exclusive policy, is entirely free).
    fn choose_device(&self, node: u32, mem_mb: u64) -> Option<DevKey> {
        let mut best: Option<(u64, DevKey)> = None;
        if self.down_nodes.contains(&node) {
            return None; // defensive: a churned node's ads are gone anyway
        }
        for dev in 0..self.cfg.devices_per_node {
            let key = (node, dev);
            if self.down_devs.contains(&key) {
                continue;
            }
            let device = self.devices.get(&key)?;
            let inflight_mem = self.inflight_declared.get(&key).copied().unwrap_or(0);
            let inflight_n = self.inflight_count.get(&key).copied().unwrap_or(0);
            if self.cfg.policy == ClusterPolicy::Mc
                && (device.resident_count() > 0 || inflight_n > 0)
            {
                continue;
            }
            let free = device.free_declared_mb().saturating_sub(inflight_mem);
            if free >= mem_mb && best.map(|(b, _)| free > b).unwrap_or(true) {
                best = Some((free, key));
            }
        }
        best.map(|(_, key)| key)
    }

    /// Schedule a negotiation cycle at `at` unless one is already due
    /// earlier.
    ///
    /// Under cycle jitter the scheduled instant slips late by
    /// `uniform(0, jitter_max_secs)`. The offset is a pure function of
    /// `(seed, cycle_seq)` via an indexed substream — not of how many
    /// times this method ran — so event modes and substrates that issue
    /// the same cycle sequence draw the same offsets.
    fn request_cycle(&mut self, sim: &mut Sim<Ev>, at: SimTime) {
        if let Some(due) = self.next_cycle {
            if due <= at {
                return;
            }
        }
        self.cycle_seq += 1;
        let at = if self.cfg.perturb.jitter_enabled() {
            let mut rng =
                DetRng::substream_indexed(self.cfg.seed, "perturb-jitter", self.cycle_seq);
            let offset = rng.uniform_range(0.0, self.cfg.perturb.jitter_max_secs);
            self.jittered_cycles += 1;
            at + SimDuration::from_secs_f64(offset)
        } else {
            at
        };
        self.next_cycle = Some(at);
        sim.schedule_at(at, Ev::Cycle(self.cycle_seq));
    }

    /// Whether the imminent cycle is provably a no-op. Exact, O(1):
    ///
    /// * `!world_dirty` — no event since the last executed cycle, so
    ///   device ground truth is unchanged and `refresh_ads` would rewrite
    ///   every ad to its current value (a clean no-op write);
    /// * no open stale-ad window — an executed cycle under one must still
    ///   advance `stale_ad_skips`, so it cannot be skipped;
    /// * nothing for the external scheduler to plan — every held job is
    ///   parked or retired, and `plan(&[], …)` is pure for every
    ///   scheduler (no RNG draws, no cache-counter movement);
    /// * every idle job's unmatched certificate covers the collector's
    ///   newest watermark — the negotiator-level quiescence predicate
    ///   ([`Negotiator::cycle_is_quiescent`]): each job would re-screen an
    ///   empty dirty set, match nothing, and re-certify at an unchanged
    ///   sequence.
    fn cycle_is_quiescent(&self) -> bool {
        !self.world_dirty
            && self.stale_ad_depth == 0
            && (self.scheduler.is_none()
                || self.queue.held_count() == self.parked.len() + self.retired.len())
            && Negotiator::cycle_is_quiescent(&self.queue, &self.collector)
    }

    /// Debug-build proof obligation for a skipped cycle: replay full-oracle
    /// matchmaking on clones and assert it would have matched nothing. The
    /// proptests run debug builds, so every skip in every generated
    /// scenario re-proves itself against [`MatchPath::Full`].
    #[cfg(debug_assertions)]
    fn audit_quiescent_skip(&self) {
        let mut queue = self.queue.clone();
        let mut collector = self.collector.clone();
        let (matches, _) = self
            .negotiator
            .negotiate_full_with_stats(&mut queue, &mut collector);
        debug_assert!(
            matches.is_empty(),
            "quiescence skipped a cycle the full oracle would have matched {} job(s) in",
            matches.len()
        );
    }

    /// True when no job will ever need another negotiation cycle.
    ///
    /// Retired jobs (held after exhausting retries) count as terminal;
    /// parked jobs do not — their pending `Release` will need a cycle.
    fn drained(&self) -> bool {
        if !self.queue_has_all_jobs() {
            return false;
        }
        let (idle, matched, running) = self.queue.active_counts();
        matched == 0 && running == 0 && self.parked.is_empty() && idle == self.retired.len()
    }

    fn queue_has_all_jobs(&self) -> bool {
        // All arrivals processed ⇔ every workload job has been submitted.
        self.wl.jobs.iter().all(|j| self.queue.get(j.id).is_some())
    }

    // ------------------------------------------------------------------
    // Results
    // ------------------------------------------------------------------

    fn into_result(self, cfg: &ClusterConfig, wl: &Workload) -> ExperimentResult {
        let end = self.last_terminal;
        let n_dev = self.devices.len() as f64;
        let mut thread_util = 0.0;
        let mut core_util = 0.0;
        let mut mem_util = 0.0;
        let mut busy = 0.0;
        let mut energy_joules = 0.0;
        let mut oom_kills_devices = 0u64;
        for device in self.devices.values() {
            let u = device.utilization(end);
            thread_util += u.thread_util;
            core_util += u.core_util;
            mem_util += u.mem_util;
            busy += u.busy_fraction;
            energy_joules += device.energy_joules(end);
            oom_kills_devices += device.oom_kill_count();
        }
        debug_assert_eq!(oom_kills_devices as usize, self.oom_kills);

        let mut host_util = 0.0;
        for host in self.hosts.values() {
            host_util += host.busy_core_average(end) / cfg.host_cores_per_node as f64;
        }
        host_util /= self.hosts.len() as f64;

        let plan_stats = self
            .scheduler
            .as_ref()
            .map(|s| s.plan_stats())
            .unwrap_or_default();

        let mut queue_waits = Summary::new();
        for cos in self.cosmic.values() {
            // Aggregate COSMIC queue waits across devices.
            if cos.queue_wait_count() > 0 {
                queue_waits.record(cos.queue_wait_mean());
            }
        }

        ExperimentResult {
            policy: cfg.policy,
            nodes: cfg.nodes,
            workload: wl.label.clone(),
            jobs: wl.len(),
            completed: self.completed,
            container_kills: self.container_kills,
            oom_kills: self.oom_kills,
            makespan_secs: end.as_secs_f64(),
            thread_utilization: thread_util / n_dev,
            core_utilization: core_util / n_dev,
            mem_utilization: mem_util / n_dev,
            device_busy_fraction: busy / n_dev,
            host_core_utilization: host_util,
            mean_wait_secs: self.waits.mean(),
            mean_turnaround_secs: self.turnarounds.mean(),
            mean_offload_queue_secs: queue_waits.mean(),
            negotiation_cycles: self.negotiation_cycles,
            cycles_skipped: self.cycles_skipped,
            pins_issued: self.pins_issued,
            energy_kwh: energy_joules / 3.6e6,
            events_processed: self.live_events,
            device_resets: self.device_resets,
            node_churns: self.node_churns,
            retries: self.retries,
            fallback_offloads: self.fallback_offloads,
            perturb_windows: self.perturb_windows,
            stale_ad_skips: self.stale_ad_skips,
            jittered_cycles: self.jittered_cycles,
            inflated_offloads: self.inflated_offloads,
            stale_match_rejects: self.stale_match_rejects,
            held_after_retries: self.retired.len(),
            plan_cache_hits: plan_stats.cache_hits,
            plan_cache_misses: plan_stats.cache_misses,
            plan_ms: self.plan_nanos as f64 / 1e6,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phishare_sim::SimDuration;
    use phishare_workload::{WorkloadBuilder, WorkloadKind};

    fn small_workload(n: usize, seed: u64) -> Workload {
        WorkloadBuilder::new(WorkloadKind::Table1Mix)
            .count(n)
            .seed(seed)
            .build()
    }

    fn fast_config(policy: ClusterPolicy) -> ClusterConfig {
        let mut cfg = ClusterConfig::paper_cluster(policy);
        cfg.nodes = 4;
        cfg.knapsack.window = 64;
        cfg
    }

    #[test]
    fn mc_runs_all_jobs_to_completion() {
        let wl = small_workload(40, 1);
        let r = Experiment::run(&fast_config(ClusterPolicy::Mc), &wl).unwrap();
        assert!(r.all_completed(), "{r:?}");
        assert_eq!(r.oom_kills, 0);
        assert_eq!(r.container_kills, 0);
        assert!(r.makespan_secs > 0.0);
        assert_eq!(r.pins_issued, 0);
    }

    #[test]
    fn mcc_and_mcck_run_all_jobs_to_completion() {
        let wl = small_workload(40, 2);
        for policy in [ClusterPolicy::Mcc, ClusterPolicy::Mcck] {
            let r = Experiment::run(&fast_config(policy), &wl).unwrap();
            assert!(r.all_completed(), "{policy}: {r:?}");
            assert_eq!(r.oom_kills, 0, "{policy} must never oversubscribe");
            assert!(r.pins_issued >= 40, "{policy} pins every job");
        }
    }

    #[test]
    fn sharing_beats_exclusive_on_makespan() {
        let wl = small_workload(60, 3);
        let mc = Experiment::run(&fast_config(ClusterPolicy::Mc), &wl).unwrap();
        let mcck = Experiment::run(&fast_config(ClusterPolicy::Mcck), &wl).unwrap();
        assert!(
            mcck.makespan_secs < mc.makespan_secs,
            "MCCK {} vs MC {}",
            mcck.makespan_secs,
            mc.makespan_secs
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let wl = small_workload(30, 4);
        let cfg = fast_config(ClusterPolicy::Mcck);
        let a = Experiment::run(&cfg, &wl).unwrap();
        let b = Experiment::run(&cfg, &wl).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn quiescence_skipping_is_bit_identical_and_actually_skips() {
        // Long single-offload jobs: while they run, whole heartbeat
        // windows pass with no event at all — exactly the cycles
        // quiescence is meant to skip. (Table1Mix jobs switch segments so
        // often that nearly every window sees an event.)
        let mut wl = small_workload(12, 21);
        for job in &mut wl.jobs {
            job.mem_req_mb = 3000;
            job.actual_peak_mem_mb = 3000;
            job.thread_req = 60;
            job.profile = phishare_workload::JobProfile::new(vec![Segment::offload(
                60,
                SimDuration::from_secs(50),
            )]);
        }
        for policy in [ClusterPolicy::Mc, ClusterPolicy::Mcc, ClusterPolicy::Mcck] {
            let mut on = fast_config(policy);
            on.negotiation_interval = SimDuration::from_secs(2);
            let mut off = on;
            off.skip_quiescent = false;
            let (r_on, t_on) = Experiment::run_traced(&on, &wl).unwrap();
            let (r_off, t_off) = Experiment::run_traced(&off, &wl).unwrap();
            // `PartialEq` excludes `cycles_skipped`; everything else —
            // every counter, every utilization, the makespan — matches.
            assert_eq!(r_on, r_off, "{policy}: results diverged");
            assert_eq!(t_on.events, t_off.events, "{policy}: traces diverged");
            assert_eq!(r_off.cycles_skipped, 0, "{policy}: off means off");
            assert!(
                r_on.cycles_skipped > 0,
                "{policy}: long offloads leave quiet heartbeats to skip \
                 ({} cycles, 0 skipped)",
                r_on.negotiation_cycles
            );
            assert!(r_on.cycles_skipped < r_on.negotiation_cycles);
        }
    }

    #[test]
    fn partitioned_runs_are_bit_identical() {
        let wl = small_workload(40, 22);
        for policy in [ClusterPolicy::Mc, ClusterPolicy::Mcck] {
            let base = fast_config(policy);
            let r1 = Experiment::run(&base, &wl).unwrap();
            for parts in [2, 5] {
                let mut cfg = base;
                cfg.partitions = parts;
                let rp = Experiment::run(&cfg, &wl).unwrap();
                assert_eq!(r1, rp, "{policy}: partitions={parts} diverged");
            }
        }
    }

    #[test]
    fn next_completion_mode_matches_per_offload_oracle() {
        let wl = small_workload(40, 13);
        for policy in [ClusterPolicy::Mc, ClusterPolicy::Mcc, ClusterPolicy::Mcck] {
            let cfg = fast_config(policy);
            let (fast, fast_trace) = Experiment::run_traced(&cfg, &wl).unwrap();
            let (naive, naive_trace) = Experiment::run_naive_events_traced(&cfg, &wl).unwrap();
            assert_eq!(fast, naive, "{policy}: metrics diverged across event modes");
            assert_eq!(
                fast_trace.events, naive_trace.events,
                "{policy}: traces diverged across event modes"
            );
        }
    }

    #[test]
    fn misbehaving_jobs_are_container_killed_under_cosmic() {
        let wl = WorkloadBuilder::new(WorkloadKind::Table1Mix)
            .count(30)
            .seed(5)
            .misbehaving_fraction(0.5)
            .build();
        let r = Experiment::run(&fast_config(ClusterPolicy::Mcck), &wl).unwrap();
        assert!(r.container_kills > 0, "{r:?}");
        assert_eq!(r.oom_kills, 0, "containers must fire before physical OOM");
        assert_eq!(r.completed + r.container_kills, r.jobs);
    }

    #[test]
    fn thread_hog_is_rejected_up_front_under_mcck() {
        let mut wl = small_workload(3, 12);
        wl.jobs[1].thread_req = 500;
        // Keep the spec self-consistent (declared = profile max).
        if let Segment::Offload { threads, .. } = &mut wl.jobs[1].profile.segments[1] {
            *threads = 500;
        }
        let err = Experiment::run(&fast_config(ClusterPolicy::Mcck), &wl).unwrap_err();
        assert!(err.contains("thread budget"), "{err}");
        // MCC has no knapsack thread filter; COSMIC clamps at admission, so
        // the same workload completes there.
        let r = Experiment::run(&fast_config(ClusterPolicy::Mcc), &wl).unwrap();
        assert_eq!(r.completed, 3);
    }

    #[test]
    fn oversized_job_is_rejected_up_front() {
        let mut wl = small_workload(3, 6);
        wl.jobs[1].mem_req_mb = 100_000;
        let err = Experiment::run(&fast_config(ClusterPolicy::Mc), &wl).unwrap_err();
        assert!(err.contains("100000"), "{err}");
    }

    #[test]
    fn single_job_timeline_matches_profile() {
        // One job, exclusive cluster: makespan = arrival + first cycle (0)
        // + dispatch delay + nominal duration, within a tick.
        let wl = small_workload(1, 7);
        let mut cfg = fast_config(ClusterPolicy::Mc);
        cfg.nodes = 1;
        let r = Experiment::run(&cfg, &wl).unwrap();
        let expect = cfg.dispatch_delay.as_secs_f64() + wl.jobs[0].nominal_duration().as_secs_f64();
        assert!(
            (r.makespan_secs - expect).abs() < 0.01,
            "makespan {} vs expected {expect}",
            r.makespan_secs
        );
    }

    #[test]
    fn poisson_arrivals_complete() {
        let wl = WorkloadBuilder::new(WorkloadKind::Table1Mix)
            .count(25)
            .seed(8)
            .arrivals(phishare_workload::ArrivalProcess::Poisson {
                mean_gap: SimDuration::from_secs(2),
            })
            .build();
        let r = Experiment::run(&fast_config(ClusterPolicy::Mcck), &wl).unwrap();
        assert!(r.all_completed(), "{r:?}");
    }

    #[test]
    fn mc_exclusive_uses_at_most_one_job_per_device() {
        // Indirect check: MC on 2 nodes with 10 jobs has mean wait far above
        // MCCK's (jobs serialize per device).
        let wl = small_workload(10, 9);
        let mut cfg = fast_config(ClusterPolicy::Mc);
        cfg.nodes = 2;
        let mc = Experiment::run(&cfg, &wl).unwrap();
        let mut cfg2 = fast_config(ClusterPolicy::Mcck);
        cfg2.nodes = 2;
        let mcck = Experiment::run(&cfg2, &wl).unwrap();
        assert!(mc.mean_wait_secs > mcck.mean_wait_secs);
    }

    #[test]
    fn traced_runs_match_untraced_results() {
        let wl = small_workload(25, 11);
        let cfg = fast_config(ClusterPolicy::Mcck);
        let plain = Experiment::run(&cfg, &wl).unwrap();
        let (traced, trace) = Experiment::run_traced(&cfg, &wl).unwrap();
        assert_eq!(plain, traced, "tracing must not perturb the simulation");
        // Every job leaves a complete lifecycle in the trace.
        use crate::trace::TraceEvent as TE;
        let count = |f: fn(&TE) -> bool| trace.events.iter().filter(|e| f(e)).count();
        assert_eq!(count(|e| matches!(e, TE::Submitted { .. })), 25);
        assert_eq!(count(|e| matches!(e, TE::Pinned { .. })), 25);
        assert_eq!(count(|e| matches!(e, TE::Dispatched { .. })), 25);
        assert_eq!(count(|e| matches!(e, TE::Completed { .. })), 25);
        let started = count(|e| matches!(e, TE::OffloadStarted { .. }));
        let finished = count(|e| matches!(e, TE::OffloadFinished { .. }));
        assert_eq!(started, finished);
        let total_offloads: usize = wl.jobs.iter().map(|j| j.profile.offload_count()).sum();
        assert_eq!(started, total_offloads);
        // Spans reconstruct one interval per offload.
        assert_eq!(trace.offload_spans().len(), total_offloads);
    }

    #[test]
    fn utilization_is_sane() {
        let wl = small_workload(40, 10);
        let r = Experiment::run(&fast_config(ClusterPolicy::Mc), &wl).unwrap();
        assert!(
            r.core_utilization > 0.1 && r.core_utilization < 1.0,
            "{r:?}"
        );
        assert!(r.thread_utilization > 0.1 && r.thread_utilization <= 1.0);
        assert!(r.device_busy_fraction > r.core_utilization - 1e-9);
    }

    // ------------------------------------------------------------------
    // Fault injection & recovery
    // ------------------------------------------------------------------

    use crate::audit::audit;
    use crate::fault::FaultEvent;
    use phishare_sim::SimTime;

    fn one_fault(
        kind: FaultKind,
        node: u32,
        device: u32,
        at_secs: u64,
        down_secs: u64,
    ) -> FaultPlan {
        FaultPlan {
            events: vec![FaultEvent {
                kind,
                node,
                device,
                at: SimTime::from_secs(at_secs),
                downtime: SimDuration::from_secs(down_secs),
            }],
        }
    }

    #[test]
    fn empty_fault_plan_is_bit_identical_to_plain_run() {
        let wl = small_workload(30, 21);
        for policy in [ClusterPolicy::Mc, ClusterPolicy::Mcc, ClusterPolicy::Mcck] {
            let cfg = fast_config(policy);
            let plain = Experiment::run(&cfg, &wl).unwrap();
            let faulted = Experiment::run_with_faults(&cfg, &wl, &FaultPlan::empty()).unwrap();
            assert_eq!(plain, faulted, "{policy}: empty plan perturbed the run");
        }
    }

    #[test]
    fn device_reset_degrades_to_host_fallback_and_completes() {
        let wl = small_workload(20, 22);
        let cfg = fast_config(ClusterPolicy::Mcck);
        let plan = one_fault(FaultKind::DeviceReset, 1, 0, 5, 30);
        let (r, trace) = Experiment::run_with_faults_traced(&cfg, &wl, &plan).unwrap();
        assert_eq!(r.device_resets, 1);
        assert_eq!(r.node_churns, 0);
        // HostOnly fallback: jobs caught on the card keep their slot and
        // finish host-side — nothing is lost, nothing retries.
        assert!(r.all_completed(), "{r:?}");
        assert!(
            r.fallback_offloads > 0,
            "a job caught mid-run should have fallen back: {r:?}"
        );
        let violations = audit(&cfg, &wl, &r, &trace);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn node_churn_vacates_retries_and_recovers() {
        let wl = small_workload(20, 23);
        let cfg = fast_config(ClusterPolicy::Mcck);
        let plan = one_fault(FaultKind::NodeChurn, 1, 0, 5, 60);
        let (r, trace) = Experiment::run_with_faults_traced(&cfg, &wl, &plan).unwrap();
        assert_eq!(r.node_churns, 1);
        assert!(r.retries > 0, "churn should vacate running jobs: {r:?}");
        assert_eq!(
            r.completed + r.container_kills + r.oom_kills + r.held_after_retries,
            r.jobs
        );
        // Default budget (3 retries) absorbs a single churn.
        assert!(r.all_completed(), "{r:?}");
        let violations = audit(&cfg, &wl, &r, &trace);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn requeue_policy_with_no_retries_holds_victims() {
        let wl = small_workload(10, 24);
        let mut cfg = fast_config(ClusterPolicy::Mc);
        cfg.nodes = 1;
        cfg.recovery.fallback = FallbackPolicy::Requeue;
        cfg.recovery.max_retries = 0;
        let plan = one_fault(FaultKind::DeviceReset, 1, 0, 5, 30);
        let (r, trace) = Experiment::run_with_faults_traced(&cfg, &wl, &plan).unwrap();
        assert_eq!(r.held_after_retries, 1, "{r:?}");
        assert_eq!(r.retries, 0, "a zero budget never grants a retry");
        assert_eq!(r.completed + r.held_after_retries, r.jobs);
        let violations = audit(&cfg, &wl, &r, &trace);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn fault_runs_match_across_event_modes() {
        let wl = small_workload(25, 25);
        let plan = FaultPlan {
            events: vec![
                FaultEvent {
                    kind: FaultKind::DeviceReset,
                    node: 2,
                    device: 0,
                    at: SimTime::from_secs(4),
                    downtime: SimDuration::from_secs(25),
                },
                FaultEvent {
                    kind: FaultKind::NodeChurn,
                    node: 1,
                    device: 0,
                    at: SimTime::from_secs(9),
                    downtime: SimDuration::from_secs(45),
                },
            ],
        };
        for policy in [ClusterPolicy::Mc, ClusterPolicy::Mcc, ClusterPolicy::Mcck] {
            let cfg = fast_config(policy);
            let (fast, fast_trace) = Experiment::run_with_faults_traced(&cfg, &wl, &plan).unwrap();
            let (naive, naive_trace) =
                Experiment::run_naive_events_with_faults_traced(&cfg, &wl, &plan).unwrap();
            assert_eq!(fast, naive, "{policy}: fault metrics diverged across modes");
            assert_eq!(
                fast_trace.events, naive_trace.events,
                "{policy}: fault traces diverged across modes"
            );
        }
    }

    // ------------------------------------------------------------------
    // Substrate differential & scratch recycling
    // ------------------------------------------------------------------

    #[test]
    fn keyed_substrate_matches_fast_substrate() {
        let wl = small_workload(40, 31);
        for policy in [ClusterPolicy::Mc, ClusterPolicy::Mcc, ClusterPolicy::Mcck] {
            let cfg = fast_config(policy);
            let fast = Experiment::run(&cfg, &wl).unwrap();
            let keyed = Experiment::run_with_substrate(&cfg, &wl, SubstrateMode::Keyed).unwrap();
            assert_eq!(fast, keyed, "{policy}: substrates diverged");
        }
    }

    #[test]
    fn keyed_substrate_matches_fast_substrate_under_faults() {
        let wl = small_workload(25, 33);
        let plan = FaultPlan {
            events: vec![
                FaultEvent {
                    kind: FaultKind::DeviceReset,
                    node: 2,
                    device: 0,
                    at: SimTime::from_secs(4),
                    downtime: SimDuration::from_secs(25),
                },
                FaultEvent {
                    kind: FaultKind::NodeChurn,
                    node: 1,
                    device: 0,
                    at: SimTime::from_secs(9),
                    downtime: SimDuration::from_secs(45),
                },
            ],
        };
        for policy in [ClusterPolicy::Mc, ClusterPolicy::Mcc, ClusterPolicy::Mcck] {
            let cfg = fast_config(policy);
            let (fast, fast_trace) =
                Experiment::run_with_substrate_faults_traced(&cfg, &wl, &plan, SubstrateMode::Fast)
                    .unwrap();
            let (keyed, keyed_trace) = Experiment::run_with_substrate_faults_traced(
                &cfg,
                &wl,
                &plan,
                SubstrateMode::Keyed,
            )
            .unwrap();
            assert_eq!(fast, keyed, "{policy}: fault metrics diverged");
            assert_eq!(
                fast_trace.events, keyed_trace.events,
                "{policy}: fault traces diverged"
            );
        }
    }

    #[test]
    fn shared_substrate_matches_naive_shared_oracle() {
        let wl = small_workload(40, 31);
        for policy in [ClusterPolicy::Mc, ClusterPolicy::Mcc, ClusterPolicy::Mcck] {
            let cfg = fast_config(policy);
            let shared = Experiment::run_with_substrate(&cfg, &wl, SubstrateMode::Shared).unwrap();
            let naive =
                Experiment::run_with_substrate(&cfg, &wl, SubstrateMode::SharedNaive).unwrap();
            assert_eq!(shared, naive, "{policy}: shared engines diverged");
            assert!(shared.completed > 0, "{policy}: nothing ran end-to-end");
        }
    }

    #[test]
    fn heterogeneous_pools_run_end_to_end_on_shared_substrates() {
        let wl = small_workload(30, 35);
        let plan = FaultPlan {
            events: vec![FaultEvent {
                kind: FaultKind::DeviceReset,
                node: 2,
                device: 0,
                at: SimTime::from_secs(5),
                downtime: SimDuration::from_secs(20),
            }],
        };
        for pool in [
            crate::config::DevicePool::Alternate(crate::config::DeviceSku::GpuLike),
            crate::config::DevicePool::Alternate(crate::config::DeviceSku::Phi3120a),
        ] {
            for policy in [ClusterPolicy::Mcc, ClusterPolicy::Mcck] {
                let mut cfg = fast_config(policy);
                cfg.pool = pool;
                let (shared, shared_trace) = Experiment::run_with_substrate_faults_traced(
                    &cfg,
                    &wl,
                    &plan,
                    SubstrateMode::Shared,
                )
                .unwrap();
                let (naive, naive_trace) = Experiment::run_with_substrate_faults_traced(
                    &cfg,
                    &wl,
                    &plan,
                    SubstrateMode::SharedNaive,
                )
                .unwrap();
                assert_eq!(shared, naive, "{policy}/{pool:?}: shared engines diverged");
                assert_eq!(
                    shared_trace.events, naive_trace.events,
                    "{policy}/{pool:?}: traces diverged"
                );
                assert!(
                    shared.completed > 0,
                    "{policy}/{pool:?}: nothing ran end-to-end"
                );
                let violations = crate::audit(&cfg, &wl, &shared, &shared_trace);
                assert!(violations.is_empty(), "{policy}/{pool:?}: {violations:?}");
            }
        }
    }

    #[test]
    fn scratch_reuse_is_bit_identical() {
        let wl = small_workload(30, 32);
        let cfg = fast_config(ClusterPolicy::Mcck);
        let fresh = Experiment::run(&cfg, &wl).unwrap();
        let mut scratch = ExperimentScratch::new();
        let first = Experiment::run_with_scratch(&cfg, &wl, &mut scratch).unwrap();
        let second = Experiment::run_with_scratch(&cfg, &wl, &mut scratch).unwrap();
        assert_eq!(fresh, first, "cold scratch perturbed the run");
        assert_eq!(fresh, second, "recycled scratch perturbed the run");
        // A different cell through the same (dirty) scratch is unaffected.
        let cfg2 = fast_config(ClusterPolicy::Mc);
        let fresh2 = Experiment::run(&cfg2, &wl).unwrap();
        let third = Experiment::run_with_scratch(&cfg2, &wl, &mut scratch).unwrap();
        assert_eq!(fresh2, third, "scratch leaked state across cells");
    }

    #[test]
    fn generated_plans_run_and_audit_clean() {
        let wl = small_workload(25, 26);
        let mut cfg = fast_config(ClusterPolicy::Mcck);
        cfg.faults.device_mtbf_secs = 150.0;
        cfg.faults.node_mtbf_secs = 400.0;
        cfg.faults.horizon_secs = 600.0;
        let (r, trace) = Experiment::run_traced(&cfg, &wl).unwrap();
        assert!(
            r.device_resets + r.node_churns > 0,
            "an aggressive MTBF should strike at least once: {r:?}"
        );
        assert_eq!(
            r.completed + r.container_kills + r.oom_kills + r.held_after_retries,
            r.jobs
        );
        let violations = audit(&cfg, &wl, &r, &trace);
        assert!(violations.is_empty(), "{violations:?}");
    }

    // ------------------------------------------------------------------
    // Chaos perturbations
    // ------------------------------------------------------------------

    /// A config with the whole perturbation stack switched on.
    fn chaos_config(policy: ClusterPolicy) -> ClusterConfig {
        let mut cfg = fast_config(policy);
        cfg.perturb.derate.mean_gap_secs = 40.0;
        cfg.perturb.derate.duration_secs = 25.0;
        cfg.perturb.derate.factor = 0.4;
        cfg.perturb.latency.mean_gap_secs = 30.0;
        cfg.perturb.latency.duration_secs = 20.0;
        cfg.perturb.latency.extra_secs = 1.5;
        cfg.perturb.stale_ads.mean_gap_secs = 35.0;
        cfg.perturb.stale_ads.duration_secs = 25.0;
        cfg.perturb.jitter_max_secs = 2.0;
        cfg.perturb.horizon_secs = 600.0;
        cfg
    }

    #[test]
    fn empty_perturb_plan_is_bit_identical_to_plain_run() {
        let wl = small_workload(30, 41);
        for policy in [ClusterPolicy::Mc, ClusterPolicy::Mcc, ClusterPolicy::Mcck] {
            let cfg = fast_config(policy);
            let plain = Experiment::run(&cfg, &wl).unwrap();
            let (chaos, _) = Experiment::run_chaos_traced(
                &cfg,
                &wl,
                &FaultPlan::empty(),
                &PerturbPlan::empty(),
                SubstrateMode::Fast,
            )
            .unwrap();
            assert_eq!(plain, chaos, "{policy}: empty stack perturbed the run");
        }
    }

    #[test]
    fn perturbed_runs_are_deterministic_and_audit_clean() {
        let wl = small_workload(30, 42);
        let cfg = chaos_config(ClusterPolicy::Mcck);
        let (a, trace) = Experiment::run_traced(&cfg, &wl).unwrap();
        let (b, _) = Experiment::run_traced(&cfg, &wl).unwrap();
        assert_eq!(a, b);
        assert!(a.perturb_windows > 0, "stack never opened a window: {a:?}");
        assert!(a.jittered_cycles > 0, "jitter never fired: {a:?}");
        assert_eq!(
            a.completed + a.container_kills + a.oom_kills + a.held_after_retries,
            a.jobs
        );
        let violations = audit(&cfg, &wl, &a, &trace);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn derate_windows_stretch_the_makespan() {
        let wl = small_workload(40, 43);
        let plain_cfg = fast_config(ClusterPolicy::Mcck);
        let mut cfg = plain_cfg;
        // A near-continuous heavy derate on every card.
        cfg.perturb.derate.mean_gap_secs = 10.0;
        cfg.perturb.derate.duration_secs = 120.0;
        cfg.perturb.derate.factor = 0.25;
        cfg.perturb.horizon_secs = 3600.0;
        let plain = Experiment::run(&plain_cfg, &wl).unwrap();
        let derated = Experiment::run(&cfg, &wl).unwrap();
        assert!(derated.perturb_windows > 0, "{derated:?}");
        assert!(
            derated.makespan_secs > plain.makespan_secs,
            "derate {} vs plain {}",
            derated.makespan_secs,
            plain.makespan_secs
        );
    }

    #[test]
    fn latency_spikes_inflate_offloads() {
        let wl = small_workload(30, 44);
        let mut cfg = fast_config(ClusterPolicy::Mcck);
        cfg.perturb.latency.mean_gap_secs = 15.0;
        cfg.perturb.latency.duration_secs = 60.0;
        cfg.perturb.latency.extra_secs = 3.0;
        cfg.perturb.horizon_secs = 1800.0;
        let r = Experiment::run(&cfg, &wl).unwrap();
        assert!(r.inflated_offloads > 0, "{r:?}");
        assert!(r.all_completed(), "{r:?}");
    }

    #[test]
    fn stale_ads_skip_refreshes_but_jobs_still_complete() {
        let wl = small_workload(30, 45);
        let mut cfg = fast_config(ClusterPolicy::Mcck);
        cfg.perturb.stale_ads.mean_gap_secs = 10.0;
        cfg.perturb.stale_ads.duration_secs = 40.0;
        cfg.perturb.horizon_secs = 1800.0;
        let (r, trace) = Experiment::run_traced(&cfg, &wl).unwrap();
        assert!(r.stale_ad_skips > 0, "{r:?}");
        assert!(r.all_completed(), "{r:?}");
        let violations = audit(&cfg, &wl, &r, &trace);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn perturbed_runs_match_across_event_modes() {
        let wl = small_workload(25, 46);
        for policy in [ClusterPolicy::Mc, ClusterPolicy::Mcc, ClusterPolicy::Mcck] {
            let cfg = chaos_config(policy);
            let (fast, fast_trace) = Experiment::run_traced(&cfg, &wl).unwrap();
            let (naive, naive_trace) = Experiment::run_naive_events_traced(&cfg, &wl).unwrap();
            assert_eq!(fast, naive, "{policy}: chaos metrics diverged across modes");
            assert_eq!(
                fast_trace.events, naive_trace.events,
                "{policy}: chaos traces diverged across modes"
            );
        }
    }

    #[test]
    fn perturbed_runs_match_across_substrate_pairs() {
        let wl = small_workload(25, 47);
        for policy in [ClusterPolicy::Mc, ClusterPolicy::Mcc, ClusterPolicy::Mcck] {
            let cfg = chaos_config(policy);
            let faults = FaultPlan::generate(&cfg);
            let perturbs = PerturbPlan::generate(&cfg);
            let run = |mode| Experiment::run_chaos_traced(&cfg, &wl, &faults, &perturbs, mode);
            let (fast, fast_trace) = run(SubstrateMode::Fast).unwrap();
            let (keyed, keyed_trace) = run(SubstrateMode::Keyed).unwrap();
            assert_eq!(fast, keyed, "{policy}: fast/keyed diverged under chaos");
            assert_eq!(
                fast_trace.events, keyed_trace.events,
                "{policy}: fast/keyed traces diverged under chaos"
            );
            let (shared, shared_trace) = run(SubstrateMode::Shared).unwrap();
            let (naive, naive_trace) = run(SubstrateMode::SharedNaive).unwrap();
            assert_eq!(
                shared, naive,
                "{policy}: shared engines diverged under chaos"
            );
            assert_eq!(
                shared_trace.events, naive_trace.events,
                "{policy}: shared traces diverged under chaos"
            );
        }
    }
}
