//! Post-run self-checking.
//!
//! [`audit`] replays a traced run against the system's safety and
//! consistency properties and returns every violation found. The test suite
//! runs it on every policy; the CLI prints its verdict after `--gantt`
//! runs. A reproduction whose numbers come from a simulator is only as
//! credible as the simulator's invariants — this makes them checkable on
//! any run, not just the ones the tests happen to cover.

use crate::config::ClusterConfig;
use crate::metrics::ExperimentResult;
use crate::trace::{Trace, TraceEvent};
use phishare_core::ClusterPolicy;
use phishare_workload::{JobId, Workload};
use std::collections::{BTreeMap, BTreeSet};

/// Audit a traced run; returns human-readable violations (empty = clean).
pub fn audit(
    config: &ClusterConfig,
    workload: &Workload,
    result: &ExperimentResult,
    trace: &Trace,
) -> Vec<String> {
    let mut violations = Vec::new();
    let mut complain = |msg: String| violations.push(msg);

    // --- accounting ---
    // Every submitted job ends exactly one way: completed, killed by a
    // container or the OOM killer, or held after exhausting fault retries.
    let accounted =
        result.completed + result.container_kills + result.oom_kills + result.held_after_retries;
    if accounted != result.jobs {
        complain(format!(
            "job accounting leak: {} completed + {} container + {} oom + {} held ≠ {} submitted",
            result.completed,
            result.container_kills,
            result.oom_kills,
            result.held_after_retries,
            result.jobs
        ));
    }
    if result.jobs != workload.len() {
        complain(format!(
            "result covers {} jobs but the workload has {}",
            result.jobs,
            workload.len()
        ));
    }

    // --- trace/result agreement ---
    let completions = trace
        .events
        .iter()
        .filter(|e| matches!(e, TraceEvent::Completed { .. }))
        .count();
    if completions != result.completed {
        complain(format!(
            "trace has {completions} completions, result reports {}",
            result.completed
        ));
    }
    // Makespan is the last job-lifecycle event; infrastructure events
    // (a recovery firing after the last completion) may legitimately trail.
    if let Some(last) = trace.events.iter().rfind(|e| e.job().is_some()) {
        let gap = (last.at().as_secs_f64() - result.makespan_secs).abs();
        if gap > 1e-6 {
            complain(format!(
                "makespan {} disagrees with the trace's last job event at {}",
                result.makespan_secs,
                last.at().as_secs_f64()
            ));
        }
    }

    // --- ordering within the trace ---
    let mut last_at = None;
    for ev in &trace.events {
        if let Some(prev) = last_at {
            if ev.at() < prev {
                complain(format!("trace out of order at {}", ev.at()));
                break;
            }
        }
        last_at = Some(ev.at());
    }

    // --- the COSMIC safety property ---
    // Heterogeneous pools give nodes different cards, so the thread bound
    // is per node, not cluster-wide.
    for node in trace.nodes() {
        let hw = config.spec_for_node(node).phi.hw_threads();
        let peak = trace.max_concurrent_threads(node);
        if peak > hw {
            complain(format!(
                "node {node} ran {peak} concurrent offload threads (> {hw} hardware)"
            ));
        }
    }

    // --- exclusive allocation really is exclusive ---
    if config.policy == ClusterPolicy::Mc && config.devices_per_node == 1 {
        let spans = trace.offload_spans();
        for node in trace.nodes() {
            let mut node_spans: Vec<_> = spans.iter().filter(|s| s.node == node).collect();
            node_spans.sort_by_key(|s| s.start);
            for pair in node_spans.windows(2) {
                if pair[1].start < pair[0].end && pair[0].job != pair[1].job {
                    complain(format!(
                        "MC overlap on node {node}: {} and {}",
                        pair[0].job, pair[1].job
                    ));
                }
            }
        }
    }

    // --- fault/recovery pairing & churn-time consistency ---
    // Every injected fault that struck must be matched by exactly one
    // recovery, targets never strike while already down, the trace counts
    // must agree with the result counters, and no job may dispatch to a
    // target that is down at that instant. The sweep keeps live down-state
    // while walking the (chronological) trace.
    let mut down_devs: BTreeSet<(u32, u32)> = BTreeSet::new();
    let mut down_nodes: BTreeSet<u32> = BTreeSet::new();
    let mut resets = 0u64;
    let mut churns = 0u64;
    let mut requeues = 0u64;
    let mut max_retry_holds = 0usize;
    for ev in &trace.events {
        match ev {
            TraceEvent::DeviceReset { node, device, at } => {
                resets += 1;
                if down_nodes.contains(node) || !down_devs.insert((*node, *device)) {
                    complain(format!(
                        "device ({node}, {device}) reset at {at} while already down"
                    ));
                }
            }
            TraceEvent::DeviceRecovered { node, device, at } => {
                let was_down = down_devs.remove(&(*node, *device));
                if !was_down {
                    complain(format!(
                        "device ({node}, {device}) recovered at {at} without a reset"
                    ));
                }
            }
            TraceEvent::NodeDown { node, at } => {
                churns += 1;
                if !down_nodes.insert(*node) {
                    complain(format!("node {node} went down at {at} while already down"));
                }
            }
            TraceEvent::NodeUp { node, at } => {
                let was_down = down_nodes.remove(node);
                if !was_down {
                    complain(format!("node {node} came up at {at} without going down"));
                }
            }
            TraceEvent::Dispatched {
                job,
                node,
                device,
                at,
            } if down_nodes.contains(node) || down_devs.contains(&(*node, *device)) => {
                complain(format!(
                    "{job} dispatched to down target ({node}, {device}) at {at}"
                ));
            }
            TraceEvent::Requeued { .. } => requeues += 1,
            TraceEvent::HeldMaxRetries { .. } => max_retry_holds += 1,
            _ => {}
        }
    }
    for (node, device) in &down_devs {
        complain(format!("device ({node}, {device}) never recovered"));
    }
    for node in &down_nodes {
        complain(format!("node {node} never came back up"));
    }
    for (what, traced, reported) in [
        ("device resets", resets, result.device_resets),
        ("node churns", churns, result.node_churns),
        ("retries", requeues, result.retries),
        (
            "max-retry holds",
            max_retry_holds as u64,
            result.held_after_retries as u64,
        ),
    ] {
        if traced != reported {
            complain(format!(
                "trace has {traced} {what}, result reports {reported}"
            ));
        }
    }

    // --- per-job lifecycle shape ---
    #[derive(Default)]
    struct Shape {
        dispatched: bool,
        open_offload: bool,
        terminal: bool,
    }
    let mut shapes: BTreeMap<JobId, Shape> = BTreeMap::new();
    for ev in &trace.events {
        let Some(job) = ev.job() else {
            continue; // infrastructure events have no lifecycle shape
        };
        let shape = shapes.entry(job).or_default();
        if shape.terminal {
            complain(format!("{job} has events after its terminal state"));
            break;
        }
        match ev {
            TraceEvent::Dispatched { .. } => shape.dispatched = true,
            TraceEvent::OffloadStarted { .. } => {
                if !shape.dispatched || shape.open_offload {
                    complain(format!("{job} started an offload out of order"));
                }
                shape.open_offload = true;
            }
            TraceEvent::OffloadFinished { .. } => {
                if !shape.open_offload {
                    complain(format!("{job} finished a phantom offload"));
                }
                shape.open_offload = false;
            }
            TraceEvent::Requeued { .. } => {
                // The fault aborted whatever was executing; the job starts
                // over from scratch if it is released again.
                shape.dispatched = false;
                shape.open_offload = false;
            }
            TraceEvent::FallbackStarted { .. } => {
                if !shape.dispatched {
                    complain(format!("{job} fell back to host without dispatching"));
                }
                // The reset aborted the in-flight offload (if any).
                shape.open_offload = false;
            }
            TraceEvent::Completed { .. } => {
                if shape.open_offload {
                    complain(format!("{job} completed mid-offload"));
                }
                shape.terminal = true;
            }
            TraceEvent::Killed { .. } | TraceEvent::HeldMaxRetries { .. } => shape.terminal = true,
            _ => {}
        }
    }

    // --- perturbation bookkeeping ---
    // A stale-ads window can only skip refreshes on cycles that actually
    // ran, and stale-match rejections only happen on stale ads.
    if result.stale_ad_skips > result.negotiation_cycles {
        complain(format!(
            "{} stale-ad skips exceed {} negotiation cycles",
            result.stale_ad_skips, result.negotiation_cycles
        ));
    }
    if result.stale_match_rejects > 0 && result.stale_ad_skips == 0 {
        complain(format!(
            "{} stale-match rejections without any stale-ad window",
            result.stale_match_rejects
        ));
    }
    if result.perturb_windows == 0 && (result.stale_ad_skips > 0 || result.inflated_offloads > 0) {
        complain("perturbation effects reported without any open window".to_string());
    }
    if !config.perturb.enabled() && result.perturb_windows > 0 {
        complain(format!(
            "{} perturbation windows opened with perturbations disabled",
            result.perturb_windows
        ));
    }

    // --- quiescence bookkeeping ---
    // Skipped cycles are a subset of negotiation cycles (the skip path
    // still counts the cycle), and skipping can only happen when enabled.
    if result.cycles_skipped > result.negotiation_cycles {
        complain(format!(
            "{} skipped cycles exceed {} negotiation cycles",
            result.cycles_skipped, result.negotiation_cycles
        ));
    }
    if !config.skip_quiescent && result.cycles_skipped > 0 {
        complain(format!(
            "{} cycles skipped with quiescence detection disabled",
            result.cycles_skipped
        ));
    }

    // --- metric ranges ---
    for (name, v) in [
        ("thread_utilization", result.thread_utilization),
        ("core_utilization", result.core_utilization),
        ("mem_utilization", result.mem_utilization),
        ("device_busy_fraction", result.device_busy_fraction),
        ("host_core_utilization", result.host_core_utilization),
    ] {
        if !(0.0..=1.0 + 1e-9).contains(&v) {
            complain(format!("{name} out of range: {v}"));
        }
    }
    if result.energy_kwh < 0.0 {
        complain(format!("negative energy: {}", result.energy_kwh));
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Experiment;
    use phishare_workload::{WorkloadBuilder, WorkloadKind};

    fn run(policy: ClusterPolicy, jobs: usize, seed: u64) -> Vec<String> {
        let wl = WorkloadBuilder::new(WorkloadKind::Table1Mix)
            .count(jobs)
            .seed(seed)
            .build();
        let mut cfg = ClusterConfig::paper_cluster(policy).with_nodes(2);
        cfg.knapsack.window = 48;
        let (result, trace) = Experiment::run_traced(&cfg, &wl).unwrap();
        audit(&cfg, &wl, &result, &trace)
    }

    #[test]
    fn clean_runs_audit_clean() {
        for policy in ClusterPolicy::WITH_ORACLE {
            let violations = run(policy, 30, 61);
            assert!(violations.is_empty(), "{policy}: {violations:?}");
        }
    }

    #[test]
    fn runs_with_kills_audit_clean() {
        let wl = WorkloadBuilder::new(WorkloadKind::Table1Mix)
            .count(30)
            .seed(62)
            .misbehaving_fraction(0.4)
            .build();
        let mut cfg = ClusterConfig::paper_cluster(ClusterPolicy::Mcck).with_nodes(2);
        cfg.knapsack.window = 48;
        let (result, trace) = Experiment::run_traced(&cfg, &wl).unwrap();
        let violations = audit(&cfg, &wl, &result, &trace);
        assert!(violations.is_empty(), "{violations:?}");
        assert!(result.container_kills > 0);
    }

    #[test]
    fn audit_detects_planted_violations() {
        let wl = WorkloadBuilder::new(WorkloadKind::Table1Mix)
            .count(10)
            .seed(63)
            .build();
        let cfg = ClusterConfig::paper_cluster(ClusterPolicy::Mcck).with_nodes(2);
        let (mut result, trace) = Experiment::run_traced(&cfg, &wl).unwrap();
        // Corrupt the accounting.
        result.completed -= 1;
        let violations = audit(&cfg, &wl, &result, &trace);
        assert!(
            violations.iter().any(|v| v.contains("accounting")),
            "{violations:?}"
        );
        assert!(
            violations.iter().any(|v| v.contains("completions")),
            "{violations:?}"
        );
    }

    #[test]
    fn audit_detects_quiescence_corruption() {
        let wl = WorkloadBuilder::new(WorkloadKind::Table1Mix)
            .count(10)
            .seed(64)
            .build();
        let mut cfg = ClusterConfig::paper_cluster(ClusterPolicy::Mc).with_nodes(2);
        let (mut result, trace) = Experiment::run_traced(&cfg, &wl).unwrap();
        result.cycles_skipped = result.negotiation_cycles + 1;
        let violations = audit(&cfg, &wl, &result, &trace);
        assert!(
            violations
                .iter()
                .any(|v| v.contains("skipped cycles exceed")),
            "{violations:?}"
        );
        // A skip reported while the fast path was off is also a lie.
        cfg.skip_quiescent = false;
        result.cycles_skipped = 1;
        let violations = audit(&cfg, &wl, &result, &trace);
        assert!(
            violations
                .iter()
                .any(|v| v.contains("quiescence detection disabled")),
            "{violations:?}"
        );
    }
}
