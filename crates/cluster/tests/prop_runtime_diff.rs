//! Differential oracle for the simulation fast path.
//!
//! [`Experiment::run`] schedules one completion prediction event per device
//! (and host) per generation; [`Experiment::run_naive_events`] is the
//! seed's per-offload scheme. The two must be *bit-identical* — same
//! metrics, same trace, same audit — on arbitrary workloads, policies and
//! cluster sizes. Any divergence means the fast path changed simulation
//! semantics, not just simulation cost.

use phishare_cluster::{
    audit, ClusterConfig, Experiment, ExperimentScratch, FaultPlan, SubstrateMode,
};
use phishare_core::{ClusterPolicy, PlannerMode};
use phishare_sim::SimDuration;
use phishare_workload::{ArrivalProcess, WorkloadBuilder, WorkloadKind};
use proptest::prelude::*;

fn arb_policy() -> impl Strategy<Value = ClusterPolicy> {
    prop_oneof![
        Just(ClusterPolicy::Mc),
        Just(ClusterPolicy::Mcc),
        Just(ClusterPolicy::Mcck),
        Just(ClusterPolicy::Oracle),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn fast_and_naive_event_paths_are_bit_identical(
        policy in arb_policy(),
        nodes in 2u32..=4,
        jobs in 8usize..=32,
        seed in 0u64..500,
        misbehaving in prop_oneof![Just(0.0f64), Just(0.3)],
        poisson in any::<bool>(),
    ) {
        let mut builder = WorkloadBuilder::new(WorkloadKind::Table1Mix)
            .count(jobs)
            .seed(seed)
            .misbehaving_fraction(misbehaving);
        if poisson {
            builder = builder.arrivals(ArrivalProcess::Poisson {
                mean_gap: SimDuration::from_secs(3),
            });
        }
        let wl = builder.build();
        let mut cfg = ClusterConfig::paper_cluster(policy).with_nodes(nodes);
        cfg.knapsack.window = 64;

        let fast = Experiment::run_traced(&cfg, &wl);
        let naive = Experiment::run_naive_events_traced(&cfg, &wl);
        match (fast, naive) {
            (Ok((fast_result, fast_trace)), Ok((naive_result, naive_trace))) => {
                prop_assert_eq!(
                    &fast_result, &naive_result,
                    "metrics diverged across event modes"
                );
                prop_assert_eq!(
                    &fast_trace.events, &naive_trace.events,
                    "traces diverged across event modes"
                );
                let fast_audit = audit(&cfg, &wl, &fast_result, &fast_trace);
                let naive_audit = audit(&cfg, &wl, &naive_result, &naive_trace);
                prop_assert_eq!(fast_audit, naive_audit, "audits diverged across event modes");
            }
            (fast, naive) => {
                // Both paths must agree even on rejection (and the error
                // strings are part of the contract).
                prop_assert_eq!(fast.map(|(r, _)| r), naive.map(|(r, _)| r));
            }
        }
    }

    /// Running through the fault machinery with an *empty* plan must leave
    /// the timeline bit-identical to the plain entry point: the injection
    /// layer is free when unused.
    #[test]
    fn empty_fault_plan_leaves_runs_bit_identical(
        policy in arb_policy(),
        nodes in 2u32..=4,
        jobs in 8usize..=32,
        seed in 0u64..500,
    ) {
        let wl = WorkloadBuilder::new(WorkloadKind::Table1Mix)
            .count(jobs)
            .seed(seed)
            .build();
        let mut cfg = ClusterConfig::paper_cluster(policy).with_nodes(nodes);
        cfg.knapsack.window = 64;

        let plain = Experiment::run_traced(&cfg, &wl);
        let empty = Experiment::run_with_faults_traced(&cfg, &wl, &FaultPlan::empty());
        match (plain, empty) {
            (Ok((pr, pt)), Ok((er, et))) => {
                prop_assert_eq!(&pr, &er, "empty plan perturbed the metrics");
                prop_assert_eq!(&pt.events, &et.events, "empty plan perturbed the trace");
            }
            (plain, empty) => {
                prop_assert_eq!(plain.map(|(r, _)| r), empty.map(|(r, _)| r));
            }
        }
    }

    /// The fast/naive bit-identity holds under fault injection too: fault,
    /// recovery and backoff events are handled by shared code, so churn
    /// must not open a gap between the event schemes.
    #[test]
    fn fault_injected_event_paths_are_bit_identical(
        policy in arb_policy(),
        nodes in 2u32..=4,
        jobs in 8usize..=24,
        seed in 0u64..500,
        device_mtbf in 60.0f64..400.0,
        node_mtbf in prop_oneof![Just(0.0f64), 200.0f64..800.0],
    ) {
        let wl = WorkloadBuilder::new(WorkloadKind::Table1Mix)
            .count(jobs)
            .seed(seed)
            .build();
        let mut cfg = ClusterConfig::paper_cluster(policy).with_nodes(nodes);
        cfg.knapsack.window = 64;
        cfg.faults.device_mtbf_secs = device_mtbf;
        cfg.faults.node_mtbf_secs = node_mtbf;
        cfg.faults.horizon_secs = 500.0;
        let plan = FaultPlan::generate(&cfg);

        let fast = Experiment::run_with_faults_traced(&cfg, &wl, &plan);
        let naive = Experiment::run_naive_events_with_faults_traced(&cfg, &wl, &plan);
        match (fast, naive) {
            (Ok((fr, ft)), Ok((nr, nt))) => {
                prop_assert_eq!(&fr, &nr, "fault metrics diverged across event modes");
                prop_assert_eq!(&ft.events, &nt.events, "fault traces diverged across event modes");
                let fa = audit(&cfg, &wl, &fr, &ft);
                prop_assert!(fa.is_empty(), "fault run failed its audit: {:?}", fa);
            }
            (fast, naive) => {
                prop_assert_eq!(fast.map(|(r, _)| r), naive.map(|(r, _)| r));
            }
        }
    }

    /// The *planner* fast path (preprocessed instances, solve memo,
    /// speculative parallel warm-up) must be bit-identical to the retained
    /// naive serial planner across whole simulations — including under
    /// fault injection, where device resets and job retries churn the
    /// scheduler's view. Cache counters legitimately differ between the
    /// modes (the naive planner never touches the memo), so they are
    /// normalized to zero before comparison; everything else must match.
    #[test]
    fn fast_and_naive_planners_are_bit_identical_end_to_end(
        policy in prop_oneof![Just(ClusterPolicy::Mcck), Just(ClusterPolicy::Oracle)],
        nodes in 2u32..=5,
        jobs in 8usize..=32,
        seed in 0u64..500,
        window in prop_oneof![Just(16usize), Just(64)],
        with_faults in any::<bool>(),
    ) {
        let wl = WorkloadBuilder::new(WorkloadKind::Table1Mix)
            .count(jobs)
            .seed(seed)
            .build();
        let mut fast_cfg = ClusterConfig::paper_cluster(policy).with_nodes(nodes);
        fast_cfg.knapsack.window = window;
        fast_cfg.knapsack.planner = PlannerMode::Fast;
        let mut naive_cfg = fast_cfg;
        naive_cfg.knapsack.planner = PlannerMode::NaiveSerial;

        let plan = if with_faults {
            fast_cfg.faults.device_mtbf_secs = 120.0;
            fast_cfg.faults.node_mtbf_secs = 400.0;
            fast_cfg.faults.horizon_secs = 500.0;
            naive_cfg.faults = fast_cfg.faults;
            FaultPlan::generate(&fast_cfg)
        } else {
            FaultPlan::empty()
        };

        let fast = Experiment::run_with_faults_traced(&fast_cfg, &wl, &plan);
        let naive = Experiment::run_with_faults_traced(&naive_cfg, &wl, &plan);
        match (fast, naive) {
            (Ok((mut fr, ft)), Ok((mut nr, nt))) => {
                fr.plan_cache_hits = 0;
                fr.plan_cache_misses = 0;
                nr.plan_cache_hits = 0;
                nr.plan_cache_misses = 0;
                prop_assert_eq!(&fr, &nr, "metrics diverged across planner modes");
                prop_assert_eq!(
                    &ft.events, &nt.events,
                    "traces diverged across planner modes"
                );
                let fa = audit(&fast_cfg, &wl, &fr, &ft);
                prop_assert!(fa.is_empty(), "fast-planner run failed its audit: {:?}", fa);
            }
            (fast, naive) => {
                prop_assert_eq!(fast.map(|(r, _)| r), naive.map(|(r, _)| r));
            }
        }
    }

    /// The slab-backed state substrate (generation-stamped handles, dense
    /// slots) must be bit-identical to the seed's map-keyed substrate over
    /// whole simulations — metrics, traces and audits — including under
    /// fault injection, where device resets invalidate every handle on the
    /// card and OOM kills remove processes out from under the runtime.
    #[test]
    fn fast_and_keyed_substrates_are_bit_identical_end_to_end(
        policy in arb_policy(),
        nodes in 2u32..=4,
        jobs in 8usize..=24,
        seed in 0u64..500,
        misbehaving in prop_oneof![Just(0.0f64), Just(0.3)],
        with_faults in any::<bool>(),
    ) {
        let wl = WorkloadBuilder::new(WorkloadKind::Table1Mix)
            .count(jobs)
            .seed(seed)
            .misbehaving_fraction(misbehaving)
            .build();
        let mut cfg = ClusterConfig::paper_cluster(policy).with_nodes(nodes);
        cfg.knapsack.window = 64;
        let plan = if with_faults {
            cfg.faults.device_mtbf_secs = 120.0;
            cfg.faults.node_mtbf_secs = 400.0;
            cfg.faults.horizon_secs = 500.0;
            FaultPlan::generate(&cfg)
        } else {
            FaultPlan::empty()
        };

        let fast =
            Experiment::run_with_substrate_faults_traced(&cfg, &wl, &plan, SubstrateMode::Fast);
        let keyed =
            Experiment::run_with_substrate_faults_traced(&cfg, &wl, &plan, SubstrateMode::Keyed);
        match (fast, keyed) {
            (Ok((fr, ft)), Ok((kr, kt))) => {
                prop_assert_eq!(&fr, &kr, "metrics diverged across substrates");
                prop_assert_eq!(&ft.events, &kt.events, "traces diverged across substrates");
                let fa = audit(&cfg, &wl, &fr, &ft);
                prop_assert!(fa.is_empty(), "fast-substrate run failed its audit: {:?}", fa);
            }
            (fast, keyed) => {
                prop_assert_eq!(fast.map(|(r, _)| r), keyed.map(|(r, _)| r));
            }
        }
    }

    /// Recycling one worker's scratch buffers across an arbitrary sequence
    /// of cells never perturbs any cell's result: each run through a dirty
    /// scratch equals a fresh run of the same cell.
    #[test]
    fn scratch_recycled_runs_are_bit_identical(
        cells in prop::collection::vec(
            (arb_policy(), 2u32..=3, 6usize..=16, 0u64..200),
            2..5,
        ),
    ) {
        let mut scratch = ExperimentScratch::new();
        for (policy, nodes, jobs, seed) in cells {
            let wl = WorkloadBuilder::new(WorkloadKind::Table1Mix)
                .count(jobs)
                .seed(seed)
                .build();
            let mut cfg = ClusterConfig::paper_cluster(policy).with_nodes(nodes);
            cfg.knapsack.window = 64;
            let fresh = Experiment::run(&cfg, &wl);
            let recycled = Experiment::run_with_scratch(&cfg, &wl, &mut scratch);
            prop_assert_eq!(fresh, recycled, "recycled scratch perturbed a cell");
        }
    }
}
