//! Differential oracle for the simulation fast path.
//!
//! [`Experiment::run`] schedules one completion prediction event per device
//! (and host) per generation; [`Experiment::run_naive_events`] is the
//! seed's per-offload scheme. The two must be *bit-identical* — same
//! metrics, same trace, same audit — on arbitrary workloads, policies and
//! cluster sizes. Any divergence means the fast path changed simulation
//! semantics, not just simulation cost.

use phishare_cluster::{audit, ClusterConfig, Experiment};
use phishare_core::ClusterPolicy;
use phishare_sim::SimDuration;
use phishare_workload::{ArrivalProcess, WorkloadBuilder, WorkloadKind};
use proptest::prelude::*;

fn arb_policy() -> impl Strategy<Value = ClusterPolicy> {
    prop_oneof![
        Just(ClusterPolicy::Mc),
        Just(ClusterPolicy::Mcc),
        Just(ClusterPolicy::Mcck),
        Just(ClusterPolicy::Oracle),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn fast_and_naive_event_paths_are_bit_identical(
        policy in arb_policy(),
        nodes in 2u32..=4,
        jobs in 8usize..=32,
        seed in 0u64..500,
        misbehaving in prop_oneof![Just(0.0f64), Just(0.3)],
        poisson in any::<bool>(),
    ) {
        let mut builder = WorkloadBuilder::new(WorkloadKind::Table1Mix)
            .count(jobs)
            .seed(seed)
            .misbehaving_fraction(misbehaving);
        if poisson {
            builder = builder.arrivals(ArrivalProcess::Poisson {
                mean_gap: SimDuration::from_secs(3),
            });
        }
        let wl = builder.build();
        let mut cfg = ClusterConfig::paper_cluster(policy).with_nodes(nodes);
        cfg.knapsack.window = 64;

        let fast = Experiment::run_traced(&cfg, &wl);
        let naive = Experiment::run_naive_events_traced(&cfg, &wl);
        match (fast, naive) {
            (Ok((fast_result, fast_trace)), Ok((naive_result, naive_trace))) => {
                prop_assert_eq!(
                    &fast_result, &naive_result,
                    "metrics diverged across event modes"
                );
                prop_assert_eq!(
                    &fast_trace.events, &naive_trace.events,
                    "traces diverged across event modes"
                );
                let fast_audit = audit(&cfg, &wl, &fast_result, &fast_trace);
                let naive_audit = audit(&cfg, &wl, &naive_result, &naive_trace);
                prop_assert_eq!(fast_audit, naive_audit, "audits diverged across event modes");
            }
            (fast, naive) => {
                // Both paths must agree even on rejection (and the error
                // strings are part of the contract).
                prop_assert_eq!(fast.map(|(r, _)| r), naive.map(|(r, _)| r));
            }
        }
    }
}
