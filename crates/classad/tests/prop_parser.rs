//! Property tests for the ClassAd language: totality of lexing/parsing on
//! arbitrary input, display→parse round-trips on generated ASTs, and
//! totality of evaluation.

use phishare_classad::ast::{BinOp, Expr, UnOp};
use phishare_classad::{eval, parse, ClassAd, Value};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-1000i64..1000).prop_map(Value::Int),
        (-1000.0f64..1000.0).prop_map(Value::Float),
        any::<bool>().prop_map(Value::Bool),
        "[a-z]{0,8}".prop_map(Value::Str),
        Just(Value::Undefined),
    ]
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        arb_value().prop_map(Expr::Lit),
        "[a-z][a-z0-9_]{0,6}"
            .prop_filter("not a keyword", |s| {
                !["true", "false", "undefined", "my", "target"].contains(&s.as_str())
            })
            .prop_map(Expr::Attr),
    ];
    leaf.prop_recursive(4, 48, 3, |inner| {
        prop_oneof![
            (
                inner.clone(),
                inner.clone(),
                prop::sample::select(vec![
                    BinOp::Or,
                    BinOp::And,
                    BinOp::Eq,
                    BinOp::Ne,
                    BinOp::Is,
                    BinOp::Isnt,
                    BinOp::Lt,
                    BinOp::Le,
                    BinOp::Gt,
                    BinOp::Ge,
                    BinOp::Add,
                    BinOp::Sub,
                    BinOp::Mul,
                    BinOp::Div,
                ])
            )
                .prop_map(|(l, r, op)| Expr::Binary(op, Box::new(l), Box::new(r))),
            (
                inner.clone(),
                prop::sample::select(vec![UnOp::Not, UnOp::Neg])
            )
                .prop_map(|(e, op)| Expr::Unary(op, Box::new(e))),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(c, t, e)| Expr::Ternary(
                Box::new(c),
                Box::new(t),
                Box::new(e)
            )),
            (
                prop::sample::select(vec!["min", "max", "strcat", "isundefined", "floor"]),
                prop::collection::vec(inner, 0..3)
            )
                .prop_map(|(name, args)| Expr::Call(name.to_string(), args)),
        ]
    })
}

fn arb_ad() -> impl Strategy<Value = ClassAd> {
    prop::collection::btree_map("[a-z][a-z0-9]{0,5}", arb_value(), 0..6).prop_map(|attrs| {
        let mut ad = ClassAd::new();
        for (k, v) in attrs {
            ad.insert(&k, v);
        }
        ad
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The lexer/parser never panic on arbitrary input — they return
    /// `Err`, which is what a schedd must do with malformed submit files.
    #[test]
    fn parse_is_total_on_arbitrary_strings(input in ".{0,80}") {
        let _ = parse(&input);
    }

    /// Parsing never panics on strings drawn from the expression alphabet,
    /// where deep operator nesting is likely.
    #[test]
    fn parse_is_total_on_expression_alphabet(
        input in "[a-z0-9 ()+*/<>=&|!?.:,\"-]{0,60}"
    ) {
        let _ = parse(&input);
    }

    /// `Display` output of any AST re-parses to the same AST, modulo the
    /// float-literal wrinkle: negative literals print as `-(x)` (unary
    /// minus), which re-parses to `Unary(Neg, …)` — so we compare the
    /// *display* forms after one round trip (a fixpoint check).
    #[test]
    fn display_parse_reaches_fixpoint(expr in arb_expr()) {
        let once = parse(&expr.to_string());
        prop_assert!(once.is_ok(), "display form failed to parse: {}", expr);
        let once = once.unwrap();
        let twice = parse(&once.to_string()).expect("fixpoint parse");
        prop_assert_eq!(&once, &twice, "display not stable: {}", once);
    }

    /// Evaluation is total: any generated AST against any ads yields a
    /// value, never a panic.
    #[test]
    fn eval_is_total(expr in arb_expr(), my in arb_ad(), target in arb_ad()) {
        let _ = eval(&expr, &my, Some(&target));
        let _ = eval(&expr, &my, None);
    }

    /// Matchmaking is symmetric in the trivial case: ads without
    /// Requirements always match, in both directions.
    #[test]
    fn requirement_free_ads_always_match(a in arb_ad(), b in arb_ad()) {
        prop_assert!(a.matches(&b));
        prop_assert!(b.matches(&a));
    }
}
