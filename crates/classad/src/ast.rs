//! The expression AST.

use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Binary operators, loosest-binding first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BinOp {
    /// `||`
    Or,
    /// `&&`
    And,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `=?=` (identity: total, case-sensitive, UNDEFINED-safe)
    Is,
    /// `=!=` (negated identity)
    Isnt,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

impl BinOp {
    /// Binding power (higher binds tighter); used by the Pratt parser.
    pub fn precedence(self) -> u8 {
        match self {
            BinOp::Or => 1,
            BinOp::And => 2,
            BinOp::Eq | BinOp::Ne | BinOp::Is | BinOp::Isnt => 3,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 4,
            BinOp::Add | BinOp::Sub => 5,
            BinOp::Mul | BinOp::Div => 6,
        }
    }

    /// Surface syntax of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Or => "||",
            BinOp::And => "&&",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Is => "=?=",
            BinOp::Isnt => "=!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UnOp {
    /// Logical negation `!`.
    Not,
    /// Arithmetic negation `-`.
    Neg,
}

/// Which ad an explicitly scoped attribute refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scope {
    /// `MY.attr` — the ad the expression lives in.
    My,
    /// `TARGET.attr` — the candidate match.
    Target,
}

/// A parsed ClassAd expression.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// A literal value.
    Lit(Value),
    /// A bare attribute reference (resolved MY-first-then-TARGET).
    Attr(String),
    /// An explicitly scoped attribute reference.
    ScopedAttr(Scope, String),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Conditional `cond ? then : else` (lowest precedence, right-assoc).
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Builtin function call, e.g. `min(a, b)`. Names are case-insensitive
    /// and resolved at evaluation time (unknown functions evaluate to
    /// `UNDEFINED`, keeping evaluation total).
    Call(String, Vec<Expr>),
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Lit(v) => write!(f, "{v}"),
            Expr::Attr(a) => write!(f, "{a}"),
            Expr::ScopedAttr(Scope::My, a) => write!(f, "MY.{a}"),
            Expr::ScopedAttr(Scope::Target, a) => write!(f, "TARGET.{a}"),
            Expr::Unary(UnOp::Not, e) => write!(f, "!({e})"),
            Expr::Unary(UnOp::Neg, e) => write!(f, "-({e})"),
            Expr::Binary(op, l, r) => write!(f, "({l} {} {r})", op.symbol()),
            Expr::Ternary(c, t, e) => write!(f, "({c} ? {t} : {e})"),
            Expr::Call(name, args) => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precedence_ordering() {
        assert!(BinOp::Or.precedence() < BinOp::And.precedence());
        assert!(BinOp::And.precedence() < BinOp::Eq.precedence());
        assert!(BinOp::Eq.precedence() < BinOp::Lt.precedence());
        assert!(BinOp::Lt.precedence() < BinOp::Add.precedence());
        assert!(BinOp::Add.precedence() < BinOp::Mul.precedence());
    }

    #[test]
    fn display_round_trips_structure() {
        let e = Expr::Binary(
            BinOp::And,
            Box::new(Expr::Attr("a".into())),
            Box::new(Expr::ScopedAttr(Scope::Target, "b".into())),
        );
        assert_eq!(e.to_string(), "(a && TARGET.b)");
    }
}
