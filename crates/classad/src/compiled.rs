//! Compiled `Requirements`: the matchmaking fast path.
//!
//! A job's `Requirements` expression is fixed between qedits, while the
//! negotiator evaluates it against every candidate slot every cycle. This
//! module performs that per-job work **once**:
//!
//! 1. **Constant folding** — `MY.attr` references (and bare attributes the
//!    job ad defines) are substituted with their values, and any subtree
//!    left without TARGET references is folded to a literal.
//! 2. **Conjunction splitting** — the folded expression's top-level `&&`
//!    chain is split into clauses. Under ClassAd three-valued logic a
//!    conjunction evaluates to `true` iff every conjunct does, so clause
//!    outcomes compose exactly.
//! 3. **Guard extraction** — clauses of the shape `TARGET.attr <cmp> number`
//!    become [`Guard`]s and `TARGET.attr == "string"` become [`PinEq`]s:
//!    compact predicates a negotiator can check against cached slot state
//!    (or use to pre-screen candidates via a collector index) without
//!    touching the evaluator. Everything else stays in a residual
//!    expression evaluated with the full AST walker.
//!
//! [`CompiledReq::matches_target`] is byte-for-byte equivalent to
//! `ClassAd::requirements_satisfied` — the property tests in
//! `tests/prop_compiled.rs` and the negotiator's differential suite hold the
//! two implementations to identical verdicts.

use crate::ad::{ClassAd, REQUIREMENTS};
use crate::ast::{BinOp, Expr, Scope};
use crate::eval::eval;
use crate::value::Value;

/// Comparison operator of a numeric [`Guard`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// A numeric necessary condition on the target: `TARGET.attr <op> bound`.
///
/// Semantics replicate the evaluator's comparison rules: a target whose
/// attribute is missing or non-numeric never satisfies the guard (the
/// comparison would evaluate to `UNDEFINED`).
#[derive(Debug, Clone, PartialEq)]
pub struct Guard {
    /// Target attribute name, lower-cased.
    pub attr: String,
    /// Comparison operator.
    pub op: GuardOp,
    /// Literal bound (integers widen to f64, matching the evaluator).
    pub bound: f64,
}

impl Guard {
    /// Does a target attribute value satisfy this guard?
    pub fn admits(&self, value: Option<&Value>) -> bool {
        match value.and_then(Value::as_f64) {
            None => false,
            Some(x) => match self.op {
                GuardOp::Lt => x < self.bound,
                GuardOp::Le => x <= self.bound,
                GuardOp::Gt => x > self.bound,
                GuardOp::Ge => x >= self.bound,
            },
        }
    }
}

/// A string equality pin on the target: `TARGET.attr == "value"`, compared
/// case-insensitively exactly like the evaluator's `==` on strings. This is
/// the shape `condor_qedit` pinning produces (`Name == "slot1@node3"`,
/// `Machine == "node3"`).
#[derive(Debug, Clone, PartialEq)]
pub struct PinEq {
    /// Target attribute name, lower-cased.
    pub attr: String,
    /// Required string value (original case; compared case-insensitively).
    pub value: String,
}

impl PinEq {
    /// Does a target attribute value satisfy this pin?
    pub fn admits(&self, value: Option<&Value>) -> bool {
        match value {
            Some(Value::Str(s)) => s.eq_ignore_ascii_case(&self.value),
            // Non-string targets make `==` against a string literal
            // UNDEFINED; missing attributes likewise.
            _ => false,
        }
    }
}

/// A job ad's `Requirements`, compiled for repeated evaluation.
///
/// The default value (no guards, no pins, no residual) accepts every
/// target — the semantics of an absent `Requirements` attribute.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CompiledReq {
    never: bool,
    guards: Vec<Guard>,
    pins: Vec<PinEq>,
    residual: Option<Expr>,
}

impl CompiledReq {
    /// Compile `ad`'s `Requirements` against its own (MY-side) attributes.
    pub fn compile(ad: &ClassAd) -> Self {
        match ad.parsed_expr(REQUIREMENTS) {
            None => CompiledReq::default(),
            Some(expr) => Self::compile_expr(expr, ad),
        }
    }

    /// Compile an arbitrary requirements expression with `my` as the
    /// owning ad.
    pub fn compile_expr(expr: &Expr, my: &ClassAd) -> Self {
        let folded = fold(expr, my);
        let mut clauses = Vec::new();
        split_conjunction(folded, &mut clauses);

        let mut compiled = CompiledReq::default();
        let mut residual = Vec::new();
        for clause in clauses {
            match classify(clause) {
                Clause::AlwaysTrue => {}
                Clause::NeverTrue => compiled.never = true,
                Clause::Guard(g) => compiled.guards.push(g),
                Clause::Pin(p) => compiled.pins.push(p),
                Clause::Residual(e) => residual.push(e),
            }
        }
        if compiled.never {
            // One constant-false conjunct decides the whole conjunction.
            compiled.guards.clear();
            compiled.pins.clear();
            residual.clear();
        }
        compiled.residual = rebuild_conjunction(residual);
        compiled
    }

    /// True when the requirement can never match any target (folded to a
    /// constant that is not `true`).
    pub fn is_never(&self) -> bool {
        self.never
    }

    /// True when the whole requirement compiled into guards and pins — no
    /// residual AST walk is needed per candidate.
    pub fn fully_compiled(&self) -> bool {
        self.residual.is_none()
    }

    /// The extracted numeric guards.
    pub fn guards(&self) -> &[Guard] {
        &self.guards
    }

    /// The extracted string equality pins.
    pub fn pins(&self) -> &[PinEq] {
        &self.pins
    }

    /// The residual expression, if any clause resisted extraction.
    pub fn residual(&self) -> Option<&Expr> {
        self.residual.as_ref()
    }

    /// The pinned value for `attr` (case-insensitive), if this requirement
    /// pins it.
    pub fn pin(&self, attr: &str) -> Option<&str> {
        self.pins
            .iter()
            .find(|p| p.attr.eq_ignore_ascii_case(attr))
            .map(|p| p.value.as_str())
    }

    /// The strongest lower bound the guards place on a numeric target
    /// attribute: any admitted target must have `attr` numeric and
    /// `>= bound`. (A `>` guard is weakened to `>=`; callers re-check
    /// exactly via [`CompiledReq::matches_target`].)
    pub fn lower_bound(&self, attr: &str) -> Option<f64> {
        self.guards
            .iter()
            .filter(|g| {
                matches!(g.op, GuardOp::Ge | GuardOp::Gt) && g.attr.eq_ignore_ascii_case(attr)
            })
            .map(|g| g.bound)
            .fold(None, |acc, b| {
                Some(match acc {
                    None => b,
                    Some(a) if b > a => b,
                    Some(a) => a,
                })
            })
    }

    /// Evaluate the compiled requirement against a candidate target.
    /// Equivalent to `my.requirements_satisfied(target)`.
    pub fn matches_target(&self, my: &ClassAd, target: &ClassAd) -> bool {
        if self.never {
            return false;
        }
        for g in &self.guards {
            if !g.admits(target.get(&g.attr)) {
                return false;
            }
        }
        for p in &self.pins {
            if !p.admits(target.get(&p.attr)) {
                return false;
            }
        }
        match &self.residual {
            None => true,
            Some(e) => eval(e, my, Some(target)).is_true(),
        }
    }
}

/// Substitute MY-resolvable attributes and fold constant subtrees.
///
/// Bare attributes resolve MY-first-then-TARGET, so a bare attribute the
/// job ad defines becomes its literal value, and one it does not define is
/// rewritten to an explicit `TARGET.` reference (the MY lookup would miss
/// for every candidate alike).
fn fold(expr: &Expr, my: &ClassAd) -> Expr {
    let rebuilt = match expr {
        Expr::Lit(v) => return Expr::Lit(v.clone()),
        Expr::Attr(name) => {
            return match my.get(name) {
                Some(v) => Expr::Lit(v.clone()),
                None => Expr::ScopedAttr(Scope::Target, name.clone()),
            }
        }
        Expr::ScopedAttr(Scope::My, name) => {
            return Expr::Lit(my.get(name).cloned().unwrap_or(Value::Undefined))
        }
        Expr::ScopedAttr(Scope::Target, _) => return expr.clone(),
        Expr::Unary(op, e) => Expr::Unary(*op, Box::new(fold(e, my))),
        Expr::Binary(op, l, r) => Expr::Binary(*op, Box::new(fold(l, my)), Box::new(fold(r, my))),
        Expr::Ternary(c, t, e) => Expr::Ternary(
            Box::new(fold(c, my)),
            Box::new(fold(t, my)),
            Box::new(fold(e, my)),
        ),
        Expr::Call(name, args) => {
            Expr::Call(name.clone(), args.iter().map(|a| fold(a, my)).collect())
        }
    };
    if is_constant(&rebuilt) {
        // Evaluation is compositional, so replacing a TARGET-free subtree
        // with its value is exact (builtins are pure; the empty MY ad is
        // never consulted because no attribute references remain).
        Expr::Lit(eval(&rebuilt, &EMPTY_AD, None))
    } else {
        rebuilt
    }
}

// Shared empty ad for constant evaluation during folding.
static EMPTY_AD: std::sync::LazyLock<ClassAd> = std::sync::LazyLock::new(ClassAd::new);

/// True when the expression contains no attribute references at all.
fn is_constant(expr: &Expr) -> bool {
    match expr {
        Expr::Lit(_) => true,
        Expr::Attr(_) | Expr::ScopedAttr(..) => false,
        Expr::Unary(_, e) => is_constant(e),
        Expr::Binary(_, l, r) => is_constant(l) && is_constant(r),
        Expr::Ternary(c, t, e) => is_constant(c) && is_constant(t) && is_constant(e),
        Expr::Call(_, args) => args.iter().all(is_constant),
    }
}

/// Flatten a top-level `&&` chain. Sound because the conjunction is
/// `Bool(true)` exactly when every conjunct is (`UNDEFINED && false` is
/// `false`, which is equally "not true" for match purposes).
fn split_conjunction(expr: Expr, out: &mut Vec<Expr>) {
    match expr {
        Expr::Binary(BinOp::And, l, r) => {
            split_conjunction(*l, out);
            split_conjunction(*r, out);
        }
        other => out.push(other),
    }
}

enum Clause {
    AlwaysTrue,
    NeverTrue,
    Guard(Guard),
    Pin(PinEq),
    Residual(Expr),
}

fn classify(clause: Expr) -> Clause {
    match clause {
        Expr::Lit(Value::Bool(true)) => Clause::AlwaysTrue,
        // Any other literal conjunct (false, UNDEFINED, a number, a string)
        // is never `true`, so the conjunction can never match.
        Expr::Lit(_) => Clause::NeverTrue,
        Expr::Binary(op, l, r) => match (op, *l, *r) {
            (BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge, a, b) => {
                match numeric_guard(op, a, b) {
                    Ok(g) => Clause::Guard(g),
                    Err((a, b)) => Clause::Residual(Expr::Binary(op, Box::new(a), Box::new(b))),
                }
            }
            (BinOp::Eq, Expr::ScopedAttr(Scope::Target, attr), Expr::Lit(Value::Str(s)))
            | (BinOp::Eq, Expr::Lit(Value::Str(s)), Expr::ScopedAttr(Scope::Target, attr)) => {
                Clause::Pin(PinEq {
                    attr: attr.to_ascii_lowercase(),
                    value: s,
                })
            }
            (op, a, b) => Clause::Residual(Expr::Binary(op, Box::new(a), Box::new(b))),
        },
        other => Clause::Residual(other),
    }
}

/// Try to read `TARGET.attr <op> number` (either operand order) as a guard.
fn numeric_guard(op: BinOp, l: Expr, r: Expr) -> Result<Guard, (Expr, Expr)> {
    let guard_op = |attr_on_left: bool| match (op, attr_on_left) {
        (BinOp::Lt, true) | (BinOp::Gt, false) => GuardOp::Lt,
        (BinOp::Le, true) | (BinOp::Ge, false) => GuardOp::Le,
        (BinOp::Gt, true) | (BinOp::Lt, false) => GuardOp::Gt,
        (BinOp::Ge, true) | (BinOp::Le, false) => GuardOp::Ge,
        _ => unreachable!("caller filters comparison operators"),
    };
    match (l, r) {
        (Expr::ScopedAttr(Scope::Target, attr), Expr::Lit(v)) => match v.as_f64() {
            Some(bound) => Ok(Guard {
                attr: attr.to_ascii_lowercase(),
                op: guard_op(true),
                bound,
            }),
            None => Err((Expr::ScopedAttr(Scope::Target, attr), Expr::Lit(v))),
        },
        (Expr::Lit(v), Expr::ScopedAttr(Scope::Target, attr)) => match v.as_f64() {
            Some(bound) => Ok(Guard {
                attr: attr.to_ascii_lowercase(),
                op: guard_op(false),
                bound,
            }),
            None => Err((Expr::Lit(v), Expr::ScopedAttr(Scope::Target, attr))),
        },
        (l, r) => Err((l, r)),
    }
}

fn rebuild_conjunction(mut clauses: Vec<Expr>) -> Option<Expr> {
    let mut result = clauses.pop()?;
    // Rebuild right-associatively to preserve left-to-right clause order.
    while let Some(prev) = clauses.pop() {
        result = Expr::Binary(BinOp::And, Box::new(prev), Box::new(result));
    }
    Some(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn job(mem: i64) -> ClassAd {
        let mut ad = ClassAd::new();
        ad.insert("RequestPhiMemory", mem);
        ad
    }

    fn compile(src: &str, my: &ClassAd) -> CompiledReq {
        CompiledReq::compile_expr(&parse(src).unwrap(), my)
    }

    fn machine(free: i64, devs_free: i64) -> ClassAd {
        let mut ad = ClassAd::new();
        ad.insert("Name", "slot1@node3");
        ad.insert("Machine", "node3");
        ad.insert("PhiDevices", 1u64);
        ad.insert("PhiFreeMemory", free);
        ad.insert("PhiDevicesFree", devs_free);
        ad
    }

    #[test]
    fn sharing_requirements_compile_to_pure_guards() {
        let my = job(1024);
        let req = compile(
            "TARGET.PhiDevices >= 1 && TARGET.PhiFreeMemory >= MY.RequestPhiMemory",
            &my,
        );
        assert!(req.fully_compiled());
        assert_eq!(req.guards().len(), 2);
        assert_eq!(req.lower_bound("PhiFreeMemory"), Some(1024.0));
        assert!(req.matches_target(&my, &machine(7680, 1)));
        assert!(!req.matches_target(&my, &machine(512, 1)));
    }

    #[test]
    fn bare_attributes_fold_against_my_then_rewrite_to_target() {
        let my = job(1024);
        // `RequestPhiMemory` is MY-side; `PhiFreeMemory` falls through to
        // TARGET because the job ad does not define it.
        let req = compile("PhiFreeMemory >= RequestPhiMemory", &my);
        assert!(req.fully_compiled());
        assert_eq!(req.lower_bound("phifreememory"), Some(1024.0));
    }

    #[test]
    fn name_pin_compiles_to_string_pin() {
        let my = job(1024);
        let req = compile("TARGET.Name == \"slot1@node3\"", &my);
        assert!(req.fully_compiled());
        assert_eq!(req.pin("Name"), Some("slot1@node3"));
        assert!(req.matches_target(&my, &machine(0, 0)));
        let mut other = machine(7680, 1);
        other.insert("Name", "slot1@node4");
        assert!(!req.matches_target(&my, &other));
    }

    #[test]
    fn string_pins_are_case_insensitive_like_eval() {
        let my = ClassAd::new();
        let req = compile("TARGET.Name == \"SLOT1@NODE3\"", &my);
        assert!(req.matches_target(&my, &machine(0, 0)));
    }

    #[test]
    fn constant_false_requirements_never_match() {
        let my = job(1024);
        for src in ["false", "1 == 2", "MY.RequestPhiMemory > 9000", "5"] {
            let req = compile(src, &my);
            assert!(req.is_never(), "{src} should fold to never");
            assert!(!req.matches_target(&my, &machine(7680, 1)));
        }
    }

    #[test]
    fn constant_true_requirements_always_match() {
        let my = job(1024);
        for src in ["true", "1 < 2", "MY.RequestPhiMemory <= 7680"] {
            let req = compile(src, &my);
            assert!(req.fully_compiled());
            assert!(req.guards().is_empty() && req.pins().is_empty());
            assert!(req.matches_target(&my, &ClassAd::new()), "{src}");
        }
    }

    #[test]
    fn disjunctions_stay_residual_but_evaluate_identically() {
        let my = job(1024);
        let src = "TARGET.PhiFreeMemory >= MY.RequestPhiMemory || TARGET.PhiDevicesFree >= 1";
        let req = compile(src, &my);
        assert!(!req.fully_compiled());
        for target in [machine(7680, 0), machine(0, 1), machine(0, 0)] {
            let mut naive = job(1024);
            naive.insert_expr(REQUIREMENTS, src).unwrap();
            assert_eq!(
                req.matches_target(&my, &target),
                naive.requirements_satisfied(&target)
            );
        }
    }

    #[test]
    fn guards_reject_missing_and_non_numeric_attributes() {
        let my = ClassAd::new();
        let req = compile("TARGET.PhiFreeMemory >= 100", &my);
        assert!(!req.matches_target(&my, &ClassAd::new())); // missing
        let mut s = ClassAd::new();
        s.insert("PhiFreeMemory", "lots");
        assert!(!req.matches_target(&my, &s)); // non-numeric
    }

    #[test]
    fn reversed_operand_guards_flip_the_operator() {
        let my = ClassAd::new();
        let req = compile("100 <= TARGET.PhiFreeMemory", &my);
        assert_eq!(req.lower_bound("phifreememory"), Some(100.0));
        assert!(req.matches_target(&my, &machine(100, 0)));
        assert!(!req.matches_target(&my, &machine(99, 0)));
    }

    #[test]
    fn mixed_conjunctions_split_guard_pin_and_residual() {
        let mut my = ClassAd::new();
        my.insert("RequestPhiMemory", 500u64);
        let req = compile(
            "TARGET.Machine == \"node2\" && TARGET.PhiFreeMemory >= MY.RequestPhiMemory \
             && isUndefined(TARGET.Offline)",
            &my,
        );
        assert_eq!(req.pin("machine"), Some("node2"));
        assert_eq!(req.lower_bound("phifreememory"), Some(500.0));
        assert!(!req.fully_compiled()); // the isUndefined call stays residual
        let mut target = machine(7680, 1);
        target.insert("Machine", "node2");
        assert!(req.matches_target(&my, &target));
        target.insert("Offline", true);
        assert!(!req.matches_target(&my, &target));
    }

    #[test]
    fn compile_of_ad_without_requirements_accepts_everything() {
        let req = CompiledReq::compile(&ClassAd::new());
        assert!(req.matches_target(&ClassAd::new(), &machine(0, 0)));
        assert!(req.fully_compiled());
    }

    #[test]
    fn folding_respects_undefined_my_attributes() {
        // MY.Missing is UNDEFINED for every target: the comparison folds to
        // UNDEFINED and the requirement to "never".
        let req = compile("MY.Missing >= 5", &ClassAd::new());
        assert!(req.is_never());
    }
}
