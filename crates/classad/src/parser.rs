//! Pratt parser for ClassAd expressions.

use crate::ast::{BinOp, Expr, Scope, UnOp};
use crate::lexer::{lex, LexError, Token};
use crate::value::Value;
use std::fmt;

/// A parsing failure.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// The tokenizer failed.
    Lex(LexError),
    /// Unexpected token (or end of input) with a human-readable description.
    Unexpected(String),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Lex(e) => write!(f, "{e}"),
            ParseError::Unexpected(m) => write!(f, "parse error: {m}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError::Lex(e)
    }
}

/// Parse an expression string into an AST.
///
/// ```
/// use phishare_classad::parse;
/// let e = parse("TARGET.PhiMemory >= 1024 && PhiDevices > 0").unwrap();
/// assert_eq!(e.to_string(), "((TARGET.PhiMemory >= 1024) && (PhiDevices > 0))");
/// ```
pub fn parse(input: &str) -> Result<Expr, ParseError> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let expr = p.ternary()?;
    if p.pos != p.tokens.len() {
        return Err(ParseError::Unexpected(format!(
            "trailing input at token {}: {:?}",
            p.pos, p.tokens[p.pos]
        )));
    }
    Ok(expr)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, tok: &Token, what: &str) -> Result<(), ParseError> {
        match self.bump() {
            Some(ref t) if t == tok => Ok(()),
            other => Err(ParseError::Unexpected(format!(
                "expected {what}, found {other:?}"
            ))),
        }
    }

    /// The ternary conditional sits below every binary operator and is
    /// right-associative: `a ? b : c ? d : e` = `a ? b : (c ? d : e)`.
    fn ternary(&mut self) -> Result<Expr, ParseError> {
        let cond = self.expression(0)?;
        if self.peek() != Some(&Token::Question) {
            return Ok(cond);
        }
        self.bump();
        let then = self.ternary()?;
        self.expect(&Token::Colon, "':' in conditional")?;
        let otherwise = self.ternary()?;
        Ok(Expr::Ternary(
            Box::new(cond),
            Box::new(then),
            Box::new(otherwise),
        ))
    }

    fn expression(&mut self, min_prec: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.prefix()?;
        while let Some(op) = self.peek().and_then(binop_of) {
            let prec = op.precedence();
            if prec < min_prec {
                break;
            }
            self.bump();
            // All operators are left-associative: parse the rhs at prec+1.
            let rhs = self.expression(prec + 1)?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn prefix(&mut self) -> Result<Expr, ParseError> {
        match self.bump() {
            Some(Token::Int(n)) => Ok(Expr::Lit(Value::Int(n))),
            Some(Token::Float(x)) => Ok(Expr::Lit(Value::Float(x))),
            Some(Token::Str(s)) => Ok(Expr::Lit(Value::Str(s))),
            Some(Token::Bang) => {
                let e = self.expression(7)?; // binds tighter than any binop
                Ok(Expr::Unary(UnOp::Not, Box::new(e)))
            }
            Some(Token::Minus) => {
                let e = self.expression(7)?;
                Ok(Expr::Unary(UnOp::Neg, Box::new(e)))
            }
            Some(Token::LParen) => {
                let e = self.ternary()?;
                self.expect(&Token::RParen, "')'")?;
                Ok(e)
            }
            Some(Token::Ident(name)) => self.ident(name),
            other => Err(ParseError::Unexpected(format!(
                "expected an expression, found {other:?}"
            ))),
        }
    }

    fn ident(&mut self, name: String) -> Result<Expr, ParseError> {
        // Keywords.
        if name.eq_ignore_ascii_case("true") {
            return Ok(Expr::Lit(Value::Bool(true)));
        }
        if name.eq_ignore_ascii_case("false") {
            return Ok(Expr::Lit(Value::Bool(false)));
        }
        if name.eq_ignore_ascii_case("undefined") {
            return Ok(Expr::Lit(Value::Undefined));
        }
        // Scoped references: MY.attr / TARGET.attr.
        let scope = if name.eq_ignore_ascii_case("my") {
            Some(Scope::My)
        } else if name.eq_ignore_ascii_case("target") {
            Some(Scope::Target)
        } else {
            None
        };
        if let Some(scope) = scope {
            if self.peek() == Some(&Token::Dot) {
                self.bump();
                match self.bump() {
                    Some(Token::Ident(attr)) => return Ok(Expr::ScopedAttr(scope, attr)),
                    other => {
                        return Err(ParseError::Unexpected(format!(
                            "expected attribute name after scope, found {other:?}"
                        )))
                    }
                }
            }
        }
        // Function call?
        if self.peek() == Some(&Token::LParen) {
            self.bump();
            let mut args = Vec::new();
            if self.peek() != Some(&Token::RParen) {
                loop {
                    args.push(self.ternary()?);
                    match self.peek() {
                        Some(Token::Comma) => {
                            self.bump();
                        }
                        _ => break,
                    }
                }
            }
            self.expect(&Token::RParen, "')' after function arguments")?;
            return Ok(Expr::Call(name, args));
        }
        Ok(Expr::Attr(name))
    }
}

fn binop_of(tok: &Token) -> Option<BinOp> {
    Some(match tok {
        Token::OrOr => BinOp::Or,
        Token::AndAnd => BinOp::And,
        Token::EqEq => BinOp::Eq,
        Token::NotEq => BinOp::Ne,
        Token::Is => BinOp::Is,
        Token::Isnt => BinOp::Isnt,
        Token::Lt => BinOp::Lt,
        Token::Le => BinOp::Le,
        Token::Gt => BinOp::Gt,
        Token::Ge => BinOp::Ge,
        Token::Plus => BinOp::Add,
        Token::Minus => BinOp::Sub,
        Token::Star => BinOp::Mul,
        Token::Slash => BinOp::Div,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> String {
        parse(s).unwrap().to_string()
    }

    #[test]
    fn precedence_shapes_the_tree() {
        assert_eq!(p("1 + 2 * 3"), "(1 + (2 * 3))");
        assert_eq!(p("(1 + 2) * 3"), "((1 + 2) * 3)");
        assert_eq!(p("a && b || c"), "((a && b) || c)");
        assert_eq!(p("a == b && c < d"), "((a == b) && (c < d))");
    }

    #[test]
    fn left_associativity() {
        assert_eq!(p("10 - 3 - 2"), "((10 - 3) - 2)");
        assert_eq!(p("8 / 4 / 2"), "((8 / 4) / 2)");
    }

    #[test]
    fn unary_operators() {
        assert_eq!(p("!a && b"), "(!(a) && b)");
        assert_eq!(p("-3 + 4"), "(-(3) + 4)");
        assert_eq!(p("!(a && b)"), "!((a && b))");
    }

    #[test]
    fn scoped_attributes() {
        assert_eq!(p("MY.x + TARGET.y"), "(MY.x + TARGET.y)");
        // Case-insensitive scope keywords.
        assert_eq!(p("my.x"), "MY.x");
        // Bare `target` without a dot is an ordinary attribute.
        assert_eq!(p("target"), "target");
    }

    #[test]
    fn keywords() {
        assert_eq!(p("TRUE && False"), "(true && false)");
        assert_eq!(p("x =?= UNDEFINED"), "(x =?= UNDEFINED)");
    }

    #[test]
    fn string_literals() {
        assert_eq!(p("Name == \"slot1@n1\""), "(Name == \"slot1@n1\")");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("1 +").is_err());
        assert!(parse("(1 + 2").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("MY.").is_err());
        assert!(parse("&& a").is_err());
    }

    #[test]
    fn deep_nesting_parses() {
        let mut s = String::new();
        for _ in 0..100 {
            s.push('(');
        }
        s.push('1');
        for _ in 0..100 {
            s.push(')');
        }
        assert_eq!(p(&s), "1");
    }
}
