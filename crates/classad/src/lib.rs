//! # phishare-classad — a miniature ClassAd language
//!
//! HTCondor's matchmaking is built on *classified advertisements*
//! (ClassAds): attribute → expression maps that jobs and machines publish,
//! plus an expression language used for `Requirements` and `Rank`
//! (paper §II-D). This crate implements the subset the scheduling stack
//! needs, from scratch:
//!
//! * [`Value`] — integers, floats, booleans, strings and `UNDEFINED`, with
//!   ClassAd-style three-valued logic;
//! * [`lexer`] / [`parser`] — a Pratt expression parser for the operator set
//!   `|| && == != =?= =!= < <= > >= + - * / !` with parentheses;
//! * [`eval`] — evaluation against a `MY` ad and an optional `TARGET` ad,
//!   with bare attribute names resolving MY-first-then-TARGET as in Condor;
//! * [`ClassAd`] — the attribute map, plus two-sided
//!   [`matches`](ClassAd::matches) and `Rank`-based ordering used by the
//!   negotiator.
//!
//! Attribute names are case-insensitive, as in HTCondor.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ad;
pub mod adparse;
pub mod ast;
pub mod builtins;
pub mod compiled;
pub mod eval;
pub mod lexer;
pub mod parser;
pub mod value;

pub use ad::ClassAd;
pub use adparse::parse_ad;
pub use ast::{BinOp, Expr, UnOp};
pub use compiled::{CompiledReq, Guard, GuardOp, PinEq};
pub use eval::eval;
pub use parser::{parse, ParseError};
pub use value::Value;
