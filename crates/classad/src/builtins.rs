//! Builtin functions of the ClassAd language.
//!
//! The subset HTCondor submit files commonly use. All functions are total:
//! wrong arity or argument types yield `UNDEFINED`, never an error — ads are
//! untrusted input to the negotiator.

use crate::value::Value;

/// Evaluate builtin `name` (case-insensitive) over already-evaluated
/// arguments. Unknown names yield `UNDEFINED`.
pub fn call(name: &str, args: &[Value]) -> Value {
    match name.to_ascii_lowercase().as_str() {
        "isundefined" => match args {
            [v] => Value::Bool(v.is_undefined()),
            _ => Value::Undefined,
        },
        "ifthenelse" => match args {
            [c, t, e] => match c {
                Value::Bool(true) => t.clone(),
                Value::Bool(false) => e.clone(),
                _ => Value::Undefined,
            },
            _ => Value::Undefined,
        },
        "min" => fold_numeric(args, f64::min),
        "max" => fold_numeric(args, f64::max),
        "floor" => map_numeric(args, f64::floor).map_int(),
        "ceiling" => map_numeric(args, f64::ceil).map_int(),
        "round" => map_numeric(args, f64::round).map_int(),
        "abs" => match args {
            [Value::Int(i)] => Value::Int(i.abs()),
            [v] => match v.as_f64() {
                Some(x) => Value::Float(x.abs()),
                None => Value::Undefined,
            },
            _ => Value::Undefined,
        },
        "int" => match args {
            [Value::Int(i)] => Value::Int(*i),
            [Value::Float(x)] => Value::Int(*x as i64),
            [Value::Str(s)] => s
                .trim()
                .parse::<i64>()
                .map(Value::Int)
                .unwrap_or(Value::Undefined),
            [Value::Bool(b)] => Value::Int(*b as i64),
            _ => Value::Undefined,
        },
        "real" => match args {
            [v] => v.as_f64().map(Value::Float).unwrap_or(Value::Undefined),
            _ => Value::Undefined,
        },
        "strcat" => {
            let mut out = String::new();
            for a in args {
                match a {
                    Value::Str(s) => out.push_str(s),
                    Value::Int(i) => out.push_str(&i.to_string()),
                    Value::Float(x) => out.push_str(&x.to_string()),
                    Value::Bool(b) => out.push_str(&b.to_string()),
                    Value::Undefined => return Value::Undefined,
                }
            }
            Value::Str(out)
        }
        "tolower" => map_str(args, |s| s.to_ascii_lowercase()),
        "toupper" => map_str(args, |s| s.to_ascii_uppercase()),
        "size" => match args {
            [Value::Str(s)] => Value::Int(s.len() as i64),
            _ => Value::Undefined,
        },
        "pow" => match args {
            [a, b] => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => Value::Float(x.powf(y)),
                _ => Value::Undefined,
            },
            _ => Value::Undefined,
        },
        _ => Value::Undefined,
    }
}

/// Numeric fold over ≥1 arguments; integral result stays integral.
fn fold_numeric(args: &[Value], f: fn(f64, f64) -> f64) -> Value {
    if args.is_empty() {
        return Value::Undefined;
    }
    let all_int = args.iter().all(|v| matches!(v, Value::Int(_)));
    let mut acc: Option<f64> = None;
    for v in args {
        let x = match v.as_f64() {
            Some(x) => x,
            None => return Value::Undefined,
        };
        acc = Some(match acc {
            None => x,
            Some(a) => f(a, x),
        });
    }
    let result = acc.expect("non-empty args");
    if all_int {
        Value::Int(result as i64)
    } else {
        Value::Float(result)
    }
}

struct Mapped(Value);

impl Mapped {
    /// Collapse a float result that is integral into an `Int` (HTCondor's
    /// floor/ceiling/round return integers).
    fn map_int(self) -> Value {
        match self.0 {
            Value::Float(x) => Value::Int(x as i64),
            other => other,
        }
    }
}

fn map_numeric(args: &[Value], f: fn(f64) -> f64) -> Mapped {
    Mapped(match args {
        [v] => match v.as_f64() {
            Some(x) => Value::Float(f(x)),
            None => Value::Undefined,
        },
        _ => Value::Undefined,
    })
}

fn map_str(args: &[Value], f: impl Fn(&str) -> String) -> Value {
    match args {
        [Value::Str(s)] => Value::Str(f(s)),
        _ => Value::Undefined,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn i(x: i64) -> Value {
        Value::Int(x)
    }
    fn f(x: f64) -> Value {
        Value::Float(x)
    }
    fn s(x: &str) -> Value {
        Value::Str(x.into())
    }

    #[test]
    fn min_max_preserve_integrality() {
        assert_eq!(call("min", &[i(3), i(7)]), i(3));
        assert_eq!(call("MAX", &[i(3), i(7)]), i(7)); // case-insensitive
        assert_eq!(call("min", &[i(3), f(2.5)]), f(2.5));
        assert_eq!(call("max", &[i(1), i(2), i(3)]), i(3)); // variadic
        assert_eq!(call("min", &[]), Value::Undefined);
        assert_eq!(call("min", &[s("x")]), Value::Undefined);
    }

    #[test]
    fn rounding_family() {
        assert_eq!(call("floor", &[f(2.9)]), i(2));
        assert_eq!(call("ceiling", &[f(2.1)]), i(3));
        assert_eq!(call("round", &[f(2.5)]), i(3));
        assert_eq!(call("abs", &[i(-4)]), i(4));
        assert_eq!(call("abs", &[f(-4.5)]), f(4.5));
    }

    #[test]
    fn conversions() {
        assert_eq!(call("int", &[f(3.9)]), i(3));
        assert_eq!(call("int", &[s(" 42 ")]), i(42));
        assert_eq!(call("int", &[s("nope")]), Value::Undefined);
        assert_eq!(call("int", &[Value::Bool(true)]), i(1));
        assert_eq!(call("real", &[i(2)]), f(2.0));
    }

    #[test]
    fn string_functions() {
        assert_eq!(
            call("strcat", &[s("slot"), i(1), s("@node"), i(3)]),
            s("slot1@node3")
        );
        assert_eq!(
            call("strcat", &[s("a"), Value::Undefined]),
            Value::Undefined
        );
        assert_eq!(call("toLower", &[s("ABC")]), s("abc"));
        assert_eq!(call("toUpper", &[s("abc")]), s("ABC"));
        assert_eq!(call("size", &[s("hello")]), i(5));
    }

    #[test]
    fn conditionals_and_predicates() {
        assert_eq!(call("isUndefined", &[Value::Undefined]), Value::Bool(true));
        assert_eq!(call("isUndefined", &[i(0)]), Value::Bool(false));
        assert_eq!(call("ifThenElse", &[Value::Bool(true), i(1), i(2)]), i(1));
        assert_eq!(call("ifThenElse", &[Value::Bool(false), i(1), i(2)]), i(2));
        assert_eq!(
            call("ifThenElse", &[Value::Undefined, i(1), i(2)]),
            Value::Undefined
        );
    }

    #[test]
    fn unknown_functions_are_undefined() {
        assert_eq!(call("noSuchFn", &[i(1)]), Value::Undefined);
        assert_eq!(call("pow", &[i(2), i(10)]), f(1024.0));
    }
}
