//! ClassAd values and their coercion rules.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A ClassAd value.
///
/// `Undefined` arises from referencing a missing attribute; it propagates
/// through arithmetic and comparisons, and participates in three-valued
/// logic (`false && UNDEFINED == false`, `true || UNDEFINED == true`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Boolean.
    Bool(bool),
    /// String (compared case-insensitively by `==`, as in HTCondor).
    Str(String),
    /// The UNDEFINED value.
    Undefined,
}

impl Value {
    /// Coerce to a float for arithmetic, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Truthiness for `Requirements` evaluation: only `Bool(true)` matches;
    /// `UNDEFINED` and non-booleans do not (HTCondor's matchmaking rule).
    pub fn is_true(&self) -> bool {
        matches!(self, Value::Bool(true))
    }

    /// True when this is [`Value::Undefined`].
    pub fn is_undefined(&self) -> bool {
        matches!(self, Value::Undefined)
    }

    /// ClassAd equality (`==`): numeric comparison across Int/Float,
    /// case-insensitive string comparison, `Undefined` if types mismatch or
    /// either side is undefined.
    pub fn classad_eq(&self, other: &Value) -> Value {
        match (self, other) {
            (Value::Undefined, _) | (_, Value::Undefined) => Value::Undefined,
            (Value::Bool(a), Value::Bool(b)) => Value::Bool(a == b),
            (Value::Str(a), Value::Str(b)) => Value::Bool(a.eq_ignore_ascii_case(b)),
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => Value::Bool(x == y),
                _ => Value::Undefined,
            },
        }
    }

    /// The `=?=` ("is") operator: total, never UNDEFINED; `UNDEFINED =?=
    /// UNDEFINED` is true; mismatched types are false; strings compare
    /// case-sensitively.
    pub fn identical(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Undefined, Value::Undefined) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a == b,
            _ => false,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Undefined => write!(f, "UNDEFINED"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Int(v as i64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness_is_strict() {
        assert!(Value::Bool(true).is_true());
        assert!(!Value::Bool(false).is_true());
        assert!(!Value::Int(1).is_true());
        assert!(!Value::Undefined.is_true());
    }

    #[test]
    fn equality_coerces_numerics() {
        assert_eq!(
            Value::Int(2).classad_eq(&Value::Float(2.0)),
            Value::Bool(true)
        );
        assert_eq!(Value::Int(2).classad_eq(&Value::Int(3)), Value::Bool(false));
    }

    #[test]
    fn equality_on_strings_is_case_insensitive() {
        assert_eq!(
            Value::from("slot1@Node3").classad_eq(&Value::from("SLOT1@node3")),
            Value::Bool(true)
        );
    }

    #[test]
    fn equality_with_undefined_is_undefined() {
        assert_eq!(
            Value::Undefined.classad_eq(&Value::Int(1)),
            Value::Undefined
        );
        assert_eq!(
            Value::Int(1).classad_eq(&Value::from("x")),
            Value::Undefined
        );
    }

    #[test]
    fn identity_operator_is_total() {
        assert!(Value::Undefined.identical(&Value::Undefined));
        assert!(!Value::Undefined.identical(&Value::Int(0)));
        assert!(Value::from("a").identical(&Value::from("a")));
        assert!(!Value::from("a").identical(&Value::from("A"))); // case-sensitive
        assert!(!Value::Int(2).identical(&Value::Float(2.0))); // type-strict
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Int(3).to_string(), "3");
        assert_eq!(Value::Undefined.to_string(), "UNDEFINED");
        assert_eq!(Value::from("hi").to_string(), "\"hi\"");
    }
}
