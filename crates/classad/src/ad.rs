//! The ClassAd itself: a case-insensitive attribute map with matchmaking.

use crate::ast::Expr;
use crate::eval::eval;
use crate::parser::{parse, ParseError};
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Attribute name of the match predicate.
pub const REQUIREMENTS: &str = "Requirements";
/// Attribute name of the preference (ranking) expression.
pub const RANK: &str = "Rank";

/// A classified advertisement: an attribute → value map (attribute names are
/// case-insensitive), where `Requirements` and `Rank` hold *expressions*
/// stored as strings and parsed on demand.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ClassAd {
    attrs: BTreeMap<String, Value>,
    /// Parsed expression attributes (`Requirements`, `Rank`), kept separate
    /// because they evaluate lazily against a TARGET.
    exprs: BTreeMap<String, String>,
}

impl ClassAd {
    /// Create an empty ad.
    pub fn new() -> Self {
        ClassAd::default()
    }

    /// Insert (or replace) an attribute value.
    pub fn insert(&mut self, name: &str, value: impl Into<Value>) {
        self.attrs.insert(name.to_ascii_lowercase(), value.into());
    }

    /// Insert (or replace) an expression attribute such as `Requirements`.
    /// The expression is validated now so malformed submit files fail fast.
    pub fn insert_expr(&mut self, name: &str, expr: &str) -> Result<(), ParseError> {
        parse(expr)?;
        self.exprs.insert(name.to_ascii_lowercase(), expr.to_string());
        Ok(())
    }

    /// Look up a value attribute (case-insensitive).
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.attrs.get(&name.to_ascii_lowercase())
    }

    /// Look up an expression attribute's source text.
    pub fn get_expr(&self, name: &str) -> Option<&str> {
        self.exprs.get(&name.to_ascii_lowercase()).map(|s| s.as_str())
    }

    /// Remove an attribute (value or expression). Returns true if present.
    pub fn remove(&mut self, name: &str) -> bool {
        let k = name.to_ascii_lowercase();
        self.attrs.remove(&k).is_some() | self.exprs.remove(&k).is_some()
    }

    /// Number of attributes (values + expressions).
    pub fn len(&self) -> usize {
        self.attrs.len() + self.exprs.len()
    }

    /// True when the ad has no attributes.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty() && self.exprs.is_empty()
    }

    /// Parse and return this ad's expression attribute `name`.
    fn parsed_expr(&self, name: &str) -> Option<Expr> {
        self.get_expr(name)
            .map(|src| parse(src).expect("insert_expr validated this expression"))
    }

    /// Evaluate this ad's `Requirements` against `target`. An absent
    /// `Requirements` accepts everything (HTCondor defaults it to true).
    pub fn requirements_satisfied(&self, target: &ClassAd) -> bool {
        match self.parsed_expr(REQUIREMENTS) {
            None => true,
            Some(e) => eval(&e, self, Some(target)).is_true(),
        }
    }

    /// Two-sided matchmaking: both ads' `Requirements` must accept the other
    /// (paper §II-D: jobs state requirements about machines *and* machines
    /// about jobs).
    pub fn matches(&self, other: &ClassAd) -> bool {
        self.requirements_satisfied(other) && other.requirements_satisfied(self)
    }

    /// Evaluate this ad's `Rank` against `target`; higher is better.
    /// Missing or non-numeric ranks count as 0 (HTCondor's default).
    pub fn rank(&self, target: &ClassAd) -> f64 {
        match self.parsed_expr(RANK) {
            None => 0.0,
            Some(e) => eval(&e, self, Some(target)).as_f64().unwrap_or(0.0),
        }
    }
}

impl fmt::Display for ClassAd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "[")?;
        for (k, v) in &self.attrs {
            writeln!(f, "  {k} = {v};")?;
        }
        for (k, e) in &self.exprs {
            writeln!(f, "  {k} = {e};")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> ClassAd {
        let mut ad = ClassAd::new();
        ad.insert("Name", "slot1@node1");
        ad.insert("PhiDevices", 1u64);
        ad.insert("PhiMemory", 7680u64);
        ad.insert_expr(
            REQUIREMENTS,
            "TARGET.RequestPhiMemory <= MY.PhiMemory",
        )
        .unwrap();
        ad
    }

    fn job(mem: u64) -> ClassAd {
        let mut ad = ClassAd::new();
        ad.insert("RequestPhiMemory", mem);
        ad.insert_expr(REQUIREMENTS, "TARGET.PhiDevices >= 1").unwrap();
        ad
    }

    #[test]
    fn attribute_names_are_case_insensitive() {
        let mut ad = ClassAd::new();
        ad.insert("PhiMemory", 100u64);
        assert_eq!(ad.get("phimemory"), Some(&Value::Int(100)));
        assert_eq!(ad.get("PHIMEMORY"), Some(&Value::Int(100)));
        ad.insert("PHIMEMORY", 200u64);
        assert_eq!(ad.len(), 1);
        assert_eq!(ad.get("PhiMemory"), Some(&Value::Int(200)));
    }

    #[test]
    fn two_sided_matchmaking() {
        assert!(machine().matches(&job(1024)));
        assert!(!machine().matches(&job(80_000))); // machine rejects
        let mut philess = machine();
        philess.insert("PhiDevices", 0u64);
        assert!(!philess.matches(&job(1024))); // job rejects
    }

    #[test]
    fn missing_requirements_accepts_everything() {
        let ad = ClassAd::new();
        assert!(ad.requirements_satisfied(&ClassAd::new()));
    }

    #[test]
    fn undefined_requirements_do_not_match() {
        let mut ad = ClassAd::new();
        ad.insert_expr(REQUIREMENTS, "TARGET.NoSuchAttr >= 1").unwrap();
        assert!(!ad.requirements_satisfied(&ClassAd::new()));
    }

    #[test]
    fn malformed_expressions_rejected_at_insert() {
        let mut ad = ClassAd::new();
        assert!(ad.insert_expr(REQUIREMENTS, "1 +").is_err());
        assert!(ad.get_expr(REQUIREMENTS).is_none());
    }

    #[test]
    fn rank_orders_candidates() {
        let mut ad = ClassAd::new();
        ad.insert_expr(RANK, "TARGET.PhiMemory").unwrap();
        let mut small = ClassAd::new();
        small.insert("PhiMemory", 1000u64);
        let mut big = ClassAd::new();
        big.insert("PhiMemory", 7680u64);
        assert!(ad.rank(&big) > ad.rank(&small));
        assert_eq!(ClassAd::new().rank(&big), 0.0);
    }

    #[test]
    fn remove_and_len() {
        let mut ad = machine();
        let n = ad.len();
        assert!(ad.remove("Name"));
        assert!(!ad.remove("Name"));
        assert_eq!(ad.len(), n - 1);
        assert!(ad.remove(REQUIREMENTS));
        assert!(!ad.is_empty());
    }

    #[test]
    fn display_contains_attributes() {
        let s = machine().to_string();
        assert!(s.contains("phimemory = 7680"));
        assert!(s.contains("requirements"));
    }
}
