//! The ClassAd itself: a case-insensitive attribute map with matchmaking.

use crate::ast::Expr;
use crate::eval::eval;
use crate::parser::{parse, ParseError};
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Attribute name of the match predicate.
pub const REQUIREMENTS: &str = "Requirements";
/// Attribute name of the preference (ranking) expression.
pub const RANK: &str = "Rank";

/// An expression attribute: the submit-file source text plus its AST,
/// parsed exactly once at insertion. Negotiation touches every (job, slot)
/// pair each cycle, so re-parsing per evaluation (the original design) was
/// the dominant matchmaking cost.
#[derive(Debug, Clone, PartialEq)]
struct CachedExpr {
    src: String,
    parsed: Expr,
}

/// A classified advertisement: an attribute → value map (attribute names are
/// case-insensitive), where `Requirements` and `Rank` hold *expressions*
/// parsed at insertion time and evaluated lazily against a TARGET.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ClassAd {
    attrs: BTreeMap<String, Value>,
    /// Expression attributes (`Requirements`, `Rank`), kept separate
    /// because they evaluate lazily against a TARGET.
    exprs: BTreeMap<String, CachedExpr>,
}

/// Canonical (lower-cased) lookup into a keys-are-lowercase map without
/// allocating when the caller's name is already lower-case — the common case
/// on the negotiation hot path, where compiled guards and the collector's
/// attribute handles store canonical names.
fn canonical_get<'a, V>(map: &'a BTreeMap<String, V>, name: &str) -> Option<&'a V> {
    if name.bytes().any(|b| b.is_ascii_uppercase()) {
        map.get(&name.to_ascii_lowercase())
    } else {
        map.get(name)
    }
}

impl ClassAd {
    /// Create an empty ad.
    pub fn new() -> Self {
        ClassAd::default()
    }

    /// Insert (or replace) an attribute value. Replacing through an
    /// already-lower-case name (the hot-path handles) reuses the stored key
    /// instead of allocating a new one.
    pub fn insert(&mut self, name: &str, value: impl Into<Value>) {
        let value = value.into();
        if !name.bytes().any(|b| b.is_ascii_uppercase()) {
            if let Some(slot) = self.attrs.get_mut(name) {
                *slot = value;
                return;
            }
            self.attrs.insert(name.to_string(), value);
        } else {
            self.attrs.insert(name.to_ascii_lowercase(), value);
        }
    }

    /// Insert (or replace) an expression attribute such as `Requirements`.
    /// The expression is parsed now, so malformed submit files fail fast and
    /// later evaluations reuse the AST instead of re-parsing.
    pub fn insert_expr(&mut self, name: &str, expr: &str) -> Result<(), ParseError> {
        let parsed = parse(expr)?;
        self.exprs.insert(
            name.to_ascii_lowercase(),
            CachedExpr {
                src: expr.to_string(),
                parsed,
            },
        );
        Ok(())
    }

    /// Look up a value attribute (case-insensitive).
    pub fn get(&self, name: &str) -> Option<&Value> {
        canonical_get(&self.attrs, name)
    }

    /// Look up an expression attribute's source text.
    pub fn get_expr(&self, name: &str) -> Option<&str> {
        canonical_get(&self.exprs, name).map(|e| e.src.as_str())
    }

    /// Look up an expression attribute's parsed AST (no re-parse).
    pub fn parsed_expr(&self, name: &str) -> Option<&Expr> {
        canonical_get(&self.exprs, name).map(|e| &e.parsed)
    }

    /// Remove an attribute (value or expression). Returns true if present.
    pub fn remove(&mut self, name: &str) -> bool {
        let k = name.to_ascii_lowercase();
        self.attrs.remove(&k).is_some() | self.exprs.remove(&k).is_some()
    }

    /// Number of attributes (values + expressions).
    pub fn len(&self) -> usize {
        self.attrs.len() + self.exprs.len()
    }

    /// True when the ad has no attributes.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty() && self.exprs.is_empty()
    }

    /// Evaluate this ad's `Requirements` against `target`. An absent
    /// `Requirements` accepts everything (HTCondor defaults it to true).
    pub fn requirements_satisfied(&self, target: &ClassAd) -> bool {
        match self.parsed_expr(REQUIREMENTS) {
            None => true,
            Some(e) => eval(e, self, Some(target)).is_true(),
        }
    }

    /// Two-sided matchmaking: both ads' `Requirements` must accept the other
    /// (paper §II-D: jobs state requirements about machines *and* machines
    /// about jobs).
    pub fn matches(&self, other: &ClassAd) -> bool {
        self.requirements_satisfied(other) && other.requirements_satisfied(self)
    }

    /// Evaluate this ad's `Rank` against `target`; higher is better.
    /// Missing or non-numeric ranks count as 0 (HTCondor's default).
    pub fn rank(&self, target: &ClassAd) -> f64 {
        match self.parsed_expr(RANK) {
            None => 0.0,
            Some(e) => eval(e, self, Some(target)).as_f64().unwrap_or(0.0),
        }
    }
}

// Serialization keeps the original wire shape — expressions as their source
// strings — so the parse cache stays an internal detail. Deserialization
// re-validates each expression, exactly like `insert_expr`.
impl Serialize for ClassAd {
    fn to_value(&self) -> serde::Value {
        let mut exprs = BTreeMap::new();
        for (k, e) in &self.exprs {
            exprs.insert(k.clone(), serde::Value::Str(e.src.clone()));
        }
        let mut obj = BTreeMap::new();
        obj.insert("attrs".to_string(), self.attrs.to_value());
        obj.insert("exprs".to_string(), serde::Value::Object(exprs));
        serde::Value::Object(obj)
    }
}

impl Deserialize for ClassAd {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| serde::Error::custom("ClassAd: expected an object"))?;
        let attrs_v = obj
            .get("attrs")
            .ok_or_else(|| serde::Error::custom("ClassAd: missing `attrs`"))?;
        let attrs = BTreeMap::<String, Value>::from_value(attrs_v)?;
        let exprs_v = obj
            .get("exprs")
            .ok_or_else(|| serde::Error::custom("ClassAd: missing `exprs`"))?;
        let sources = BTreeMap::<String, String>::from_value(exprs_v)?;
        let mut exprs = BTreeMap::new();
        for (k, src) in sources {
            let parsed = parse(&src)
                .map_err(|e| serde::Error::custom(format!("ClassAd expression `{k}`: {e}")))?;
            exprs.insert(k, CachedExpr { src, parsed });
        }
        Ok(ClassAd { attrs, exprs })
    }
}

impl fmt::Display for ClassAd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "[")?;
        for (k, v) in &self.attrs {
            writeln!(f, "  {k} = {v};")?;
        }
        for (k, e) in &self.exprs {
            writeln!(f, "  {k} = {};", e.src)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> ClassAd {
        let mut ad = ClassAd::new();
        ad.insert("Name", "slot1@node1");
        ad.insert("PhiDevices", 1u64);
        ad.insert("PhiMemory", 7680u64);
        ad.insert_expr(REQUIREMENTS, "TARGET.RequestPhiMemory <= MY.PhiMemory")
            .unwrap();
        ad
    }

    fn job(mem: u64) -> ClassAd {
        let mut ad = ClassAd::new();
        ad.insert("RequestPhiMemory", mem);
        ad.insert_expr(REQUIREMENTS, "TARGET.PhiDevices >= 1")
            .unwrap();
        ad
    }

    #[test]
    fn attribute_names_are_case_insensitive() {
        let mut ad = ClassAd::new();
        ad.insert("PhiMemory", 100u64);
        assert_eq!(ad.get("phimemory"), Some(&Value::Int(100)));
        assert_eq!(ad.get("PHIMEMORY"), Some(&Value::Int(100)));
        ad.insert("PHIMEMORY", 200u64);
        assert_eq!(ad.len(), 1);
        assert_eq!(ad.get("PhiMemory"), Some(&Value::Int(200)));
    }

    #[test]
    fn lower_case_names_hit_the_no_alloc_path_with_identical_semantics() {
        let mut ad = ClassAd::new();
        ad.insert("phimemory", 100u64); // lower-case insert
        ad.insert("PhiMemory", 200u64); // mixed-case replace, same attribute
        assert_eq!(ad.len(), 1);
        assert_eq!(ad.get("phimemory"), Some(&Value::Int(200)));
        ad.insert("phimemory", 300u64); // lower-case replace reuses the key
        assert_eq!(ad.len(), 1);
        assert_eq!(ad.get("PHIMEMORY"), Some(&Value::Int(300)));
        ad.insert_expr("Rank", "TARGET.PhiMemory").unwrap();
        assert!(ad.parsed_expr("rank").is_some());
        assert_eq!(ad.get_expr("rank"), ad.get_expr("RANK"));
    }

    #[test]
    fn two_sided_matchmaking() {
        assert!(machine().matches(&job(1024)));
        assert!(!machine().matches(&job(80_000))); // machine rejects
        let mut philess = machine();
        philess.insert("PhiDevices", 0u64);
        assert!(!philess.matches(&job(1024))); // job rejects
    }

    #[test]
    fn missing_requirements_accepts_everything() {
        let ad = ClassAd::new();
        assert!(ad.requirements_satisfied(&ClassAd::new()));
    }

    #[test]
    fn undefined_requirements_do_not_match() {
        let mut ad = ClassAd::new();
        ad.insert_expr(REQUIREMENTS, "TARGET.NoSuchAttr >= 1")
            .unwrap();
        assert!(!ad.requirements_satisfied(&ClassAd::new()));
    }

    #[test]
    fn malformed_expressions_rejected_at_insert() {
        let mut ad = ClassAd::new();
        assert!(ad.insert_expr(REQUIREMENTS, "1 +").is_err());
        assert!(ad.get_expr(REQUIREMENTS).is_none());
    }

    #[test]
    fn rank_orders_candidates() {
        let mut ad = ClassAd::new();
        ad.insert_expr(RANK, "TARGET.PhiMemory").unwrap();
        let mut small = ClassAd::new();
        small.insert("PhiMemory", 1000u64);
        let mut big = ClassAd::new();
        big.insert("PhiMemory", 7680u64);
        assert!(ad.rank(&big) > ad.rank(&small));
        assert_eq!(ClassAd::new().rank(&big), 0.0);
    }

    #[test]
    fn remove_and_len() {
        let mut ad = machine();
        let n = ad.len();
        assert!(ad.remove("Name"));
        assert!(!ad.remove("Name"));
        assert_eq!(ad.len(), n - 1);
        assert!(ad.remove(REQUIREMENTS));
        assert!(!ad.is_empty());
    }

    #[test]
    fn display_contains_attributes() {
        let s = machine().to_string();
        assert!(s.contains("phimemory = 7680"));
        assert!(s.contains("requirements"));
    }

    #[test]
    fn expressions_are_parsed_once_and_reused() {
        let ad = machine();
        let first = ad.parsed_expr(REQUIREMENTS).unwrap() as *const Expr;
        let second = ad.parsed_expr("requirements").unwrap() as *const Expr;
        assert_eq!(first, second, "parsed AST is cached, not rebuilt");
        assert_eq!(
            ad.get_expr(REQUIREMENTS),
            Some("TARGET.RequestPhiMemory <= MY.PhiMemory")
        );
    }

    #[test]
    fn serde_round_trip_preserves_source_text() {
        let ad = machine();
        let json = serde_json::to_string(&ad).unwrap();
        assert!(json.contains("TARGET.RequestPhiMemory <= MY.PhiMemory"));
        assert!(
            !json.contains("parsed"),
            "AST cache must not leak into JSON"
        );
        let back: ClassAd = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ad);
        assert!(back.parsed_expr(REQUIREMENTS).is_some());
    }

    #[test]
    fn serde_rejects_malformed_expressions() {
        let bad = r#"{"attrs": {}, "exprs": {"requirements": "1 +"}}"#;
        assert!(serde_json::from_str::<ClassAd>(bad).is_err());
    }
}
