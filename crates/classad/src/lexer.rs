//! Tokenizer for ClassAd expressions.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (quotes and escapes already processed).
    Str(String),
    /// Identifier or keyword (`true` / `false` / `undefined` are resolved by
    /// the parser).
    Ident(String),
    /// `.` (scope separator in `MY.attr`).
    Dot,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `||`
    OrOr,
    /// `&&`
    AndAnd,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `=?=`
    Is,
    /// `=!=`
    Isnt,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `!`
    Bang,
    /// `?` (ternary)
    Question,
    /// `:` (ternary)
    Colon,
    /// `,` (argument separator)
    Comma,
}

/// A lexing failure with byte position.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// Byte offset of the failure in the input.
    pub pos: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenize an expression string.
pub fn lex(input: &str) -> Result<Vec<Token>, LexError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            '?' => {
                tokens.push(Token::Question);
                i += 1;
            }
            ':' => {
                tokens.push(Token::Colon);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '.' if !next_is_digit(bytes, i + 1) => {
                tokens.push(Token::Dot);
                i += 1;
            }
            '+' => {
                tokens.push(Token::Plus);
                i += 1;
            }
            '-' => {
                tokens.push(Token::Minus);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '/' => {
                tokens.push(Token::Slash);
                i += 1;
            }
            '|' => {
                if bytes.get(i + 1) == Some(&b'|') {
                    tokens.push(Token::OrOr);
                    i += 2;
                } else {
                    return Err(err(i, "expected '||'"));
                }
            }
            '&' => {
                if bytes.get(i + 1) == Some(&b'&') {
                    tokens.push(Token::AndAnd);
                    i += 2;
                } else {
                    return Err(err(i, "expected '&&'"));
                }
            }
            '=' => match (bytes.get(i + 1), bytes.get(i + 2)) {
                (Some(b'='), _) => {
                    tokens.push(Token::EqEq);
                    i += 2;
                }
                (Some(b'?'), Some(b'=')) => {
                    tokens.push(Token::Is);
                    i += 3;
                }
                (Some(b'!'), Some(b'=')) => {
                    tokens.push(Token::Isnt);
                    i += 3;
                }
                _ => return Err(err(i, "expected '==', '=?=' or '=!='")),
            },
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::NotEq);
                    i += 2;
                } else {
                    tokens.push(Token::Bang);
                    i += 1;
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Le);
                    i += 2;
                } else {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Ge);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '"' => {
                let (s, next) = lex_string(input, i)?;
                tokens.push(Token::Str(s));
                i = next;
            }
            _ if c.is_ascii_digit() || (c == '.' && next_is_digit(bytes, i + 1)) => {
                let (tok, next) = lex_number(input, i)?;
                tokens.push(tok);
                i = next;
            }
            _ if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric()
                        || bytes[i] == b'_'
                        || bytes[i] == b'@')
                {
                    i += 1;
                }
                tokens.push(Token::Ident(input[start..i].to_string()));
            }
            _ => return Err(err(i, &format!("unexpected character {c:?}"))),
        }
    }
    Ok(tokens)
}

fn next_is_digit(bytes: &[u8], i: usize) -> bool {
    bytes.get(i).is_some_and(|b| (*b as char).is_ascii_digit())
}

fn err(pos: usize, message: &str) -> LexError {
    LexError {
        pos,
        message: message.to_string(),
    }
}

fn lex_string(input: &str, start: usize) -> Result<(String, usize), LexError> {
    let bytes = input.as_bytes();
    let mut s = String::new();
    let mut i = start + 1; // skip opening quote
    while i < bytes.len() {
        match bytes[i] {
            b'"' => return Ok((s, i + 1)),
            b'\\' => {
                let esc = bytes
                    .get(i + 1)
                    .ok_or_else(|| err(i, "dangling escape at end of input"))?;
                s.push(match esc {
                    b'"' => '"',
                    b'\\' => '\\',
                    b'n' => '\n',
                    b't' => '\t',
                    other => return Err(err(i, &format!("unknown escape '\\{}'", *other as char))),
                });
                i += 2;
            }
            b => {
                s.push(b as char);
                i += 1;
            }
        }
    }
    Err(err(start, "unterminated string literal"))
}

fn lex_number(input: &str, start: usize) -> Result<(Token, usize), LexError> {
    let bytes = input.as_bytes();
    let mut i = start;
    let mut saw_dot = false;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_digit() {
            i += 1;
        } else if c == '.' && !saw_dot && next_is_digit(bytes, i + 1) {
            saw_dot = true;
            i += 1;
        } else {
            break;
        }
    }
    let text = &input[start..i];
    if saw_dot {
        text.parse::<f64>()
            .map(|f| (Token::Float(f), i))
            .map_err(|e| err(start, &format!("bad float literal {text:?}: {e}")))
    } else {
        text.parse::<i64>()
            .map(|n| (Token::Int(n), i))
            .map_err(|e| err(start, &format!("bad integer literal {text:?}: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_operators_and_idents() {
        let toks = lex("MY.PhiMemory >= 1024 && Name == \"slot1@node3\"").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("MY".into()),
                Token::Dot,
                Token::Ident("PhiMemory".into()),
                Token::Ge,
                Token::Int(1024),
                Token::AndAnd,
                Token::Ident("Name".into()),
                Token::EqEq,
                Token::Str("slot1@node3".into()),
            ]
        );
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(lex("3.5").unwrap(), vec![Token::Float(3.5)]);
        assert_eq!(lex("42").unwrap(), vec![Token::Int(42)]);
        // A dot not followed by a digit is a scope separator, not a float.
        assert_eq!(
            lex("a.b").unwrap(),
            vec![
                Token::Ident("a".into()),
                Token::Dot,
                Token::Ident("b".into())
            ]
        );
    }

    #[test]
    fn lexes_identity_operators() {
        assert_eq!(lex("=?=").unwrap(), vec![Token::Is]);
        assert_eq!(lex("=!=").unwrap(), vec![Token::Isnt]);
    }

    #[test]
    fn string_escapes() {
        assert_eq!(
            lex(r#""a\"b\\c\n""#).unwrap(),
            vec![Token::Str("a\"b\\c\n".into())]
        );
    }

    #[test]
    fn errors_are_positioned() {
        let e = lex("a # b").unwrap_err();
        assert_eq!(e.pos, 2);
        assert!(lex("\"unterminated").is_err());
        assert!(lex("a | b").is_err());
        assert!(lex("a = b").is_err());
    }

    #[test]
    fn bang_vs_noteq() {
        assert_eq!(lex("!a").unwrap()[0], Token::Bang);
        assert_eq!(lex("a != b").unwrap()[1], Token::NotEq);
    }
}
