//! Expression evaluation against MY/TARGET ads.

use crate::ad::ClassAd;
use crate::ast::{BinOp, Expr, Scope, UnOp};
use crate::value::Value;

/// Evaluate `expr` with `my` as the owning ad and `target` as the candidate
/// match (absent outside matchmaking).
///
/// Bare attribute names resolve in `my` first, then `target`, then become
/// `UNDEFINED` — HTCondor's resolution order. Evaluation is total: type
/// errors produce `UNDEFINED`, never a panic, because machine ads are
/// "user input" to the negotiator.
pub fn eval(expr: &Expr, my: &ClassAd, target: Option<&ClassAd>) -> Value {
    match expr {
        Expr::Lit(v) => v.clone(),
        Expr::Attr(name) => my
            .get(name)
            .or_else(|| target.and_then(|t| t.get(name)))
            .cloned()
            .unwrap_or(Value::Undefined),
        Expr::ScopedAttr(Scope::My, name) => my.get(name).cloned().unwrap_or(Value::Undefined),
        Expr::ScopedAttr(Scope::Target, name) => target
            .and_then(|t| t.get(name))
            .cloned()
            .unwrap_or(Value::Undefined),
        Expr::Unary(op, e) => eval_unary(*op, eval(e, my, target)),
        Expr::Binary(op, l, r) => eval_binary(*op, l, r, my, target),
        Expr::Ternary(c, t, e) => match eval(c, my, target) {
            Value::Bool(true) => eval(t, my, target),
            Value::Bool(false) => eval(e, my, target),
            _ => Value::Undefined,
        },
        Expr::Call(name, args) => {
            let values: Vec<Value> = args.iter().map(|a| eval(a, my, target)).collect();
            crate::builtins::call(name, &values)
        }
    }
}

fn eval_unary(op: UnOp, v: Value) -> Value {
    match (op, v) {
        (UnOp::Not, Value::Bool(b)) => Value::Bool(!b),
        (UnOp::Not, _) => Value::Undefined,
        (UnOp::Neg, Value::Int(i)) => Value::Int(-i),
        (UnOp::Neg, Value::Float(f)) => Value::Float(-f),
        (UnOp::Neg, _) => Value::Undefined,
    }
}

fn eval_binary(op: BinOp, l: &Expr, r: &Expr, my: &ClassAd, target: Option<&ClassAd>) -> Value {
    // Short-circuiting three-valued logic first.
    match op {
        BinOp::And => {
            let lv = eval(l, my, target);
            if lv == Value::Bool(false) {
                return Value::Bool(false);
            }
            let rv = eval(r, my, target);
            return match (lv, rv) {
                (Value::Bool(true), Value::Bool(b)) => Value::Bool(b),
                (_, Value::Bool(false)) => Value::Bool(false),
                _ => Value::Undefined,
            };
        }
        BinOp::Or => {
            let lv = eval(l, my, target);
            if lv == Value::Bool(true) {
                return Value::Bool(true);
            }
            let rv = eval(r, my, target);
            return match (lv, rv) {
                (Value::Bool(false), Value::Bool(b)) => Value::Bool(b),
                (_, Value::Bool(true)) => Value::Bool(true),
                _ => Value::Undefined,
            };
        }
        _ => {}
    }

    let lv = eval(l, my, target);
    let rv = eval(r, my, target);
    match op {
        BinOp::Eq => lv.classad_eq(&rv),
        BinOp::Ne => match lv.classad_eq(&rv) {
            Value::Bool(b) => Value::Bool(!b),
            other => other,
        },
        BinOp::Is => Value::Bool(lv.identical(&rv)),
        BinOp::Isnt => Value::Bool(!lv.identical(&rv)),
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => compare(op, &lv, &rv),
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => arith(op, &lv, &rv),
        BinOp::And | BinOp::Or => unreachable!("handled above"),
    }
}

fn compare(op: BinOp, l: &Value, r: &Value) -> Value {
    // String ordering (case-insensitive), else numeric.
    if let (Value::Str(a), Value::Str(b)) = (l, r) {
        let (a, b) = (a.to_ascii_lowercase(), b.to_ascii_lowercase());
        let res = match op {
            BinOp::Lt => a < b,
            BinOp::Le => a <= b,
            BinOp::Gt => a > b,
            BinOp::Ge => a >= b,
            _ => unreachable!(),
        };
        return Value::Bool(res);
    }
    match (l.as_f64(), r.as_f64()) {
        (Some(a), Some(b)) => Value::Bool(match op {
            BinOp::Lt => a < b,
            BinOp::Le => a <= b,
            BinOp::Gt => a > b,
            BinOp::Ge => a >= b,
            _ => unreachable!(),
        }),
        _ => Value::Undefined,
    }
}

fn arith(op: BinOp, l: &Value, r: &Value) -> Value {
    // Integer arithmetic stays integral when both sides are ints (except
    // division by zero, which is UNDEFINED rather than a crash).
    if let (Value::Int(a), Value::Int(b)) = (l, r) {
        return match op {
            BinOp::Add => Value::Int(a.wrapping_add(*b)),
            BinOp::Sub => Value::Int(a.wrapping_sub(*b)),
            BinOp::Mul => Value::Int(a.wrapping_mul(*b)),
            BinOp::Div => {
                if *b == 0 {
                    Value::Undefined
                } else {
                    Value::Int(a / b)
                }
            }
            _ => unreachable!(),
        };
    }
    match (l.as_f64(), r.as_f64()) {
        (Some(a), Some(b)) => match op {
            BinOp::Add => Value::Float(a + b),
            BinOp::Sub => Value::Float(a - b),
            BinOp::Mul => Value::Float(a * b),
            BinOp::Div => {
                if b == 0.0 {
                    Value::Undefined
                } else {
                    Value::Float(a / b)
                }
            }
            _ => unreachable!(),
        },
        _ => Value::Undefined,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn my() -> ClassAd {
        let mut ad = ClassAd::new();
        ad.insert("PhiMemory", 7680u64);
        ad.insert("PhiDevices", 1u64);
        ad.insert("Name", "slot1@node3");
        ad
    }

    fn job() -> ClassAd {
        let mut ad = ClassAd::new();
        ad.insert("RequestPhiMemory", 1024u64);
        ad.insert("RequestPhiThreads", 120u32);
        ad
    }

    fn ev(s: &str) -> Value {
        eval(&parse(s).unwrap(), &my(), Some(&job()))
    }

    #[test]
    fn bare_attrs_resolve_my_then_target() {
        assert_eq!(ev("PhiMemory"), Value::Int(7680));
        assert_eq!(ev("RequestPhiMemory"), Value::Int(1024)); // from TARGET
        assert_eq!(ev("Nonexistent"), Value::Undefined);
    }

    #[test]
    fn scoped_attrs_do_not_fall_through() {
        assert_eq!(ev("MY.RequestPhiMemory"), Value::Undefined);
        assert_eq!(ev("TARGET.RequestPhiMemory"), Value::Int(1024));
    }

    #[test]
    fn matchmaking_expression() {
        assert_eq!(
            ev("TARGET.RequestPhiMemory <= MY.PhiMemory && PhiDevices > 0"),
            Value::Bool(true)
        );
        assert_eq!(ev("RequestPhiMemory > 9999"), Value::Bool(false));
    }

    #[test]
    fn name_pinning_expression() {
        // The condor_qedit pinning the paper's scheduler performs (§IV-D1).
        assert_eq!(ev("Name == \"slot1@node3\""), Value::Bool(true));
        assert_eq!(ev("Name == \"SLOT1@NODE3\""), Value::Bool(true));
        assert_eq!(ev("Name == \"slot1@node4\""), Value::Bool(false));
    }

    #[test]
    fn three_valued_logic() {
        assert_eq!(ev("Missing && false"), Value::Bool(false));
        assert_eq!(ev("false && Missing"), Value::Bool(false));
        assert_eq!(ev("Missing && true"), Value::Undefined);
        assert_eq!(ev("Missing || true"), Value::Bool(true));
        assert_eq!(ev("Missing || false"), Value::Undefined);
        assert_eq!(ev("!Missing"), Value::Undefined);
    }

    #[test]
    fn identity_handles_undefined() {
        assert_eq!(ev("Missing =?= UNDEFINED"), Value::Bool(true));
        assert_eq!(ev("PhiMemory =?= UNDEFINED"), Value::Bool(false));
        assert_eq!(ev("Missing =!= UNDEFINED"), Value::Bool(false));
    }

    #[test]
    fn arithmetic() {
        assert_eq!(ev("2 + 3 * 4"), Value::Int(14));
        assert_eq!(ev("7 / 2"), Value::Int(3));
        assert_eq!(ev("7.0 / 2"), Value::Float(3.5));
        assert_eq!(ev("1 / 0"), Value::Undefined);
        assert_eq!(ev("1.0 / 0.0"), Value::Undefined);
        assert_eq!(ev("-PhiDevices"), Value::Int(-1));
    }

    #[test]
    fn type_errors_are_undefined_not_panics() {
        assert_eq!(ev("\"abc\" + 1"), Value::Undefined);
        assert_eq!(ev("true < 1"), Value::Undefined);
        assert_eq!(ev("!5"), Value::Undefined);
        assert_eq!(ev("-\"s\""), Value::Undefined);
    }

    #[test]
    fn string_ordering() {
        assert_eq!(ev("\"abc\" < \"abd\""), Value::Bool(true));
        assert_eq!(ev("\"ABC\" >= \"abc\""), Value::Bool(true));
    }

    #[test]
    fn eval_without_target() {
        let e = parse("TARGET.x =?= UNDEFINED").unwrap();
        assert_eq!(eval(&e, &my(), None), Value::Bool(true));
    }

    #[test]
    fn ternary_evaluates_lazily_by_condition() {
        assert_eq!(ev("PhiDevices > 0 ? 100 : 200"), Value::Int(100));
        assert_eq!(ev("PhiDevices > 5 ? 100 : 200"), Value::Int(200));
        assert_eq!(ev("Missing ? 1 : 2"), Value::Undefined);
        // Right-associative nesting.
        assert_eq!(ev("false ? 1 : true ? 2 : 3"), Value::Int(2));
    }

    #[test]
    fn function_calls_evaluate_arguments() {
        assert_eq!(ev("min(PhiMemory, 1000)"), Value::Int(1000));
        assert_eq!(ev("max(RequestPhiThreads, 240)"), Value::Int(240));
        assert_eq!(ev("isUndefined(Missing)"), Value::Bool(true));
        assert_eq!(
            ev("strcat(\"slot\", 1, \"@\", \"node\", 3)"),
            Value::Str("slot1@node3".into())
        );
        assert_eq!(ev("noSuchFn(1, 2)"), Value::Undefined);
    }

    #[test]
    fn functions_compose_with_operators() {
        // A realistic submit-file idiom: request the smaller of the job's
        // ask and the machine's free memory, conditionally.
        assert_eq!(
            ev("ifThenElse(PhiDevices >= 1, min(RequestPhiMemory, PhiMemory), 0) == 1024"),
            Value::Bool(true)
        );
    }

    #[test]
    fn ternary_in_requirements_round_trips_display() {
        let e = parse("a ? min(b, 2) : c").unwrap();
        assert_eq!(e.to_string(), "(a ? min(b, 2) : c)");
    }
}
