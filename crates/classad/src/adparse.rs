//! Parsing complete ads from HTCondor's bracketed text form:
//!
//! ```text
//! [
//!   Name = "slot1@node3";
//!   PhiMemory = 7680;
//!   Requirements = TARGET.RequestPhiMemory <= MY.PhiMemory;
//! ]
//! ```
//!
//! Attributes whose right-hand side is a *literal* become value attributes;
//! anything else is stored as an expression attribute (evaluated lazily
//! against a TARGET, like `Requirements`/`Rank`). This matches how this
//! crate's [`ClassAd`] splits storage, and round-trips with its `Display`
//! output.

use crate::ad::ClassAd;
use crate::ast::Expr;
use crate::parser::{parse, ParseError};
use crate::value::Value;
use std::fmt;

/// A failure while parsing an ad, with the offending attribute when known.
#[derive(Debug, Clone, PartialEq)]
pub struct AdParseError {
    /// Attribute being parsed (empty for structural errors).
    pub attribute: String,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for AdParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.attribute.is_empty() {
            write!(f, "ad parse error: {}", self.message)
        } else {
            write!(
                f,
                "ad parse error at attribute {:?}: {}",
                self.attribute, self.message
            )
        }
    }
}

impl std::error::Error for AdParseError {}

fn structural(message: impl Into<String>) -> AdParseError {
    AdParseError {
        attribute: String::new(),
        message: message.into(),
    }
}

/// Parse one complete ad from its bracketed text form.
pub fn parse_ad(input: &str) -> Result<ClassAd, AdParseError> {
    let trimmed = input.trim();
    let body = trimmed
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| structural("an ad must be enclosed in [ ... ]"))?;

    let mut ad = ClassAd::new();
    for raw in split_statements(body) {
        let stmt = raw.trim();
        if stmt.is_empty() {
            continue;
        }
        let (name, rhs) = split_assignment(stmt).ok_or_else(|| AdParseError {
            attribute: stmt.chars().take(24).collect(),
            message: "expected `name = expression`".into(),
        })?;
        if !is_attr_name(name) {
            return Err(AdParseError {
                attribute: name.into(),
                message: "invalid attribute name".into(),
            });
        }
        let expr = parse(rhs).map_err(|e: ParseError| AdParseError {
            attribute: name.into(),
            message: e.to_string(),
        })?;
        match expr {
            // Literal right-hand sides become plain values.
            Expr::Lit(v) => ad.insert(name, v),
            Expr::Unary(crate::ast::UnOp::Neg, inner) => match *inner {
                Expr::Lit(Value::Int(i)) => ad.insert(name, Value::Int(-i)),
                Expr::Lit(Value::Float(x)) => ad.insert(name, Value::Float(-x)),
                _ => {
                    ad.insert_expr(name, rhs).map_err(|e| AdParseError {
                        attribute: name.into(),
                        message: e.to_string(),
                    })?;
                }
            },
            _ => {
                ad.insert_expr(name, rhs).map_err(|e| AdParseError {
                    attribute: name.into(),
                    message: e.to_string(),
                })?;
            }
        }
    }
    Ok(ad)
}

/// Split the ad body on `;` separators, respecting string literals (a `;`
/// inside quotes does not separate statements).
fn split_statements(body: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut current = String::new();
    let mut in_string = false;
    let mut escaped = false;
    for c in body.chars() {
        match c {
            '"' if !escaped => {
                in_string = !in_string;
                current.push(c);
            }
            '\\' if in_string && !escaped => {
                escaped = true;
                current.push(c);
                continue;
            }
            ';' if !in_string => {
                out.push(std::mem::take(&mut current));
            }
            _ => current.push(c),
        }
        escaped = false;
    }
    if !current.trim().is_empty() {
        out.push(current);
    }
    out
}

/// Split `name = rhs` on the first top-level `=` that is not part of
/// `==`, `=?=`, `=!=`, `<=`, `>=` or `!=`.
fn split_assignment(stmt: &str) -> Option<(&str, &str)> {
    let bytes = stmt.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'=' {
            continue;
        }
        let prev = i.checked_sub(1).map(|j| bytes[j]);
        let next = bytes.get(i + 1);
        let part_of_operator = matches!(prev, Some(b'<') | Some(b'>') | Some(b'!') | Some(b'='))
            || matches!(next, Some(b'=') | Some(b'?') | Some(b'!'));
        if part_of_operator {
            continue;
        }
        let name = stmt[..i].trim();
        let rhs = stmt[i + 1..].trim();
        if name.is_empty() || rhs.is_empty() {
            return None;
        }
        return Some((name, rhs));
    }
    None
}

fn is_attr_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .next()
            .map(|c| c.is_ascii_alphabetic() || c == '_')
            .unwrap_or(false)
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    const MACHINE: &str = r#"[
        Name = "slot1@node3";
        Machine = "node3";
        PhiDevices = 1;
        PhiFreeMemory = 7680;
        LoadAvg = 0.25;
        Healthy = true;
        Requirements = TARGET.RequestPhiMemory <= MY.PhiFreeMemory;
        Rank = 10 - TARGET.RequestPhiThreads / 24;
    ]"#;

    #[test]
    fn parses_a_machine_ad() {
        let ad = parse_ad(MACHINE).unwrap();
        assert_eq!(ad.get("Name"), Some(&Value::Str("slot1@node3".into())));
        assert_eq!(ad.get("PhiDevices"), Some(&Value::Int(1)));
        assert_eq!(ad.get("LoadAvg"), Some(&Value::Float(0.25)));
        assert_eq!(ad.get("Healthy"), Some(&Value::Bool(true)));
        assert!(ad.get_expr("Requirements").is_some());
        assert!(ad.get_expr("Rank").is_some());
    }

    #[test]
    fn parsed_ads_do_matchmaking() {
        let machine = parse_ad(MACHINE).unwrap();
        let job = parse_ad(
            r#"[ RequestPhiMemory = 1024; RequestPhiThreads = 120;
                 Requirements = TARGET.PhiDevices >= 1; ]"#,
        )
        .unwrap();
        assert!(machine.matches(&job));
        let greedy = parse_ad(r#"[ RequestPhiMemory = 99999; ]"#).unwrap();
        assert!(!machine.requirements_satisfied(&greedy));
        // Rank evaluates against the parsed job.
        assert!((machine.rank(&job) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn display_round_trips() {
        let ad = parse_ad(MACHINE).unwrap();
        let again = parse_ad(&ad.to_string()).unwrap();
        assert_eq!(ad, again);
    }

    #[test]
    fn negative_literals_are_values() {
        let ad = parse_ad("[ x = -3; y = -2.5; ]").unwrap();
        assert_eq!(ad.get("x"), Some(&Value::Int(-3)));
        assert_eq!(ad.get("y"), Some(&Value::Float(-2.5)));
    }

    #[test]
    fn semicolons_inside_strings_do_not_split() {
        let ad = parse_ad(r#"[ note = "a;b;c"; n = 1; ]"#).unwrap();
        assert_eq!(ad.get("note"), Some(&Value::Str("a;b;c".into())));
        assert_eq!(ad.get("n"), Some(&Value::Int(1)));
    }

    #[test]
    fn comparison_operators_are_not_assignments() {
        let ad = parse_ad("[ ok = a <= b; strict = x =?= UNDEFINED; ne = p != q; ]").unwrap();
        assert!(ad.get_expr("ok").is_some());
        assert!(ad.get_expr("strict").is_some());
        assert!(ad.get_expr("ne").is_some());
    }

    #[test]
    fn structural_errors_are_reported() {
        assert!(parse_ad("no brackets").is_err());
        let e = parse_ad("[ 9bad = 1; ]").unwrap_err();
        assert_eq!(e.attribute, "9bad");
        let e = parse_ad("[ x = ; ]").unwrap_err();
        assert!(e.message.contains("name = expression"));
        let e = parse_ad("[ x = 1 + ; ]").unwrap_err();
        assert_eq!(e.attribute, "x");
    }

    #[test]
    fn empty_ad_is_fine() {
        let ad = parse_ad("[ ]").unwrap();
        assert!(ad.is_empty());
        let ad = parse_ad("[]").unwrap();
        assert!(ad.is_empty());
    }
}
