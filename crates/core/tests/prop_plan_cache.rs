//! Differential oracle for the planning fast path (`prop_plan_cache`).
//!
//! [`KnapsackScheduler`] in [`PlannerMode::Fast`] (preprocessed instances,
//! content-addressed solve memo, speculative parallel warm-up) must emit
//! **bit-identical pins** to [`PlannerMode::NaiveSerial`] (the seed's serial
//! per-device DP) on arbitrary multi-cycle scheduler lifetimes: plans,
//! partial dispatches, completions freeing capacity, jobs vanishing
//! (`on_job_gone`) and device resets snapping views back — the PR 3 fault
//! layer's footprint on the scheduler interface.

use phishare_core::{
    ClusterScheduler, DeviceView, KnapsackConfig, KnapsackScheduler, KnapsackVariant, PendingJob,
    PlannerMode,
};
use phishare_sim::DetRng;
use phishare_workload::JobId;
use proptest::prelude::*;

/// Declared envelopes drawn from a small class set — Table I-style heavy
/// duplication, which is what multiplicity truncation and cross-device
/// cache sharing feed on. A few odd sizes keep the heterogeneous paths hot.
const CLASSES: [(u64, u32); 7] = [
    (500, 40),
    (500, 40),
    (1000, 60),
    (2000, 120),
    (3000, 240),
    (250, 16),
    (1730, 92),
];

fn arb_variant() -> impl Strategy<Value = KnapsackVariant> {
    prop_oneof![
        Just(KnapsackVariant::TwoD),
        Just(KnapsackVariant::OneDFiltered),
    ]
}

/// One resident (dispatched) job's footprint on a device.
struct Resident {
    mem_mb: u64,
    threads: u32,
    node: u32,
    device: u32,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn prop_plan_cache_fast_planner_is_bit_identical_to_naive(
        seed in 0u64..10_000,
        n_jobs in 8usize..80,
        n_devs in 1u32..6,
        window in prop_oneof![Just(8usize), Just(32), Just(256)],
        variant in arb_variant(),
        cycles in 4usize..14,
        overcommit in prop_oneof![Just(1.0f64), Just(1.5)],
    ) {
        let base = KnapsackConfig {
            variant,
            window,
            thread_overcommit: overcommit,
            ..KnapsackConfig::default()
        };
        let mut fast = KnapsackScheduler::new(base);
        let mut naive = KnapsackScheduler::new(KnapsackConfig {
            planner: PlannerMode::NaiveSerial,
            ..base
        });

        let mut rng = DetRng::substream(seed, "prop-plan-cache");
        let mut pending: Vec<PendingJob> = (0..n_jobs)
            .map(|i| {
                let (mem_mb, threads) = *rng.choose(&CLASSES);
                PendingJob {
                    id: JobId(i as u64),
                    mem_mb,
                    threads,
                    nominal_secs: 30.0,
                }
            })
            .collect();
        let full_mb = 7680u64;
        let mut devices: Vec<DeviceView> = (1..=n_devs)
            .map(|node| DeviceView {
                node,
                device: 0,
                free_declared_mb: full_mb,
                resident_threads: 0,
            })
            .collect();
        let mut residents: Vec<Resident> = Vec::new();

        for cycle in 0..cycles {
            let p_fast = fast.plan(&pending, &devices);
            let p_naive = naive.plan(&pending, &devices);
            prop_assert_eq!(&p_fast, &p_naive, "pins diverged at cycle {}", cycle);
            prop_assert_eq!(
                fast.outstanding_pins(),
                naive.outstanding_pins(),
                "outstanding accounting diverged at cycle {}",
                cycle
            );

            // Dispatch a random subset of this cycle's pins; the rest stay
            // outstanding (Condor hasn't matched them yet).
            for pin in &p_fast {
                if rng.chance(0.6) {
                    fast.on_dispatched(pin.job);
                    naive.on_dispatched(pin.job);
                    let at = pending.iter().position(|j| j.id == pin.job).unwrap();
                    let spec = pending.remove(at);
                    let dev = devices
                        .iter_mut()
                        .find(|d| d.node == pin.node && d.device == pin.device)
                        .unwrap();
                    dev.free_declared_mb = dev.free_declared_mb.saturating_sub(spec.mem_mb);
                    dev.resident_threads += spec.threads;
                    residents.push(Resident {
                        mem_mb: spec.mem_mb,
                        threads: spec.threads,
                        node: pin.node,
                        device: pin.device,
                    });
                }
            }

            // Random completions free capacity again.
            while !residents.is_empty() && rng.chance(0.5) {
                let r = residents.swap_remove(rng.index(residents.len()));
                let dev = devices
                    .iter_mut()
                    .find(|d| d.node == r.node && d.device == r.device)
                    .unwrap();
                dev.free_declared_mb += r.mem_mb;
                dev.resident_threads -= r.threads;
            }

            // Occasionally a job evaporates entirely (removal / retirement).
            if !pending.is_empty() && rng.chance(0.2) {
                let gone = pending.swap_remove(rng.index(pending.len()));
                fast.on_job_gone(gone.id);
                naive.on_job_gone(gone.id);
            }

            // Device reset (PR 3 fault layer): the card flushes — residents
            // die, the view snaps back to full, and the runtime pulls
            // not-yet-dispatched pins back via on_job_gone.
            if rng.chance(0.15) {
                let victim = rng.index(devices.len());
                let (node, device) = (devices[victim].node, devices[victim].device);
                devices[victim].free_declared_mb = full_mb;
                devices[victim].resident_threads = 0;
                residents.retain(|r| !(r.node == node && r.device == device));
                for pin in p_fast.iter().filter(|p| p.node == node && p.device == device) {
                    fast.on_job_gone(pin.job);
                    naive.on_job_gone(pin.job);
                    if let Some(at) = pending.iter().position(|j| j.id == pin.job) {
                        pending.remove(at);
                    }
                }
            }
        }
    }
}
