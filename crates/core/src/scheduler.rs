//! Cluster-level schedulers: the knapsack packer (MCCK) and the random
//! baseline (MCC).

use phishare_knapsack::{
    solve_1d_filtered_with, solve_2d_with, Capacity, DpScratch, PackItem, ValueFunction,
};
use phishare_sim::DetRng;
use phishare_workload::JobId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A pending job as the cluster scheduler sees it: only the declared
/// envelope (the paper's explicit assumption — no execution times, no
/// profiles, §IV-B).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PendingJob {
    /// The job.
    pub id: JobId,
    /// Declared device memory, MB.
    pub mem_mb: u64,
    /// Declared threads.
    pub threads: u32,
    /// Nominal execution time in seconds. The paper's schedulers must NOT
    /// rely on this ("users usually cannot specify them accurately",
    /// §IV-B) — it exists for the clairvoyant upper-bound comparator
    /// ([`ClairvoyantLpt`]), which quantifies how much MCCK loses by not
    /// knowing it.
    pub nominal_secs: f64,
}

/// One coprocessor's free envelope as the scheduler sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceView {
    /// The node hosting the device.
    pub node: u32,
    /// Device index on the node.
    pub device: u32,
    /// Declared memory not yet allocated to resident jobs, MB.
    pub free_declared_mb: u64,
    /// Declared threads of currently resident jobs (used only by the strict
    /// `count_resident_threads` ablation).
    pub resident_threads: u32,
}

/// A placement decision: pin `job` to a specific device.
///
/// Condor-side the pin is expressed at node granularity (`Machine == …`),
/// but the packing is per *device* (each knapsack is one coprocessor,
/// §IV-C) — the runtime must honor the planned device, or an order-dependent
/// re-placement at match time can break a feasible multi-device plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pin {
    /// The job to pin.
    pub job: JobId,
    /// The destination node.
    pub node: u32,
    /// The destination device on that node.
    pub device: u32,
}

/// Common interface for cluster-level schedulers (MCC's random selection and
/// MCCK's knapsack packing).
pub trait ClusterScheduler {
    /// Compute placements for `pending` jobs onto `devices`.
    ///
    /// The scheduler must account for its own *outstanding* pins — jobs it
    /// placed earlier that Condor has not dispatched yet — since those jobs
    /// still look `Idle` in the queue and the device views do not reflect
    /// them.
    fn plan(&mut self, pending: &[PendingJob], devices: &[DeviceView]) -> Vec<Pin>;

    /// A previously pinned job was dispatched (its memory now shows up in
    /// the device view).
    fn on_dispatched(&mut self, job: JobId);

    /// A job left the system without dispatching (killed / removed).
    fn on_job_gone(&mut self, job: JobId);

    /// Scheduler name for reports.
    fn name(&self) -> &'static str;
}

/// Which DP formulation MCCK uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum KnapsackVariant {
    /// 2-D DP over (memory, threads) — thread-feasible by construction.
    #[default]
    TwoD,
    /// Paper-literal 1-D memory DP with thread repair (ablation).
    OneDFiltered,
}

/// MCCK configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KnapsackConfig {
    /// Job value function (paper Eq. 1 by default).
    pub value_fn: ValueFunction,
    /// Memory discretization, MB (paper §IV-C: 50 MB).
    pub granularity_mb: u64,
    /// Hardware thread limit per device.
    pub thread_limit: u32,
    /// DP formulation.
    pub variant: KnapsackVariant,
    /// At most this many FIFO-pending jobs are considered per packing round,
    /// bounding each DP at `O(window · W · T)`.
    pub window: usize,
    /// Subtract resident jobs' declared threads from the per-round thread
    /// budget. `true` (the default) matches the paper's constraint that
    /// "the number of threads of **all concurrent jobs** must not exceed
    /// the number of hardware threads" — it keeps every device's declared
    /// thread sum within hardware, which is exactly why the paper calls
    /// COSMIC "not absolutely necessary" under MCCK. `false` applies the
    /// value-zero rule only to each round's newly packed set, deferring
    /// thread excess to COSMIC's run-time serialization (ablation).
    pub count_resident_threads: bool,
    /// Factor applied to the device thread budget when
    /// `count_resident_threads` is on. Declared thread counts are
    /// *per-offload maxima*, not sustained usage — "for many jobs,
    /// performance saturates at a lower level of parallelization" (paper
    /// footnote 1), and jobs spend their host phases using zero device
    /// threads. Budgeting declarations at face value strands capacity;
    /// a modest overcommit recovers it, and COSMIC serializes the rare
    /// transient excess. 1.0 = strict.
    pub thread_overcommit: f64,
}

impl Default for KnapsackConfig {
    fn default() -> Self {
        KnapsackConfig {
            value_fn: ValueFunction::PaperQuadratic,
            granularity_mb: 50,
            thread_limit: 240,
            variant: KnapsackVariant::TwoD,
            window: 256,
            count_resident_threads: true,
            thread_overcommit: 1.5,
        }
    }
}

/// The paper's knapsack-based sharing-aware scheduler (Fig. 4).
#[derive(Debug)]
pub struct KnapsackScheduler {
    cfg: KnapsackConfig,
    /// Jobs pinned but not yet dispatched, with their destination node and
    /// declared envelope (so per-node free capacity can be adjusted).
    outstanding: BTreeMap<JobId, OutstandingPin>,
    /// DP buffers reused across packing rounds (one knapsack per device per
    /// round; the table shapes repeat, so reuse eliminates the allocations).
    scratch: DpScratch,
}

#[derive(Debug, Clone, Copy)]
struct OutstandingPin {
    node: u32,
    device: u32,
    mem_mb: u64,
    threads: u32,
}

impl KnapsackScheduler {
    /// Create a scheduler with the given configuration.
    pub fn new(cfg: KnapsackConfig) -> Self {
        assert!(cfg.window > 0, "candidate window must be positive");
        assert!(cfg.granularity_mb > 0, "granularity must be positive");
        KnapsackScheduler {
            cfg,
            outstanding: BTreeMap::new(),
            scratch: DpScratch::default(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &KnapsackConfig {
        &self.cfg
    }

    /// Number of pins awaiting dispatch.
    pub fn outstanding_pins(&self) -> usize {
        self.outstanding.len()
    }

    /// Outstanding (memory, threads) already pinned to one device.
    fn outstanding_on_device(&self, node: u32, device: u32) -> (u64, u32) {
        self.outstanding
            .values()
            .filter(|p| p.node == node && p.device == device)
            .fold((0, 0), |(m, t), p| (m + p.mem_mb, t + p.threads))
    }

    /// Pack one device's knapsack from the pending jobs; returns the pins.
    /// This is the "create knapsack: capacity = free memory in D" step of
    /// Fig. 4, invoked per device initially and per completion thereafter.
    pub fn plan_device(&mut self, pending: &[PendingJob], device: &DeviceView) -> Vec<Pin> {
        let (out_mem, out_threads) = self.outstanding_on_device(device.node, device.device);
        let free = device.free_declared_mb.saturating_sub(out_mem);
        if free == 0 {
            return Vec::new();
        }
        let thread_budget = if self.cfg.count_resident_threads {
            let total = (self.cfg.thread_limit as f64 * self.cfg.thread_overcommit).round() as u32;
            total.saturating_sub(device.resident_threads + out_threads)
        } else {
            self.cfg.thread_limit
        };
        let cap = Capacity {
            mem_mb: free,
            granularity_mb: self.cfg.granularity_mb,
            thread_limit: thread_budget,
            // Eq. (1) always normalizes by the hardware thread count, even
            // when the strict ablation shrinks the packing budget.
            value_ref_threads: self.cfg.thread_limit,
        };

        // FIFO window of candidates that are not already pinned elsewhere.
        let candidates: Vec<(usize, &PendingJob)> = pending
            .iter()
            .filter(|j| !self.outstanding.contains_key(&j.id))
            .take(self.cfg.window)
            .enumerate()
            .collect();
        if candidates.is_empty() {
            return Vec::new();
        }
        let items: Vec<PackItem> = candidates
            .iter()
            .map(|(i, j)| PackItem {
                index: *i,
                mem_mb: j.mem_mb,
                threads: j.threads,
            })
            .collect();

        let packing = match self.cfg.variant {
            KnapsackVariant::TwoD => {
                solve_2d_with(&items, &cap, self.cfg.value_fn, &mut self.scratch)
            }
            KnapsackVariant::OneDFiltered => {
                solve_1d_filtered_with(&items, &cap, self.cfg.value_fn, &mut self.scratch)
            }
        };

        packing
            .selected
            .iter()
            .map(|&idx| {
                let job = candidates[idx].1;
                self.outstanding.insert(
                    job.id,
                    OutstandingPin {
                        node: device.node,
                        device: device.device,
                        mem_mb: job.mem_mb,
                        threads: job.threads,
                    },
                );
                Pin {
                    job: job.id,
                    node: device.node,
                    device: device.device,
                }
            })
            .collect()
    }
}

impl ClusterScheduler for KnapsackScheduler {
    fn plan(&mut self, pending: &[PendingJob], devices: &[DeviceView]) -> Vec<Pin> {
        // Greedy at the cluster level: fill one knapsack after another
        // (Fig. 4). Devices with more free memory are packed first so the
        // fullest knapsacks get the pick of the queue.
        let mut order: Vec<&DeviceView> = devices.iter().collect();
        order.sort_by(|a, b| {
            b.free_declared_mb
                .cmp(&a.free_declared_mb)
                .then(a.node.cmp(&b.node))
                .then(a.device.cmp(&b.device))
        });
        let mut pins = Vec::new();
        for device in order {
            pins.extend(self.plan_device(pending, device));
        }
        pins
    }

    fn on_dispatched(&mut self, job: JobId) {
        self.outstanding.remove(&job);
    }

    fn on_job_gone(&mut self, job: JobId) {
        self.outstanding.remove(&job);
    }

    fn name(&self) -> &'static str {
        "knapsack"
    }
}

/// The MCC baseline: arbitrary (random) job selection at the cluster level,
/// constrained only by declared-memory fit; COSMIC cleans up the rest at the
/// node level (§V: "jobs are packed arbitrarily to Xeon Phi coprocessors").
#[derive(Debug)]
pub struct RandomScheduler {
    rng: DetRng,
    outstanding: BTreeMap<JobId, (u32, u32, u64)>, // node, device, declared memory
}

impl RandomScheduler {
    /// Create the random scheduler with its own RNG substream.
    pub fn new(seed: u64) -> Self {
        RandomScheduler {
            rng: DetRng::substream(seed, "mcc-random-scheduler"),
            outstanding: BTreeMap::new(),
        }
    }

    fn outstanding_on_device(&self, node: u32, device: u32) -> u64 {
        self.outstanding
            .values()
            .filter(|(n, d, _)| *n == node && *d == device)
            .map(|(_, _, mem)| mem)
            .sum()
    }
}

impl ClusterScheduler for RandomScheduler {
    fn plan(&mut self, pending: &[PendingJob], devices: &[DeviceView]) -> Vec<Pin> {
        // Remaining free capacity per device, net of outstanding pins.
        let mut free: Vec<(u32, u32, u64)> = devices
            .iter()
            .map(|d| {
                (
                    d.node,
                    d.device,
                    d.free_declared_mb
                        .saturating_sub(self.outstanding_on_device(d.node, d.device)),
                )
            })
            .collect();

        // Visit pending jobs in random order, placing each on a random
        // device with room.
        let mut order: Vec<usize> = (0..pending.len()).collect();
        self.rng.shuffle(&mut order);
        let mut pins = Vec::new();
        for idx in order {
            let job = &pending[idx];
            if self.outstanding.contains_key(&job.id) {
                continue;
            }
            let fits: Vec<usize> = free
                .iter()
                .enumerate()
                .filter(|(_, (_, _, f))| *f >= job.mem_mb)
                .map(|(i, _)| i)
                .collect();
            if fits.is_empty() {
                continue;
            }
            let pick = *self.rng.choose(&fits);
            free[pick].2 -= job.mem_mb;
            let (node, device, _) = free[pick];
            self.outstanding.insert(job.id, (node, device, job.mem_mb));
            pins.push(Pin {
                job: job.id,
                node,
                device,
            });
        }
        pins
    }

    fn on_dispatched(&mut self, job: JobId) {
        self.outstanding.remove(&job);
    }

    fn on_job_gone(&mut self, job: JobId) {
        self.outstanding.remove(&job);
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

/// A clairvoyant comparator that *does* know job execution times — the
/// information the paper explicitly refuses to assume (§IV-B). It packs
/// longest-processing-time-first (LPT) into each device round, subject to
/// the same memory and thread budgets as MCCK. Comparing MCCK against this
/// upper-bound heuristic quantifies the cost of scheduling blind.
#[derive(Debug)]
pub struct ClairvoyantLpt {
    cfg: KnapsackConfig,
    outstanding: BTreeMap<JobId, OutstandingPin>,
}

impl ClairvoyantLpt {
    /// Create the clairvoyant scheduler (shares MCCK's budget config).
    pub fn new(cfg: KnapsackConfig) -> Self {
        ClairvoyantLpt {
            cfg,
            outstanding: BTreeMap::new(),
        }
    }

    fn outstanding_on_device(&self, node: u32, device: u32) -> (u64, u32) {
        self.outstanding
            .values()
            .filter(|p| p.node == node && p.device == device)
            .fold((0, 0), |(m, t), p| (m + p.mem_mb, t + p.threads))
    }

    /// Greedy LPT packing of one device round.
    pub fn plan_device(&mut self, pending: &[PendingJob], device: &DeviceView) -> Vec<Pin> {
        let (out_mem, out_threads) = self.outstanding_on_device(device.node, device.device);
        let mut free = device.free_declared_mb.saturating_sub(out_mem);
        if free == 0 {
            return Vec::new();
        }
        let total = (self.cfg.thread_limit as f64 * self.cfg.thread_overcommit).round() as u32;
        let mut threads_left = if self.cfg.count_resident_threads {
            total.saturating_sub(device.resident_threads + out_threads)
        } else {
            self.cfg.thread_limit
        };

        let mut candidates: Vec<&PendingJob> = pending
            .iter()
            .filter(|j| !self.outstanding.contains_key(&j.id))
            .take(self.cfg.window)
            .collect();
        candidates.sort_by(|a, b| {
            b.nominal_secs
                .partial_cmp(&a.nominal_secs)
                .expect("finite durations")
                .then(a.id.cmp(&b.id))
        });

        let mut pins = Vec::new();
        for job in candidates {
            if job.mem_mb <= free && job.threads <= threads_left {
                free -= job.mem_mb;
                threads_left -= job.threads;
                self.outstanding.insert(
                    job.id,
                    OutstandingPin {
                        node: device.node,
                        device: device.device,
                        mem_mb: job.mem_mb,
                        threads: job.threads,
                    },
                );
                pins.push(Pin {
                    job: job.id,
                    node: device.node,
                    device: device.device,
                });
            }
        }
        pins
    }
}

impl ClusterScheduler for ClairvoyantLpt {
    fn plan(&mut self, pending: &[PendingJob], devices: &[DeviceView]) -> Vec<Pin> {
        let mut order: Vec<&DeviceView> = devices.iter().collect();
        order.sort_by(|a, b| {
            b.free_declared_mb
                .cmp(&a.free_declared_mb)
                .then(a.node.cmp(&b.node))
                .then(a.device.cmp(&b.device))
        });
        let mut pins = Vec::new();
        for device in order {
            pins.extend(self.plan_device(pending, device));
        }
        pins
    }

    fn on_dispatched(&mut self, job: JobId) {
        self.outstanding.remove(&job);
    }

    fn on_job_gone(&mut self, job: JobId) {
        self.outstanding.remove(&job);
    }

    fn name(&self) -> &'static str {
        "clairvoyant-lpt"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: u64, mem_mb: u64, threads: u32) -> PendingJob {
        PendingJob {
            id: JobId(id),
            mem_mb,
            threads,
            nominal_secs: 30.0,
        }
    }

    fn timed_job(id: u64, mem_mb: u64, threads: u32, nominal_secs: f64) -> PendingJob {
        PendingJob {
            id: JobId(id),
            mem_mb,
            threads,
            nominal_secs,
        }
    }

    fn dev(node: u32, free: u64) -> DeviceView {
        DeviceView {
            node,
            device: 0,
            free_declared_mb: free,
            resident_threads: 0,
        }
    }

    #[test]
    fn knapsack_packs_for_concurrency() {
        let mut s = KnapsackScheduler::new(KnapsackConfig::default());
        let pending = vec![
            job(0, 4000, 240),
            job(1, 2000, 80),
            job(2, 2000, 80),
            job(3, 3000, 80),
        ];
        let pins = s.plan(&pending, &[dev(1, 7680)]);
        let pinned: Vec<u64> = pins.iter().map(|p| p.job.raw()).collect();
        assert_eq!(pinned, vec![1, 2, 3]);
        assert!(pins.iter().all(|p| p.node == 1));
    }

    #[test]
    fn no_job_is_pinned_twice_across_devices() {
        let mut s = KnapsackScheduler::new(KnapsackConfig::default());
        let pending: Vec<PendingJob> = (0..6).map(|i| job(i, 3000, 60)).collect();
        let pins = s.plan(&pending, &[dev(1, 7680), dev(2, 7680)]);
        let mut ids: Vec<u64> = pins.iter().map(|p| p.job.raw()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), pins.len());
        // 2 jobs of 3000 MB per 7680 MB device → 4 total.
        assert_eq!(pins.len(), 4);
        assert_eq!(s.outstanding_pins(), 4);
    }

    #[test]
    fn outstanding_pins_shrink_capacity_until_dispatch() {
        let mut s = KnapsackScheduler::new(KnapsackConfig::default());
        let pending = vec![job(0, 4000, 60)];
        let pins = s.plan(&pending, &[dev(1, 7680)]);
        assert_eq!(pins.len(), 1);
        // Same device view (dispatch hasn't happened): a second 4000 MB job
        // must NOT be placed — only 3680 MB is really free.
        let pending2 = vec![job(0, 4000, 60), job(1, 4000, 60)];
        let pins2 = s.plan(&pending2, &[dev(1, 7680)]);
        assert!(pins2.is_empty(), "overcommitted: {pins2:?}");
        // After dispatch the view itself accounts for job 0.
        s.on_dispatched(JobId(0));
        let pins3 = s.plan(&[job(1, 4000, 60)], &[dev(1, 3680)]);
        assert!(pins3.is_empty()); // 4000 > 3680
        let pins4 = s.plan(&[job(1, 3000, 60)], &[dev(1, 3680)]);
        assert_eq!(pins4.len(), 1);
    }

    #[test]
    fn fullest_devices_pack_first() {
        let mut s = KnapsackScheduler::new(KnapsackConfig::default());
        let pending = vec![job(0, 5000, 60)];
        let pins = s.plan(&pending, &[dev(1, 2000), dev(2, 7680)]);
        assert_eq!(
            pins,
            vec![Pin {
                job: JobId(0),
                node: 2,
                device: 0
            }]
        );
    }

    #[test]
    fn window_bounds_candidates() {
        let cfg = KnapsackConfig {
            window: 2,
            ..KnapsackConfig::default()
        };
        let mut s = KnapsackScheduler::new(cfg);
        // Jobs beyond the window are invisible even though they'd fit.
        let pending: Vec<PendingJob> = (0..10).map(|i| job(i, 100, 4)).collect();
        let pins = s.plan_device(&pending, &dev(1, 7680));
        assert_eq!(pins.len(), 2);
    }

    #[test]
    fn strict_mode_respects_resident_threads() {
        let cfg = KnapsackConfig {
            thread_overcommit: 1.0,
            ..KnapsackConfig::default()
        };
        let mut s = KnapsackScheduler::new(cfg);
        let view = DeviceView {
            node: 1,
            device: 0,
            free_declared_mb: 7000,
            resident_threads: 200,
        };
        // Only 40 threads of budget remain: the 60-thread job is refused,
        // a 40-thread job packs.
        assert!(s.plan_device(&[job(0, 1000, 60)], &view).is_empty());
        assert_eq!(s.plan_device(&[job(1, 1000, 40)], &view).len(), 1);
    }

    #[test]
    fn lax_mode_ignores_resident_threads() {
        let cfg = KnapsackConfig {
            count_resident_threads: false,
            ..KnapsackConfig::default()
        };
        let mut s = KnapsackScheduler::new(cfg);
        let view = DeviceView {
            node: 1,
            device: 0,
            free_declared_mb: 7000,
            resident_threads: 240,
        };
        // Ablation behaviour: freed memory is repacked regardless of
        // resident threads; COSMIC serializes at run time.
        assert_eq!(s.plan_device(&[job(0, 1000, 240)], &view).len(), 1);
    }

    #[test]
    fn job_gone_releases_outstanding_capacity() {
        let mut s = KnapsackScheduler::new(KnapsackConfig::default());
        s.plan(&[job(0, 7000, 60)], &[dev(1, 7680)]);
        assert_eq!(s.outstanding_pins(), 1);
        s.on_job_gone(JobId(0));
        let pins = s.plan(&[job(1, 7000, 60)], &[dev(1, 7680)]);
        assert_eq!(pins.len(), 1);
    }

    #[test]
    fn random_scheduler_respects_memory() {
        let mut s = RandomScheduler::new(42);
        let pending: Vec<PendingJob> = (0..20).map(|i| job(i, 3000, 240)).collect();
        let pins = s.plan(&pending, &[dev(1, 7680), dev(2, 7680)]);
        // 2 jobs of 3000 MB fit per device.
        assert_eq!(pins.len(), 4);
        for node in [1, 2] {
            let mem: u64 = pins.iter().filter(|p| p.node == node).map(|_| 3000).sum();
            assert!(mem <= 7680);
        }
    }

    #[test]
    fn random_scheduler_is_seed_deterministic_but_random() {
        let pending: Vec<PendingJob> = (0..30).map(|i| job(i, 2000, 120)).collect();
        let devs = [dev(1, 7680), dev(2, 7680)];
        let a = RandomScheduler::new(1).plan(&pending, &devs);
        let b = RandomScheduler::new(1).plan(&pending, &devs);
        assert_eq!(a, b);
        let c = RandomScheduler::new(2).plan(&pending, &devs);
        assert_ne!(a, c, "different seeds should pick different jobs");
    }

    #[test]
    fn clairvoyant_prefers_longest_jobs() {
        let mut s = ClairvoyantLpt::new(KnapsackConfig::default());
        let pending = vec![
            timed_job(0, 3000, 60, 10.0),
            timed_job(1, 3000, 60, 50.0),
            timed_job(2, 3000, 60, 30.0),
        ];
        // Only two fit in memory: the two longest are chosen.
        let pins = s.plan(&pending, &[dev(1, 7000)]);
        let ids: Vec<u64> = pins.iter().map(|p| p.job.raw()).collect();
        assert_eq!(ids, vec![1, 2]);
    }

    #[test]
    fn clairvoyant_respects_budgets_and_outstanding() {
        let mut s = ClairvoyantLpt::new(KnapsackConfig::default());
        let pins = s.plan(&[timed_job(0, 7000, 240, 9.0)], &[dev(1, 7680)]);
        assert_eq!(pins.len(), 1);
        // Capacity is spoken for until dispatch.
        let pins2 = s.plan(
            &[timed_job(0, 7000, 240, 9.0), timed_job(1, 7000, 60, 99.0)],
            &[dev(1, 7680)],
        );
        assert!(pins2.is_empty());
        s.on_dispatched(JobId(0));
        assert_eq!(s.name(), "clairvoyant-lpt");
    }

    #[test]
    fn random_scheduler_tracks_outstanding() {
        let mut s = RandomScheduler::new(3);
        let pins = s.plan(&[job(0, 7000, 60)], &[dev(1, 7680)]);
        assert_eq!(pins.len(), 1);
        // Without dispatch, capacity is spoken for.
        let pins2 = s.plan(&[job(0, 7000, 60), job(1, 7000, 60)], &[dev(1, 7680)]);
        assert!(pins2.is_empty());
    }
}
