//! Cluster-level schedulers: the knapsack packer (MCCK) and the random
//! baseline (MCC).

use phishare_knapsack::{
    prep_1d, prep_2d, solve_1d_filtered_with, solve_2d_with, solve_prepped_1d_with,
    solve_prepped_2d_with, Capacity, DpScratch, PackItem, Prepped, ValueFunction,
};
use phishare_sim::DetRng;
use phishare_workload::JobId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, HashSet};

/// A pending job as the cluster scheduler sees it: only the declared
/// envelope (the paper's explicit assumption — no execution times, no
/// profiles, §IV-B).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PendingJob {
    /// The job.
    pub id: JobId,
    /// Declared device memory, MB.
    pub mem_mb: u64,
    /// Declared threads.
    pub threads: u32,
    /// Nominal execution time in seconds. The paper's schedulers must NOT
    /// rely on this ("users usually cannot specify them accurately",
    /// §IV-B) — it exists for the clairvoyant upper-bound comparator
    /// ([`ClairvoyantLpt`]), which quantifies how much MCCK loses by not
    /// knowing it.
    pub nominal_secs: f64,
}

/// One coprocessor's free envelope as the scheduler sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceView {
    /// The node hosting the device.
    pub node: u32,
    /// Device index on the node.
    pub device: u32,
    /// Declared memory not yet allocated to resident jobs, MB.
    pub free_declared_mb: u64,
    /// Declared threads of currently resident jobs (used only by the strict
    /// `count_resident_threads` ablation).
    pub resident_threads: u32,
}

/// A placement decision: pin `job` to a specific device.
///
/// Condor-side the pin is expressed at node granularity (`Machine == …`),
/// but the packing is per *device* (each knapsack is one coprocessor,
/// §IV-C) — the runtime must honor the planned device, or an order-dependent
/// re-placement at match time can break a feasible multi-device plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pin {
    /// The job to pin.
    pub job: JobId,
    /// The destination node.
    pub node: u32,
    /// The destination device on that node.
    pub device: u32,
}

/// Common interface for cluster-level schedulers (MCC's random selection and
/// MCCK's knapsack packing).
pub trait ClusterScheduler {
    /// Compute placements for `pending` jobs onto `devices`.
    ///
    /// The scheduler must account for its own *outstanding* pins — jobs it
    /// placed earlier that Condor has not dispatched yet — since those jobs
    /// still look `Idle` in the queue and the device views do not reflect
    /// them.
    fn plan(&mut self, pending: &[PendingJob], devices: &[DeviceView]) -> Vec<Pin>;

    /// A previously pinned job was dispatched (its memory now shows up in
    /// the device view).
    fn on_dispatched(&mut self, job: JobId);

    /// A job left the system without dispatching (killed / removed).
    fn on_job_gone(&mut self, job: JobId);

    /// Scheduler name for reports.
    fn name(&self) -> &'static str;

    /// Planning-cache counters (all zero for schedulers without a solve
    /// cache).
    fn plan_stats(&self) -> PlanStats {
        PlanStats::default()
    }
}

/// Cumulative counters for the planning fast path, surfaced through
/// cluster reports so sweeps expose planner cost.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlanStats {
    /// Per-device solves answered from the memo cache (including entries
    /// pre-solved by the speculative parallel warm-up) — no DP ran on the
    /// planning thread.
    pub cache_hits: u64,
    /// Per-device solves that ran the DP serially (and populated the
    /// cache).
    pub cache_misses: u64,
}

/// Which DP formulation MCCK uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum KnapsackVariant {
    /// 2-D DP over (memory, threads) — thread-feasible by construction.
    #[default]
    TwoD,
    /// Paper-literal 1-D memory DP with thread repair (ablation).
    OneDFiltered,
}

/// Which planning implementation MCCK runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PlannerMode {
    /// The planning fast path: fit-filtered, multiplicity-truncated
    /// instances solved through a content-addressed memo cache, with
    /// speculative parallel pre-solves of distinct cold instances.
    /// Bit-identical to [`PlannerMode::NaiveSerial`] by construction (and
    /// by differential proptest).
    #[default]
    Fast,
    /// The seed's serial per-device DP loop, retained as the differential
    /// oracle (the PR 1 / PR 2 pattern).
    NaiveSerial,
}

/// MCCK configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KnapsackConfig {
    /// Job value function (paper Eq. 1 by default).
    pub value_fn: ValueFunction,
    /// Memory discretization, MB (paper §IV-C: 50 MB).
    pub granularity_mb: u64,
    /// Hardware thread limit per device.
    pub thread_limit: u32,
    /// DP formulation.
    pub variant: KnapsackVariant,
    /// At most this many FIFO-pending jobs are considered per packing round,
    /// bounding each DP at `O(window · W · T)`.
    pub window: usize,
    /// Subtract resident jobs' declared threads from the per-round thread
    /// budget. `true` (the default) matches the paper's constraint that
    /// "the number of threads of **all concurrent jobs** must not exceed
    /// the number of hardware threads" — it keeps every device's declared
    /// thread sum within hardware, which is exactly why the paper calls
    /// COSMIC "not absolutely necessary" under MCCK. `false` applies the
    /// value-zero rule only to each round's newly packed set, deferring
    /// thread excess to COSMIC's run-time serialization (ablation).
    pub count_resident_threads: bool,
    /// Factor applied to the device thread budget when
    /// `count_resident_threads` is on. Declared thread counts are
    /// *per-offload maxima*, not sustained usage — "for many jobs,
    /// performance saturates at a lower level of parallelization" (paper
    /// footnote 1), and jobs spend their host phases using zero device
    /// threads. Budgeting declarations at face value strands capacity;
    /// a modest overcommit recovers it, and COSMIC serializes the rare
    /// transient excess. 1.0 = strict.
    pub thread_overcommit: f64,
    /// Planning implementation ([`PlannerMode::Fast`] by default;
    /// [`PlannerMode::NaiveSerial`] is the differential oracle).
    pub planner: PlannerMode,
}

impl Default for KnapsackConfig {
    fn default() -> Self {
        KnapsackConfig {
            value_fn: ValueFunction::PaperQuadratic,
            granularity_mb: 50,
            thread_limit: 240,
            variant: KnapsackVariant::TwoD,
            window: 256,
            count_resident_threads: true,
            thread_overcommit: 1.5,
            planner: PlannerMode::Fast,
        }
    }
}

/// Entries the solve cache holds before it is wholesale cleared. The cache
/// is a pure memo (values never depend on cache state), so eviction is
/// always safe — this only bounds memory on pathological workloads.
const PLAN_CACHE_CAP: usize = 4096;

/// Minimum estimated DP cell updates across the cold instances of a cycle
/// before the speculative warm-up spawns worker threads; below this the
/// serial solves are cheaper than thread startup.
const PARALLEL_CELL_FLOOR: u64 = 2_000_000;

/// Content-addressed identity of one device solve. Two solves with equal
/// keys see byte-identical DP inputs — same capacity in memory units, same
/// raw thread budget (which fixes both the thread-unit dimension and the
/// per-item thread filter), and the same ordered sequence of effective
/// `(memory units, declared threads)` items (thread units and item values
/// both derive from declared threads; the scheduler's remaining knobs are
/// fixed per instance) — so the full DP, including its FIFO tie-breaks,
/// is determined. Keys are compared in full on lookup, never by hash
/// alone, so collisions cannot smuggle in a wrong packing.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct SolveKey {
    w_max: usize,
    thread_budget: u32,
    items: Vec<(usize, u32)>,
}

/// The paper's knapsack-based sharing-aware scheduler (Fig. 4).
#[derive(Debug)]
pub struct KnapsackScheduler {
    cfg: KnapsackConfig,
    /// Jobs pinned but not yet dispatched, with their destination node and
    /// declared envelope (so per-node free capacity can be adjusted).
    outstanding: BTreeMap<JobId, OutstandingPin>,
    /// DP buffers reused across packing rounds (one knapsack per device per
    /// round; the table shapes repeat, so reuse eliminates the allocations).
    scratch: DpScratch,
    /// Memo of solved instances: [`SolveKey`] → selected positions into the
    /// prepped item list. Content-addressed, so it never goes stale: every
    /// invalidation event (dispatch, completion, fault reset, node churn)
    /// reaches the scheduler as an `on_dispatched`/`on_job_gone` call or a
    /// changed device view, both of which change the key of any affected
    /// solve rather than requiring an eviction.
    cache: HashMap<SolveKey, Vec<usize>>,
    /// Hit/miss counters for reports.
    stats: PlanStats,
}

#[derive(Debug, Clone, Copy)]
struct OutstandingPin {
    node: u32,
    device: u32,
    mem_mb: u64,
    threads: u32,
}

impl KnapsackScheduler {
    /// Create a scheduler with the given configuration.
    pub fn new(cfg: KnapsackConfig) -> Self {
        assert!(cfg.window > 0, "candidate window must be positive");
        assert!(cfg.granularity_mb > 0, "granularity must be positive");
        KnapsackScheduler {
            cfg,
            outstanding: BTreeMap::new(),
            scratch: DpScratch::default(),
            cache: HashMap::new(),
            stats: PlanStats::default(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &KnapsackConfig {
        &self.cfg
    }

    /// Number of pins awaiting dispatch.
    pub fn outstanding_pins(&self) -> usize {
        self.outstanding.len()
    }

    /// Number of memoized solves currently held.
    pub fn plan_cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Outstanding (memory, threads) already pinned to one device.
    fn outstanding_on_device(&self, node: u32, device: u32) -> (u64, u32) {
        self.outstanding
            .values()
            .filter(|p| p.node == node && p.device == device)
            .fold((0, 0), |(m, t), p| (m + p.mem_mb, t + p.threads))
    }

    /// The knapsack capacity for one device this round, net of outstanding
    /// pins; `None` when no memory is free. Shared by the naive path, the
    /// fast path and the speculative warm-up so all three see the same
    /// budget arithmetic.
    fn round_capacity(&self, device: &DeviceView) -> Option<Capacity> {
        let (out_mem, out_threads) = self.outstanding_on_device(device.node, device.device);
        let free = device.free_declared_mb.saturating_sub(out_mem);
        if free == 0 {
            return None;
        }
        let thread_budget = if self.cfg.count_resident_threads {
            let total = (self.cfg.thread_limit as f64 * self.cfg.thread_overcommit).round() as u32;
            total.saturating_sub(device.resident_threads + out_threads)
        } else {
            self.cfg.thread_limit
        };
        Some(Capacity {
            mem_mb: free,
            granularity_mb: self.cfg.granularity_mb,
            thread_limit: thread_budget,
            // Eq. (1) always normalizes by the hardware thread count, even
            // when the strict ablation shrinks the packing budget.
            value_ref_threads: self.cfg.thread_limit,
        })
    }

    /// FIFO window of candidates that are not already pinned elsewhere.
    fn window_candidates<'p>(&self, pending: &'p [PendingJob]) -> Vec<&'p PendingJob> {
        pending
            .iter()
            .filter(|j| !self.outstanding.contains_key(&j.id))
            .take(self.cfg.window)
            .collect()
    }

    fn pack_items(candidates: &[&PendingJob]) -> Vec<PackItem> {
        candidates
            .iter()
            .enumerate()
            .map(|(i, j)| PackItem {
                index: i,
                mem_mb: j.mem_mb,
                threads: j.threads,
            })
            .collect()
    }

    /// Record pins for the selected candidate positions and book them as
    /// outstanding.
    fn commit(
        &mut self,
        device: &DeviceView,
        candidates: &[&PendingJob],
        selected: &[usize],
    ) -> Vec<Pin> {
        selected
            .iter()
            .map(|&idx| {
                let job = candidates[idx];
                self.outstanding.insert(
                    job.id,
                    OutstandingPin {
                        node: device.node,
                        device: device.device,
                        mem_mb: job.mem_mb,
                        threads: job.threads,
                    },
                );
                Pin {
                    job: job.id,
                    node: device.node,
                    device: device.device,
                }
            })
            .collect()
    }

    /// Pack one device's knapsack from the pending jobs; returns the pins.
    /// This is the "create knapsack: capacity = free memory in D" step of
    /// Fig. 4, invoked per device initially and per completion thereafter.
    ///
    /// This is the **naive** (uncached, unprepped) solve — the differential
    /// oracle the fast path is measured and verified against.
    pub fn plan_device(&mut self, pending: &[PendingJob], device: &DeviceView) -> Vec<Pin> {
        let Some(cap) = self.round_capacity(device) else {
            return Vec::new();
        };
        let candidates = self.window_candidates(pending);
        if candidates.is_empty() {
            return Vec::new();
        }
        let items = Self::pack_items(&candidates);

        let packing = match self.cfg.variant {
            KnapsackVariant::TwoD => {
                solve_2d_with(&items, &cap, self.cfg.value_fn, &mut self.scratch)
            }
            KnapsackVariant::OneDFiltered => {
                solve_1d_filtered_with(&items, &cap, self.cfg.value_fn, &mut self.scratch)
            }
        };
        self.commit(device, &candidates, &packing.selected)
    }

    /// Fast-path analogue of [`KnapsackScheduler::plan_device`]: preprocess
    /// the instance, answer from the memo cache when possible, solve and
    /// memoize otherwise. Bit-identical to the naive path because the
    /// prepped solvers share their DP cores with the raw ones and the
    /// [`SolveKey`] captures every input the solve depends on.
    fn plan_device_fast(&mut self, pending: &[PendingJob], device: &DeviceView) -> Vec<Pin> {
        let Some(cap) = self.round_capacity(device) else {
            return Vec::new();
        };
        let candidates = self.window_candidates(pending);
        if candidates.is_empty() {
            return Vec::new();
        }
        let items = Self::pack_items(&candidates);
        let pre = match self.cfg.variant {
            KnapsackVariant::TwoD => prep_2d(&items, &cap),
            KnapsackVariant::OneDFiltered => prep_1d(&items, &cap),
        };
        if pre.items.is_empty() {
            // The raw solver would return an empty packing; skip the cache.
            return Vec::new();
        }
        let key = solve_key(&pre);
        let positions = if let Some(hit) = self.cache.get(&key) {
            self.stats.cache_hits += 1;
            hit.clone()
        } else {
            self.stats.cache_misses += 1;
            let (positions, _) =
                solve_prepped(self.cfg.variant, self.cfg.value_fn, &pre, &mut self.scratch);
            self.insert_cached(key, positions.clone());
            positions
        };
        let selected: Vec<usize> = positions.iter().map(|&p| pre.items[p].pos).collect();
        self.commit(device, &candidates, &selected)
    }

    fn insert_cached(&mut self, key: SolveKey, positions: Vec<usize>) {
        if self.cache.len() >= PLAN_CACHE_CAP {
            // Pure memo: clearing can cost recomputation, never correctness.
            self.cache.clear();
        }
        self.cache.insert(key, positions);
    }

    /// Speculative parallel warm-up. Devices are *not* independent within a
    /// cycle — each device's pins shrink the candidate window of the ones
    /// after it — so parallel solves cannot replace the serial merge.
    /// Instead, every device's instance is prepped against the cycle-start
    /// snapshot (pending minus outstanding, a read-only view the workers
    /// never mutate), the distinct cold keys are solved concurrently with
    /// one `DpScratch` per worker, and the results are memoized. The serial
    /// merge then recomputes each device's true instance and looks it up:
    /// a correct speculation hits the cache, a wrong one (the key changed
    /// because an earlier device pinned jobs) falls back to a serial solve.
    /// Either way the pins are exactly the serial loop's — the cache only
    /// ever answers for a key it solved, wherever it was solved.
    fn warm_cache(&mut self, pending: &[PendingJob], order: &[&DeviceView]) {
        if order.len() < 2 {
            return;
        }
        let candidates = self.window_candidates(pending);
        if candidates.is_empty() {
            return;
        }
        let items = Self::pack_items(&candidates);
        let mut seen: HashSet<SolveKey> = HashSet::new();
        let mut tasks: Vec<(SolveKey, Prepped)> = Vec::new();
        let mut est_cells: u64 = 0;
        for device in order {
            let Some(cap) = self.round_capacity(device) else {
                continue;
            };
            let pre = match self.cfg.variant {
                KnapsackVariant::TwoD => prep_2d(&items, &cap),
                KnapsackVariant::OneDFiltered => prep_1d(&items, &cap),
            };
            if pre.items.is_empty() {
                continue;
            }
            let key = solve_key(&pre);
            if self.cache.contains_key(&key) || !seen.insert(key.clone()) {
                continue;
            }
            est_cells += solve_cells(self.cfg.variant, &pre);
            tasks.push((key, pre));
        }
        if tasks.len() < 2 || est_cells < PARALLEL_CELL_FLOOR {
            return;
        }
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .saturating_sub(1)
            .min(tasks.len());
        if workers < 2 {
            return;
        }

        // sweep.rs's (index, result) channel pattern: scoped workers drain a
        // task channel, results reassemble by index.
        let variant = self.cfg.variant;
        let value_fn = self.cfg.value_fn;
        let (task_tx, task_rx) = crossbeam::channel::unbounded::<(usize, &Prepped)>();
        let (res_tx, res_rx) = crossbeam::channel::unbounded::<(usize, Vec<usize>)>();
        for (i, (_, pre)) in tasks.iter().enumerate() {
            let _ = task_tx.send((i, pre));
        }
        drop(task_tx);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let task_rx = task_rx.clone();
                let res_tx = res_tx.clone();
                scope.spawn(move || {
                    let mut scratch = DpScratch::default();
                    while let Ok((i, pre)) = task_rx.recv() {
                        let (positions, _) = solve_prepped(variant, value_fn, pre, &mut scratch);
                        let _ = res_tx.send((i, positions));
                    }
                });
            }
        });
        drop(res_tx);
        let mut solved: Vec<Option<Vec<usize>>> = (0..tasks.len()).map(|_| None).collect();
        while let Ok((i, positions)) = res_rx.recv() {
            solved[i] = Some(positions);
        }
        for ((key, _), positions) in tasks.into_iter().zip(solved) {
            if let Some(positions) = positions {
                self.insert_cached(key, positions);
            }
        }
    }
}

fn solve_key(pre: &Prepped) -> SolveKey {
    SolveKey {
        w_max: pre.w_max,
        thread_budget: pre.thread_limit,
        items: pre.items.iter().map(|it| (it.w, it.threads)).collect(),
    }
}

fn solve_prepped(
    variant: KnapsackVariant,
    value_fn: ValueFunction,
    pre: &Prepped,
    scratch: &mut DpScratch,
) -> (Vec<usize>, f64) {
    match variant {
        KnapsackVariant::TwoD => solve_prepped_2d_with(pre, value_fn, scratch),
        KnapsackVariant::OneDFiltered => solve_prepped_1d_with(pre, value_fn, scratch),
    }
}

/// Estimated DP cell updates for one prepped solve (the warm-up's
/// is-it-worth-spawning-threads heuristic).
fn solve_cells(variant: KnapsackVariant, pre: &Prepped) -> u64 {
    let dims = match variant {
        KnapsackVariant::TwoD => (pre.w_max as u64 + 1) * (pre.t_max as u64 + 1),
        KnapsackVariant::OneDFiltered => pre.w_max as u64 + 1,
    };
    pre.items.len() as u64 * dims
}

impl ClusterScheduler for KnapsackScheduler {
    fn plan(&mut self, pending: &[PendingJob], devices: &[DeviceView]) -> Vec<Pin> {
        // Greedy at the cluster level: fill one knapsack after another
        // (Fig. 4). Devices with more free memory are packed first so the
        // fullest knapsacks get the pick of the queue.
        let mut order: Vec<&DeviceView> = devices.iter().collect();
        order.sort_by(|a, b| {
            b.free_declared_mb
                .cmp(&a.free_declared_mb)
                .then(a.node.cmp(&b.node))
                .then(a.device.cmp(&b.device))
        });
        if self.cfg.planner == PlannerMode::Fast {
            self.warm_cache(pending, &order);
        }
        let mut pins = Vec::new();
        for device in order {
            let device_pins = match self.cfg.planner {
                PlannerMode::Fast => self.plan_device_fast(pending, device),
                PlannerMode::NaiveSerial => self.plan_device(pending, device),
            };
            pins.extend(device_pins);
        }
        pins
    }

    fn on_dispatched(&mut self, job: JobId) {
        self.outstanding.remove(&job);
    }

    fn on_job_gone(&mut self, job: JobId) {
        self.outstanding.remove(&job);
    }

    fn name(&self) -> &'static str {
        "knapsack"
    }

    fn plan_stats(&self) -> PlanStats {
        self.stats
    }
}

/// The MCC baseline: arbitrary (random) job selection at the cluster level,
/// constrained only by declared-memory fit; COSMIC cleans up the rest at the
/// node level (§V: "jobs are packed arbitrarily to Xeon Phi coprocessors").
#[derive(Debug)]
pub struct RandomScheduler {
    rng: DetRng,
    outstanding: BTreeMap<JobId, (u32, u32, u64)>, // node, device, declared memory
}

impl RandomScheduler {
    /// Create the random scheduler with its own RNG substream.
    pub fn new(seed: u64) -> Self {
        RandomScheduler {
            rng: DetRng::substream(seed, "mcc-random-scheduler"),
            outstanding: BTreeMap::new(),
        }
    }

    fn outstanding_on_device(&self, node: u32, device: u32) -> u64 {
        self.outstanding
            .values()
            .filter(|(n, d, _)| *n == node && *d == device)
            .map(|(_, _, mem)| mem)
            .sum()
    }
}

impl ClusterScheduler for RandomScheduler {
    fn plan(&mut self, pending: &[PendingJob], devices: &[DeviceView]) -> Vec<Pin> {
        // Remaining free capacity per device, net of outstanding pins.
        let mut free: Vec<(u32, u32, u64)> = devices
            .iter()
            .map(|d| {
                (
                    d.node,
                    d.device,
                    d.free_declared_mb
                        .saturating_sub(self.outstanding_on_device(d.node, d.device)),
                )
            })
            .collect();

        // Visit pending jobs in random order, placing each on a random
        // device with room.
        let mut order: Vec<usize> = (0..pending.len()).collect();
        self.rng.shuffle(&mut order);
        let mut pins = Vec::new();
        for idx in order {
            let job = &pending[idx];
            if self.outstanding.contains_key(&job.id) {
                continue;
            }
            let fits: Vec<usize> = free
                .iter()
                .enumerate()
                .filter(|(_, (_, _, f))| *f >= job.mem_mb)
                .map(|(i, _)| i)
                .collect();
            if fits.is_empty() {
                continue;
            }
            let pick = *self.rng.choose(&fits);
            free[pick].2 -= job.mem_mb;
            let (node, device, _) = free[pick];
            self.outstanding.insert(job.id, (node, device, job.mem_mb));
            pins.push(Pin {
                job: job.id,
                node,
                device,
            });
        }
        pins
    }

    fn on_dispatched(&mut self, job: JobId) {
        self.outstanding.remove(&job);
    }

    fn on_job_gone(&mut self, job: JobId) {
        self.outstanding.remove(&job);
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

/// A clairvoyant comparator that *does* know job execution times — the
/// information the paper explicitly refuses to assume (§IV-B). It packs
/// longest-processing-time-first (LPT) into each device round, subject to
/// the same memory and thread budgets as MCCK. Comparing MCCK against this
/// upper-bound heuristic quantifies the cost of scheduling blind.
#[derive(Debug)]
pub struct ClairvoyantLpt {
    cfg: KnapsackConfig,
    outstanding: BTreeMap<JobId, OutstandingPin>,
}

impl ClairvoyantLpt {
    /// Create the clairvoyant scheduler (shares MCCK's budget config).
    pub fn new(cfg: KnapsackConfig) -> Self {
        ClairvoyantLpt {
            cfg,
            outstanding: BTreeMap::new(),
        }
    }

    fn outstanding_on_device(&self, node: u32, device: u32) -> (u64, u32) {
        self.outstanding
            .values()
            .filter(|p| p.node == node && p.device == device)
            .fold((0, 0), |(m, t), p| (m + p.mem_mb, t + p.threads))
    }

    /// Greedy LPT packing of one device round.
    pub fn plan_device(&mut self, pending: &[PendingJob], device: &DeviceView) -> Vec<Pin> {
        let (out_mem, out_threads) = self.outstanding_on_device(device.node, device.device);
        let mut free = device.free_declared_mb.saturating_sub(out_mem);
        if free == 0 {
            return Vec::new();
        }
        let total = (self.cfg.thread_limit as f64 * self.cfg.thread_overcommit).round() as u32;
        let mut threads_left = if self.cfg.count_resident_threads {
            total.saturating_sub(device.resident_threads + out_threads)
        } else {
            self.cfg.thread_limit
        };

        let mut candidates: Vec<&PendingJob> = pending
            .iter()
            .filter(|j| !self.outstanding.contains_key(&j.id))
            .take(self.cfg.window)
            .collect();
        candidates.sort_by(|a, b| {
            b.nominal_secs
                .partial_cmp(&a.nominal_secs)
                .expect("finite durations")
                .then(a.id.cmp(&b.id))
        });

        let mut pins = Vec::new();
        for job in candidates {
            if job.mem_mb <= free && job.threads <= threads_left {
                free -= job.mem_mb;
                threads_left -= job.threads;
                self.outstanding.insert(
                    job.id,
                    OutstandingPin {
                        node: device.node,
                        device: device.device,
                        mem_mb: job.mem_mb,
                        threads: job.threads,
                    },
                );
                pins.push(Pin {
                    job: job.id,
                    node: device.node,
                    device: device.device,
                });
            }
        }
        pins
    }
}

impl ClusterScheduler for ClairvoyantLpt {
    fn plan(&mut self, pending: &[PendingJob], devices: &[DeviceView]) -> Vec<Pin> {
        let mut order: Vec<&DeviceView> = devices.iter().collect();
        order.sort_by(|a, b| {
            b.free_declared_mb
                .cmp(&a.free_declared_mb)
                .then(a.node.cmp(&b.node))
                .then(a.device.cmp(&b.device))
        });
        let mut pins = Vec::new();
        for device in order {
            pins.extend(self.plan_device(pending, device));
        }
        pins
    }

    fn on_dispatched(&mut self, job: JobId) {
        self.outstanding.remove(&job);
    }

    fn on_job_gone(&mut self, job: JobId) {
        self.outstanding.remove(&job);
    }

    fn name(&self) -> &'static str {
        "clairvoyant-lpt"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: u64, mem_mb: u64, threads: u32) -> PendingJob {
        PendingJob {
            id: JobId(id),
            mem_mb,
            threads,
            nominal_secs: 30.0,
        }
    }

    fn timed_job(id: u64, mem_mb: u64, threads: u32, nominal_secs: f64) -> PendingJob {
        PendingJob {
            id: JobId(id),
            mem_mb,
            threads,
            nominal_secs,
        }
    }

    fn dev(node: u32, free: u64) -> DeviceView {
        DeviceView {
            node,
            device: 0,
            free_declared_mb: free,
            resident_threads: 0,
        }
    }

    #[test]
    fn knapsack_packs_for_concurrency() {
        let mut s = KnapsackScheduler::new(KnapsackConfig::default());
        let pending = vec![
            job(0, 4000, 240),
            job(1, 2000, 80),
            job(2, 2000, 80),
            job(3, 3000, 80),
        ];
        let pins = s.plan(&pending, &[dev(1, 7680)]);
        let pinned: Vec<u64> = pins.iter().map(|p| p.job.raw()).collect();
        assert_eq!(pinned, vec![1, 2, 3]);
        assert!(pins.iter().all(|p| p.node == 1));
    }

    #[test]
    fn no_job_is_pinned_twice_across_devices() {
        let mut s = KnapsackScheduler::new(KnapsackConfig::default());
        let pending: Vec<PendingJob> = (0..6).map(|i| job(i, 3000, 60)).collect();
        let pins = s.plan(&pending, &[dev(1, 7680), dev(2, 7680)]);
        let mut ids: Vec<u64> = pins.iter().map(|p| p.job.raw()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), pins.len());
        // 2 jobs of 3000 MB per 7680 MB device → 4 total.
        assert_eq!(pins.len(), 4);
        assert_eq!(s.outstanding_pins(), 4);
    }

    #[test]
    fn outstanding_pins_shrink_capacity_until_dispatch() {
        let mut s = KnapsackScheduler::new(KnapsackConfig::default());
        let pending = vec![job(0, 4000, 60)];
        let pins = s.plan(&pending, &[dev(1, 7680)]);
        assert_eq!(pins.len(), 1);
        // Same device view (dispatch hasn't happened): a second 4000 MB job
        // must NOT be placed — only 3680 MB is really free.
        let pending2 = vec![job(0, 4000, 60), job(1, 4000, 60)];
        let pins2 = s.plan(&pending2, &[dev(1, 7680)]);
        assert!(pins2.is_empty(), "overcommitted: {pins2:?}");
        // After dispatch the view itself accounts for job 0.
        s.on_dispatched(JobId(0));
        let pins3 = s.plan(&[job(1, 4000, 60)], &[dev(1, 3680)]);
        assert!(pins3.is_empty()); // 4000 > 3680
        let pins4 = s.plan(&[job(1, 3000, 60)], &[dev(1, 3680)]);
        assert_eq!(pins4.len(), 1);
    }

    #[test]
    fn fullest_devices_pack_first() {
        let mut s = KnapsackScheduler::new(KnapsackConfig::default());
        let pending = vec![job(0, 5000, 60)];
        let pins = s.plan(&pending, &[dev(1, 2000), dev(2, 7680)]);
        assert_eq!(
            pins,
            vec![Pin {
                job: JobId(0),
                node: 2,
                device: 0
            }]
        );
    }

    #[test]
    fn window_bounds_candidates() {
        let cfg = KnapsackConfig {
            window: 2,
            ..KnapsackConfig::default()
        };
        let mut s = KnapsackScheduler::new(cfg);
        // Jobs beyond the window are invisible even though they'd fit.
        let pending: Vec<PendingJob> = (0..10).map(|i| job(i, 100, 4)).collect();
        let pins = s.plan_device(&pending, &dev(1, 7680));
        assert_eq!(pins.len(), 2);
    }

    #[test]
    fn strict_mode_respects_resident_threads() {
        let cfg = KnapsackConfig {
            thread_overcommit: 1.0,
            ..KnapsackConfig::default()
        };
        let mut s = KnapsackScheduler::new(cfg);
        let view = DeviceView {
            node: 1,
            device: 0,
            free_declared_mb: 7000,
            resident_threads: 200,
        };
        // Only 40 threads of budget remain: the 60-thread job is refused,
        // a 40-thread job packs.
        assert!(s.plan_device(&[job(0, 1000, 60)], &view).is_empty());
        assert_eq!(s.plan_device(&[job(1, 1000, 40)], &view).len(), 1);
    }

    #[test]
    fn lax_mode_ignores_resident_threads() {
        let cfg = KnapsackConfig {
            count_resident_threads: false,
            ..KnapsackConfig::default()
        };
        let mut s = KnapsackScheduler::new(cfg);
        let view = DeviceView {
            node: 1,
            device: 0,
            free_declared_mb: 7000,
            resident_threads: 240,
        };
        // Ablation behaviour: freed memory is repacked regardless of
        // resident threads; COSMIC serializes at run time.
        assert_eq!(s.plan_device(&[job(0, 1000, 240)], &view).len(), 1);
    }

    #[test]
    fn job_gone_releases_outstanding_capacity() {
        let mut s = KnapsackScheduler::new(KnapsackConfig::default());
        s.plan(&[job(0, 7000, 60)], &[dev(1, 7680)]);
        assert_eq!(s.outstanding_pins(), 1);
        s.on_job_gone(JobId(0));
        let pins = s.plan(&[job(1, 7000, 60)], &[dev(1, 7680)]);
        assert_eq!(pins.len(), 1);
    }

    #[test]
    fn random_scheduler_respects_memory() {
        let mut s = RandomScheduler::new(42);
        let pending: Vec<PendingJob> = (0..20).map(|i| job(i, 3000, 240)).collect();
        let pins = s.plan(&pending, &[dev(1, 7680), dev(2, 7680)]);
        // 2 jobs of 3000 MB fit per device.
        assert_eq!(pins.len(), 4);
        for node in [1, 2] {
            let mem: u64 = pins.iter().filter(|p| p.node == node).map(|_| 3000).sum();
            assert!(mem <= 7680);
        }
    }

    #[test]
    fn random_scheduler_is_seed_deterministic_but_random() {
        let pending: Vec<PendingJob> = (0..30).map(|i| job(i, 2000, 120)).collect();
        let devs = [dev(1, 7680), dev(2, 7680)];
        let a = RandomScheduler::new(1).plan(&pending, &devs);
        let b = RandomScheduler::new(1).plan(&pending, &devs);
        assert_eq!(a, b);
        let c = RandomScheduler::new(2).plan(&pending, &devs);
        assert_ne!(a, c, "different seeds should pick different jobs");
    }

    #[test]
    fn clairvoyant_prefers_longest_jobs() {
        let mut s = ClairvoyantLpt::new(KnapsackConfig::default());
        let pending = vec![
            timed_job(0, 3000, 60, 10.0),
            timed_job(1, 3000, 60, 50.0),
            timed_job(2, 3000, 60, 30.0),
        ];
        // Only two fit in memory: the two longest are chosen.
        let pins = s.plan(&pending, &[dev(1, 7000)]);
        let ids: Vec<u64> = pins.iter().map(|p| p.job.raw()).collect();
        assert_eq!(ids, vec![1, 2]);
    }

    #[test]
    fn clairvoyant_respects_budgets_and_outstanding() {
        let mut s = ClairvoyantLpt::new(KnapsackConfig::default());
        let pins = s.plan(&[timed_job(0, 7000, 240, 9.0)], &[dev(1, 7680)]);
        assert_eq!(pins.len(), 1);
        // Capacity is spoken for until dispatch.
        let pins2 = s.plan(
            &[timed_job(0, 7000, 240, 9.0), timed_job(1, 7000, 60, 99.0)],
            &[dev(1, 7680)],
        );
        assert!(pins2.is_empty());
        s.on_dispatched(JobId(0));
        assert_eq!(s.name(), "clairvoyant-lpt");
    }

    #[test]
    fn identical_devices_and_recurring_states_hit_the_plan_cache() {
        let mut s = KnapsackScheduler::new(KnapsackConfig::default());
        // Duplication-heavy queue: all candidates share one class, so after
        // multiplicity truncation every fresh device solves the *same*
        // 3-copy instance (⌊153 units / 40 units⌋ = 3 by memory).
        let pending: Vec<PendingJob> = (0..40).map(|i| job(i, 2000, 60)).collect();
        let devs = [dev(1, 7680), dev(2, 7680), dev(3, 7680), dev(4, 7680)];
        let pins = s.plan(&pending, &devs);
        assert_eq!(pins.len(), 12, "3 jobs per device");
        assert_eq!(s.plan_stats().cache_misses, 1, "one DP serves all devices");
        assert_eq!(s.plan_stats().cache_hits, 3);

        // Unchanged state: anything that fit was already packed, so the
        // next cycle's instances prep to empty and cost no DP at all.
        let again = s.plan(&pending, &devs);
        assert!(again.is_empty(), "outstanding pins must not re-pin");
        assert_eq!(s.plan_stats().cache_misses, 1);

        // Dispatch everything and let it "complete": the views return to
        // their initial state, the shrunken queue preps to the same 3-copy
        // instance, and the whole cycle is answered from cache.
        for pin in &pins {
            s.on_dispatched(pin.job);
        }
        let remaining: Vec<PendingJob> = pending
            .iter()
            .filter(|j| !pins.iter().any(|p| p.job == j.id))
            .copied()
            .collect();
        let pins2 = s.plan(&remaining, &devs);
        assert_eq!(pins2.len(), 12);
        assert_eq!(s.plan_stats().cache_misses, 1, "recurring state re-solved");
        assert_eq!(s.plan_stats().cache_hits, 3 + 4);
        assert_eq!(s.plan_cache_len(), 1);
    }

    #[test]
    fn fast_and_naive_planners_agree_across_a_scripted_run() {
        // A deterministic multi-cycle script: plan, dispatch some pins,
        // lose some jobs, shrink/grow device views. Both planners must
        // produce identical pins at every step.
        let naive_cfg = KnapsackConfig {
            planner: PlannerMode::NaiveSerial,
            ..KnapsackConfig::default()
        };
        let mut fast = KnapsackScheduler::new(KnapsackConfig::default());
        let mut naive = KnapsackScheduler::new(naive_cfg);
        let mut pending: Vec<PendingJob> = (0..60)
            .map(|i| job(i, 500 + 250 * (i % 12), 20 + 20 * (i % 6) as u32))
            .collect();
        let mut devs = vec![dev(1, 7680), dev(2, 7680), dev(3, 5000), dev(4, 2000)];
        for cycle in 0..12u64 {
            let p_fast = fast.plan(&pending, &devs);
            let p_naive = naive.plan(&pending, &devs);
            assert_eq!(p_fast, p_naive, "cycle {cycle} diverged");
            // Dispatch every other pin; the rest stay outstanding.
            for (i, pin) in p_fast.iter().enumerate() {
                if i % 2 == 0 {
                    fast.on_dispatched(pin.job);
                    naive.on_dispatched(pin.job);
                    let d = devs
                        .iter_mut()
                        .find(|d| d.node == pin.node && d.device == pin.device)
                        .unwrap();
                    let spec = pending.iter().find(|j| j.id == pin.job).unwrap();
                    d.free_declared_mb = d.free_declared_mb.saturating_sub(spec.mem_mb);
                    d.resident_threads += spec.threads;
                    let id = pin.job;
                    pending.retain(|j| j.id != id);
                }
            }
            // Device-reset-style churn: every third cycle one device's
            // capacity snaps back and a pinned job vanishes.
            if cycle % 3 == 2 {
                let reset_at = (cycle as usize / 3) % devs.len();
                devs[reset_at].free_declared_mb = 7680;
                if let Some(pin) = p_fast.get(1) {
                    fast.on_job_gone(pin.job);
                    naive.on_job_gone(pin.job);
                    let id = pin.job;
                    pending.retain(|j| j.id != id);
                }
            }
        }
        assert_eq!(fast.outstanding_pins(), naive.outstanding_pins());
    }

    #[test]
    fn one_d_variant_fast_path_matches_naive() {
        let base = KnapsackConfig {
            variant: KnapsackVariant::OneDFiltered,
            ..KnapsackConfig::default()
        };
        let mut fast = KnapsackScheduler::new(base);
        let mut naive = KnapsackScheduler::new(KnapsackConfig {
            planner: PlannerMode::NaiveSerial,
            ..base
        });
        let pending: Vec<PendingJob> = (0..30)
            .map(|i| job(i, 400 + 300 * (i % 7), 40 * (1 + (i % 5) as u32)))
            .collect();
        let devs = [dev(1, 7680), dev(2, 4000)];
        assert_eq!(fast.plan(&pending, &devs), naive.plan(&pending, &devs));
    }

    #[test]
    fn random_scheduler_tracks_outstanding() {
        let mut s = RandomScheduler::new(3);
        let pins = s.plan(&[job(0, 7000, 60)], &[dev(1, 7680)]);
        assert_eq!(pins.len(), 1);
        // Without dispatch, capacity is spoken for.
        let pins2 = s.plan(&[job(0, 7000, 60), job(1, 7000, 60)], &[dev(1, 7680)]);
        assert!(pins2.is_empty());
    }
}
