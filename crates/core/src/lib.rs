//! # phishare-core — the sharing-aware cluster scheduler
//!
//! The paper's contribution (§IV): a cluster-level scheduler that packs as
//! many jobs as possible onto each Xeon Phi, subject to the device's memory
//! and thread limits, using a greedy sequence of per-device 0-1 knapsacks
//! (Fig. 4):
//!
//! ```text
//! for each Xeon Phi device D in cluster do
//!     pack jobs in D using knapsack algorithm
//! end for
//! while jobs remaining do
//!     for each Xeon Phi D with free memory do
//!         create knapsack: capacity = free memory in D
//!         pack jobs in D using knapsack algorithm
//!     end for
//! end while
//! ```
//!
//! The scheduler is deliberately *external* to Condor: it reads the pending
//! queue, computes a job → node mapping, and applies it purely through
//! `condor_qedit`-style requirement pinning; the dispatch itself still rides
//! Condor's next negotiation cycle (§IV-D1). That integration style — and
//! its cost, one negotiation latency — is preserved by `phishare-cluster`.
//!
//! Three cluster configurations from the evaluation (§V):
//!
//! * **MC** — exclusive device allocation (no external scheduler; jobs claim
//!   whole cards through Condor matchmaking);
//! * **MCC** — COSMIC sharing with *random* job selection at the cluster
//!   level ([`RandomScheduler`]);
//! * **MCCK** — COSMIC sharing driven by the knapsack packer
//!   ([`KnapsackScheduler`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod policy;
pub mod scheduler;

pub use policy::ClusterPolicy;
pub use scheduler::{
    ClairvoyantLpt, ClusterScheduler, DeviceView, KnapsackConfig, KnapsackScheduler,
    KnapsackVariant, PendingJob, Pin, PlanStats, PlannerMode, RandomScheduler,
};
