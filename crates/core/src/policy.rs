//! The three cluster configurations of the paper's evaluation.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Which software stack runs the cluster (paper §V).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ClusterPolicy {
    /// **MC** — MPSS + Condor: exclusive device allocation; one job per Phi
    /// for the job's lifetime; no sharing.
    Mc,
    /// **MCC** — MPSS + Condor + COSMIC: nodes share safely, but jobs are
    /// selected arbitrarily (randomly) at the cluster level.
    Mcc,
    /// **MCCK** — MPSS + Condor + COSMIC + the knapsack cluster scheduler:
    /// the paper's full system.
    Mcck,
    /// **Oracle** — *not in the paper*: MCCK's stack with a clairvoyant
    /// LPT scheduler that knows job execution times. An upper-bound
    /// comparator that quantifies how much the paper's
    /// no-execution-times assumption costs.
    Oracle,
}

impl ClusterPolicy {
    /// The paper's three configurations, in presentation order.
    pub const ALL: [ClusterPolicy; 3] =
        [ClusterPolicy::Mc, ClusterPolicy::Mcc, ClusterPolicy::Mcck];

    /// The paper's configurations plus the clairvoyant comparator.
    pub const WITH_ORACLE: [ClusterPolicy; 4] = [
        ClusterPolicy::Mc,
        ClusterPolicy::Mcc,
        ClusterPolicy::Mcck,
        ClusterPolicy::Oracle,
    ];

    /// True when this configuration allows coprocessor sharing.
    pub fn shares_devices(self) -> bool {
        !matches!(self, ClusterPolicy::Mc)
    }

    /// True when this configuration runs the node middleware.
    pub fn uses_cosmic(self) -> bool {
        !matches!(self, ClusterPolicy::Mc)
    }
}

impl fmt::Display for ClusterPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ClusterPolicy::Mc => "MC",
            ClusterPolicy::Mcc => "MCC",
            ClusterPolicy::Mcck => "MCCK",
            ClusterPolicy::Oracle => "ORACLE",
        };
        f.write_str(s)
    }
}

impl FromStr for ClusterPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "MC" => Ok(ClusterPolicy::Mc),
            "MCC" => Ok(ClusterPolicy::Mcc),
            "MCCK" => Ok(ClusterPolicy::Mcck),
            "ORACLE" => Ok(ClusterPolicy::Oracle),
            other => Err(format!(
                "unknown policy {other:?}; expected MC, MCC, MCCK or ORACLE"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_parse_round_trip() {
        for p in ClusterPolicy::WITH_ORACLE {
            assert_eq!(p.to_string().parse::<ClusterPolicy>().unwrap(), p);
        }
        assert_eq!(
            "mcck".parse::<ClusterPolicy>().unwrap(),
            ClusterPolicy::Mcck
        );
        assert!("MCX".parse::<ClusterPolicy>().is_err());
    }

    #[test]
    fn capability_flags() {
        assert!(!ClusterPolicy::Mc.shares_devices());
        assert!(ClusterPolicy::Mcc.shares_devices());
        assert!(ClusterPolicy::Mcck.uses_cosmic());
        assert!(ClusterPolicy::Oracle.uses_cosmic());
        assert!(!ClusterPolicy::Mc.uses_cosmic());
    }

    #[test]
    fn paper_set_excludes_the_oracle() {
        assert!(!ClusterPolicy::ALL.contains(&ClusterPolicy::Oracle));
        assert_eq!(ClusterPolicy::WITH_ORACLE.len(), 4);
    }
}
