//! # phishare-bench — experiment harnesses
//!
//! One bench target per table/figure in the paper's evaluation (§V), plus
//! ablations and Criterion microbenches. Each harness prints a paper-style
//! table or ASCII figure and persists its raw rows as JSON under
//! `target/experiments/` so EXPERIMENTS.md numbers are regenerable.
//!
//! | Target | Paper artifact |
//! |---|---|
//! | `motivation_util` | §III core-utilization measurement |
//! | `table2_makespan_footprint` | Table II |
//! | `fig7_distributions` | Fig. 7 |
//! | `fig8_makespan_by_distribution` | Fig. 8 |
//! | `fig9_cluster_size_sweep` | Fig. 9 |
//! | `table3_footprint` | Table III |
//! | `fig10_job_pressure` | Fig. 10 |
//! | `abl_*` | design-choice ablations (DESIGN.md) |
//! | `perf_*` | Criterion microbenches (§IV-C complexity claim) |

// `deny` rather than `forbid`: the opt-in `alloc_count` module needs one
// `unsafe impl GlobalAlloc` and locally allows it; everything else stays
// unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

use phishare_cluster::{
    default_workers, run_sweep_sharded, ClusterConfig, Experiment, ExperimentResult, ShardOptions,
    SubstrateMode, SweepJob, SweepOutcome,
};
use phishare_core::ClusterPolicy;
use phishare_workload::{ResourceDist, SyntheticParams, Workload, WorkloadBuilder, WorkloadKind};
use serde::Serialize;
use std::path::PathBuf;
use std::sync::Arc;

/// Seed used by every headline experiment (fixed for reproducibility; the
/// sensitivity of results to the seed is itself checked in `tests/`).
pub const EXPERIMENT_SEED: u64 = 7;

/// The paper's real-workload job count (§V-A).
pub const TABLE1_JOBS: usize = 1000;

/// The paper's synthetic job count per distribution (§V-B).
pub const SYNTHETIC_JOBS: usize = 400;

/// Build the 1000-instance Table I workload of §V-A.
pub fn table1_workload(count: usize, seed: u64) -> Arc<Workload> {
    Arc::new(
        WorkloadBuilder::new(WorkloadKind::Table1Mix)
            .count(count)
            .seed(seed)
            .build(),
    )
}

/// Build one of the four synthetic workloads of §V-B.
pub fn synthetic_workload(dist: ResourceDist, count: usize, seed: u64) -> Arc<Workload> {
    Arc::new(
        WorkloadBuilder::new(WorkloadKind::Synthetic(dist, SyntheticParams::default()))
            .count(count)
            .seed(seed)
            .build(),
    )
}

/// Run one (policy, nodes) cell on a workload.
pub fn run_cell(policy: ClusterPolicy, nodes: u32, workload: &Workload) -> ExperimentResult {
    let config = ClusterConfig::paper_cluster(policy).with_nodes(nodes);
    Experiment::run(&config, workload).expect("experiment runs")
}

/// Run a sweep grid through the process-sharded engine, sized to the
/// machine (`PHISHARE_SWEEP_WORKERS` / [`default_workers`]), with workers
/// spawned from `worker_exe` — benches pass
/// `env!("CARGO_BIN_EXE_phishare-bench")`. Bit-identical to
/// [`phishare_cluster::run_sweep`] on the same grid; panics if the sharded
/// run fails (a bench has no resume story).
pub fn run_sweep_sharded_auto(
    jobs: Vec<SweepJob>,
    substrate: SubstrateMode,
    worker_exe: &str,
) -> Vec<SweepOutcome> {
    let opts = ShardOptions {
        workers: default_workers(),
        worker_exe: PathBuf::from(worker_exe),
        dir: None,
        resume: false,
        keep_dir: false,
        substrate,
    };
    run_sweep_sharded(jobs, &opts).expect("sharded sweep runs")
}

/// Where experiment JSON lands (`target/experiments/`).
pub fn experiments_dir() -> PathBuf {
    // CARGO_TARGET_DIR is not set for bench binaries; derive from the exe
    // path (target/release/deps/<bench>) with a cwd fallback.
    let exe = std::env::current_exe().ok();
    let target = exe
        .as_deref()
        .and_then(|p| p.ancestors().find(|a| a.ends_with("target")))
        .map(|p| p.to_path_buf())
        .unwrap_or_else(|| PathBuf::from("target"));
    target.join("experiments")
}

/// Persist an experiment's raw rows as pretty JSON.
pub fn persist_json<T: Serialize>(name: &str, value: &T) {
    let dir = experiments_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            } else {
                println!("[saved {}]", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot serialize {name}: {e}"),
    }
}

/// Standard banner for a bench harness.
pub fn banner(id: &str, paper_ref: &str, expectation: &str) {
    println!("=== {id} — reproduces {paper_ref} ===");
    println!("paper expectation: {expectation}");
    println!();
}

/// The configuration knobs a perf gate's *measured* side ran with,
/// committed alongside its timing numbers in `BENCH_*.json`. A speedup is
/// only meaningful relative to the configuration that produced it —
/// partition counts, thread fan-out, and quiescence skipping all move the
/// needle — so the floor lint requires this block on every gated JSON.
#[derive(Serialize, Clone, Debug)]
pub struct GateKnobs {
    /// Collector partitions on the measured path (1 = unpartitioned).
    pub partitions: usize,
    /// Worker/screen threads the measured harness used (1 = serial).
    pub threads: usize,
    /// Whether quiescent-cycle skipping was enabled on the measured path.
    pub skip_quiescent: bool,
    /// Matchmaking path of the measured side: "delta", "full", or "n/a"
    /// for gates that never negotiate.
    pub match_path: String,
}

impl GateKnobs {
    /// Knobs for a gate that does not exercise the negotiator at all
    /// (substrate, planner, and simulator gates): only the thread fan-out
    /// is meaningful.
    pub fn non_negotiation(threads: usize) -> GateKnobs {
        GateKnobs {
            partitions: 1,
            threads,
            skip_quiescent: false,
            match_path: "n/a".into(),
        }
    }
}

/// Opt-in heap-allocation counting (feature `alloc-count`).
///
/// Registers a [`std::alloc::System`]-backed `#[global_allocator]` that
/// counts every `alloc`/`realloc` call, so bench gates can report
/// allocations-per-offload. Feature-gated because the counter itself adds
/// an atomic increment to every allocation — timing gates run without it.
#[cfg(feature = "alloc-count")]
pub mod alloc_count {
    #![allow(unsafe_code)]

    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

    /// [`System`] wrapper that counts allocation calls (not bytes).
    pub struct CountingAllocator;

    // SAFETY: every method defers directly to `System`; the wrapper only
    // adds a relaxed counter increment and changes no allocation behavior.
    unsafe impl GlobalAlloc for CountingAllocator {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            System.alloc(layout)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            System.realloc(ptr, layout, new_size)
        }
    }

    #[global_allocator]
    static GLOBAL: CountingAllocator = CountingAllocator;

    /// Total heap allocation calls since process start.
    pub fn allocations() -> u64 {
        ALLOCATIONS.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_builders_are_consistent() {
        let wl = table1_workload(50, 1);
        assert_eq!(wl.len(), 50);
        let syn = synthetic_workload(ResourceDist::Normal, 40, 1);
        assert_eq!(syn.len(), 40);
        assert!(syn.label.contains("normal"));
    }

    #[test]
    fn run_cell_smoke() {
        let wl = table1_workload(10, 2);
        let r = run_cell(ClusterPolicy::Mcck, 2, &wl);
        assert!(r.all_completed());
    }

    #[test]
    fn experiments_dir_is_under_target() {
        let d = experiments_dir();
        assert!(d.ends_with("experiments"));
    }

    /// Committed bench results must clear their own floors. Every perf gate
    /// writes a `BENCH_*.json` copy at the repo root with `speedup` and
    /// `speedup_floor` fields; a stale file whose numbers no longer clear
    /// the floor fails here without re-running the (slow) gate itself.
    #[test]
    fn committed_bench_results_clear_their_floors() {
        let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
        let mut checked = 0;
        for entry in std::fs::read_dir(root).expect("repo root is readable") {
            let path = entry.expect("dir entry").path();
            let name = path
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default();
            if !name.starts_with("BENCH_") || !name.ends_with(".json") {
                continue;
            }
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("cannot read {name}: {e}"));
            let json: serde_json::Value = serde_json::from_str(&text)
                .unwrap_or_else(|e| panic!("{name} is not valid JSON: {e}"));
            let (Some(speedup), Some(floor)) = (
                json.get("speedup").and_then(serde_json::Value::as_f64),
                json.get("speedup_floor")
                    .and_then(serde_json::Value::as_f64),
            ) else {
                continue;
            };
            assert!(
                speedup >= floor,
                "{name} is stale: committed speedup {speedup:.2}x \
                 is below its own floor {floor:.2}x — re-run the gate"
            );
            // Gated results must also record what they ran with: floors
            // are only comparable against a known knob configuration.
            assert!(
                matches!(json.get("knobs"), Some(serde_json::Value::Object(_))),
                "{name} has no `knobs` block — gates must record the \
                 partition/thread/quiescence configuration they measured"
            );
            checked += 1;
        }
        // Don't let a rename silently turn this lint into a no-op.
        assert!(
            checked >= 1,
            "no gated BENCH_*.json files found at repo root"
        );
    }
}
