//! Worker-mode binary for the process-sharded sweep engine.
//!
//! `run_sweep_sharded` spawns this as
//! `phishare-bench --worker --dir <checkpoint dir> --worker-id <k>`; the
//! worker claims cells from the manifest through lease files, checkpoints
//! each finished cell to its fsync'd JSONL log, and exits 0 when the grid
//! is exhausted. All the actual logic lives in `phishare_cluster::shard` —
//! this binary only exists so benches and integration tests have a worker
//! executable (`CARGO_BIN_EXE_phishare-bench`) to hand to `ShardOptions`.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) != Some("--worker") {
        eprintln!(
            "phishare-bench is a sweep worker: \
             --worker --dir <dir> --worker-id <k> [--partitions <p>]"
        );
        return ExitCode::from(2);
    }
    match phishare_cluster::worker_main(&args) {
        Ok(ran) => {
            eprintln!("phishare-bench worker done: {ran} cell(s) executed");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("phishare-bench worker failed: {e}");
            ExitCode::FAILURE
        }
    }
}
