//! EXT-6 — graceful degradation under device failures.
//!
//! The paper evaluates a healthy cluster; real Phi deployments lose cards
//! to MPSS crashes. This extension sweeps the per-device MTBF and measures
//! how each policy's makespan and completion rate degrade, under both
//! recovery postures: `HostOnly` (victims finish on host cores at a
//! slowdown — nothing is lost, makespan stretches) and `Requeue` (victims
//! vacate and retry with exponential backoff — makespan stretches less per
//! victim, but jobs can exhaust their retry budget and end up held).
//!
//! The sweep covers both device pools: the paper's uniform 5110P cluster
//! and the heterogeneous `gpu-mix` pool, so degradation is measured on
//! mixed SKUs too.

use phishare_bench::{banner, persist_json, table1_workload};
use phishare_cluster::fault::FallbackPolicy;
use phishare_cluster::report::{pct, table};
use phishare_cluster::sweep::{run_sweep_auto, SweepJob};
use phishare_cluster::{ClusterConfig, DevicePool};
use phishare_core::ClusterPolicy;
use serde::Serialize;

const EXPERIMENT_SEED: u64 = 7;
const JOBS: usize = 300;
/// Per-device MTBF grid, seconds (0 = faults disabled).
const MTBFS: [f64; 4] = [0.0, 600.0, 300.0, 150.0];
/// Plan horizon: long enough to cover every run in the grid.
const HORIZON_SECS: f64 = 6000.0;
const POLICIES: [ClusterPolicy; 3] = [ClusterPolicy::Mc, ClusterPolicy::Mcc, ClusterPolicy::Mcck];
/// Device pools under test (parsed names keep labels grep-able).
const POOLS: [&str; 2] = ["uniform", "gpu-mix"];

#[derive(Serialize)]
struct Row {
    pool: String,
    policy: String,
    fallback: String,
    device_mtbf_secs: f64,
    makespan_secs: f64,
    completion_rate: f64,
    device_resets: u64,
    retries: u64,
    fallback_offloads: u64,
    held_after_retries: usize,
}

fn cfg(policy: ClusterPolicy, mtbf: f64, fallback: FallbackPolicy, pool: &str) -> ClusterConfig {
    let mut cfg = ClusterConfig::paper_cluster(policy);
    cfg.pool = pool.parse::<DevicePool>().expect("known pool name");
    cfg.faults.device_mtbf_secs = mtbf;
    cfg.faults.horizon_secs = if mtbf > 0.0 { HORIZON_SECS } else { 0.0 };
    cfg.recovery.fallback = fallback;
    cfg
}

fn main() {
    banner(
        "EXT-6",
        "makespan & completion-rate degradation vs device MTBF",
        "HostOnly: rate stays 1.0, makespan grows; Requeue: rate dips as retries exhaust",
    );

    let wl = table1_workload(JOBS, EXPERIMENT_SEED);
    let mut grid = Vec::new();
    for pool in POOLS {
        for fallback in [FallbackPolicy::HostOnly, FallbackPolicy::Requeue] {
            for policy in POLICIES {
                for mtbf in MTBFS {
                    grid.push(SweepJob {
                        label: format!("{pool}|{fallback:?}|{policy}|{mtbf}"),
                        config: cfg(policy, mtbf, fallback, pool),
                        workload: wl.clone(),
                    });
                }
            }
        }
    }
    let results = run_sweep_auto(grid);

    let mut rows = Vec::new();
    let mut printable = Vec::new();
    for (label, result) in &results {
        let r = result.as_ref().expect("fault sweep runs");
        assert_eq!(
            r.completed + r.container_kills + r.oom_kills + r.held_after_retries,
            r.jobs,
            "{label}: job accounting leaked"
        );
        let mut parts = label.split('|');
        let pool = parts.next().expect("pool").to_string();
        let fallback = parts.next().expect("fallback").to_string();
        let policy = parts.next().expect("policy").to_string();
        let mtbf: f64 = parts.next().expect("mtbf").parse().expect("mtbf number");
        printable.push(vec![
            pool.clone(),
            fallback.clone(),
            policy.clone(),
            if mtbf > 0.0 {
                format!("{mtbf:.0}")
            } else {
                "off".into()
            },
            format!("{:.0}", r.makespan_secs),
            pct(100.0 * r.completion_rate()),
            r.device_resets.to_string(),
            r.retries.to_string(),
            r.fallback_offloads.to_string(),
            r.held_after_retries.to_string(),
        ]);
        rows.push(Row {
            pool,
            policy,
            fallback,
            device_mtbf_secs: mtbf,
            makespan_secs: r.makespan_secs,
            completion_rate: r.completion_rate(),
            device_resets: r.device_resets,
            retries: r.retries,
            fallback_offloads: r.fallback_offloads,
            held_after_retries: r.held_after_retries,
        });
    }
    println!(
        "{}",
        table(
            &[
                "Pool",
                "Fallback",
                "Policy",
                "MTBF s",
                "Makespan s",
                "Completed",
                "Resets",
                "Retries",
                "Host offl",
                "Held"
            ],
            &printable
        )
    );

    // Degradation sanity. Requeue always wastes completed work, so its
    // makespan must not beat the fault-free baseline. HostOnly makespan is
    // deliberately NOT asserted monotone: under MCC's random packing,
    // spilling offloads to otherwise-idle host cores acts as accidental
    // load-balancing and can *shorten* the run — a real finding, reported
    // in EXPERIMENTS.md rather than asserted away.
    for pool in POOLS {
        for policy in POLICIES {
            let find = |fb: &str, mtbf: f64| {
                rows.iter()
                    .find(|r| {
                        r.pool == pool
                            && r.policy == policy.to_string()
                            && r.fallback == fb
                            && r.device_mtbf_secs == mtbf
                    })
                    .expect("grid covers the point")
            };
            let clean = find("HostOnly", 0.0);
            let harsh_host = find("HostOnly", 150.0);
            let harsh_requeue = find("Requeue", 150.0);
            assert_eq!(
                clean.completion_rate, 1.0,
                "{pool}/{policy}: fault-free baseline must complete everything"
            );
            assert!(
                harsh_host.device_resets > 0 && harsh_host.fallback_offloads > 0,
                "{pool}/{policy}: harsh MTBF never struck a running job"
            );
            assert!(
                harsh_host.completion_rate >= 0.95,
                "{pool}/{policy}: HostOnly must keep nearly everything alive"
            );
            assert!(
                harsh_requeue.makespan_secs >= clean.makespan_secs * 0.98,
                "{pool}/{policy}: Requeue makespan beat the fault-free run ({} vs {})",
                harsh_requeue.makespan_secs,
                clean.makespan_secs
            );
        }
    }
    persist_json("ext_fault_mtbf", &rows);
}
