//! EXT-7 — heterogeneous accelerator pools on the shared-throughput
//! substrate.
//!
//! The paper's cluster is all-5110P. This extension reruns the Fig. 7
//! synthetic distributions through the shared-throughput substrate twice:
//! once on the homogeneous Phi pool, once with every even-numbered node's
//! card swapped for a GPU-like accelerator (no hardware-thread cap, SM
//! saturation at 32 concurrent kernels). The GPU-like card absorbs
//! thread-heavy jobs that oversubscribe a Phi, so the mixed pool should
//! shorten makespans on thread-skewed distributions while the sharing
//! policies (MCC vs MCCK) keep their relative order.

use phishare_bench::{
    banner, persist_json, run_sweep_sharded_auto, synthetic_workload, EXPERIMENT_SEED,
};
use phishare_cluster::report::{pct, secs, table};
use phishare_cluster::sweep::SweepJob;
use phishare_cluster::{ClusterConfig, DevicePool, DeviceSku, SubstrateMode};
use phishare_core::ClusterPolicy;
use phishare_workload::ResourceDist;
use serde::Serialize;

const JOBS: usize = 200;
const NODES: u32 = 8;
const DISTS: [ResourceDist; 4] = [
    ResourceDist::Uniform,
    ResourceDist::Normal,
    ResourceDist::LowSkew,
    ResourceDist::HighSkew,
];
const POLICIES: [ClusterPolicy; 2] = [ClusterPolicy::Mcc, ClusterPolicy::Mcck];

#[derive(Serialize)]
struct Row {
    dist: String,
    policy: String,
    pool: String,
    makespan_secs: f64,
    completed: usize,
}

fn main() {
    banner(
        "EXT-7",
        "Fig. 7 distributions on a heterogeneous Phi + GPU-like pool",
        "mixed pool shortens thread-bound makespans; MCCK keeps its edge over MCC",
    );

    let pools: [(&str, DevicePool); 2] = [
        ("phi-only", DevicePool::Uniform),
        ("phi+gpu", DevicePool::Alternate(DeviceSku::GpuLike)),
    ];

    let mut grid = Vec::new();
    for dist in DISTS {
        let wl = synthetic_workload(dist, JOBS, EXPERIMENT_SEED);
        for policy in POLICIES {
            for (pool_name, pool) in &pools {
                let mut config = ClusterConfig::paper_cluster(policy).with_nodes(NODES);
                config.pool = *pool;
                grid.push(SweepJob {
                    label: format!("{dist}|{policy}|{pool_name}"),
                    config,
                    workload: wl.clone(),
                });
            }
        }
    }
    // Sharded across worker processes on the shared-throughput substrate —
    // the manifest round-trips the substrate spelling, and the merge is
    // bit-identical to the in-process `run_sweep_substrate_auto`.
    let results = run_sweep_sharded_auto(
        grid,
        SubstrateMode::Shared,
        env!("CARGO_BIN_EXE_phishare-bench"),
    );

    let rows: Vec<Row> = results
        .iter()
        .map(|(label, res)| {
            let mut parts = label.split('|');
            let (dist, policy, pool) = (
                parts.next().unwrap(),
                parts.next().unwrap(),
                parts.next().unwrap(),
            );
            let r = res.as_ref().expect("cell runs");
            Row {
                dist: dist.into(),
                policy: policy.into(),
                pool: pool.into(),
                makespan_secs: r.makespan_secs,
                completed: r.completed,
            }
        })
        .collect();

    // Each chunk of 2 is (phi-only, phi+gpu) for one (dist, policy) cell.
    let mut printable = Vec::new();
    for pair in rows.chunks(2) {
        let (phi, mixed) = (&pair[0], &pair[1]);
        printable.push(vec![
            phi.dist.clone(),
            phi.policy.clone(),
            secs(phi.makespan_secs),
            secs(mixed.makespan_secs),
            pct(100.0 * (1.0 - mixed.makespan_secs / phi.makespan_secs)),
        ]);
    }
    println!(
        "{}",
        table(
            &[
                "Distribution",
                "Policy",
                "Phi-only (s)",
                "Phi+GPU (s)",
                "Mixed vs Phi",
            ],
            &printable
        )
    );
    persist_json("ext_hetero_mix", &rows);
}
