//! EXP-F8 — Fig. 8: makespan sensitivity to job resource distributions.
//!
//! 400 synthetic jobs per distribution on 8 nodes, MC vs MCC vs MCCK.
//! Paper shape: large improvements for uniform / normal / low-skew; much
//! smaller improvement for high-skew, where MCCK may even trail MCC
//! slightly (integration overhead); sharing always beats MC.

use phishare_bench::{banner, persist_json, synthetic_workload, EXPERIMENT_SEED, SYNTHETIC_JOBS};
use phishare_cluster::report::{bar_chart, pct, secs, table};
use phishare_cluster::sweep::{run_sweep_auto, SweepJob};
use phishare_cluster::ClusterConfig;
use phishare_core::ClusterPolicy;
use phishare_workload::ResourceDist;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dist: String,
    policy: String,
    makespan_secs: f64,
    reduction_vs_mc_pct: f64,
}

fn main() {
    banner(
        "Fig. 8",
        "makespan reduction for different job distributions (paper §V-B)",
        "big wins on uniform/normal/low-skew; small win on high-skew (MCCK ≲ MCC allowed there)",
    );

    let mut grid = Vec::new();
    for dist in ResourceDist::ALL {
        let wl = synthetic_workload(dist, SYNTHETIC_JOBS, EXPERIMENT_SEED);
        for policy in ClusterPolicy::ALL {
            grid.push(SweepJob {
                label: format!("{dist}/{policy}"),
                config: ClusterConfig::paper_cluster(policy),
                workload: wl.clone(),
            });
        }
    }
    let results = run_sweep_auto(grid);

    let mut rows: Vec<Row> = Vec::new();
    let mut printable = Vec::new();
    for chunk in results.chunks(3) {
        let mc = chunk[0].1.as_ref().expect("MC runs");
        for (label, res) in chunk {
            let r = res.as_ref().expect("cell runs");
            let (dist, policy) = label.split_once('/').expect("label format");
            rows.push(Row {
                dist: dist.into(),
                policy: policy.into(),
                makespan_secs: r.makespan_secs,
                reduction_vs_mc_pct: r.makespan_reduction_vs(mc),
            });
            printable.push(vec![
                dist.to_string(),
                policy.to_string(),
                secs(r.makespan_secs),
                pct(r.makespan_reduction_vs(mc)),
            ]);
        }
    }
    println!(
        "{}",
        table(
            &["Distribution", "Config", "Makespan (s)", "vs MC"],
            &printable
        )
    );

    for dist in ResourceDist::ALL {
        let series: Vec<(String, f64)> = rows
            .iter()
            .filter(|r| r.dist == dist.to_string())
            .map(|r| (r.policy.clone(), r.makespan_secs))
            .collect();
        println!("{}", bar_chart(&format!("makespan, {dist}"), &series, 48));
    }
    persist_json("fig8", &rows);
}
