//! PERF-6 — the end-to-end substrate benchmark gate.
//!
//! Runs a figure-scale sweep (3 policies × 3 synthetic distributions ×
//! 3 seeds, 8-node cells) twice through the same parallel sweep harness:
//! once on the slab-indexed substrate fast path with per-worker scratch
//! recycling (`run_sweep`), once on the seed's map-keyed substrate
//! (`run_sweep_keyed` — `BTreeMap` lookups per event, Vec-allocating
//! completion scans, aggregates recomputed by iteration). The keyed sweep
//! is the honest pre-optimization cost floor; the fast sweep must beat it
//! by ≥ 1.5× while staying **pin-for-pin identical** across every cell.
//!
//! The grid covers the three sharing-family policies (MCC, MCCK, and the
//! clairvoyant oracle) on offload-dense jobs crammed ~20 deep per device
//! — the regime the slab substrate targets, where per-offload state
//! access dominates wall time. MC is deliberately absent: exclusive mode
//! keeps one resident per device, so its cells measure matchmaking (gated
//! by `perf_negotiation`), not substrate state.
//!
//! Emits `BENCH_e2e.json` (under `target/experiments/` and at the repo
//! root) and **fails** below the floor — a regression gate, not just a
//! report. With `--features alloc-count` the gate also reports heap
//! allocations per executed offload for the fast sweep (counted by the
//! `phishare_bench::alloc_count` global allocator; the randomized
//! fast/keyed bit-identity lives in `cluster/tests/prop_runtime_diff.rs`).

use criterion::{criterion_group, BenchmarkId, Criterion};
use phishare_bench::{banner, persist_json, GateKnobs, EXPERIMENT_SEED, SYNTHETIC_JOBS};
use phishare_cluster::{
    run_sweep, run_sweep_keyed, ClusterConfig, Experiment, SubstrateMode, SweepJob,
};
use phishare_core::ClusterPolicy;
use phishare_sim::SimDuration;
use phishare_workload::{
    ArrivalProcess, ResourceDist, SyntheticParams, Workload, WorkloadBuilder, WorkloadKind,
};
use serde::Serialize;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

const NODES: u32 = 8;
const SEEDS: [u64; 3] = [EXPERIMENT_SEED, EXPERIMENT_SEED + 1, EXPERIMENT_SEED + 2];
const POLICIES: [ClusterPolicy; 3] = [
    ClusterPolicy::Mcc,
    ClusterPolicy::Mcck,
    ClusterPolicy::Oracle,
];
const DISTS: [ResourceDist; 3] = [
    ResourceDist::Uniform,
    ResourceDist::Normal,
    ResourceDist::HighSkew,
];
const SPEEDUP_FLOOR: f64 = 1.5;

/// Offload-dense synthetic jobs: small footprints so sharing policies
/// stack devices deep, 92–97% offload duty, and 256–512 kernel launches
/// per job. Per-offload substrate access (attach/commit/finish/complete)
/// then dominates each cell's wall time, which is exactly what this gate
/// measures. The resource distribution still shapes the mem/thread mix.
fn gate_workload(dist: ResourceDist, count: usize, seed: u64) -> Arc<Workload> {
    let params = SyntheticParams {
        mem_mb: (64, 160),
        threads: (4, 16),
        thread_jitter: 0.08,
        duty_cycle: (0.92, 0.97),
        offloads: (256, 512),
        duration_secs: (40.0, 100.0),
    };
    Arc::new(
        WorkloadBuilder::new(WorkloadKind::Synthetic(dist, params))
            .count(count)
            .seed(seed)
            // Brisk steady-state arrivals keep many jobs co-resident, so
            // keyed aggregate recomputation pays its full O(residents).
            .arrivals(ArrivalProcess::Poisson {
                mean_gap: SimDuration::from_millis(400),
            })
            .build(),
    )
}

/// Paper cluster with wider nodes (24 host slots) so devices actually run
/// deep, and arrival-triggered negotiations batched at 10 s so cycle
/// count — identical across substrates — stays a small share of the cell.
fn gate_config(policy: ClusterPolicy) -> ClusterConfig {
    let mut cfg = ClusterConfig::paper_cluster(policy).with_nodes(NODES);
    cfg.slots_per_node = 24;
    cfg.negotiation_trigger_delay = SimDuration::from_secs(10);
    cfg
}

/// The 9 shared workloads (distribution × seed), built once.
fn workloads() -> Vec<(ResourceDist, u64, Arc<Workload>)> {
    DISTS
        .iter()
        .flat_map(|&dist| {
            SEEDS
                .iter()
                .map(move |&seed| (dist, seed, gate_workload(dist, SYNTHETIC_JOBS, seed)))
        })
        .collect()
}

/// One grid instance (cheap: workload `Arc`s are shared, configs copied).
fn grid(workloads: &[(ResourceDist, u64, Arc<Workload>)]) -> Vec<SweepJob> {
    POLICIES
        .iter()
        .flat_map(|&policy| {
            workloads.iter().map(move |(dist, seed, wl)| SweepJob {
                label: format!("{policy}/{dist}/s{seed}"),
                config: gate_config(policy),
                workload: Arc::clone(wl),
            })
        })
        .collect()
}

/// Best-of-N wall time, milliseconds.
fn time_runs<F>(runs: usize, mut run: F) -> f64
where
    F: FnMut(),
{
    let mut best = f64::INFINITY;
    for _ in 0..runs {
        let start = Instant::now();
        run();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

#[derive(Serialize)]
struct E2eBench {
    nodes: u32,
    cells: usize,
    jobs_per_cell: usize,
    threads: usize,
    keyed_runs: usize,
    fast_runs: usize,
    /// Best-of-runs wall time of one keyed-substrate sweep, ms ("before").
    keyed_ms: f64,
    /// Best-of-runs wall time of one fast-substrate sweep, ms ("after").
    fast_ms: f64,
    speedup: f64,
    speedup_floor: f64,
    completed_total: usize,
    /// Profiled offload segments across all cells (upper bound on executed
    /// offloads; kills and host fallback can only reduce it).
    total_offloads: usize,
    /// Heap allocation calls per profiled offload over one fast sweep —
    /// `null` unless built with `--features alloc-count`.
    allocs_per_offload: Option<f64>,
    /// Negotiation cycles skipped as quiescent across one fast sweep,
    /// summed over all cells (the runtime-layer work avoidance this gate
    /// now benefits from).
    cycles_skipped_total: u64,
    /// Negotiation cycles across one fast sweep, all cells.
    negotiation_cycles_total: u64,
    knobs: GateKnobs,
}

#[cfg(feature = "alloc-count")]
fn allocation_count() -> Option<u64> {
    Some(phishare_bench::alloc_count::allocations())
}

#[cfg(not(feature = "alloc-count"))]
fn allocation_count() -> Option<u64> {
    None
}

fn gate() -> E2eBench {
    let wls = workloads();
    let threads = phishare_cluster::sweep::default_threads();

    // Sanity first: every cell must agree pin-for-pin across substrates
    // before timing means anything.
    let fast = run_sweep(grid(&wls), threads);
    let keyed = run_sweep_keyed(grid(&wls), threads);
    assert_eq!(fast.len(), keyed.len());
    for ((fl, fr), (kl, kr)) in fast.iter().zip(keyed.iter()) {
        assert_eq!(fl, kl, "cell order diverged");
        assert_eq!(fr, kr, "substrates diverged on {fl}");
    }

    let total_offloads: usize = POLICIES.len()
        * wls
            .iter()
            .map(|(_, _, wl)| {
                wl.jobs
                    .iter()
                    .map(|j| j.profile.offload_count())
                    .sum::<usize>()
            })
            .sum::<usize>();
    let completed_total: usize = fast
        .iter()
        .map(|(_, r)| r.as_ref().map(|r| r.completed).unwrap_or(0))
        .sum();
    let cycles_skipped_total: u64 = fast
        .iter()
        .map(|(_, r)| r.as_ref().map(|r| r.cycles_skipped).unwrap_or(0))
        .sum();
    let negotiation_cycles_total: u64 = fast
        .iter()
        .map(|(_, r)| r.as_ref().map(|r| r.negotiation_cycles).unwrap_or(0))
        .sum();

    let keyed_runs = 2;
    let fast_runs = 3;
    let keyed_ms = time_runs(keyed_runs, || {
        black_box(run_sweep_keyed(grid(&wls), threads));
    });
    let fast_ms = time_runs(fast_runs, || {
        black_box(run_sweep(grid(&wls), threads));
    });

    // Allocation census over one fast sweep (feature-gated).
    let allocs_per_offload = allocation_count().map(|before| {
        run_sweep(grid(&wls), threads);
        let delta = allocation_count().expect("feature on") - before;
        delta as f64 / total_offloads as f64
    });

    E2eBench {
        nodes: NODES,
        cells: fast.len(),
        jobs_per_cell: SYNTHETIC_JOBS,
        threads,
        keyed_runs,
        fast_runs,
        keyed_ms,
        fast_ms,
        speedup: keyed_ms / fast_ms,
        speedup_floor: SPEEDUP_FLOOR,
        completed_total,
        total_offloads,
        allocs_per_offload,
        cycles_skipped_total,
        negotiation_cycles_total,
        knobs: GateKnobs {
            partitions: phishare_condor::collector::default_partitions(),
            threads,
            skip_quiescent: gate_config(ClusterPolicy::Mcck).skip_quiescent,
            match_path: "delta".into(),
        },
    }
}

/// Criterion view of one cell at a smaller size, so per-run numbers show
/// up in the standard bench report without the full gate cost.
fn bench_substrates(c: &mut Criterion) {
    let wl = gate_workload(ResourceDist::Uniform, 200, EXPERIMENT_SEED);
    let cfg = gate_config(ClusterPolicy::Mcck);
    let mut group = c.benchmark_group("substrate_run");
    group.sample_size(10);
    group.bench_with_input(
        BenchmarkId::new("keyed", "4n/200j"),
        &(&cfg, &wl),
        |b, (cfg, wl)| {
            b.iter(|| {
                black_box(
                    Experiment::run_with_substrate(cfg, wl, SubstrateMode::Keyed).expect("runs"),
                )
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("fast", "4n/200j"),
        &(&cfg, &wl),
        |b, (cfg, wl)| b.iter(|| black_box(Experiment::run(cfg, wl).expect("runs"))),
    );
    group.finish();
}

criterion_group!(benches, bench_substrates);

fn main() {
    banner(
        "perf_e2e",
        "the figure-scale sweeps behind §V (policies × distributions × seeds)",
        "slab substrate + scratch recycling ≥ 1.5× faster than the keyed substrate, \
         pin-for-pin identical sweeps",
    );

    let result = gate();
    println!(
        "{} cells ({} nodes, {} jobs each) on {} workers, {} jobs completed",
        result.cells, result.nodes, result.jobs_per_cell, result.threads, result.completed_total
    );
    println!(
        "keyed (best of {}): {:.1} ms   fast (best of {}): {:.1} ms   speedup: {:.2}x",
        result.keyed_runs, result.keyed_ms, result.fast_runs, result.fast_ms, result.speedup
    );
    if let Some(a) = result.allocs_per_offload {
        println!("allocations per profiled offload: {a:.2}");
    }
    println!(
        "quiescence: {} of {} negotiation cycles skipped across one fast sweep",
        result.cycles_skipped_total, result.negotiation_cycles_total
    );
    persist_json("BENCH_e2e", &result);
    // Also drop a copy at the repo root; the acceptance numbers are
    // committed alongside the code they measure.
    if let Ok(json) = serde_json::to_string_pretty(&result) {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_e2e.json");
        if std::fs::write(path, json + "\n").is_ok() {
            println!("[saved {path}]");
        }
    }
    assert!(
        result.speedup >= result.speedup_floor,
        "substrate fast path regressed: {:.2}x < {:.1}x floor",
        result.speedup,
        result.speedup_floor
    );

    benches();
}
