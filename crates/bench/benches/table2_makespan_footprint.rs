//! EXP-T2 — Table II: makespan and footprint reduction on 1000 real jobs.
//!
//! Paper numbers: MC 3568 s; MCC 2611 s (−27 %), footprint 8→6 (25 %);
//! MCCK 2183 s (−39 %), footprint 8→5 (37.5 %). Absolute seconds differ on
//! the simulated substrate; the reductions are the reproduction target.

use phishare_bench::{
    banner, persist_json, run_cell, table1_workload, EXPERIMENT_SEED, TABLE1_JOBS,
};
use phishare_cluster::report::{pct, secs, table};
use phishare_cluster::{footprint_search, ClusterConfig};
use phishare_core::ClusterPolicy;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    policy: String,
    makespan_secs: f64,
    reduction_pct: f64,
    footprint_nodes: Option<u32>,
    footprint_reduction_pct: Option<f64>,
}

fn main() {
    banner(
        "Table II",
        "makespan and footprint reduction (paper §V-A)",
        "MCC ≈ 27% makespan reduction, footprint 8→6; MCCK ≈ 39%, footprint 8→5",
    );
    println!("(footprint matches the MC@8 makespan within a 2% tolerance)\n");
    let workload = table1_workload(TABLE1_JOBS, EXPERIMENT_SEED);

    let mc = run_cell(ClusterPolicy::Mc, 8, &workload);
    let mut rows = vec![Row {
        policy: "MC".into(),
        makespan_secs: mc.makespan_secs,
        reduction_pct: 0.0,
        footprint_nodes: None,
        footprint_reduction_pct: None,
    }];

    for policy in [ClusterPolicy::Mcc, ClusterPolicy::Mcck] {
        let r = run_cell(policy, 8, &workload);
        let base_cfg = ClusterConfig::paper_cluster(policy);
        // "Same makespan" up to a 2 % measurement tolerance.
        let fp = footprint_search(&base_cfg, &workload, mc.makespan_secs, 8, 0.02)
            .expect("footprint search runs");
        rows.push(Row {
            policy: policy.to_string(),
            makespan_secs: r.makespan_secs,
            reduction_pct: r.makespan_reduction_vs(&mc),
            footprint_nodes: fp.nodes_required,
            footprint_reduction_pct: fp.reduction_vs(8),
        });
    }

    let printable: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.policy.clone(),
                secs(r.makespan_secs),
                if r.reduction_pct == 0.0 {
                    "-".into()
                } else {
                    pct(r.reduction_pct)
                },
                r.footprint_nodes
                    .map(|n| n.to_string())
                    .unwrap_or_else(|| "-".into()),
                r.footprint_reduction_pct
                    .map(pct)
                    .unwrap_or_else(|| "-".into()),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &[
                "Configuration",
                "Makespan on 8 nodes (s)",
                "Reduction vs MC",
                "Cluster size for MC@8 makespan",
                "Footprint reduction",
            ],
            &printable
        )
    );
    persist_json("table2", &rows);
}
