//! ABL-3 — negotiation-cycle sensitivity.
//!
//! The paper's only acknowledged overhead is waiting for Condor's
//! negotiation cycle after a qedit (§IV-D1, §V-B). This ablation sweeps the
//! periodic interval and the update-trigger delay to show how much of
//! MCCK's makespan is integration latency — and how badly MCC (which only
//! sees freed shared capacity at periodic cycles) degrades as the interval
//! grows.

use phishare_bench::{banner, persist_json, table1_workload, EXPERIMENT_SEED};
use phishare_cluster::report::{secs, table};
use phishare_cluster::sweep::{run_sweep_auto, SweepJob};
use phishare_cluster::ClusterConfig;
use phishare_core::ClusterPolicy;
use phishare_sim::SimDuration;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    policy: String,
    interval_secs: u64,
    trigger_secs: u64,
    makespan_secs: f64,
}

fn main() {
    banner(
        "ABL-3",
        "negotiation interval / trigger-delay sensitivity (§IV-D1 overhead)",
        "MCC degrades with the periodic interval; MCCK depends mainly on the trigger delay",
    );

    let wl = table1_workload(400, EXPERIMENT_SEED);
    let mut grid = Vec::new();
    for policy in [ClusterPolicy::Mcc, ClusterPolicy::Mcck] {
        for interval in [5u64, 10, 30, 60, 120] {
            for trigger in [1u64, 2, 5, 10] {
                let mut config = ClusterConfig::paper_cluster(policy);
                config.negotiation_interval = SimDuration::from_secs(interval);
                config.negotiation_trigger_delay = SimDuration::from_secs(trigger);
                grid.push(SweepJob {
                    label: format!("{policy}|{interval}|{trigger}"),
                    config,
                    workload: wl.clone(),
                });
            }
        }
    }
    let results = run_sweep_auto(grid);

    let rows: Vec<Row> = results
        .iter()
        .map(|(label, res)| {
            let mut parts = label.split('|');
            Row {
                policy: parts.next().unwrap().into(),
                interval_secs: parts.next().unwrap().parse().unwrap(),
                trigger_secs: parts.next().unwrap().parse().unwrap(),
                makespan_secs: res.as_ref().expect("cell runs").makespan_secs,
            }
        })
        .collect();

    let printable: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.policy.clone(),
                r.interval_secs.to_string(),
                r.trigger_secs.to_string(),
                secs(r.makespan_secs),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &[
                "Policy",
                "Interval (s)",
                "Trigger delay (s)",
                "Makespan (s)"
            ],
            &printable
        )
    );
    persist_json("abl_negotiation_interval", &rows);
}
