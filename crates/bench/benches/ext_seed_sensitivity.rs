//! EXT-2 — seed sensitivity of the headline result.
//!
//! Table II is one draw of the workload generator. This extension repeats
//! the Table II measurement over independent workload seeds and reports the
//! spread of the makespan reductions — the error bars the paper doesn't
//! show. A stable reproduction should have MCC and MCCK reduction bands
//! that do not overlap zero and do not overlap each other.

use phishare_bench::{banner, persist_json, table1_workload};
use phishare_cluster::report::{pct, table};
use phishare_cluster::sweep::{run_sweep_auto, SweepJob};
use phishare_cluster::ClusterConfig;
use phishare_core::ClusterPolicy;
use phishare_sim::Summary;
use serde::Serialize;

const SEEDS: [u64; 5] = [7, 11, 23, 59, 101];
const JOBS: usize = 600; // scaled from 1000 to keep the 15-run grid quick

#[derive(Serialize)]
struct Row {
    seed: u64,
    mcc_reduction_pct: f64,
    mcck_reduction_pct: f64,
}

fn main() {
    banner(
        "EXT-2",
        "seed sensitivity of Table II's reductions",
        "tight bands: MCC ≈ 25–30%, MCCK ≈ 35–39%, never overlapping",
    );

    let mut grid = Vec::new();
    for seed in SEEDS {
        let wl = table1_workload(JOBS, seed);
        for policy in ClusterPolicy::ALL {
            grid.push(SweepJob {
                label: format!("{seed}|{policy}"),
                config: ClusterConfig::paper_cluster(policy),
                workload: wl.clone(),
            });
        }
    }
    let results = run_sweep_auto(grid);

    let mut rows = Vec::new();
    let mut mcc_stats = Summary::new();
    let mut mcck_stats = Summary::new();
    let mut printable = Vec::new();
    for (i, chunk) in results.chunks(3).enumerate() {
        let mc = chunk[0].1.as_ref().expect("MC runs");
        let mcc = chunk[1].1.as_ref().expect("MCC runs");
        let mcck = chunk[2].1.as_ref().expect("MCCK runs");
        let (r_mcc, r_mcck) = (
            mcc.makespan_reduction_vs(mc),
            mcck.makespan_reduction_vs(mc),
        );
        mcc_stats.record(r_mcc);
        mcck_stats.record(r_mcck);
        rows.push(Row {
            seed: SEEDS[i],
            mcc_reduction_pct: r_mcc,
            mcck_reduction_pct: r_mcck,
        });
        printable.push(vec![SEEDS[i].to_string(), pct(r_mcc), pct(r_mcck)]);
    }
    printable.push(vec![
        "mean ± σ".into(),
        format!("{} ± {:.1}", pct(mcc_stats.mean()), mcc_stats.std_dev()),
        format!("{} ± {:.1}", pct(mcck_stats.mean()), mcck_stats.std_dev()),
    ]);
    println!(
        "{}",
        table(
            &[
                "Workload seed",
                "MCC reduction vs MC",
                "MCCK reduction vs MC"
            ],
            &printable
        )
    );
    assert!(
        mcck_stats.min() > mcc_stats.max() - 1.0,
        "MCCK band unexpectedly overlaps MCC band"
    );
    persist_json("ext_seed_sensitivity", &rows);
}
