//! PERF-10 — the 10⁵-slot partitioned-matchmaking gate.
//!
//! Runs a long steady-state schedule over a 100 000-slot pool
//! (25 000 nodes × 4 slots): a permanent 2000-job backlog whose compiled
//! guard (`PhiFreeMemory >= 50 GB`) no node can ever satisfy, periodic
//! arrival bursts whose placements complete and wash out two cycles
//! later, and then a long quiescent tail in which nothing changes at all
//! — the regime long `perf_e2e`-style runs spend most of their cycles in.
//!
//! Three twins replay the identical schedule:
//!
//! * **measured** — the partitioned delta path (8 collector partitions)
//!   with quiescence detection on: burst/wash cycles screen per-partition
//!   and merge, quiescent cycles short-circuit in O(1).
//! * **baseline** — the PR 6 delta path: one partition, job-sharded
//!   screen, quiescence off. Every quiescent cycle still walks the whole
//!   pending set to rediscover that nothing changed.
//! * **oracle** — `MatchPath::Full`, which re-evaluates every pending job
//!   from scratch each cycle.
//!
//! The identity phase drives all three in lockstep over the full schedule
//! and asserts bit-identical matches, stats, collector state, and pending
//! sets every cycle — only then are fresh measured/baseline twins re-run
//! for timing. Emits `BENCH_negotiation_xxl.json` (under
//! `target/experiments/` and at the repo root) and **fails** below the 4×
//! acceptance floor. With `--features alloc-count` the gate additionally
//! asserts the quiescent fast path is allocation-free on average (< 1
//! heap allocation per skipped cycle).

use phishare_bench::{persist_json, GateKnobs};
use phishare_classad::ad::REQUIREMENTS;
use phishare_classad::{ClassAd, Value};
use phishare_condor::{attrs, Collector, JobQueue, MatchPath, Negotiator, SlotId};
use phishare_sim::SimTime;
use phishare_workload::JobId;
use serde::Serialize;
use std::time::Instant;

const NODES: u32 = 25_000;
const SLOTS_PER_NODE: u32 = 4;
/// Collector partitions on the measured twin.
const PARTITIONS: usize = 8;
/// Permanently-pending jobs with a never-satisfiable compiled guard — the
/// per-cycle cost the quiescence fast path deletes.
const BACKLOG: u64 = 2_000;
/// Arrival bursts land every `BURST_EVERY` cycles during the active phase.
const BURSTS: u64 = 8;
const BURST_EVERY: u64 = 4;
const ARRIVALS_PER_BURST: u64 = 50;
/// Cycles a placed job holds its claim before completing.
const LIFETIME: u64 = 2;
/// Cycles 0..ACTIVE see bursts, completions, and washes; everything after
/// is a pure quiescent tail.
const ACTIVE_CYCLES: u64 = (BURSTS - 1) * BURST_EVERY + LIFETIME + 2;
/// The quiescent tail dominates the schedule on purpose: at the paper's
/// 30 s negotiation interval, 3000 empty cycles is one idle day with a
/// standing backlog — the regime where skipless matchmaking burns cost
/// proportional to queue depth for literally nothing.
const CYCLES: u64 = ACTIVE_CYCLES + 3_000;
const SPEEDUP_FLOOR: f64 = 4.0;

/// A backlog job: a plain indexable guard asking for more card memory
/// than any node advertises. The guard prefilter answers it from an empty
/// index range — the cost driver is not evaluation but the *per-job walk*
/// every non-quiescent-aware cycle repeats.
fn backlog_ad(i: u64) -> ClassAd {
    let mut ad = ClassAd::new();
    ad.insert(attrs::JOB_ID, i);
    ad.insert(attrs::REQUEST_EXCLUSIVE_PHI, false);
    ad.insert(attrs::REQUEST_PHI_MEMORY, 50_000i64);
    ad.insert_expr(
        REQUIREMENTS,
        "TARGET.PhiDevices >= 1 && TARGET.PhiFreeMemory >= MY.RequestPhiMemory",
    )
    .unwrap();
    ad
}

/// Burst arrivals: placement-pinned, exactly as the paper's cluster
/// scheduler produces (the schedd pins each dispatch to the slot or node
/// the planner chose). Every arrival carries a real memory request, so its
/// commit decrements the node's advertised `PhiFreeMemory` and its
/// completion restores it — the dirt that drives wash cycles. Open
/// wide-guard arrivals (which cost an index-range scan per job regardless
/// of partitioning) are the XL gate's subject, not this one's.
fn arrival_ad(i: u64) -> ClassAd {
    let mut ad = ClassAd::new();
    ad.insert(attrs::JOB_ID, i);
    ad.insert(attrs::REQUEST_EXCLUSIVE_PHI, false);
    // 37 is coprime to NODES, so every arrival in the run pins a distinct
    // node and none collide.
    let node = 1 + (i.wrapping_mul(37) % NODES as u64);
    if i % 5 == 4 {
        ad.insert(attrs::REQUEST_PHI_MEMORY, 1000i64);
        ad.insert_expr(REQUIREMENTS, &attrs::pin_to_node(&format!("node{node}")))
            .unwrap();
    } else {
        let slot = 1 + (i % SLOTS_PER_NODE as u64);
        ad.insert(attrs::REQUEST_PHI_MEMORY, 3000i64);
        ad.insert_expr(
            REQUIREMENTS,
            &attrs::pin_requirements(&format!("slot{slot}@node{node}")),
        )
        .unwrap();
    }
    ad
}

fn int_attr(ad: &ClassAd, name: &str) -> i64 {
    match ad.get(name) {
        Some(Value::Int(i)) => *i,
        _ => 0,
    }
}

/// Undo one placement on completion: release the claim and hand the job's
/// resources back to every slot ad of the node (the inverse of the
/// negotiator's same-cycle commit).
fn complete(collector: &mut Collector, slot: SlotId, ad: &ClassAd) {
    let mem = int_attr(ad, attrs::REQUEST_PHI_MEMORY);
    let exclusive = matches!(
        ad.get(attrs::REQUEST_EXCLUSIVE_PHI),
        Some(Value::Bool(true))
    );
    for s in collector.node_slots(slot.node) {
        let status = collector.get(s).expect("listed slot exists");
        let free = int_attr(&status.ad, attrs::PHI_FREE_MEMORY) + mem;
        let devs = int_attr(&status.ad, attrs::PHI_DEVICES_FREE) + i64::from(exclusive);
        collector.refresh_phi_availability(s, free.max(0) as u64, devs.max(0) as u32);
    }
    collector.release(slot);
}

struct Twin {
    queue: JobQueue,
    collector: Collector,
    negotiator: Negotiator,
    /// (completion cycle, matched slot, job id) of live placements.
    live: Vec<(u64, SlotId, JobId)>,
    /// Accumulated wall time of the negotiate calls only, ms.
    negotiate_ms: f64,
    matched: usize,
}

impl Twin {
    fn new(path: MatchPath, partitions: usize, quiescence: bool) -> Twin {
        let mut collector = Collector::with_partitions(partitions);
        for n in 1..=NODES {
            for s in 1..=SLOTS_PER_NODE {
                let id = SlotId { node: n, slot: s };
                collector.advertise(
                    id,
                    attrs::machine_ad(&id.name(), &format!("node{n}"), 1, 8192, 7680, 1),
                );
            }
        }
        let mut queue = JobQueue::new();
        for i in 0..BACKLOG {
            queue
                .submit(JobId(i), backlog_ad(i), SimTime::ZERO)
                .unwrap();
        }
        Twin {
            queue,
            collector,
            negotiator: Negotiator::default()
                .with_path(path)
                .with_quiescence(quiescence),
            live: Vec::new(),
            negotiate_ms: 0.0,
            matched: 0,
        }
    }

    /// One schedule step: completions, burst arrivals (if due), then a
    /// (timed) negotiation cycle.
    fn step(&mut self, cycle: u64) -> (Vec<phishare_condor::Match>, phishare_condor::CycleStats) {
        let mut still_live = Vec::new();
        for (done_at, slot, job) in std::mem::take(&mut self.live) {
            if done_at <= cycle {
                let ad = self.queue.get(job).expect("matched job exists").ad.clone();
                complete(&mut self.collector, slot, &ad);
            } else {
                still_live.push((done_at, slot, job));
            }
        }
        self.live = still_live;
        if cycle.is_multiple_of(BURST_EVERY) && cycle < BURSTS * BURST_EVERY {
            let burst = cycle / BURST_EVERY;
            for k in 0..ARRIVALS_PER_BURST {
                let id = BACKLOG + burst * ARRIVALS_PER_BURST + k;
                self.queue
                    .submit(JobId(id), arrival_ad(id), SimTime::ZERO)
                    .unwrap();
            }
        }

        let start = Instant::now();
        let (matches, stats) = self
            .negotiator
            .negotiate_with_stats(&mut self.queue, &mut self.collector);
        self.negotiate_ms += start.elapsed().as_secs_f64() * 1e3;

        self.matched += matches.len();
        for m in &matches {
            self.live.push((cycle + LIFETIME, m.slot, m.job));
        }
        (matches, stats)
    }
}

#[derive(Serialize)]
struct XxlBench {
    nodes: u32,
    slots_per_node: u32,
    slots: u32,
    backlog_jobs: u64,
    cycles: u64,
    active_cycles: u64,
    /// Cycles the measured twin observed as quiescent (identity phase).
    quiescent_cycles: u64,
    bursts: u64,
    arrivals_per_burst: u64,
    lifetime_cycles: u64,
    /// Total negotiate wall time, partitioned + quiescence-skipping, ms.
    partitioned_ms: f64,
    /// Total negotiate wall time, PR 6 single-partition delta path, ms.
    baseline_ms: f64,
    speedup: f64,
    speedup_floor: f64,
    matched: usize,
    /// Heap allocations per quiescent negotiate call on the measured twin
    /// — `null` unless built with `--features alloc-count`.
    allocs_per_quiescent_cycle: Option<f64>,
    knobs: GateKnobs,
}

#[cfg(feature = "alloc-count")]
fn allocation_count() -> Option<u64> {
    Some(phishare_bench::alloc_count::allocations())
}

#[cfg(not(feature = "alloc-count"))]
fn allocation_count() -> Option<u64> {
    None
}

fn gate() -> XxlBench {
    let slots = NODES * SLOTS_PER_NODE;
    assert!(slots >= 100_000, "XXL gate must cover at least 10^5 slots");

    // --- identity phase -------------------------------------------------
    // All three twins replay the schedule in lockstep; every cycle must be
    // bit-identical before any timing means anything. The full-rematch
    // twin is the ground-truth oracle: it cannot skip, shard, or
    // partition anything.
    let mut measured = Twin::new(MatchPath::Delta, PARTITIONS, true);
    let mut baseline = Twin::new(MatchPath::Delta, 1, false);
    let mut oracle = Twin::new(MatchPath::Full, 1, false);
    let mut quiescent_cycles = 0u64;
    for cycle in 0..CYCLES {
        if Negotiator::cycle_is_quiescent(&measured.queue, &measured.collector) {
            quiescent_cycles += 1;
        }
        let m = measured.step(cycle);
        let b = baseline.step(cycle);
        let o = oracle.step(cycle);
        assert_eq!(m, b, "cycle {cycle}: measured diverged from baseline");
        assert_eq!(b, o, "cycle {cycle}: baseline diverged from full oracle");
        assert_eq!(
            measured.collector, oracle.collector,
            "cycle {cycle}: collector state diverged"
        );
        assert_eq!(
            measured.queue.pending(),
            oracle.queue.pending(),
            "cycle {cycle}: pending sets diverged"
        );
    }
    assert!(measured.matched > 0, "burst arrivals must place jobs");
    assert!(
        measured.queue.pending().len() as u64 >= BACKLOG,
        "the guarded backlog must persist (it is the skipless path's cost driver)"
    );
    assert!(
        quiescent_cycles >= CYCLES - ACTIVE_CYCLES,
        "the tail must actually be quiescent ({quiescent_cycles} of {CYCLES} cycles)"
    );

    // --- timing phase ---------------------------------------------------
    // Fresh twins, same schedule, no per-cycle assertions in the timed
    // region. Quiescent-tail allocations on the measured twin are counted
    // when the alloc-count feature is on.
    let mut measured = Twin::new(MatchPath::Delta, PARTITIONS, true);
    let mut baseline = Twin::new(MatchPath::Delta, 1, false);
    let mut tail_allocs = 0u64;
    for cycle in 0..CYCLES {
        let before = if cycle >= ACTIVE_CYCLES {
            allocation_count()
        } else {
            None
        };
        measured.step(cycle);
        if let Some(before) = before {
            tail_allocs += allocation_count().expect("feature on") - before;
        }
        baseline.step(cycle);
    }
    let allocs_per_quiescent_cycle = allocation_count().map(|_| {
        let per_cycle = tail_allocs as f64 / (CYCLES - ACTIVE_CYCLES) as f64;
        assert!(
            per_cycle < 1.0,
            "quiescent fast path must be allocation-free, measured {per_cycle:.2}/cycle"
        );
        per_cycle
    });

    XxlBench {
        nodes: NODES,
        slots_per_node: SLOTS_PER_NODE,
        slots,
        backlog_jobs: BACKLOG,
        cycles: CYCLES,
        active_cycles: ACTIVE_CYCLES,
        quiescent_cycles,
        bursts: BURSTS,
        arrivals_per_burst: ARRIVALS_PER_BURST,
        lifetime_cycles: LIFETIME,
        partitioned_ms: measured.negotiate_ms,
        baseline_ms: baseline.negotiate_ms,
        speedup: baseline.negotiate_ms / measured.negotiate_ms,
        speedup_floor: SPEEDUP_FLOOR,
        matched: measured.matched,
        allocs_per_quiescent_cycle,
        knobs: GateKnobs {
            partitions: PARTITIONS,
            threads: phishare_condor::collector::partition_threads(PARTITIONS),
            skip_quiescent: true,
            match_path: "delta".into(),
        },
    }
}

fn main() {
    phishare_bench::banner(
        "perf_negotiation_xxl",
        "partitioned matchmaking + quiescent-cycle skipping at 10^5 slots",
        "partitioned delta + quiescence ≥ 4× over the single-partition skipless delta path",
    );

    let result = gate();
    println!(
        "pool {}x{} = {} slots, {} guarded backlog jobs, {} cycles ({} active, {} quiescent), \
         {} bursts x {} arrivals ({} matched)",
        result.nodes,
        result.slots_per_node,
        result.slots,
        result.backlog_jobs,
        result.cycles,
        result.active_cycles,
        result.quiescent_cycles,
        result.bursts,
        result.arrivals_per_burst,
        result.matched
    );
    println!(
        "baseline delta: {:.1} ms   partitioned+quiescence: {:.1} ms   speedup: {:.1}x (floor {:.1}x)",
        result.baseline_ms, result.partitioned_ms, result.speedup, result.speedup_floor
    );
    if let Some(a) = result.allocs_per_quiescent_cycle {
        println!("allocations per quiescent cycle: {a:.3}");
    }
    persist_json("BENCH_negotiation_xxl", &result);
    // Also drop a copy at the repo root; the acceptance numbers are
    // committed alongside the code they measure.
    if let Ok(json) = serde_json::to_string_pretty(&result) {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_negotiation_xxl.json"
        );
        if std::fs::write(path, json + "\n").is_ok() {
            println!("[saved {path}]");
        }
    }
    assert!(
        result.speedup >= result.speedup_floor,
        "partitioned matchmaking regressed: {:.1}x < {:.1}x floor",
        result.speedup,
        result.speedup_floor
    );
}
