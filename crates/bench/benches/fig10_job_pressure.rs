//! EXP-F10 — Fig. 10: makespan at constant job pressure.
//!
//! Jobs scale with cluster size (200 per node: 400→1600 as nodes go 2→8),
//! normal distribution. Paper: at the 8-node / 1600-job point, MCCK
//! improves makespan ≈ 11 % over MCC and ≈ 40 % over MC — cluster-level
//! scheduling stays useful even at high pressure once there are enough
//! nodes to decide between.

use phishare_bench::{banner, persist_json, synthetic_workload, EXPERIMENT_SEED};
use phishare_cluster::report::{pct, secs, table};
use phishare_cluster::sweep::{run_sweep_auto, SweepJob};
use phishare_cluster::ClusterConfig;
use phishare_core::ClusterPolicy;
use phishare_workload::ResourceDist;
use serde::Serialize;

const POINTS: [(u32, usize); 4] = [(2, 400), (4, 800), (6, 1200), (8, 1600)];

#[derive(Serialize)]
struct Row {
    nodes: u32,
    jobs: usize,
    policy: String,
    makespan_secs: f64,
}

fn main() {
    banner(
        "Fig. 10",
        "makespan with constant job pressure (paper §V-B)",
        "at 8 nodes / 1600 jobs: MCCK ≈ 11% better than MCC, ≈ 40% better than MC",
    );

    let mut grid = Vec::new();
    for (nodes, jobs) in POINTS {
        let wl = synthetic_workload(ResourceDist::Normal, jobs, EXPERIMENT_SEED);
        for policy in ClusterPolicy::ALL {
            grid.push(SweepJob {
                label: format!("{nodes}|{jobs}|{policy}"),
                config: ClusterConfig::paper_cluster(policy).with_nodes(nodes),
                workload: wl.clone(),
            });
        }
    }
    let results = run_sweep_auto(grid);

    let rows: Vec<Row> = results
        .iter()
        .map(|(label, res)| {
            let r = res.as_ref().expect("cell runs");
            let mut parts = label.split('|');
            Row {
                nodes: parts.next().unwrap().parse().unwrap(),
                jobs: parts.next().unwrap().parse().unwrap(),
                policy: parts.next().unwrap().into(),
                makespan_secs: r.makespan_secs,
            }
        })
        .collect();

    let mut printable = Vec::new();
    for (nodes, jobs) in POINTS {
        let get = |p: &str| {
            rows.iter()
                .find(|r| r.nodes == nodes && r.policy == p)
                .map(|r| r.makespan_secs)
                .expect("cell present")
        };
        let (mc, mcc, mcck) = (get("MC"), get("MCC"), get("MCCK"));
        printable.push(vec![
            format!("{nodes} / {jobs}"),
            secs(mc),
            secs(mcc),
            secs(mcck),
            pct(100.0 * (1.0 - mcck / mcc)),
            pct(100.0 * (1.0 - mcck / mc)),
        ]);
    }
    println!(
        "{}",
        table(
            &[
                "Nodes / jobs",
                "MC (s)",
                "MCC (s)",
                "MCCK (s)",
                "MCCK vs MCC",
                "MCCK vs MC",
            ],
            &printable
        )
    );
    persist_json("fig10", &rows);
}
