//! EXT-8 — policy robustness under chaos perturbation stacks.
//!
//! The paper evaluates a calm cluster; production Phi deployments see
//! thermal throttling, fabric latency spikes, stale collector state, and
//! scheduler timer drift all at once. This extension runs MCC and MCCK
//! under each perturbation stack (and a combined "all" stack layered on
//! top of device faults) and reports how makespan, retries, and held jobs
//! degrade relative to the calm baseline. Every stack is materialized
//! deterministically from the experiment seed, so the table is
//! reproducible bit-for-bit.

use phishare_bench::{banner, persist_json, table1_workload};
use phishare_cluster::report::{pct, table};
use phishare_cluster::sweep::{run_sweep_auto, SweepJob};
use phishare_cluster::ClusterConfig;
use phishare_core::ClusterPolicy;
use serde::Serialize;

const EXPERIMENT_SEED: u64 = 7;
const JOBS: usize = 300;
/// Perturbation horizon: long enough to cover every run in the grid.
const HORIZON_SECS: f64 = 6000.0;
const POLICIES: [ClusterPolicy; 2] = [ClusterPolicy::Mcc, ClusterPolicy::Mcck];
/// The stacks under test, in presentation order.
const STACKS: [&str; 6] = ["none", "derate", "latency", "stale-ads", "jitter", "all"];

#[derive(Serialize)]
struct Row {
    policy: String,
    stack: String,
    makespan_secs: f64,
    makespan_degradation: f64,
    completion_rate: f64,
    perturb_windows: u64,
    inflated_offloads: u64,
    stale_ad_skips: u64,
    jittered_cycles: u64,
    retries: u64,
    held_after_retries: usize,
}

/// Build the config for one (policy, stack) cell.
fn cfg(policy: ClusterPolicy, stack: &str) -> ClusterConfig {
    let mut cfg = ClusterConfig::paper_cluster(policy);
    let p = &mut cfg.perturb;
    p.horizon_secs = HORIZON_SECS;
    match stack {
        "none" => p.horizon_secs = 0.0,
        "derate" => {
            p.derate.mean_gap_secs = 120.0;
            p.derate.duration_secs = 60.0;
            p.derate.factor = 0.4;
        }
        "latency" => {
            p.latency.mean_gap_secs = 90.0;
            p.latency.duration_secs = 45.0;
            p.latency.extra_secs = 2.0;
        }
        "stale-ads" => {
            p.stale_ads.mean_gap_secs = 90.0;
            p.stale_ads.duration_secs = 60.0;
        }
        "jitter" => {
            // Jitter alone leaves the window generator empty; give it a
            // token stale-ads window so `enabled()` reflects the stack.
            p.jitter_max_secs = 5.0;
            p.stale_ads.mean_gap_secs = HORIZON_SECS * 10.0;
        }
        "all" => {
            p.derate.mean_gap_secs = 120.0;
            p.derate.duration_secs = 60.0;
            p.derate.factor = 0.4;
            p.latency.mean_gap_secs = 90.0;
            p.latency.duration_secs = 45.0;
            p.latency.extra_secs = 2.0;
            p.stale_ads.mean_gap_secs = 90.0;
            p.stale_ads.duration_secs = 60.0;
            p.jitter_max_secs = 5.0;
            // Chaos on top of faults: the stack composes with the EXT-6
            // failure model rather than replacing it.
            cfg.faults.device_mtbf_secs = 600.0;
            cfg.faults.horizon_secs = HORIZON_SECS;
        }
        other => panic!("unknown stack {other}"),
    }
    cfg
}

fn main() {
    banner(
        "EXT-8",
        "makespan/retry/held degradation under chaos perturbation stacks",
        "derate & latency stretch makespan, stale-ads defers matches, jitter is noise; MCCK stays complete",
    );

    let wl = table1_workload(JOBS, EXPERIMENT_SEED);
    let mut grid = Vec::new();
    for policy in POLICIES {
        for stack in STACKS {
            grid.push(SweepJob {
                label: format!("{policy}|{stack}"),
                config: cfg(policy, stack),
                workload: wl.clone(),
            });
        }
    }
    let results = run_sweep_auto(grid);

    let mut rows: Vec<Row> = Vec::new();
    let mut printable = Vec::new();
    for (label, result) in &results {
        let r = result.as_ref().expect("chaos sweep runs");
        assert_eq!(
            r.completed + r.container_kills + r.oom_kills + r.held_after_retries,
            r.jobs,
            "{label}: job accounting leaked"
        );
        let mut parts = label.split('|');
        let policy = parts.next().expect("policy").to_string();
        let stack = parts.next().expect("stack").to_string();
        let baseline = rows
            .iter()
            .find(|row| row.policy == policy && row.stack == "none")
            .map(|row| row.makespan_secs)
            .unwrap_or(r.makespan_secs);
        let degradation = r.makespan_secs / baseline - 1.0;
        printable.push(vec![
            policy.clone(),
            stack.clone(),
            format!("{:.0}", r.makespan_secs),
            pct(100.0 * degradation),
            pct(100.0 * r.completion_rate()),
            r.perturb_windows.to_string(),
            r.inflated_offloads.to_string(),
            r.stale_ad_skips.to_string(),
            r.jittered_cycles.to_string(),
            r.retries.to_string(),
            r.held_after_retries.to_string(),
        ]);
        rows.push(Row {
            policy,
            stack,
            makespan_secs: r.makespan_secs,
            makespan_degradation: degradation,
            completion_rate: r.completion_rate(),
            perturb_windows: r.perturb_windows,
            inflated_offloads: r.inflated_offloads,
            stale_ad_skips: r.stale_ad_skips,
            jittered_cycles: r.jittered_cycles,
            retries: r.retries,
            held_after_retries: r.held_after_retries,
        });
    }
    println!(
        "{}",
        table(
            &[
                "Policy",
                "Stack",
                "Makespan s",
                "vs calm",
                "Completed",
                "Windows",
                "Inflated",
                "Stale",
                "Jittered",
                "Retries",
                "Held",
            ],
            &printable
        )
    );

    // Robustness sanity per policy.
    for policy in POLICIES {
        let find = |stack: &str| {
            rows.iter()
                .find(|r| r.policy == policy.to_string() && r.stack == stack)
                .expect("grid covers the stack")
        };
        let calm = find("none");
        assert_eq!(
            calm.completion_rate, 1.0,
            "{policy}: calm baseline must complete everything"
        );
        assert_eq!(calm.perturb_windows, 0, "{policy}: calm run opened windows");
        let derate = find("derate");
        assert!(
            derate.makespan_secs > calm.makespan_secs,
            "{policy}: heavy derates must stretch the makespan ({} vs {})",
            derate.makespan_secs,
            calm.makespan_secs
        );
        let latency = find("latency");
        assert!(
            latency.inflated_offloads > 0,
            "{policy}: latency stack never inflated an offload"
        );
        let stale = find("stale-ads");
        assert!(
            stale.stale_ad_skips > 0,
            "{policy}: stale-ads stack never skipped a refresh"
        );
        let jitter = find("jitter");
        assert!(
            jitter.jittered_cycles > 0,
            "{policy}: jitter stack never delayed a cycle"
        );
        let all = find("all");
        assert!(
            all.completion_rate >= 0.95,
            "{policy}: the combined stack must not strand more than 5% of jobs"
        );
        assert!(
            all.perturb_windows > 0,
            "{policy}: combined stack opened no windows"
        );
    }
    persist_json("ext_chaos_robustness", &rows);
}
