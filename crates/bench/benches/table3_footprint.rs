//! EXP-T3 — Table III: footprint reduction per resource distribution.
//!
//! For each synthetic distribution: the smallest MCC / MCCK cluster that
//! matches the makespan MC achieves on 8 nodes. Paper: MCC {6, 6, 4, 6};
//! MCCK {5, 5, 3, 6} for {uniform, normal, low-skew, high-skew}.

use phishare_bench::{
    banner, persist_json, run_cell, synthetic_workload, EXPERIMENT_SEED, SYNTHETIC_JOBS,
};
use phishare_cluster::report::{pct, table};
use phishare_cluster::{footprint_search, ClusterConfig};
use phishare_core::ClusterPolicy;
use phishare_workload::ResourceDist;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dist: String,
    mc_makespan_secs: f64,
    mcc_nodes: Option<u32>,
    mcck_nodes: Option<u32>,
}

fn main() {
    banner(
        "Table III",
        "footprint reduction for different job distributions (paper §V-B)",
        "MCC {6,6,4,6}; MCCK {5,5,3,6} for {uniform, normal, low-skew, high-skew}",
    );
    println!("(footprint matches the MC@8 makespan within a 2% tolerance)\n");

    let mut rows = Vec::new();
    for dist in ResourceDist::ALL {
        let wl = synthetic_workload(dist, SYNTHETIC_JOBS, EXPERIMENT_SEED);
        let mc = run_cell(ClusterPolicy::Mc, 8, &wl);
        let fp = |policy| {
            footprint_search(
                &ClusterConfig::paper_cluster(policy),
                &wl,
                mc.makespan_secs,
                8,
                0.02,
            )
            .expect("search runs")
            .nodes_required
        };
        rows.push(Row {
            dist: dist.to_string(),
            mc_makespan_secs: mc.makespan_secs,
            mcc_nodes: fp(ClusterPolicy::Mcc),
            mcck_nodes: fp(ClusterPolicy::Mcck),
        });
    }

    let cell = |n: Option<u32>| match n {
        Some(n) => format!("{n} ({})", pct(100.0 * (1.0 - n as f64 / 8.0))),
        None => ">8".into(),
    };
    let printable: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.dist.clone(),
                "8".into(),
                cell(r.mcc_nodes),
                cell(r.mcck_nodes),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &["Distribution", "MC", "MCC (reduction)", "MCCK (reduction)"],
            &printable
        )
    );
    persist_json("table3", &rows);
}
