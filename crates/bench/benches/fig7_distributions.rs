//! EXP-F7 — Fig. 7: the four synthetic resource distributions.
//!
//! Prints a histogram of per-job resource levels (memory axis; the thread
//! axis is correlated by construction) for each of the 400-job synthetic
//! sets: uniform, normal, low-resource skew, high-resource skew.

use phishare_bench::{banner, persist_json, synthetic_workload, EXPERIMENT_SEED, SYNTHETIC_JOBS};
use phishare_cluster::report::bar_chart;
use phishare_sim::Histogram as BinHistogram;
use phishare_workload::ResourceDist;
use serde::Serialize;

const BINS: usize = 10;

#[derive(Serialize)]
struct Histogram {
    dist: String,
    mean_mem_mb: f64,
    mean_threads: f64,
    bins: Vec<usize>,
}

fn main() {
    banner(
        "Fig. 7",
        "resource distributions of the synthetic job sets (paper §V-B)",
        "uniform is flat; normal peaks mid-range; the skews shift the mass one σ down/up",
    );

    let params = phishare_workload::SyntheticParams::default();
    let (lo, hi) = params.mem_mb;
    let mut out = Vec::new();
    for dist in ResourceDist::ALL {
        let wl = synthetic_workload(dist, SYNTHETIC_JOBS, EXPERIMENT_SEED);
        let mut hist = BinHistogram::new(lo as f64, hi as f64, BINS);
        for job in &wl.jobs {
            hist.record(job.mem_req_mb as f64);
        }
        assert_eq!(hist.outliers(), 0, "jobs outside the declared memory range");
        let bins: Vec<usize> = hist.counts().iter().map(|&c| c as usize).collect();
        let mean_mem = wl.jobs.iter().map(|j| j.mem_req_mb as f64).sum::<f64>() / wl.len() as f64;
        let mean_threads =
            wl.jobs.iter().map(|j| j.thread_req as f64).sum::<f64>() / wl.len() as f64;

        let series: Vec<(String, f64)> = bins
            .iter()
            .enumerate()
            .map(|(i, n)| {
                let from = lo + (hi - lo) * i as u64 / BINS as u64;
                let to = lo + (hi - lo) * (i as u64 + 1) / BINS as u64;
                (format!("{from:>4}-{to:<4} MB"), *n as f64)
            })
            .collect();
        println!(
            "{}",
            bar_chart(
                &format!("{dist}: jobs per resource bin (mean {mean_mem:.0} MB / {mean_threads:.0} threads)"),
                &series,
                40
            )
        );
        out.push(Histogram {
            dist: dist.to_string(),
            mean_mem_mb: mean_mem,
            mean_threads,
            bins,
        });
    }

    // Sanity relations the figure must show.
    let mean = |d: &str| out.iter().find(|h| h.dist == d).unwrap().mean_mem_mb;
    assert!(mean("low-skew") < mean("normal"));
    assert!(mean("normal") < mean("high-skew"));
    println!(
        "means: low-skew {:.0} < normal {:.0} < high-skew {:.0} MB; uniform {:.0} MB",
        mean("low-skew"),
        mean("normal"),
        mean("high-skew"),
        mean("uniform")
    );
    persist_json("fig7", &out);
}
