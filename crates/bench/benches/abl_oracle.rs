//! ABL-4 — the no-execution-times assumption.
//!
//! The paper argues concurrency maximization is a good *proxy* for makespan
//! because users "usually cannot specify [execution times] accurately"
//! (§IV-B). This ablation measures what that assumption costs: the ORACLE
//! configuration runs MCCK's exact stack but with a clairvoyant
//! longest-processing-time-first scheduler that knows every job's nominal
//! duration. If the paper's claim holds, MCCK should be close to the
//! oracle.

use phishare_bench::{
    banner, persist_json, synthetic_workload, table1_workload, EXPERIMENT_SEED, SYNTHETIC_JOBS,
};
use phishare_cluster::report::{pct, secs, table};
use phishare_cluster::sweep::{run_sweep_auto, SweepJob};
use phishare_cluster::ClusterConfig;
use phishare_core::ClusterPolicy;
use phishare_workload::ResourceDist;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    workload: String,
    policy: String,
    makespan_secs: f64,
}

fn main() {
    banner(
        "ABL-4",
        "the cost of not knowing execution times (§IV-B assumption)",
        "MCCK within a few percent of the clairvoyant LPT oracle",
    );

    let workloads = vec![
        (
            "table1-1000".to_string(),
            table1_workload(1000, EXPERIMENT_SEED),
        ),
        (
            "syn-normal-400".to_string(),
            synthetic_workload(ResourceDist::Normal, SYNTHETIC_JOBS, EXPERIMENT_SEED),
        ),
        (
            "syn-high-skew-400".to_string(),
            synthetic_workload(ResourceDist::HighSkew, SYNTHETIC_JOBS, EXPERIMENT_SEED),
        ),
    ];

    let mut grid = Vec::new();
    for (name, wl) in &workloads {
        for policy in [ClusterPolicy::Mcck, ClusterPolicy::Oracle] {
            grid.push(SweepJob {
                label: format!("{name}|{policy}"),
                config: ClusterConfig::paper_cluster(policy),
                workload: wl.clone(),
            });
        }
    }
    let results = run_sweep_auto(grid);

    let rows: Vec<Row> = results
        .iter()
        .map(|(label, res)| {
            let (workload, policy) = label.split_once('|').unwrap();
            Row {
                workload: workload.into(),
                policy: policy.into(),
                makespan_secs: res.as_ref().expect("cell runs").makespan_secs,
            }
        })
        .collect();

    let mut printable = Vec::new();
    for pair in rows.chunks(2) {
        let (mcck, oracle) = (&pair[0], &pair[1]);
        printable.push(vec![
            mcck.workload.clone(),
            secs(mcck.makespan_secs),
            secs(oracle.makespan_secs),
            pct(100.0 * (mcck.makespan_secs / oracle.makespan_secs - 1.0)),
        ]);
    }
    println!(
        "{}",
        table(
            &[
                "Workload",
                "MCCK (blind) makespan (s)",
                "Oracle (clairvoyant LPT) (s)",
                "MCCK overhead vs oracle",
            ],
            &printable
        )
    );
    persist_json("abl_oracle", &rows);
}
