//! PERF-1 — Criterion microbench of the knapsack solvers.
//!
//! The paper's §IV-C claims complexity `O(n·w)`, "nearly linear with the
//! number of jobs" at the 50 MB granularity (`w = 160` columns for 8 GB).
//! This bench measures the 2-D DP, the 1-D+repair variant and the baseline
//! packers across job counts so the scaling claim is visible in the
//! Criterion report.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use phishare_knapsack::baseline::Packer;
use phishare_knapsack::{
    solve_1d_filtered, solve_2d, solve_branch_and_bound, BestFitDecreasing, Capacity, FirstFit,
    PackItem, RandomFit, ValueFunction,
};
use phishare_sim::DetRng;
use std::hint::black_box;

fn items(n: usize, seed: u64) -> Vec<PackItem> {
    let mut rng = DetRng::from_seed(seed);
    (0..n)
        .map(|index| PackItem {
            index,
            mem_mb: rng.uniform_u64(300, 3400),
            threads: rng.uniform_u64(15, 60) as u32 * 4,
        })
        .collect()
}

fn bench_solvers(c: &mut Criterion) {
    let cap = Capacity::phi(7680);
    let mut group = c.benchmark_group("knapsack");
    for n in [64usize, 256, 1024, 4096] {
        let set = items(n, 42);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("solve_2d", n), &set, |b, set| {
            b.iter(|| solve_2d(black_box(set), &cap, ValueFunction::PaperQuadratic))
        });
        group.bench_with_input(BenchmarkId::new("solve_1d_filtered", n), &set, |b, set| {
            b.iter(|| solve_1d_filtered(black_box(set), &cap, ValueFunction::PaperQuadratic))
        });
        if n <= 256 {
            // Exponential worst case: keep B&B to the small instances.
            group.bench_with_input(BenchmarkId::new("branch_and_bound", n), &set, |b, set| {
                b.iter(|| {
                    solve_branch_and_bound(black_box(set), &cap, ValueFunction::PaperQuadratic)
                })
            });
        }
        group.bench_with_input(BenchmarkId::new("first_fit", n), &set, |b, set| {
            let mut rng = DetRng::from_seed(1);
            b.iter(|| FirstFit.pack(black_box(set), &cap, &mut rng))
        });
        group.bench_with_input(BenchmarkId::new("random_fit", n), &set, |b, set| {
            let mut rng = DetRng::from_seed(1);
            b.iter(|| RandomFit.pack(black_box(set), &cap, &mut rng))
        });
        group.bench_with_input(
            BenchmarkId::new("best_fit_decreasing", n),
            &set,
            |b, set| {
                let mut rng = DetRng::from_seed(1);
                b.iter(|| BestFitDecreasing.pack(black_box(set), &cap, &mut rng))
            },
        );
    }
    group.finish();
}

fn bench_granularity(c: &mut Criterion) {
    let set = items(1024, 7);
    let mut group = c.benchmark_group("knapsack_granularity");
    for granularity_mb in [25u64, 50, 100, 200] {
        let cap = Capacity {
            mem_mb: 7680,
            granularity_mb,
            thread_limit: 240,
            value_ref_threads: 240,
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(granularity_mb),
            &cap,
            |b, cap| b.iter(|| solve_2d(black_box(&set), cap, ValueFunction::PaperQuadratic)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_solvers, bench_granularity);
criterion_main!(benches);
