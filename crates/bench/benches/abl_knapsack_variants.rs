//! ABL-2 — knapsack formulation ablation.
//!
//! * 2-D DP (thread-feasible by construction) vs the paper-literal 1-D DP
//!   with thread repair;
//! * memory granularity 25 / 50 / 100 / 200 MB (the paper's §IV-C
//!   complexity argument assumes 50 MB);
//! * strict resident-thread accounting vs lax (per-round only), and the
//!   thread-overcommit factor.

use phishare_bench::{banner, persist_json, table1_workload, EXPERIMENT_SEED};
use phishare_cluster::report::{secs, table};
use phishare_cluster::sweep::{run_sweep_auto, SweepJob};
use phishare_cluster::ClusterConfig;
use phishare_core::{ClusterPolicy, KnapsackVariant};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    variant: String,
    makespan_secs: f64,
}

fn main() {
    banner(
        "ABL-2",
        "knapsack formulation / granularity / thread-accounting ablation",
        "2-D ≈ 1-D+repair here (thread budget rarely binds inside one round); \
         coarse granularity wastes capacity; overcommit 1.0 strands threads",
    );

    let wl = table1_workload(400, EXPERIMENT_SEED);
    let base = ClusterConfig::paper_cluster(ClusterPolicy::Mcck);

    let mut grid: Vec<SweepJob> = Vec::new();
    let mut push = |label: String, config: ClusterConfig| {
        grid.push(SweepJob {
            label,
            config,
            workload: wl.clone(),
        })
    };

    for variant in [KnapsackVariant::TwoD, KnapsackVariant::OneDFiltered] {
        let mut c = base;
        c.knapsack.variant = variant;
        push(format!("dp={variant:?}"), c);
    }
    for granularity in [25u64, 50, 100, 200, 400] {
        let mut c = base;
        c.knapsack.granularity_mb = granularity;
        push(format!("granularity={granularity}MB"), c);
    }
    for overcommit in [1.0, 1.25, 1.5, 1.75, 2.0] {
        let mut c = base;
        c.knapsack.thread_overcommit = overcommit;
        push(format!("overcommit={overcommit}"), c);
    }
    {
        let mut c = base;
        c.knapsack.count_resident_threads = false;
        push("thread-accounting=lax".into(), c);
    }
    for window in [16usize, 64, 256] {
        let mut c = base;
        c.knapsack.window = window;
        push(format!("window={window}"), c);
    }

    let results = run_sweep_auto(grid);
    let rows: Vec<Row> = results
        .iter()
        .map(|(label, res)| Row {
            variant: label.clone(),
            makespan_secs: res.as_ref().expect("cell runs").makespan_secs,
        })
        .collect();

    let printable: Vec<Vec<String>> = rows
        .iter()
        .map(|r| vec![r.variant.clone(), secs(r.makespan_secs)])
        .collect();
    println!(
        "{}",
        table(
            &["MCCK variant (table1-400, 8 nodes)", "Makespan (s)"],
            &printable
        )
    );
    persist_json("abl_knapsack_variants", &rows);
}
