//! PERF-3 — the negotiation fast-path benchmark gate.
//!
//! Measures one negotiation cycle over a 64-node × 4-slot pool with 1600
//! pending jobs, comparing the compiled/indexed fast path
//! (`negotiate_with_stats`) against the retained naive evaluator
//! (`negotiate_naive_with_stats`, which re-parses every expression per
//! (job, slot) pair — the pre-optimization cost model). The workload is
//! match-heavy in the worst way: most jobs ask for more Phi memory than any
//! node has left after the first placements, so the naive path scans all
//! 256 slots per job while the fast path answers from the free-memory index.
//!
//! Emits `BENCH_negotiation.json` (under `target/experiments/` and at the
//! repo root) and **fails** if the measured speedup drops below the 3×
//! acceptance floor, making this a regression gate, not just a report.

use criterion::{criterion_group, BenchmarkId, Criterion};
use phishare_bench::{persist_json, GateKnobs};
use phishare_classad::ad::REQUIREMENTS;
use phishare_classad::ClassAd;
use phishare_condor::{attrs, Collector, JobQueue, Negotiator, SlotId};
use phishare_sim::SimTime;
use phishare_workload::JobId;
use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;

const NODES: u32 = 64;
const SLOTS_PER_NODE: u32 = 4;
const JOBS: u64 = 1600;
const SPEEDUP_FLOOR: f64 = 3.0;

/// Jobs per repeating pattern block: heavy sharing, modest sharing,
/// exclusive, slot-pinned, node-pinned.
fn job_ad(i: u64) -> ClassAd {
    let mut ad = ClassAd::new();
    ad.insert(attrs::JOB_ID, i);
    ad.insert(attrs::REQUEST_EXCLUSIVE_PHI, false);
    match i % 5 {
        // The bulk: asks for 6000 MB. One fits per 7680 MB node; after 64
        // placements every remaining job of this class matches nothing.
        0..=2 => {
            ad.insert(attrs::REQUEST_PHI_MEMORY, 6000i64);
            ad.insert_expr(
                REQUIREMENTS,
                "TARGET.PhiDevices >= 1 && TARGET.PhiFreeMemory >= MY.RequestPhiMemory",
            )
            .unwrap();
        }
        3 => {
            ad.insert(attrs::REQUEST_PHI_MEMORY, 1000i64);
            ad.insert(attrs::REQUEST_EXCLUSIVE_PHI, true);
            ad.insert_expr(REQUIREMENTS, "TARGET.PhiDevicesFree >= 1")
                .unwrap();
        }
        _ => {
            let node = (i % NODES as u64) + 1;
            if i.is_multiple_of(2) {
                let slot = (i % SLOTS_PER_NODE as u64) + 1;
                ad.insert_expr(
                    REQUIREMENTS,
                    &attrs::pin_requirements(&format!("slot{slot}@node{node}")),
                )
                .unwrap();
            } else {
                ad.insert_expr(REQUIREMENTS, &attrs::pin_to_node(&format!("node{node}")))
                    .unwrap();
            }
        }
    }
    ad
}

fn build_pool(nodes: u32, slots_per_node: u32, jobs: u64) -> (JobQueue, Collector) {
    let mut collector = Collector::new();
    for n in 1..=nodes {
        for s in 1..=slots_per_node {
            let id = SlotId { node: n, slot: s };
            collector.advertise(
                id,
                attrs::machine_ad(&id.name(), &format!("node{n}"), 1, 8192, 7680, 1),
            );
        }
    }
    let mut queue = JobQueue::new();
    for i in 0..jobs {
        queue.submit(JobId(i), job_ad(i), SimTime::ZERO).unwrap();
    }
    (queue, collector)
}

/// Best-of-N wall time for one negotiation cycle, milliseconds.
fn time_cycle<F>(runs: usize, base: &(JobQueue, Collector), mut cycle: F) -> f64
where
    F: FnMut(&mut JobQueue, &mut Collector),
{
    let mut best = f64::INFINITY;
    for _ in 0..runs {
        let (mut queue, mut collector) = base.clone();
        let start = Instant::now();
        cycle(&mut queue, &mut collector);
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

#[derive(Serialize)]
struct NegotiationBench {
    nodes: u32,
    slots_per_node: u32,
    jobs: u64,
    naive_runs: usize,
    fast_runs: usize,
    /// Best-of-runs wall time of one naive cycle, ms ("before").
    naive_ms: f64,
    /// Best-of-runs wall time of one fast-path cycle, ms ("after").
    fast_ms: f64,
    speedup: f64,
    speedup_floor: f64,
    matched: usize,
    considered: usize,
    knobs: GateKnobs,
}

fn gate() -> NegotiationBench {
    let negotiator = Negotiator::default();
    let base = build_pool(NODES, SLOTS_PER_NODE, JOBS);

    // Sanity first: all paths must agree before timing means anything.
    let (mut q_fast, mut c_fast) = base.clone();
    let (mut q_naive, mut c_naive) = base.clone();
    let (mut q_delta, mut c_delta) = base.clone();
    let fast = negotiator.negotiate_full_with_stats(&mut q_fast, &mut c_fast);
    let naive = negotiator.negotiate_naive_with_stats(&mut q_naive, &mut c_naive);
    let delta = negotiator.negotiate_delta_with_stats(&mut q_delta, &mut c_delta);
    assert_eq!(fast, naive, "fast and naive paths diverged");
    assert_eq!(delta, naive, "delta and naive paths diverged");
    assert_eq!(c_fast, c_naive, "collector states diverged");
    assert_eq!(c_delta, c_naive, "collector states diverged");
    let (matches, stats) = fast;

    // This gate pins the *full-rematch* fast path against the naive cost
    // model (PERF-3); the delta path has its own XL gate (PERF-7).
    let naive_runs = 3;
    let fast_runs = 15;
    let naive_ms = time_cycle(naive_runs, &base, |q, c| {
        black_box(negotiator.negotiate_naive_with_stats(q, c));
    });
    let fast_ms = time_cycle(fast_runs, &base, |q, c| {
        black_box(negotiator.negotiate_full_with_stats(q, c));
    });

    NegotiationBench {
        nodes: NODES,
        slots_per_node: SLOTS_PER_NODE,
        jobs: JOBS,
        naive_runs,
        fast_runs,
        naive_ms,
        fast_ms,
        speedup: naive_ms / fast_ms,
        speedup_floor: SPEEDUP_FLOOR,
        matched: matches.len(),
        considered: stats.considered,
        // The measured side is the serial full-rematch fast path; no
        // partitioning, sharding, or quiescence is in play.
        knobs: GateKnobs {
            partitions: 1,
            threads: 1,
            skip_quiescent: false,
            match_path: "full".into(),
        },
    }
}

/// Criterion view of the same comparison at a smaller size, so the per-cycle
/// numbers show up in the standard bench report without the full gate cost.
fn bench_cycles(c: &mut Criterion) {
    let negotiator = Negotiator::default();
    let base = build_pool(16, 4, 400);
    let mut group = c.benchmark_group("negotiation_cycle");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("naive", "16x4/400"), &base, |b, base| {
        b.iter(|| {
            let (mut q, mut c) = base.clone();
            black_box(negotiator.negotiate_naive_with_stats(&mut q, &mut c))
        })
    });
    group.bench_with_input(BenchmarkId::new("fast", "16x4/400"), &base, |b, base| {
        b.iter(|| {
            let (mut q, mut c) = base.clone();
            black_box(negotiator.negotiate_with_stats(&mut q, &mut c))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_cycles);

fn main() {
    phishare_bench::banner(
        "perf_negotiation",
        "§II-D negotiation cycle cost",
        "compiled+indexed matchmaking ≥ 3× faster than per-pair re-evaluation",
    );

    let result = gate();
    println!(
        "pool {}x{} slots, {} pending jobs ({} matched, {} considered)",
        result.nodes, result.slots_per_node, result.jobs, result.matched, result.considered
    );
    println!(
        "naive (best of {}): {:.2} ms   fast (best of {}): {:.2} ms   speedup: {:.1}x",
        result.naive_runs, result.naive_ms, result.fast_runs, result.fast_ms, result.speedup
    );
    persist_json("BENCH_negotiation", &result);
    // Also drop a copy at the repo root; the acceptance numbers are
    // committed alongside the code they measure.
    if let Ok(json) = serde_json::to_string_pretty(&result) {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_negotiation.json");
        if std::fs::write(path, json + "\n").is_ok() {
            println!("[saved {path}]");
        }
    }
    assert!(
        result.speedup >= result.speedup_floor,
        "negotiation fast path regressed: {:.1}x < {:.1}x floor",
        result.speedup,
        result.speedup_floor
    );

    benches();
}
