//! ABL-1 — value-function ablation.
//!
//! The paper's Eq. (1) discounts jobs quadratically by thread appetite. How
//! much of MCCK's win comes from that specific choice? We swap in the
//! alternatives from `phishare-knapsack` on both the real mix and the
//! normal synthetic distribution.
//!
//! Finding this bench documents: on thread-memory-*correlated* synthetic
//! jobs, the quadratic discount defers large jobs into a memory-bound serial
//! tail, and pure concurrency maximization (`unit`) can edge it out; on the
//! real Table I mix the two are close.

use phishare_bench::{
    banner, persist_json, synthetic_workload, table1_workload, EXPERIMENT_SEED, SYNTHETIC_JOBS,
};
use phishare_cluster::report::{secs, table};
use phishare_cluster::sweep::{run_sweep_auto, SweepJob};
use phishare_cluster::ClusterConfig;
use phishare_core::ClusterPolicy;
use phishare_knapsack::ValueFunction;
use phishare_workload::ResourceDist;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    workload: String,
    value_fn: String,
    makespan_secs: f64,
}

fn main() {
    banner(
        "ABL-1",
        "knapsack value-function ablation (Eq. 1 vs alternatives)",
        "quadratic ≈ linear; unit can win on correlated synthetics; inverse over-defers",
    );

    let workloads = [
        ("table1-400", table1_workload(400, EXPERIMENT_SEED)),
        (
            "syn-normal-400",
            synthetic_workload(ResourceDist::Normal, SYNTHETIC_JOBS, EXPERIMENT_SEED),
        ),
    ];

    let mut grid = Vec::new();
    for (wl_name, wl) in &workloads {
        for vf in ValueFunction::ALL {
            let mut config = ClusterConfig::paper_cluster(ClusterPolicy::Mcck);
            config.knapsack.value_fn = vf;
            grid.push(SweepJob {
                label: format!("{wl_name}|{vf}"),
                config,
                workload: wl.clone(),
            });
        }
    }
    let results = run_sweep_auto(grid);

    let rows: Vec<Row> = results
        .iter()
        .map(|(label, res)| {
            let r = res.as_ref().expect("cell runs");
            let (workload, value_fn) = label.split_once('|').unwrap();
            Row {
                workload: workload.into(),
                value_fn: value_fn.into(),
                makespan_secs: r.makespan_secs,
            }
        })
        .collect();

    let printable: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workload.clone(),
                r.value_fn.clone(),
                secs(r.makespan_secs),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &["Workload", "Value function", "MCCK makespan (s)"],
            &printable
        )
    );
    persist_json("abl_value_function", &rows);
}
