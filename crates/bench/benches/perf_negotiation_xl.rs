//! PERF-7 — the web-scale delta-negotiation gate.
//!
//! Runs a sustained open-arrival streaming workload over a ≥10⁴-slot pool
//! (2500 nodes × 4 slots), driving two collector/queue twins in lockstep:
//! one negotiates with the incremental **delta** path, the other with the
//! PR 1 **full-rematch** fast path. Every cycle the twins receive identical
//! mutations — new job arrivals, completions releasing claims and
//! restoring node capacity — and must produce bit-identical matches,
//! stats, collector state, and pending sets; only the negotiate calls are
//! timed.
//!
//! The workload models steady state, not a fixed batch: a permanent
//! backlog of jobs whose requirements are an *unindexable residual
//! disjunction* (the full path must scan all 10⁴ slots for each, every
//! cycle — there is no guard to range-query) plus a per-cycle stream of
//! mostly-pinned arrivals and lifetime-based completions. The delta path
//! re-screens the backlog only against the slots dirtied since each job's
//! unmatched certificate, which is what keeps per-cycle work proportional
//! to churn instead of (backlog × pool).
//!
//! Emits `BENCH_negotiation_xl.json` (under `target/experiments/` and at
//! the repo root) and **fails** below the 5× acceptance floor.

use phishare_bench::{persist_json, GateKnobs};
use phishare_classad::ad::REQUIREMENTS;
use phishare_classad::{ClassAd, Value};
use phishare_condor::{attrs, Collector, JobQueue, MatchPath, Negotiator, SlotId};
use phishare_sim::SimTime;
use phishare_workload::JobId;
use serde::Serialize;
use std::time::Instant;

const NODES: u32 = 2500;
const SLOTS_PER_NODE: u32 = 4;
/// Permanently-pending jobs with unindexable residual requirements — the
/// full path's per-cycle cost driver.
const BACKLOG: u64 = 150;
const CYCLES: u64 = 14;
const ARRIVALS_PER_CYCLE: u64 = 30;
/// Cycles a placed job holds its claim before completing.
const LIFETIME: u64 = 3;
const SPEEDUP_FLOOR: f64 = 5.0;

/// A backlog job: the top-level `||` resists guard extraction, so the full
/// path can only scan every unclaimed slot — and neither arm is ever
/// satisfiable on this pool (no node has 50 GB free or two free cards).
fn backlog_ad(i: u64) -> ClassAd {
    let mut ad = ClassAd::new();
    ad.insert(attrs::JOB_ID, i);
    ad.insert(attrs::REQUEST_EXCLUSIVE_PHI, false);
    ad.insert(attrs::REQUEST_PHI_MEMORY, 50_000i64);
    ad.insert_expr(
        REQUIREMENTS,
        "TARGET.PhiFreeMemory >= MY.RequestPhiMemory || TARGET.PhiDevicesFree >= 2",
    )
    .unwrap();
    ad
}

/// Streaming arrivals: mostly placement-pinned (as the paper's scheduler
/// produces), with a tail of open sharing and exclusive requests.
fn arrival_ad(i: u64) -> ClassAd {
    let mut ad = ClassAd::new();
    ad.insert(attrs::JOB_ID, i);
    ad.insert(attrs::REQUEST_EXCLUSIVE_PHI, false);
    let node = 1 + (i.wrapping_mul(37) % NODES as u64);
    match i % 10 {
        0..=5 => {
            let slot = 1 + (i % SLOTS_PER_NODE as u64);
            ad.insert_expr(
                REQUIREMENTS,
                &attrs::pin_requirements(&format!("slot{slot}@node{node}")),
            )
            .unwrap();
        }
        6 | 7 => {
            ad.insert_expr(REQUIREMENTS, &attrs::pin_to_node(&format!("node{node}")))
                .unwrap();
        }
        8 => {
            ad.insert(attrs::REQUEST_PHI_MEMORY, 3000i64);
            ad.insert_expr(
                REQUIREMENTS,
                "TARGET.PhiDevices >= 1 && TARGET.PhiFreeMemory >= MY.RequestPhiMemory",
            )
            .unwrap();
        }
        _ => {
            ad.insert(attrs::REQUEST_PHI_MEMORY, 1000i64);
            ad.insert(attrs::REQUEST_EXCLUSIVE_PHI, true);
            ad.insert_expr(REQUIREMENTS, "TARGET.PhiDevicesFree >= 1")
                .unwrap();
        }
    }
    ad
}

fn int_attr(ad: &ClassAd, name: &str) -> i64 {
    match ad.get(name) {
        Some(Value::Int(i)) => *i,
        _ => 0,
    }
}

/// Undo one placement on completion: release the claim and hand the job's
/// resources back to every slot ad of the node (the inverse of the
/// negotiator's same-cycle commit).
fn complete(collector: &mut Collector, slot: SlotId, ad: &ClassAd) {
    let mem = int_attr(ad, attrs::REQUEST_PHI_MEMORY);
    let exclusive = matches!(
        ad.get(attrs::REQUEST_EXCLUSIVE_PHI),
        Some(Value::Bool(true))
    );
    for s in collector.node_slots(slot.node) {
        let status = collector.get(s).expect("listed slot exists");
        let free = int_attr(&status.ad, attrs::PHI_FREE_MEMORY) + mem;
        let devs = int_attr(&status.ad, attrs::PHI_DEVICES_FREE) + i64::from(exclusive);
        collector.refresh_phi_availability(s, free.max(0) as u64, devs.max(0) as u32);
    }
    collector.release(slot);
}

struct Twin {
    queue: JobQueue,
    collector: Collector,
    negotiator: Negotiator,
    /// (completion cycle, matched slot, job id) of live placements.
    live: Vec<(u64, SlotId, JobId)>,
    /// Accumulated wall time of the negotiate calls only, ms.
    negotiate_ms: f64,
    matched: usize,
}

impl Twin {
    fn new(path: MatchPath) -> Twin {
        let mut collector = Collector::new();
        for n in 1..=NODES {
            for s in 1..=SLOTS_PER_NODE {
                let id = SlotId { node: n, slot: s };
                collector.advertise(
                    id,
                    attrs::machine_ad(&id.name(), &format!("node{n}"), 1, 8192, 7680, 1),
                );
            }
        }
        let mut queue = JobQueue::new();
        for i in 0..BACKLOG {
            queue
                .submit(JobId(i), backlog_ad(i), SimTime::ZERO)
                .unwrap();
        }
        Twin {
            queue,
            collector,
            negotiator: Negotiator::default().with_path(path),
            live: Vec::new(),
            negotiate_ms: 0.0,
            matched: 0,
        }
    }

    /// One streaming step: completions, arrivals, then a (timed) cycle.
    fn step(&mut self, cycle: u64) -> (Vec<phishare_condor::Match>, phishare_condor::CycleStats) {
        let mut still_live = Vec::new();
        for (done_at, slot, job) in std::mem::take(&mut self.live) {
            if done_at <= cycle {
                let ad = self.queue.get(job).expect("matched job exists").ad.clone();
                complete(&mut self.collector, slot, &ad);
            } else {
                still_live.push((done_at, slot, job));
            }
        }
        self.live = still_live;
        for k in 0..ARRIVALS_PER_CYCLE {
            let id = BACKLOG + cycle * ARRIVALS_PER_CYCLE + k;
            self.queue
                .submit(JobId(id), arrival_ad(id), SimTime::ZERO)
                .unwrap();
        }

        let start = Instant::now();
        let (matches, stats) = self
            .negotiator
            .negotiate_with_stats(&mut self.queue, &mut self.collector);
        self.negotiate_ms += start.elapsed().as_secs_f64() * 1e3;

        self.matched += matches.len();
        for m in &matches {
            self.live.push((cycle + LIFETIME, m.slot, m.job));
        }
        (matches, stats)
    }
}

#[derive(Serialize)]
struct XlBench {
    nodes: u32,
    slots_per_node: u32,
    slots: u32,
    backlog_jobs: u64,
    cycles: u64,
    arrivals_per_cycle: u64,
    lifetime_cycles: u64,
    /// Total negotiate wall time across all cycles, delta path, ms.
    delta_ms: f64,
    /// Total negotiate wall time across all cycles, full-rematch path, ms.
    full_ms: f64,
    speedup: f64,
    speedup_floor: f64,
    matched: usize,
    knobs: GateKnobs,
}

fn gate() -> XlBench {
    let slots = NODES * SLOTS_PER_NODE;
    assert!(slots >= 10_000, "XL gate must cover at least 10^4 slots");

    let mut delta = Twin::new(MatchPath::Delta);
    let mut full = Twin::new(MatchPath::Full);
    for cycle in 0..CYCLES {
        let d = delta.step(cycle);
        let f = full.step(cycle);
        // Bit-identity every cycle: the delta path must be indistinguishable
        // from the full-rematch oracle mid-stream, not just at the end.
        assert_eq!(d, f, "cycle {cycle}: matches/stats diverged");
        assert_eq!(
            delta.collector, full.collector,
            "cycle {cycle}: collector state diverged"
        );
        assert_eq!(
            delta.queue.pending(),
            full.queue.pending(),
            "cycle {cycle}: pending sets diverged"
        );
    }
    assert!(delta.matched > 0, "streaming workload must place jobs");
    assert!(
        delta.queue.pending().len() as u64 >= BACKLOG,
        "the residual backlog must persist (it is the full path's cost driver)"
    );

    XlBench {
        nodes: NODES,
        slots_per_node: SLOTS_PER_NODE,
        slots,
        backlog_jobs: BACKLOG,
        cycles: CYCLES,
        arrivals_per_cycle: ARRIVALS_PER_CYCLE,
        lifetime_cycles: LIFETIME,
        delta_ms: delta.negotiate_ms,
        full_ms: full.negotiate_ms,
        speedup: full.negotiate_ms / delta.negotiate_ms,
        speedup_floor: SPEEDUP_FLOOR,
        matched: delta.matched,
        // The measured side is the PR 6 job-sharded delta screen: one
        // collector partition, shard fan-out from the environment. The
        // streaming churn keeps every cycle non-quiescent, but the
        // detector is on (as it is in production).
        knobs: GateKnobs {
            partitions: delta.collector.partitions(),
            threads: delta.negotiator.shard_count(),
            skip_quiescent: true,
            match_path: "delta".into(),
        },
    }
}

fn main() {
    phishare_bench::banner(
        "perf_negotiation_xl",
        "delta-driven matchmaking at 10^4 slots",
        "streaming steady state: delta path ≥ 5× over full rematch",
    );

    let result = gate();
    println!(
        "pool {}x{} = {} slots, {} residual backlog jobs, {} cycles x {} arrivals ({} matched)",
        result.nodes,
        result.slots_per_node,
        result.slots,
        result.backlog_jobs,
        result.cycles,
        result.arrivals_per_cycle,
        result.matched
    );
    println!(
        "full rematch: {:.1} ms   delta: {:.1} ms   speedup: {:.1}x (floor {:.1}x)",
        result.full_ms, result.delta_ms, result.speedup, result.speedup_floor
    );
    persist_json("BENCH_negotiation_xl", &result);
    // Also drop a copy at the repo root; the acceptance numbers are
    // committed alongside the code they measure.
    if let Ok(json) = serde_json::to_string_pretty(&result) {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_negotiation_xl.json"
        );
        if std::fs::write(path, json + "\n").is_ok() {
            println!("[saved {path}]");
        }
    }
    assert!(
        result.speedup >= result.speedup_floor,
        "delta negotiation regressed: {:.1}x < {:.1}x floor",
        result.speedup,
        result.speedup_floor
    );
}
