//! EXP-F9 — Fig. 9: effect of cluster scheduling techniques on different
//! cluster sizes (four panels, one per distribution).
//!
//! 400 synthetic jobs, cluster sizes 2–8, three policies. Paper shape: at
//! very small clusters any sharing (even random) wins big; the knapsack's
//! edge grows with cluster size, where more placement decisions exist.

use phishare_bench::{
    banner, persist_json, run_sweep_sharded_auto, synthetic_workload, EXPERIMENT_SEED,
    SYNTHETIC_JOBS,
};
use phishare_cluster::report::{secs, table};
use phishare_cluster::sweep::SweepJob;
use phishare_cluster::{ClusterConfig, SubstrateMode};
use phishare_core::ClusterPolicy;
use phishare_workload::ResourceDist;
use serde::Serialize;

const SIZES: [u32; 6] = [2, 3, 4, 5, 6, 8];

#[derive(Serialize)]
struct Row {
    dist: String,
    policy: String,
    nodes: u32,
    makespan_secs: f64,
}

fn main() {
    banner(
        "Fig. 9",
        "cluster scheduling techniques on different sized clusters (paper §V-B)",
        "sharing dominates everywhere; MC flattens worst; MCCK ≤ MCC as size grows",
    );

    let mut grid = Vec::new();
    for dist in ResourceDist::ALL {
        let wl = synthetic_workload(dist, SYNTHETIC_JOBS, EXPERIMENT_SEED);
        for policy in ClusterPolicy::ALL {
            for nodes in SIZES {
                grid.push(SweepJob {
                    label: format!("{dist}|{policy}|{nodes}"),
                    config: ClusterConfig::paper_cluster(policy).with_nodes(nodes),
                    workload: wl.clone(),
                });
            }
        }
    }
    // The figure-scale grid runs on the process-sharded engine (workers
    // spawned from the phishare-bench worker binary), which is pinned
    // bit-identical to the in-process `run_sweep`.
    let results = run_sweep_sharded_auto(
        grid,
        SubstrateMode::Fast,
        env!("CARGO_BIN_EXE_phishare-bench"),
    );

    let rows: Vec<Row> = results
        .iter()
        .map(|(label, res)| {
            let r = res.as_ref().expect("cell runs");
            let mut parts = label.split('|');
            Row {
                dist: parts.next().unwrap().into(),
                policy: parts.next().unwrap().into(),
                nodes: parts.next().unwrap().parse().unwrap(),
                makespan_secs: r.makespan_secs,
            }
        })
        .collect();

    for dist in ResourceDist::ALL {
        let mut printable = Vec::new();
        for nodes in SIZES {
            let get = |p: &str| {
                rows.iter()
                    .find(|r| r.dist == dist.to_string() && r.policy == p && r.nodes == nodes)
                    .map(|r| r.makespan_secs)
                    .expect("cell present")
            };
            printable.push(vec![
                nodes.to_string(),
                secs(get("MC")),
                secs(get("MCC")),
                secs(get("MCCK")),
            ]);
        }
        println!("panel: {dist}");
        println!(
            "{}",
            table(&["Nodes", "MC (s)", "MCC (s)", "MCCK (s)"], &printable)
        );
    }
    persist_json("fig9", &rows);
}
