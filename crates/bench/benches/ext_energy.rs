//! EXT-1 — energy view of the footprint argument.
//!
//! The paper's footprint claim: if sharing matches the 8-node makespan on 5
//! nodes, the cluster shrinks by 37.5 %. This extension prices that in
//! coprocessor energy (idle + dynamic card power integrated over the run):
//! the same job set, finished in the same time, on fewer cards.

use phishare_bench::{banner, persist_json, table1_workload, EXPERIMENT_SEED, TABLE1_JOBS};
use phishare_cluster::report::{pct, secs, table};
use phishare_cluster::{ClusterConfig, Experiment};
use phishare_core::ClusterPolicy;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    config: String,
    nodes: u32,
    makespan_secs: f64,
    energy_kwh: f64,
    energy_saving_pct: f64,
}

fn main() {
    banner(
        "EXT-1",
        "energy cost of the footprint (extension of Table II)",
        "equal-makespan sharing clusters burn proportionally less card energy",
    );

    let workload = table1_workload(TABLE1_JOBS, EXPERIMENT_SEED);
    let mc = Experiment::run(
        &ClusterConfig::paper_cluster(ClusterPolicy::Mc).with_nodes(8),
        &workload,
    )
    .expect("baseline runs");

    // The Table II footprint results: MCC matches on 6 nodes, MCCK on 5.
    let cells = [
        (ClusterPolicy::Mc, 8u32),
        (ClusterPolicy::Mcc, 6),
        (ClusterPolicy::Mcck, 5),
    ];
    let mut rows = Vec::new();
    for (policy, nodes) in cells {
        let r = Experiment::run(
            &ClusterConfig::paper_cluster(policy).with_nodes(nodes),
            &workload,
        )
        .expect("cell runs");
        rows.push(Row {
            config: format!("{policy} @ {nodes} nodes"),
            nodes,
            makespan_secs: r.makespan_secs,
            energy_kwh: r.energy_kwh,
            energy_saving_pct: 100.0 * (1.0 - r.energy_kwh / mc.energy_kwh),
        });
    }

    let printable: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.config.clone(),
                secs(r.makespan_secs),
                format!("{:.2}", r.energy_kwh),
                if r.energy_saving_pct.abs() < 1e-9 {
                    "-".into()
                } else {
                    pct(r.energy_saving_pct)
                },
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &[
                "Configuration",
                "Makespan (s)",
                "Card energy (kWh)",
                "Energy saving vs MC@8"
            ],
            &printable
        )
    );
    persist_json("ext_energy", &rows);
}
