//! PERF-9 — the weak-scaling gate for the process-sharded sweep engine.
//!
//! Weak scaling: the grid grows with the worker count (a fixed number of
//! cells per worker), so a perfectly scaling engine holds wall time flat
//! as workers are added — until it runs out of cores. The gate:
//!
//! 1. pins the sharded engine **bit-identical** to the in-process
//!    `run_sweep` on the largest grid (a differential-oracle check before
//!    any timing means anything), then
//! 2. times the sharded sweep at 1, 2, and 4 workers with 6 uniform-cost
//!    cells per worker, and
//! 3. fails if **core-normalized parallel efficiency** at 4 workers drops
//!    below 0.7.
//!
//! Core normalization keeps the gate honest on any machine: with P cores,
//! the ideal wall time for W workers over W×C cells is
//! `T1 × W ⁄ min(W, P)` (work grows ×W, usable parallelism caps at P), so
//!
//! ```text
//! efficiency(W) = T1 · (W / min(W, P)) / T(W)
//! ```
//!
//! On a ≥4-core CI runner this reduces to the classic weak-scaling
//! `T1/T(W)`; on a 1-core box it measures pure engine overhead (spawn,
//! manifest, lease churn, fsync, merge) against serial cell cost. Emits
//! `BENCH_scale.json` (repo root + `target/experiments/`), covered by the
//! committed-floor lint. Checkpoint dirs live under
//! `target/sweep-shards/` so a failed gate leaves them for CI artifact
//! upload; they are removed when the gate passes.

use phishare_bench::{banner, experiments_dir, persist_json, GateKnobs, EXPERIMENT_SEED};
use phishare_cluster::{run_sweep, ClusterConfig, ShardOptions, SubstrateMode, SweepJob};
use phishare_core::ClusterPolicy;
use phishare_workload::{WorkloadBuilder, WorkloadKind};
use serde::Serialize;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

const CELLS_PER_WORKER: usize = 6;
const WORKER_COUNTS: [usize; 3] = [1, 2, 4];
const JOBS_PER_CELL: usize = 150;
const NODES: u32 = 4;
const RUNS: usize = 2;
const EFFICIENCY_FLOOR: f64 = 0.7;

/// Uniform-cost cells: same policy, same node count, same job count —
/// only the seed varies — so weak scaling measures the engine, not a
/// lucky assignment of cheap cells to one worker.
fn scale_grid(cells: usize) -> Vec<SweepJob> {
    (0..cells)
        .map(|idx| {
            let seed = EXPERIMENT_SEED + idx as u64;
            let workload = Arc::new(
                WorkloadBuilder::new(WorkloadKind::Table1Mix)
                    .count(JOBS_PER_CELL)
                    .seed(seed)
                    .build(),
            );
            SweepJob {
                label: format!("MCCK/{NODES}n/s{seed}"),
                config: ClusterConfig::paper_cluster(ClusterPolicy::Mcck).with_nodes(NODES),
                workload,
            }
        })
        .collect()
}

/// `target/sweep-shards/` — kept on gate failure for CI artifact upload.
fn shard_root() -> PathBuf {
    experiments_dir()
        .parent()
        .map(|p| p.to_path_buf())
        .unwrap_or_else(|| PathBuf::from("target"))
        .join("sweep-shards")
}

fn shard_opts(workers: usize, dir: PathBuf) -> ShardOptions {
    ShardOptions {
        workers,
        worker_exe: PathBuf::from(env!("CARGO_BIN_EXE_phishare-bench")),
        dir: Some(dir),
        resume: false,
        keep_dir: false,
        substrate: SubstrateMode::Fast,
    }
}

#[derive(Serialize)]
struct ScaleRow {
    workers: usize,
    cells: usize,
    /// Best-of-runs wall time of the whole sharded sweep, ms.
    ms: f64,
    /// Core-normalized parallel efficiency vs the 1-worker baseline.
    efficiency: f64,
}

#[derive(Serialize)]
struct ScaleBench {
    cores: usize,
    cells_per_worker: usize,
    jobs_per_cell: usize,
    nodes: u32,
    runs: usize,
    rows: Vec<ScaleRow>,
    /// Core-normalized parallel efficiency at the largest worker count —
    /// named `speedup` so the committed-floor lint covers this gate.
    speedup: f64,
    speedup_floor: f64,
    knobs: GateKnobs,
}

fn gate() -> ScaleBench {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let root = shard_root();
    let _ = std::fs::remove_dir_all(&root);

    // Differential oracle first: the sharded engine must reproduce the
    // in-process sweep bit-for-bit on the largest grid before its timing
    // is worth gating.
    let max_workers = *WORKER_COUNTS.iter().max().expect("non-empty");
    let oracle_cells = max_workers * CELLS_PER_WORKER;
    let sharded = phishare_cluster::run_sweep_sharded(
        scale_grid(oracle_cells),
        &shard_opts(max_workers, root.join("oracle")),
    )
    .expect("sharded sweep runs");
    let in_process = run_sweep(scale_grid(oracle_cells), max_workers.min(cores));
    assert_eq!(
        sharded, in_process,
        "sharded sweep diverged from in-process run_sweep"
    );

    let mut rows: Vec<ScaleRow> = Vec::new();
    for &workers in &WORKER_COUNTS {
        let cells = workers * CELLS_PER_WORKER;
        let mut best = f64::INFINITY;
        for run in 0..RUNS {
            let dir = root.join(format!("scale-w{workers}-r{run}"));
            let start = Instant::now();
            let merged =
                phishare_cluster::run_sweep_sharded(scale_grid(cells), &shard_opts(workers, dir))
                    .expect("sharded sweep runs");
            best = best.min(start.elapsed().as_secs_f64() * 1e3);
            assert_eq!(merged.len(), cells);
        }
        let t1 = rows.first().map(|r| r.ms).unwrap_or(best);
        let ideal_stretch = workers as f64 / workers.min(cores) as f64;
        rows.push(ScaleRow {
            workers,
            cells,
            ms: best,
            efficiency: t1 * ideal_stretch / best,
        });
    }

    let speedup = rows.last().expect("rows non-empty").efficiency;
    ScaleBench {
        cores,
        cells_per_worker: CELLS_PER_WORKER,
        jobs_per_cell: JOBS_PER_CELL,
        nodes: NODES,
        runs: RUNS,
        rows,
        speedup,
        speedup_floor: EFFICIENCY_FLOOR,
        knobs: GateKnobs::non_negotiation(*WORKER_COUNTS.iter().max().expect("non-empty")),
    }
}

fn main() {
    banner(
        "perf_scale",
        "weak scaling of the process-sharded sweep engine (ROADMAP item 3)",
        "≥ 0.7 core-normalized parallel efficiency at 4 workers, sharded \
         sweeps bit-identical to run_sweep",
    );

    let result = gate();
    println!(
        "{} cores, {} cells/worker ({} Table-I jobs, {} nodes per cell), best of {}:",
        result.cores, result.cells_per_worker, result.jobs_per_cell, result.nodes, result.runs
    );
    for row in &result.rows {
        println!(
            "  {} worker(s) × {} cells: {:>8.1} ms   efficiency {:.2}",
            row.workers, row.cells, row.ms, row.efficiency
        );
    }
    persist_json("BENCH_scale", &result);
    if let Ok(json) = serde_json::to_string_pretty(&result) {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scale.json");
        if std::fs::write(path, json + "\n").is_ok() {
            println!("[saved {path}]");
        }
    }
    assert!(
        result.speedup >= result.speedup_floor,
        "sharded sweep engine regressed: efficiency {:.2} at {} workers \
         is below the {:.1} floor",
        result.speedup,
        result.rows.last().map(|r| r.workers).unwrap_or(0),
        result.speedup_floor
    );
    // The gate passed: checkpoint dirs have served their purpose (they are
    // kept on failure so CI can upload them).
    let _ = std::fs::remove_dir_all(shard_root());
    println!(
        "gate passed: efficiency {:.2} ≥ {:.1}",
        result.speedup, result.speedup_floor
    );
}
