//! PERF-8 — the throughput-sharing engine benchmark gate.
//!
//! Drives one deterministic churn script — ramp to ~10³ concurrent
//! activities, then a long steady state of join/leave/rate-change/advance
//! ops with a completion query after every step — through both
//! [`SharingEngine`] implementations: the O(log n) time-warp heap
//! ([`HeapEngine`]) and the recompute-all-residents oracle
//! ([`NaiveEngine`], which rematerializes its full prediction table on
//! every mutation — the honest pre-optimization cost model). The heap must
//! beat the oracle by ≥ 3× while staying **bit-identical**: the script is
//! first replayed through both engines with every intermediate
//! `next_completion` answer, final completion table, and residual-work
//! bit pattern compared exactly.
//!
//! The rate fed to both engines comes from the calibrated Phi
//! [`SharingCurve`] at the live population, exactly as
//! `SharedDevice::reschedule` does — so the script measures the engine
//! under the access pattern the substrate actually generates: one
//! `advance`, O(1) membership ops, one `set_rate`, one completion query
//! per device event.
//!
//! Emits `BENCH_throughput.json` (under `target/experiments/` and at the
//! repo root) and **fails** below the floor — a regression gate, not just
//! a report.

use criterion::{criterion_group, BenchmarkId, Criterion};
use phishare_bench::{banner, persist_json, GateKnobs, EXPERIMENT_SEED};
use phishare_throughput::{HeapEngine, NaiveEngine, SharingCurve, SharingEngine};
use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;

/// Steady-state population the churn phase holds the engine at.
const ACTIVITIES: usize = 1_000;
/// Churn steps after the ramp (each: advance + leave + join + reshare).
const CHURN_STEPS: usize = 20_000;
const SPEEDUP_FLOOR: f64 = 3.0;

/// One scripted operation against an engine. Pre-generated so the timed
/// loops replay identical op streams with zero RNG or branch divergence.
#[derive(Clone, Copy)]
enum Op {
    /// Advance the shared clock by `dt` ticks' worth of progress.
    Advance(f64),
    /// Join activity `id` with `work` normalized units remaining.
    Join(u64, f64),
    /// Remove activity `id` (completion or kill — engines don't care).
    Leave(u64),
    /// Re-share: set the common rate for the current population.
    SetRate(f64),
}

/// Deterministic 64-bit xorshift*; the bench must not depend on `rand`
/// internals staying stable across versions.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn index(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Build the full op script: ramp to [`ACTIVITIES`] members, then
/// [`CHURN_STEPS`] rounds of advance → leave-one → join-one → reshare.
/// Rates follow the Phi curve at the live population (threads ≈ 12 per
/// activity against a 240-thread card → deep oversubscription, so rates
/// move on every membership change and the warp actually rescales).
fn script(seed: u64) -> Vec<Op> {
    let curve = SharingCurve::phi();
    let mut rng = Rng(seed | 1);
    let mut ops = Vec::with_capacity(2 * ACTIVITIES + 4 * CHURN_STEPS);
    let mut live: Vec<u64> = Vec::with_capacity(ACTIVITIES + 1);
    let mut next_id = 0u64;
    let rate_at = |n: usize| curve.per_activity_rate(n, n, 12 * n as u32, 240);

    for _ in 0..ACTIVITIES {
        ops.push(Op::Join(next_id, rng.f64(1.0, 50_000.0)));
        live.push(next_id);
        next_id += 1;
        ops.push(Op::SetRate(rate_at(live.len())));
    }
    for _ in 0..CHURN_STEPS {
        ops.push(Op::Advance(rng.f64(0.0, 20.0)));
        let victim = live.swap_remove(rng.index(live.len()));
        ops.push(Op::Leave(victim));
        ops.push(Op::Join(next_id, rng.f64(1.0, 50_000.0)));
        live.push(next_id);
        next_id += 1;
        ops.push(Op::SetRate(rate_at(live.len())));
    }
    ops
}

/// Replay the script, querying the next completion after every op (the
/// substrate asks after each event to schedule its wake-up). Returns a
/// fold of the answers so the optimizer cannot elide the queries.
fn replay<E: SharingEngine>(ops: &[Op]) -> u64 {
    let mut e = E::new();
    let mut acc = 0u64;
    for &op in ops {
        match op {
            Op::Advance(dt) => e.advance(dt),
            Op::Join(id, work) => e.join(id, work),
            Op::Leave(id) => {
                e.leave(id);
            }
            Op::SetRate(r) => e.set_rate(r),
        }
        if let Some((id, ticks)) = e.next_completion() {
            acc = acc.wrapping_add(id ^ ticks);
        }
    }
    acc
}

/// Best-of-N wall time, milliseconds.
fn time_runs<F>(runs: usize, mut run: F) -> f64
where
    F: FnMut(),
{
    let mut best = f64::INFINITY;
    for _ in 0..runs {
        let start = Instant::now();
        run();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

#[derive(Serialize)]
struct ThroughputBench {
    activities: usize,
    churn_steps: usize,
    ops: usize,
    naive_runs: usize,
    heap_runs: usize,
    /// Best-of-runs wall time of one naive-oracle replay, ms ("before").
    naive_ms: f64,
    /// Best-of-runs wall time of one heap replay, ms ("after").
    heap_ms: f64,
    speedup: f64,
    speedup_floor: f64,
    /// Live activities still resident at the end of the script.
    final_population: usize,
    knobs: GateKnobs,
}

/// Replay the script through both engines in lockstep, comparing every
/// observable after every op — timing means nothing if the fast engine
/// computes a different schedule.
fn assert_bit_identical(ops: &[Op]) -> usize {
    let mut h = HeapEngine::new();
    let mut n = NaiveEngine::new();
    for (step, &op) in ops.iter().enumerate() {
        match op {
            Op::Advance(dt) => {
                h.advance(dt);
                n.advance(dt);
            }
            Op::Join(id, work) => {
                h.join(id, work);
                n.join(id, work);
            }
            Op::Leave(id) => {
                let (hr, nr) = (h.leave(id), n.leave(id));
                assert_eq!(hr.to_bits(), nr.to_bits(), "residual diverged @ {step}");
            }
            Op::SetRate(r) => {
                h.set_rate(r);
                n.set_rate(r);
            }
        }
        assert_eq!(h.len(), n.len(), "population diverged @ {step}");
        assert_eq!(
            h.next_completion(),
            n.next_completion(),
            "next completion diverged @ {step}"
        );
    }
    // Full final tables: every activity, same tick, same residual bits.
    let mut heap_table = Vec::new();
    h.for_each_completion(|id, ticks| heap_table.push((id, ticks)));
    let mut naive_table = Vec::new();
    n.for_each_completion(|id, ticks| naive_table.push((id, ticks)));
    assert_eq!(heap_table, naive_table, "final completion tables diverged");
    for &(id, _) in &heap_table {
        let (hr, nr) = (h.remaining(id).unwrap(), n.remaining(id).unwrap());
        assert_eq!(hr.to_bits(), nr.to_bits(), "remaining diverged for {id}");
    }
    heap_table.len()
}

fn gate() -> ThroughputBench {
    let ops = script(EXPERIMENT_SEED);
    let final_population = assert_bit_identical(&ops);
    assert_eq!(
        final_population, ACTIVITIES,
        "churn must preserve population"
    );

    // Warm both paths once so neither pays first-touch costs in timing.
    let heap_acc = replay::<HeapEngine>(&ops);
    let naive_acc = replay::<NaiveEngine>(&ops);
    assert_eq!(heap_acc, naive_acc, "completion query folds diverged");

    let naive_runs = 3;
    let heap_runs = 5;
    let naive_ms = time_runs(naive_runs, || {
        black_box(replay::<NaiveEngine>(black_box(&ops)));
    });
    let heap_ms = time_runs(heap_runs, || {
        black_box(replay::<HeapEngine>(black_box(&ops)));
    });

    ThroughputBench {
        activities: ACTIVITIES,
        churn_steps: CHURN_STEPS,
        ops: ops.len(),
        naive_runs,
        heap_runs,
        naive_ms,
        heap_ms,
        speedup: naive_ms / heap_ms,
        speedup_floor: SPEEDUP_FLOOR,
        final_population,
        knobs: GateKnobs::non_negotiation(1),
    }
}

/// Criterion view at a smaller population so per-op numbers show up in
/// the standard bench report without the full gate cost.
fn bench_engines(c: &mut Criterion) {
    let ops = script(EXPERIMENT_SEED + 1);
    let mut group = c.benchmark_group("sharing_engine");
    group.sample_size(10);
    group.bench_with_input(
        BenchmarkId::new("naive", "1000act/20k-churn"),
        &ops,
        |b, ops| b.iter(|| black_box(replay::<NaiveEngine>(ops))),
    );
    group.bench_with_input(
        BenchmarkId::new("heap", "1000act/20k-churn"),
        &ops,
        |b, ops| b.iter(|| black_box(replay::<HeapEngine>(ops))),
    );
    group.finish();
}

criterion_group!(benches, bench_engines);

fn main() {
    banner(
        "perf_throughput",
        "the shared-device completion schedule behind the §II-C sharing model",
        "time-warp heap ≥ 3× faster than the recompute-all oracle at ~10³ \
         concurrent activities under heavy churn, bit-identical schedules",
    );

    let result = gate();
    println!(
        "{} activities, {} churn steps ({} ops total)",
        result.activities, result.churn_steps, result.ops
    );
    println!(
        "naive (best of {}): {:.1} ms   heap (best of {}): {:.1} ms   speedup: {:.2}x",
        result.naive_runs, result.naive_ms, result.heap_runs, result.heap_ms, result.speedup
    );
    persist_json("BENCH_throughput", &result);
    // Also drop a copy at the repo root; the acceptance numbers are
    // committed alongside the code they measure.
    if let Ok(json) = serde_json::to_string_pretty(&result) {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_throughput.json");
        if std::fs::write(path, json + "\n").is_ok() {
            println!("[saved {path}]");
        }
    }
    assert!(
        result.speedup >= result.speedup_floor,
        "throughput engine regressed: {:.2}x < {:.1}x floor",
        result.speedup,
        result.speedup_floor
    );

    benches();
}
