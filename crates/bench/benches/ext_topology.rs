//! EXT-4 — device topology at constant card count.
//!
//! The paper's formulation (§IV-B) has `N` servers with `D` coprocessors
//! each but evaluates only D = 1. With 8 cards total, does it matter whether
//! they sit in 8×1, 4×2 or 2×4 nodes? Fewer, fatter nodes concentrate the
//! FIFO host-slot pool and let the per-node device chooser balance cards
//! locally; the knapsack still packs per *device*. Shared host slots are
//! scaled so the host never binds.

use phishare_bench::{banner, persist_json, table1_workload, EXPERIMENT_SEED};
use phishare_cluster::report::{pct, secs, table};
use phishare_cluster::sweep::{run_sweep_auto, SweepJob};
use phishare_cluster::ClusterConfig;
use phishare_core::ClusterPolicy;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    topology: String,
    policy: String,
    makespan_secs: f64,
}

fn main() {
    banner(
        "EXT-4",
        "device topology at constant card count (the paper's unexplored D > 1)",
        "8 cards behave near-identically whether spread 8×1, 4×2 or 2×4",
    );

    let wl = table1_workload(400, EXPERIMENT_SEED);
    let topologies: [(u32, u32); 3] = [(8, 1), (4, 2), (2, 4)];

    let mut grid = Vec::new();
    for (nodes, devices) in topologies {
        for policy in ClusterPolicy::ALL {
            let mut config = ClusterConfig::paper_cluster(policy).with_nodes(nodes);
            config.devices_per_node = devices;
            // Keep host capacity proportional to cards, as real fat nodes do.
            config.slots_per_node = 16 * devices;
            config.host_cores_per_node = 16 * devices;
            grid.push(SweepJob {
                label: format!("{nodes}x{devices}|{policy}"),
                config,
                workload: wl.clone(),
            });
        }
    }
    let results = run_sweep_auto(grid);

    let rows: Vec<Row> = results
        .iter()
        .map(|(label, res)| {
            let (topology, policy) = label.split_once('|').unwrap();
            Row {
                topology: topology.into(),
                policy: policy.into(),
                makespan_secs: res.as_ref().expect("cell runs").makespan_secs,
            }
        })
        .collect();

    let mut printable = Vec::new();
    for chunk in rows.chunks(3) {
        let (mc, mcc, mcck) = (&chunk[0], &chunk[1], &chunk[2]);
        printable.push(vec![
            mc.topology.replace('x', " nodes × ") + " cards",
            secs(mc.makespan_secs),
            secs(mcc.makespan_secs),
            secs(mcck.makespan_secs),
            pct(100.0 * (1.0 - mcck.makespan_secs / mc.makespan_secs)),
        ]);
    }
    println!(
        "{}",
        table(
            &[
                "Topology (8 cards)",
                "MC (s)",
                "MCC (s)",
                "MCCK (s)",
                "MCCK vs MC"
            ],
            &printable
        )
    );
    persist_json("ext_topology", &rows);
}
