//! ABL-5 — the no-host-contention assumption.
//!
//! §V-A: footprint reduction "assumes coprocessor-intensive jobs and that
//! there is no contention for the host by reducing cluster size". Sharing
//! packs many jobs per node, so their *host* phases compete for host cores
//! too. This ablation shrinks the host from 16 cores (the paper's
//! two-socket node; never contended) down to 2 and measures how much of
//! MCCK's win survives.

use phishare_bench::{banner, persist_json, table1_workload, EXPERIMENT_SEED};
use phishare_cluster::report::{pct, secs, table};
use phishare_cluster::sweep::{run_sweep_auto, SweepJob};
use phishare_cluster::ClusterConfig;
use phishare_core::ClusterPolicy;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    host_cores: u32,
    policy: String,
    makespan_secs: f64,
    host_core_utilization: f64,
}

fn main() {
    banner(
        "ABL-5",
        "host-contention sensitivity (the §V-A footprint caveat)",
        "with ≥8 host cores the assumption is free; starving the host erodes sharing's win",
    );

    let wl = table1_workload(400, EXPERIMENT_SEED);
    let mut grid = Vec::new();
    for host_cores in [2u32, 4, 8, 16] {
        for policy in [ClusterPolicy::Mc, ClusterPolicy::Mcck] {
            let mut config = ClusterConfig::paper_cluster(policy);
            config.host_cores_per_node = host_cores;
            grid.push(SweepJob {
                label: format!("{host_cores}|{policy}"),
                config,
                workload: wl.clone(),
            });
        }
    }
    let results = run_sweep_auto(grid);

    let rows: Vec<Row> = results
        .iter()
        .map(|(label, res)| {
            let r = res.as_ref().expect("cell runs");
            let (cores, policy) = label.split_once('|').unwrap();
            Row {
                host_cores: cores.parse().unwrap(),
                policy: policy.into(),
                makespan_secs: r.makespan_secs,
                host_core_utilization: r.host_core_utilization,
            }
        })
        .collect();

    let mut printable = Vec::new();
    for pair in rows.chunks(2) {
        let (mc, mcck) = (&pair[0], &pair[1]);
        printable.push(vec![
            mc.host_cores.to_string(),
            secs(mc.makespan_secs),
            secs(mcck.makespan_secs),
            pct(100.0 * (1.0 - mcck.makespan_secs / mc.makespan_secs)),
            pct(100.0 * mcck.host_core_utilization),
        ]);
    }
    println!(
        "{}",
        table(
            &[
                "Host cores/node",
                "MC (s)",
                "MCCK (s)",
                "MCCK vs MC",
                "MCCK host util",
            ],
            &printable
        )
    );
    persist_json("abl_host_contention", &rows);
}
