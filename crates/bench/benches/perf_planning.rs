//! PERF-5 — the planning fast-path benchmark gate.
//!
//! Replays the same scripted multi-cycle scheduler lifetime — Fig. 9-scale:
//! 48 devices, 600 pending jobs drawn from a duplication-heavy class mix,
//! window 256 — through the MCCK planner twice: once in [`PlannerMode::Fast`]
//! (candidate preprocessing with multiplicity truncation, content-addressed
//! solve memo, speculative parallel warm-up) and once in
//! [`PlannerMode::NaiveSerial`] (the seed's full per-device DP, retained as
//! the differential oracle). The two replays must emit **bit-identical pin
//! sequences**; only then is the timing comparison meaningful.
//!
//! Only the `plan()` calls are timed — the script around them (dispatches,
//! completions) is bookkeeping shared by both modes.
//!
//! Emits `BENCH_planning.json` (under `target/experiments/` and at the repo
//! root) and **fails** if the measured speedup drops below the 3× acceptance
//! floor, making this a regression gate, not just a report.

use criterion::{criterion_group, BenchmarkId, Criterion};
use phishare_bench::{persist_json, GateKnobs};
use phishare_core::{
    ClusterScheduler, DeviceView, KnapsackConfig, KnapsackScheduler, PendingJob, Pin, PlanStats,
    PlannerMode,
};
use phishare_sim::DetRng;
use phishare_workload::JobId;
use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;

const DEVICES: u32 = 48;
const JOBS: usize = 600;
const WINDOW: usize = 256;
const CYCLES: usize = 8;
const FULL_MB: u64 = 7680;
const SEED: u64 = 9;
const SPEEDUP_FLOOR: f64 = 3.0;

/// Declared envelopes, Table I-style: a handful of classes repeated many
/// times. Duplication is what the fast path's multiplicity truncation and
/// cross-device memo sharing exploit; the naive DP pays for every copy.
const CLASSES: [(u64, u32); 6] = [
    (500, 40),
    (500, 40),
    (1000, 60),
    (2000, 120),
    (250, 16),
    (3000, 240),
];

struct Replay {
    /// Pin lists per cycle — the correctness artifact compared across modes.
    pins: Vec<Vec<Pin>>,
    /// Total wall time spent inside `plan()` across all cycles, ms.
    plan_ms: f64,
    stats: PlanStats,
}

/// Drive one scheduler through the scripted lifetime. The script is a pure
/// function of the seed and of the pins the planner emits, so two modes
/// producing identical pins see identical worlds at every cycle.
fn replay(mode: PlannerMode) -> Replay {
    let mut sched = KnapsackScheduler::new(KnapsackConfig {
        planner: mode,
        window: WINDOW,
        ..KnapsackConfig::default()
    });
    let mut rng = DetRng::substream(SEED, "perf-planning");
    let mut pending: Vec<PendingJob> = (0..JOBS)
        .map(|i| {
            let (mem_mb, threads) = CLASSES[i % CLASSES.len()];
            PendingJob {
                id: JobId(i as u64),
                mem_mb,
                threads,
                nominal_secs: 30.0,
            }
        })
        .collect();
    let mut devices: Vec<DeviceView> = (1..=DEVICES)
        .map(|node| DeviceView {
            node,
            device: 0,
            free_declared_mb: FULL_MB,
            resident_threads: 0,
        })
        .collect();
    // (mem_mb, threads, node, device) of each dispatched job.
    let mut residents: Vec<(u64, u32, u32, u32)> = Vec::new();

    let mut pins_per_cycle = Vec::with_capacity(CYCLES);
    let mut plan_secs = 0.0;
    for _ in 0..CYCLES {
        let start = Instant::now();
        let pins = sched.plan(&pending, &devices);
        plan_secs += start.elapsed().as_secs_f64();

        // Condor dispatches most pins before the next cycle; the rest stay
        // outstanding.
        for pin in &pins {
            if rng.chance(0.7) {
                sched.on_dispatched(pin.job);
                let at = pending.iter().position(|j| j.id == pin.job).unwrap();
                let spec = pending.remove(at);
                let dev = devices
                    .iter_mut()
                    .find(|d| d.node == pin.node && d.device == pin.device)
                    .unwrap();
                dev.free_declared_mb = dev.free_declared_mb.saturating_sub(spec.mem_mb);
                dev.resident_threads += spec.threads;
                residents.push((spec.mem_mb, spec.threads, pin.node, pin.device));
            }
        }

        // Completions free capacity, steering devices back through
        // previously-seen states (the memo's cross-cycle win).
        let mut i = 0;
        while i < residents.len() {
            if rng.chance(0.4) {
                let (mem_mb, threads, node, device) = residents.swap_remove(i);
                let dev = devices
                    .iter_mut()
                    .find(|d| d.node == node && d.device == device)
                    .unwrap();
                dev.free_declared_mb += mem_mb;
                dev.resident_threads -= threads;
            } else {
                i += 1;
            }
        }

        pins_per_cycle.push(pins);
    }

    Replay {
        pins: pins_per_cycle,
        plan_ms: plan_secs * 1e3,
        stats: sched.plan_stats(),
    }
}

#[derive(Serialize)]
struct PlanningBench {
    devices: u32,
    jobs: usize,
    window: usize,
    cycles: usize,
    naive_runs: usize,
    fast_runs: usize,
    /// Best-of-runs total `plan()` wall time, naive serial planner, ms.
    naive_ms: f64,
    /// Best-of-runs total `plan()` wall time, fast planner, ms.
    fast_ms: f64,
    speedup: f64,
    speedup_floor: f64,
    pins_issued: usize,
    plan_cache_hits: u64,
    plan_cache_misses: u64,
    knobs: GateKnobs,
}

fn gate() -> PlanningBench {
    // Correctness first: the two planners must agree pin-for-pin, cycle by
    // cycle, before the timing comparison means anything.
    let fast = replay(PlannerMode::Fast);
    let naive = replay(PlannerMode::NaiveSerial);
    assert_eq!(
        fast.pins, naive.pins,
        "fast and naive planners diverged on the scripted replay"
    );
    let pins_issued: usize = fast.pins.iter().map(Vec::len).sum();

    let naive_runs = 2;
    let fast_runs = 5;
    let mut naive_ms = naive.plan_ms;
    for _ in 1..naive_runs {
        naive_ms = naive_ms.min(replay(PlannerMode::NaiveSerial).plan_ms);
    }
    let mut fast_ms = fast.plan_ms;
    for _ in 1..fast_runs {
        fast_ms = fast_ms.min(replay(PlannerMode::Fast).plan_ms);
    }

    PlanningBench {
        devices: DEVICES,
        jobs: JOBS,
        window: WINDOW,
        cycles: CYCLES,
        naive_runs,
        fast_runs,
        naive_ms,
        fast_ms,
        speedup: naive_ms / fast_ms,
        speedup_floor: SPEEDUP_FLOOR,
        pins_issued,
        plan_cache_hits: fast.stats.cache_hits,
        plan_cache_misses: fast.stats.cache_misses,
        knobs: GateKnobs::non_negotiation(1),
    }
}

/// Criterion view of one cold planning cycle at a smaller size, so the
/// per-cycle numbers show up in the standard bench report.
fn bench_cycles(c: &mut Criterion) {
    let pending: Vec<PendingJob> = (0..120)
        .map(|i| {
            let (mem_mb, threads) = CLASSES[i % CLASSES.len()];
            PendingJob {
                id: JobId(i as u64),
                mem_mb,
                threads,
                nominal_secs: 30.0,
            }
        })
        .collect();
    let devices: Vec<DeviceView> = (1..=8u32)
        .map(|node| DeviceView {
            node,
            device: 0,
            free_declared_mb: FULL_MB,
            resident_threads: 0,
        })
        .collect();

    let mut group = c.benchmark_group("planning_cycle");
    group.sample_size(10);
    for (label, mode) in [
        ("naive", PlannerMode::NaiveSerial),
        ("fast", PlannerMode::Fast),
    ] {
        group.bench_with_input(
            BenchmarkId::new(label, "8dev/120jobs"),
            &mode,
            |b, &mode| {
                b.iter(|| {
                    let mut sched = KnapsackScheduler::new(KnapsackConfig {
                        planner: mode,
                        window: WINDOW,
                        ..KnapsackConfig::default()
                    });
                    black_box(sched.plan(&pending, &devices))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_cycles);

fn main() {
    phishare_bench::banner(
        "perf_planning",
        "§IV knapsack planning cost",
        "memoized+preprocessed planner ≥ 3× faster than the naive per-device DP",
    );

    let result = gate();
    println!(
        "{} devices, {} jobs, window {}, {} cycles ({} pins issued)",
        result.devices, result.jobs, result.window, result.cycles, result.pins_issued
    );
    println!(
        "naive (best of {}): {:.2} ms   fast (best of {}): {:.2} ms   speedup: {:.1}x",
        result.naive_runs, result.naive_ms, result.fast_runs, result.fast_ms, result.speedup
    );
    println!(
        "solve memo: {} hits / {} misses",
        result.plan_cache_hits, result.plan_cache_misses
    );
    persist_json("BENCH_planning", &result);
    // Also drop a copy at the repo root; the acceptance numbers are
    // committed alongside the code they measure.
    if let Ok(json) = serde_json::to_string_pretty(&result) {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_planning.json");
        if std::fs::write(path, json + "\n").is_ok() {
            println!("[saved {path}]");
        }
    }
    assert!(
        result.speedup >= result.speedup_floor,
        "planning fast path regressed: {:.1}x < {:.1}x floor",
        result.speedup,
        result.speedup_floor
    );

    benches();
}
