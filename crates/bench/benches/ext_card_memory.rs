//! EXT-3 — card-memory sensitivity across real Phi SKUs.
//!
//! §II-A: "Each Xeon Phi device has 8-16 GB of RAM". The paper evaluates
//! the 8 GB card only; this extension reruns the Table II comparison on the
//! 6 GB 3120A, the 8 GB 5110P (the paper's card) and the 16 GB 7120P.
//! Larger cards hold more co-resident jobs per knapsack, so sharing's win
//! over exclusive allocation should widen with card memory — and the
//! thread budget (not memory) becomes MCCK's binding constraint.

use phishare_bench::{banner, persist_json, table1_workload, EXPERIMENT_SEED};
use phishare_cluster::report::{pct, secs, table};
use phishare_cluster::sweep::{run_sweep_auto, SweepJob};
use phishare_cluster::ClusterConfig;
use phishare_core::ClusterPolicy;
use phishare_phi::PhiConfig;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    sku: String,
    policy: String,
    makespan_secs: f64,
}

fn main() {
    banner(
        "EXT-3",
        "card-memory sensitivity (§II-A's 8-16 GB range)",
        "sharing's win over MC widens with card memory",
    );

    let wl = table1_workload(400, EXPERIMENT_SEED);
    let skus: [(&str, PhiConfig); 3] = [
        ("3120A (6 GB)", PhiConfig::phi_3120a()),
        ("5110P (8 GB)", PhiConfig::phi_5110p()),
        ("7120P (16 GB)", PhiConfig::phi_7120p()),
    ];

    let mut grid = Vec::new();
    for (name, phi) in &skus {
        for policy in ClusterPolicy::ALL {
            let mut config = ClusterConfig::paper_cluster(policy);
            config.phi = *phi;
            grid.push(SweepJob {
                label: format!("{name}|{policy}"),
                config,
                workload: wl.clone(),
            });
        }
    }
    let results = run_sweep_auto(grid);

    let rows: Vec<Row> = results
        .iter()
        .map(|(label, res)| {
            let (sku, policy) = label.split_once('|').unwrap();
            Row {
                sku: sku.into(),
                policy: policy.into(),
                makespan_secs: res.as_ref().expect("cell runs").makespan_secs,
            }
        })
        .collect();

    let mut printable = Vec::new();
    for chunk in rows.chunks(3) {
        let (mc, mcc, mcck) = (&chunk[0], &chunk[1], &chunk[2]);
        printable.push(vec![
            mc.sku.clone(),
            secs(mc.makespan_secs),
            secs(mcc.makespan_secs),
            secs(mcck.makespan_secs),
            pct(100.0 * (1.0 - mcck.makespan_secs / mc.makespan_secs)),
        ]);
    }
    println!(
        "{}",
        table(
            &["Card", "MC (s)", "MCC (s)", "MCCK (s)", "MCCK vs MC"],
            &printable
        )
    );
    persist_json("ext_card_memory", &rows);
}
