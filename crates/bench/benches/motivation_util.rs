//! EXP-M1 — §III motivation: coprocessor core utilization under the
//! exclusive-allocation policy.
//!
//! Paper measurements: ≈ 50 % average core utilization for the 1000-job
//! Table I mix, and 38–63 % across synthetic resource distributions (the
//! abstract quotes an average of 38 %). The point being made: exclusive
//! allocation leaves roughly half the manycore idle — the opportunity
//! sharing exploits.

use phishare_bench::{
    banner, persist_json, run_cell, synthetic_workload, table1_workload, EXPERIMENT_SEED,
    SYNTHETIC_JOBS, TABLE1_JOBS,
};
use phishare_cluster::report::{pct, table};
use phishare_core::ClusterPolicy;
use phishare_workload::ResourceDist;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    workload: String,
    core_utilization_pct: f64,
    thread_utilization_pct: f64,
    device_busy_pct: f64,
}

fn main() {
    banner(
        "§III motivation",
        "average core utilization under exclusive allocation (MC)",
        "≈50% on the real Table I mix; 38–63% across synthetic distributions",
    );

    let mut rows = Vec::new();

    let real = run_cell(
        ClusterPolicy::Mc,
        8,
        &table1_workload(TABLE1_JOBS, EXPERIMENT_SEED),
    );
    rows.push(Row {
        workload: "table1-mix (1000 jobs)".into(),
        core_utilization_pct: 100.0 * real.core_utilization,
        thread_utilization_pct: 100.0 * real.thread_utilization,
        device_busy_pct: 100.0 * real.device_busy_fraction,
    });

    for dist in ResourceDist::ALL {
        let r = run_cell(
            ClusterPolicy::Mc,
            8,
            &synthetic_workload(dist, SYNTHETIC_JOBS, EXPERIMENT_SEED),
        );
        rows.push(Row {
            workload: format!("synthetic {dist} (400 jobs)"),
            core_utilization_pct: 100.0 * r.core_utilization,
            thread_utilization_pct: 100.0 * r.thread_utilization,
            device_busy_pct: 100.0 * r.device_busy_fraction,
        });
    }

    let printable: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workload.clone(),
                pct(r.core_utilization_pct),
                pct(r.thread_utilization_pct),
                pct(r.device_busy_pct),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &[
                "Workload (MC policy, 8 nodes)",
                "Core util",
                "Thread util",
                "Device busy"
            ],
            &printable
        )
    );

    let synth: Vec<f64> = rows[1..].iter().map(|r| r.core_utilization_pct).collect();
    let lo = synth.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = synth.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    println!(
        "synthetic range: {:.1}%–{:.1}% (paper: 38%–63%); real mix: {:.1}% (paper: ≈50%)",
        lo, hi, rows[0].core_utilization_pct
    );
    persist_json("motivation_util", &rows);
}
