//! PERF-4 — the simulation-core fast-path benchmark gate.
//!
//! Runs a full 8-node × 1600-job experiment end to end under both event
//! schemes: the next-completion fast path (`Experiment::run` — one
//! prediction event per device per generation, lazily drained when stale)
//! against the retained per-offload scheme (`Experiment::run_naive_events`
//! — one event per active offload per generation, the pre-optimization
//! cost model).
//!
//! The workload is built to exercise the regime the fast path targets:
//! small-footprint, offload-dominant jobs with many kernel launches each,
//! crammed ~20 deep per device under MCC. Every device membership change
//! then re-predicts for every co-resident offload — O(n²) event churn per
//! busy episode in the naive scheme, one prediction in the fast one. (The
//! Table I mix at this scale is negotiation-bound instead; that path has
//! its own gate in `perf_negotiation`.)
//!
//! Emits `BENCH_sim.json` (under `target/experiments/` and at the repo
//! root) and **fails** if the measured speedup drops below the 2×
//! acceptance floor — a regression gate, not just a report. Both runs must
//! return bit-identical results before timing means anything (the
//! randomized version of this assertion lives in
//! `cluster/tests/prop_runtime_diff.rs`).

use criterion::{criterion_group, BenchmarkId, Criterion};
use phishare_bench::{banner, persist_json, GateKnobs, EXPERIMENT_SEED};
use phishare_cluster::{ClusterConfig, Experiment};
use phishare_core::ClusterPolicy;
use phishare_sim::SimDuration;
use phishare_workload::{
    ArrivalProcess, ResourceDist, SyntheticParams, Workload, WorkloadBuilder, WorkloadKind,
};
use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;

const NODES: u32 = 8;
const JOBS: usize = 1600;
const SPEEDUP_FLOOR: f64 = 2.0;

/// Offload-dense synthetic jobs: tiny memory footprints (so MCC's random
/// cramming stacks devices deep), 92–97% offload duty, and 48–96 kernel
/// launches per job — the event-churn regime described in the module docs.
fn gate_workload(count: usize, seed: u64) -> Workload {
    let params = SyntheticParams {
        mem_mb: (64, 160),
        threads: (4, 16),
        thread_jitter: 0.08,
        duty_cycle: (0.92, 0.97),
        offloads: (48, 96),
        duration_secs: (40.0, 100.0),
    };
    WorkloadBuilder::new(WorkloadKind::Synthetic(ResourceDist::Uniform, params))
        .count(count)
        .seed(seed)
        // Steady-state arrivals: the queue stays shallow, so wall time
        // measures the DES core rather than FIFO scans of a deep backlog.
        .arrivals(ArrivalProcess::Poisson {
            mean_gap: SimDuration::from_millis(800),
        })
        .build()
}

/// Paper cluster with wider nodes (24 host slots) so devices actually
/// reach ~20 co-resident offloads, and arrival-triggered negotiations
/// batched at 5 s so cycle count stays modest at 1600 jobs.
fn gate_config(policy: ClusterPolicy, nodes: u32) -> ClusterConfig {
    let mut cfg = ClusterConfig::paper_cluster(policy).with_nodes(nodes);
    cfg.slots_per_node = 24;
    cfg.negotiation_trigger_delay = SimDuration::from_secs(5);
    cfg
}

/// Best-of-N wall time of one full experiment, milliseconds.
fn time_runs<F>(runs: usize, mut run: F) -> f64
where
    F: FnMut(),
{
    let mut best = f64::INFINITY;
    for _ in 0..runs {
        let start = Instant::now();
        run();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

#[derive(Serialize)]
struct SimBench {
    policy: String,
    nodes: u32,
    jobs: usize,
    naive_runs: usize,
    fast_runs: usize,
    /// Best-of-runs wall time of one per-offload-event experiment, ms
    /// ("before").
    naive_ms: f64,
    /// Best-of-runs wall time of one next-completion experiment, ms
    /// ("after").
    fast_ms: f64,
    speedup: f64,
    speedup_floor: f64,
    completed: usize,
    makespan_secs: f64,
    live_events: u64,
    knobs: GateKnobs,
}

fn gate() -> SimBench {
    let policy = ClusterPolicy::Mcc;
    let wl = gate_workload(JOBS, EXPERIMENT_SEED);
    let cfg = gate_config(policy, NODES);

    // Sanity first: both schemes must agree before timing means anything.
    let fast = Experiment::run(&cfg, &wl).expect("fast-path experiment runs");
    let naive = Experiment::run_naive_events(&cfg, &wl).expect("naive-event experiment runs");
    assert_eq!(fast, naive, "event schemes diverged on the gate workload");

    let naive_runs = 3;
    let fast_runs = 7;
    let naive_ms = time_runs(naive_runs, || {
        black_box(Experiment::run_naive_events(&cfg, &wl).expect("runs"));
    });
    let fast_ms = time_runs(fast_runs, || {
        black_box(Experiment::run(&cfg, &wl).expect("runs"));
    });

    SimBench {
        policy: policy.to_string(),
        nodes: NODES,
        jobs: JOBS,
        naive_runs,
        fast_runs,
        naive_ms,
        fast_ms,
        speedup: naive_ms / fast_ms,
        speedup_floor: SPEEDUP_FLOOR,
        completed: fast.completed,
        makespan_secs: fast.makespan_secs,
        live_events: fast.events_processed,
        knobs: GateKnobs::non_negotiation(1),
    }
}

/// Criterion view of the same comparison at a smaller size, so per-run
/// numbers show up in the standard bench report without the full gate cost.
fn bench_experiments(c: &mut Criterion) {
    let wl = gate_workload(400, EXPERIMENT_SEED);
    let cfg = gate_config(ClusterPolicy::Mcc, 4);
    let mut group = c.benchmark_group("simulation_run");
    group.sample_size(10);
    group.bench_with_input(
        BenchmarkId::new("naive_events", "4n/400j"),
        &(&cfg, &wl),
        |b, (cfg, wl)| b.iter(|| black_box(Experiment::run_naive_events(cfg, wl).expect("runs"))),
    );
    group.bench_with_input(
        BenchmarkId::new("next_completion", "4n/400j"),
        &(&cfg, &wl),
        |b, (cfg, wl)| b.iter(|| black_box(Experiment::run(cfg, wl).expect("runs"))),
    );
    group.finish();
}

criterion_group!(benches, bench_experiments);

fn main() {
    banner(
        "perf_sim",
        "the DES substrate behind every §V experiment",
        "next-completion event scheduling ≥ 2× faster than per-offload events, bit-identical results",
    );

    let result = gate();
    println!(
        "{} on {} nodes, {} jobs ({} completed, makespan {:.0} s, {} live events)",
        result.policy,
        result.nodes,
        result.jobs,
        result.completed,
        result.makespan_secs,
        result.live_events
    );
    println!(
        "naive (best of {}): {:.1} ms   fast (best of {}): {:.1} ms   speedup: {:.1}x",
        result.naive_runs, result.naive_ms, result.fast_runs, result.fast_ms, result.speedup
    );
    persist_json("BENCH_sim", &result);
    // Also drop a copy at the repo root; the acceptance numbers are
    // committed alongside the code they measure.
    if let Ok(json) = serde_json::to_string_pretty(&result) {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim.json");
        if std::fs::write(path, json + "\n").is_ok() {
            println!("[saved {path}]");
        }
    }
    assert!(
        result.speedup >= result.speedup_floor,
        "simulation fast path regressed: {:.1}x < {:.1}x floor",
        result.speedup,
        result.speedup_floor
    );

    benches();
}
