//! PERF-2 — Criterion microbenches of the substrates: ClassAd parsing and
//! matchmaking, the event queue, the RNG samplers, and a full small
//! end-to-end simulation (events/second).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use phishare_classad::{eval, parse, ClassAd};
use phishare_cluster::{ClusterConfig, Experiment};
use phishare_core::ClusterPolicy;
use phishare_sim::{DetRng, EventQueue, SimTime};
use phishare_workload::{WorkloadBuilder, WorkloadKind};
use std::hint::black_box;

fn bench_classad(c: &mut Criterion) {
    let mut group = c.benchmark_group("classad");
    let src = "TARGET.RequestPhiMemory <= MY.PhiFreeMemory && PhiDevices >= 1 && \
               (TARGET.RequestPhiThreads <= 240 || TARGET.RequestExclusivePhi == false)";
    group.bench_function("parse", |b| b.iter(|| parse(black_box(src)).unwrap()));

    let expr = parse(src).unwrap();
    let mut machine = ClassAd::new();
    machine.insert("PhiFreeMemory", 7680u64);
    machine.insert("PhiDevices", 1u64);
    let mut job = ClassAd::new();
    job.insert("RequestPhiMemory", 1024u64);
    job.insert("RequestPhiThreads", 120u32);
    job.insert("RequestExclusivePhi", false);
    group.bench_function("eval", |b| {
        b.iter(|| eval(black_box(&expr), &machine, Some(&job)))
    });

    let mut m = machine.clone();
    m.insert_expr(
        "Requirements",
        "TARGET.RequestPhiMemory <= MY.PhiFreeMemory",
    )
    .unwrap();
    let mut j = job.clone();
    j.insert_expr("Requirements", "TARGET.PhiDevices >= 1")
        .unwrap();
    group.bench_function("two_sided_match", |b| b.iter(|| black_box(&m).matches(&j)));
    group.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    for n in [1_000usize, 100_000] {
        group.bench_with_input(BenchmarkId::new("push_pop", n), &n, |b, &n| {
            b.iter(|| {
                let mut q = EventQueue::with_capacity(n);
                for i in 0..n {
                    q.push(SimTime::from_ticks(((i * 2_654_435_761) % n) as u64), i);
                }
                let mut last = 0u64;
                while let Some((t, _)) = q.pop() {
                    last = t.ticks();
                }
                last
            })
        });
    }
    group.finish();
}

fn bench_rng(c: &mut Criterion) {
    let mut group = c.benchmark_group("rng");
    group.bench_function("normal", |b| {
        let mut rng = DetRng::from_seed(1);
        b.iter(|| rng.normal(0.0, 1.0))
    });
    group.bench_function("truncated_normal", |b| {
        let mut rng = DetRng::from_seed(1);
        b.iter(|| rng.truncated_normal(0.5, 0.18, 0.0, 1.0))
    });
    group.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let workload = WorkloadBuilder::new(WorkloadKind::Table1Mix)
        .count(100)
        .seed(3)
        .build();
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    for policy in ClusterPolicy::ALL {
        let config = ClusterConfig::paper_cluster(policy).with_nodes(4);
        group.bench_with_input(
            BenchmarkId::new("simulate_100_jobs", policy.to_string()),
            &config,
            |b, config| b.iter(|| Experiment::run(black_box(config), &workload).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_classad,
    bench_event_queue,
    bench_rng,
    bench_end_to_end
);
criterion_main!(benches);
