//! Kill-and-resume coverage for the process-sharded sweep engine.
//!
//! The engine's contract is that sharding, killing, and resuming are all
//! invisible in the output: a sharded sweep — even one whose worker was
//! SIGKILLed mid-grid and relaunched with resume — merges bit-identical to
//! the in-process `run_sweep` on the same grid. These tests exercise the
//! real worker binary (`CARGO_BIN_EXE_phishare-bench`) through real child
//! processes, plus a torn-final-record recovery case and proptests over
//! grid shape, substrate, worker count, and kill point.

use phishare_cluster::shard::{build_manifest, load_manifest, write_manifest};
use phishare_cluster::{
    run_sweep, run_sweep_sharded, ClusterConfig, ShardOptions, SubstrateMode, SweepJob,
    SweepOutcome,
};
use phishare_core::ClusterPolicy;
use phishare_workload::{Workload, WorkloadBuilder, WorkloadKind};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn worker_exe() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_phishare-bench"))
}

fn workload(jobs: usize, seed: u64) -> Arc<Workload> {
    Arc::new(
        WorkloadBuilder::new(WorkloadKind::Table1Mix)
            .count(jobs)
            .seed(seed)
            .build(),
    )
}

/// A grid of (policy × nodes) cells over one shared workload.
fn grid(jobs: usize, seed: u64, sizes: &[u32]) -> Vec<SweepJob> {
    let wl = workload(jobs, seed);
    [ClusterPolicy::Mcc, ClusterPolicy::Mcck]
        .iter()
        .flat_map(|&policy| {
            sizes.iter().map({
                let wl = Arc::clone(&wl);
                move |&nodes| SweepJob {
                    label: format!("{policy}/{nodes}"),
                    config: ClusterConfig::paper_cluster(policy).with_nodes(nodes),
                    workload: Arc::clone(&wl),
                }
            })
        })
        .collect()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "phishare-shard-resume-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn opts(workers: usize, substrate: SubstrateMode, dir: Option<PathBuf>) -> ShardOptions {
    ShardOptions {
        workers,
        worker_exe: worker_exe(),
        dir,
        resume: false,
        keep_dir: false,
        substrate,
    }
}

/// Spawn one real worker on `dir`, SIGKILL it once its checkpoint log
/// holds at least `min_records` complete records, and return how many
/// records survived. Panics if the worker finishes the whole grid before
/// the kill lands (the grid must be big enough to catch it mid-run).
fn kill_worker_mid_sweep(dir: &Path, min_records: usize, total_cells: usize) -> usize {
    let mut child = std::process::Command::new(worker_exe())
        .arg("--worker")
        .arg("--dir")
        .arg(dir)
        .arg("--worker-id")
        .arg("0")
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("worker spawns");
    let log = dir.join("results-w0.jsonl");
    let deadline = Instant::now() + Duration::from_secs(120);
    let records = loop {
        assert!(
            Instant::now() < deadline,
            "worker never reached {min_records} checkpointed cells"
        );
        let count = std::fs::read_to_string(&log)
            .map(|text| text.lines().count())
            .unwrap_or(0);
        if count >= min_records {
            break count;
        }
        if let Ok(Some(status)) = child.try_wait() {
            panic!("worker exited ({status}) before the kill; grid too small");
        }
        std::thread::sleep(Duration::from_millis(5));
    };
    // SIGKILL: no cleanup, no flush — exactly the crash the checkpoint
    // protocol must survive.
    child.kill().expect("kill worker");
    child.wait().expect("reap worker");
    assert!(
        records < total_cells,
        "worker finished all {total_cells} cells before the kill landed"
    );
    records
}

fn assert_identical(sharded: &[SweepOutcome], in_process: &[SweepOutcome]) {
    assert_eq!(sharded.len(), in_process.len());
    for ((sl, sr), (il, ir)) in sharded.iter().zip(in_process.iter()) {
        assert_eq!(sl, il, "cell order diverged");
        assert_eq!(sr, ir, "sharded sweep diverged from run_sweep on {sl}");
    }
}

#[test]
fn sharded_sweep_matches_in_process() {
    let jobs = grid(40, 11, &[2, 3, 4]);
    let sharded = run_sweep_sharded(jobs, &opts(2, SubstrateMode::Fast, None)).unwrap();
    assert_identical(&sharded, &run_sweep(grid(40, 11, &[2, 3, 4]), 1));
}

#[test]
fn sharded_sweep_matches_in_process_on_keyed_substrate() {
    let jobs = grid(30, 3, &[2, 4]);
    let sharded = run_sweep_sharded(jobs, &opts(3, SubstrateMode::Keyed, None)).unwrap();
    let in_process = phishare_cluster::run_sweep_keyed(grid(30, 3, &[2, 4]), 1);
    assert_identical(&sharded, &in_process);
}

#[test]
fn sigkilled_worker_resumes_bit_identical() {
    let dir = temp_dir("sigkill");
    let sizes = [2, 3, 4, 5, 6, 8];
    let jobs = grid(120, 7, &sizes);
    let cells = jobs.len();
    write_manifest(&dir, &build_manifest(&jobs, SubstrateMode::Fast)).unwrap();
    let survived = kill_worker_mid_sweep(&dir, 2, cells);
    assert!(survived >= 2);

    // Relaunch with resume: leases from the killed generation are cleared,
    // checkpointed cells are skipped, and the merge must be bit-identical
    // to a never-interrupted in-process sweep. (The merge hard-errors on
    // duplicate indices, so success also proves no cell ran twice.)
    let mut resume_opts = opts(2, SubstrateMode::Fast, Some(dir.clone()));
    resume_opts.resume = true;
    let resumed = run_sweep_sharded(grid(120, 7, &sizes), &resume_opts).unwrap();
    assert_identical(&resumed, &run_sweep(grid(120, 7, &sizes), 1));

    // The resumed generation really skipped the survivors: worker 0's log
    // still holds its pre-kill records.
    let log0 = std::fs::read_to_string(dir.join("results-w0.jsonl")).unwrap();
    assert!(log0.lines().count() >= survived);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn truncated_final_record_resumes_bit_identical() {
    let dir = temp_dir("torn");
    let sizes = [2, 3, 4, 5, 6, 8];
    let jobs = grid(120, 9, &sizes);
    let cells = jobs.len();
    write_manifest(&dir, &build_manifest(&jobs, SubstrateMode::Fast)).unwrap();
    let survived = kill_worker_mid_sweep(&dir, 2, cells);

    // Simulate a torn final append on top of the kill: chop the log
    // mid-record. The resume must truncate the partial line away and
    // re-run that cell.
    let log = dir.join("results-w0.jsonl");
    let bytes = std::fs::read(&log).unwrap();
    assert!(bytes.len() > 40);
    std::fs::write(&log, &bytes[..bytes.len() - 37]).unwrap();

    let mut resume_opts = opts(2, SubstrateMode::Fast, Some(dir.clone()));
    resume_opts.resume = true;
    let resumed = run_sweep_sharded(grid(120, 9, &sizes), &resume_opts).unwrap();
    assert_identical(&resumed, &run_sweep(grid(120, 9, &sizes), 1));
    let _ = survived;
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn resume_rejects_a_different_grid() {
    let dir = temp_dir("mismatch");
    let jobs = grid(30, 3, &[2, 4]);
    write_manifest(&dir, &build_manifest(&jobs, SubstrateMode::Fast)).unwrap();
    assert!(load_manifest(&dir).is_ok());

    let mut resume_opts = opts(2, SubstrateMode::Fast, Some(dir.clone()));
    resume_opts.resume = true;
    // Different seed ⇒ different workload ⇒ the resume must refuse rather
    // than merge checkpoints from another experiment.
    let err = run_sweep_sharded(grid(30, 4, &[2, 4]), &resume_opts).unwrap_err();
    assert!(err.contains("mismatch"), "unexpected error: {err}");
    std::fs::remove_dir_all(&dir).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Sharded ≡ in-process across grid shape, substrate, and fan-out.
    #[test]
    fn prop_sharded_matches_in_process(
        jobs in prop::sample::select(vec![15usize, 25, 40]),
        seed in 1u64..50,
        workers in 1usize..4,
        substrate in prop::sample::select(vec![SubstrateMode::Fast, SubstrateMode::Keyed]),
    ) {
        let sizes = [2u32, 3];
        let sharded =
            run_sweep_sharded(grid(jobs, seed, &sizes), &opts(workers, substrate, None)).unwrap();
        let in_process = match substrate {
            SubstrateMode::Fast => run_sweep(grid(jobs, seed, &sizes), 1),
            _ => phishare_cluster::run_sweep_keyed(grid(jobs, seed, &sizes), 1),
        };
        prop_assert_eq!(sharded, in_process);
    }

    /// Kill at a random point, resume, and the merge is still identical.
    #[test]
    fn prop_kill_resume_matches_uninterrupted(
        seed in 1u64..50,
        kill_after in 1usize..4,
        resume_workers in 1usize..3,
    ) {
        let sizes = [2u32, 3, 4, 5, 6, 8];
        let dir = temp_dir(&format!("prop-{seed}-{kill_after}-{resume_workers}"));
        let jobs = grid(100, seed, &sizes);
        let cells = jobs.len();
        write_manifest(&dir, &build_manifest(&jobs, SubstrateMode::Fast)).unwrap();
        kill_worker_mid_sweep(&dir, kill_after, cells);

        let mut resume_opts = opts(resume_workers, SubstrateMode::Fast, Some(dir.clone()));
        resume_opts.resume = true;
        let resumed = run_sweep_sharded(grid(100, seed, &sizes), &resume_opts).unwrap();
        let uninterrupted = run_sweep(grid(100, seed, &sizes), 1);
        prop_assert_eq!(resumed, uninterrupted);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
