//! The map-backed middleware substrate, retained as a differential oracle.
//!
//! [`KeyedCosmicDevice`] is the seed's `BTreeMap`-keyed implementation of
//! the COSMIC per-device state machine, preserved when the production
//! [`CosmicDevice`](crate::CosmicDevice) moved to generation-stamped slab
//! storage. The cluster runtime compiles against both
//! (`SubstrateMode::Keyed`), and differential proptests assert bit-identical
//! `ExperimentResult`s between them. Do not optimize this module — its cost
//! model is part of the keyed-substrate floor the `perf_e2e` gate measures
//! against.

use crate::middleware::{Admission, ContainerVerdict, CosmicConfig, OffloadGrant, OffloadPolicy};
use phishare_phi::{Affinity, CoreAllocator, CoreSet, PhiConfig};
use phishare_sim::{SimDuration, SimTime, Summary};
use phishare_workload::JobId;
use std::collections::{BTreeMap, VecDeque};

#[derive(Debug, Clone)]
struct Registered {
    declared_mem_mb: u64,
    declared_threads: u32,
}

#[derive(Debug, Clone)]
struct ActiveOffload {
    threads: u32,
    cores: CoreSet,
}

#[derive(Debug, Clone)]
struct Waiting {
    job: JobId,
    threads: u32,
    work: SimDuration,
    enqueued: SimTime,
}

/// The seed's map-backed COSMIC state for one coprocessor (differential
/// oracle). Keyed by [`JobId`] throughout; every operation pays a
/// `BTreeMap` lookup and the grant paths allocate a fresh `Vec` per call.
#[derive(Debug)]
pub struct KeyedCosmicDevice {
    cfg: CosmicConfig,
    hw_threads: u32,
    threads_per_core: u32,
    allocator: CoreAllocator,
    registered: BTreeMap<JobId, Registered>,
    active: BTreeMap<JobId, ActiveOffload>,
    waiting: VecDeque<Waiting>,
    /// Time each admitted offload spent waiting in the queue, seconds.
    pub queue_wait: Summary,
    /// Offloads that had to wait at least one admission round.
    pub queued_total: u64,
}

impl KeyedCosmicDevice {
    /// Create middleware state for a device with the given hardware shape.
    pub fn new(cfg: CosmicConfig, phi: &PhiConfig) -> Self {
        KeyedCosmicDevice {
            cfg,
            hw_threads: phi.hw_threads(),
            threads_per_core: phi.threads_per_core,
            allocator: CoreAllocator::new(phi.cores),
            registered: BTreeMap::new(),
            active: BTreeMap::new(),
            waiting: VecDeque::new(),
            queue_wait: Summary::new(),
            queued_total: 0,
        }
    }

    /// Register a job that the cluster scheduler placed on this device.
    ///
    /// # Panics
    /// Panics if the job is already registered.
    pub fn register_job(&mut self, job: JobId, declared_mem_mb: u64, declared_threads: u32) {
        let prior = self.registered.insert(
            job,
            Registered {
                declared_mem_mb,
                declared_threads,
            },
        );
        assert!(prior.is_none(), "job {job} registered twice");
    }

    /// Remove a job (completed or killed): drops any queued offload and
    /// frees its cores if one was active. Returns offload grants that the
    /// departure unblocked.
    pub fn unregister_job(&mut self, now: SimTime, job: JobId) -> Vec<OffloadGrant> {
        self.waiting.retain(|w| w.job != job);
        if let Some(active) = self.active.remove(&job) {
            self.allocator.release(active.cores);
        }
        self.registered.remove(&job);
        self.admit_waiters(now)
    }

    /// The card under this middleware instance reset (MPSS crash): every
    /// registration, active offload, and queued request is flushed and all
    /// pinned cores are released. Queue-wait statistics and the admission
    /// counter survive.
    pub fn reset(&mut self) {
        for (_, active) in std::mem::take(&mut self.active) {
            self.allocator.release(active.cores);
        }
        self.waiting.clear();
        self.registered.clear();
    }

    /// A registered job wants to start an offload. Thread requests beyond
    /// the hardware are clamped.
    pub fn request_offload(
        &mut self,
        now: SimTime,
        job: JobId,
        threads: u32,
        work: SimDuration,
    ) -> Admission {
        let threads = threads.min(self.hw_threads);
        assert!(
            self.registered.contains_key(&job),
            "offload request from unregistered job {job}"
        );
        assert!(
            !self.active.contains_key(&job),
            "job {job} already has an active offload"
        );
        // Strict FIFO: nobody overtakes an existing queue.
        if self.waiting.is_empty() {
            if let Some(grant) = self.try_start(now, job, threads, work, now) {
                return Admission::Started(grant);
            }
        }
        self.waiting.push_back(Waiting {
            job,
            threads,
            work,
            enqueued: now,
        });
        self.queued_total += 1;
        Admission::Queued
    }

    /// An active offload finished; free its cores and admit whatever now
    /// fits from the queue.
    pub fn complete_offload(&mut self, now: SimTime, job: JobId) -> Vec<OffloadGrant> {
        let active = self
            .active
            .remove(&job)
            .expect("complete_offload for a job with no active offload");
        self.allocator.release(active.cores);
        self.admit_waiters(now)
    }

    /// Container check on a memory commit.
    pub fn on_commit(&self, job: JobId, committed_mb: u64) -> ContainerVerdict {
        if !self.cfg.enforce_containers {
            return ContainerVerdict::Allowed;
        }
        let declared = self
            .registered
            .get(&job)
            .map(|r| r.declared_mem_mb)
            .unwrap_or(0);
        if committed_mb > declared {
            ContainerVerdict::KillExceededLimit {
                committed_mb,
                declared_mb: declared,
            }
        } else {
            ContainerVerdict::Allowed
        }
    }

    /// Thread sum of currently active offloads.
    pub fn active_threads(&self) -> u32 {
        self.active.values().map(|a| a.threads).sum()
    }

    /// Number of offloads waiting for admission.
    pub fn queue_len(&self) -> usize {
        self.waiting.len()
    }

    /// Declared memory sum over registered jobs, MB.
    pub fn registered_declared_mb(&self) -> u64 {
        self.registered.values().map(|r| r.declared_mem_mb).sum()
    }

    /// Declared thread sum over registered jobs.
    pub fn registered_declared_threads(&self) -> u32 {
        self.registered.values().map(|r| r.declared_threads).sum()
    }

    /// Number of jobs registered on the device.
    pub fn registered_jobs(&self) -> usize {
        self.registered.len()
    }

    fn try_start(
        &mut self,
        now: SimTime,
        job: JobId,
        threads: u32,
        work: SimDuration,
        enqueued: SimTime,
    ) -> Option<OffloadGrant> {
        if self.active_threads() + threads > self.hw_threads {
            return None;
        }
        let cores_needed = threads.div_ceil(self.threads_per_core);
        let cores = self.allocator.allocate(cores_needed)?;
        self.active.insert(job, ActiveOffload { threads, cores });
        self.queue_wait.record(now.since(enqueued).as_secs_f64());
        Some(OffloadGrant {
            job,
            threads,
            work,
            affinity: Affinity::Pinned(cores),
        })
    }

    fn admit_waiters(&mut self, now: SimTime) -> Vec<OffloadGrant> {
        let mut granted = Vec::new();
        match self.cfg.policy {
            OffloadPolicy::Fifo => {
                while let Some(head) = self.waiting.front().cloned() {
                    match self.try_start(now, head.job, head.threads, head.work, head.enqueued) {
                        Some(grant) => {
                            self.waiting.pop_front();
                            granted.push(grant);
                        }
                        None => break,
                    }
                }
            }
            OffloadPolicy::Backfill => {
                let mut i = 0;
                while i < self.waiting.len() {
                    let w = self.waiting[i].clone();
                    match self.try_start(now, w.job, w.threads, w.work, w.enqueued) {
                        Some(grant) => {
                            self.waiting.remove(i);
                            granted.push(grant);
                        }
                        None => i += 1,
                    }
                }
            }
        }
        granted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyed_middleware_basic_lifecycle() {
        let mut c = KeyedCosmicDevice::new(CosmicConfig::default(), &PhiConfig::default());
        c.register_job(JobId(1), 1000, 240);
        c.register_job(JobId(2), 1000, 240);
        assert!(matches!(
            c.request_offload(SimTime::ZERO, JobId(1), 240, SimDuration::from_secs(10)),
            Admission::Started(_)
        ));
        assert_eq!(
            c.request_offload(SimTime::ZERO, JobId(2), 240, SimDuration::from_secs(10)),
            Admission::Queued
        );
        let granted = c.complete_offload(SimTime::from_secs(10), JobId(1));
        assert_eq!(granted.len(), 1);
        assert_eq!(granted[0].job, JobId(2));
    }
}
