//! # phishare-cosmic — the node-level coprocessor middleware
//!
//! A reimplementation of the three COSMIC behaviours the paper relies on
//! (§IV-D2), built from COSMIC's published description (HPDC'13 [6]):
//!
//! 1. **Offload scheduling** — offloads from co-resident jobs are admitted
//!    only while the active thread sum stays within the hardware's 240
//!    threads; excess offloads wait in a queue. This is what makes
//!    coprocessor *sharing* safe even when the cluster scheduler co-locates
//!    jobs whose combined declared threads exceed the hardware (Fig. 2).
//! 2. **Thread-to-core affinitization** — admitted offloads get disjoint
//!    core sets, so concurrent offloads do not interfere (Fig. 3's full-rate
//!    overlap).
//! 3. **Memory-limit containers** — a job whose committed device memory
//!    exceeds its declared maximum is killed, protecting co-resident jobs
//!    from a neighbour's under-declaration.
//!
//! The middleware is a pure control plane: it decides *when* an offload may
//! start and *where* its threads go; the owning runtime applies those
//! decisions to the [`phishare_phi::PhiDevice`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod keyed;
pub mod middleware;

pub use keyed::KeyedCosmicDevice;
pub use middleware::{
    Admission, ContainerVerdict, CosmicConfig, CosmicDevice, JobSlot, OffloadGrant, OffloadPolicy,
};
