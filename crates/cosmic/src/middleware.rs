//! The per-device middleware state machine.

use phishare_phi::{Affinity, CoreAllocator, CoreSet, PhiConfig};
use phishare_sim::{SimDuration, SimTime, Summary};
use phishare_workload::JobId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};

/// How queued offloads are admitted when capacity frees up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum OffloadPolicy {
    /// Strict FIFO: the queue head must fit before anything behind it runs.
    /// Starvation-free; can leave threads idle behind a wide offload.
    #[default]
    Fifo,
    /// Backfill: later offloads may jump a blocked head if they fit now.
    /// Higher utilization; a wide offload can starve behind small ones.
    Backfill,
}

/// Middleware configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CosmicConfig {
    /// Kill jobs whose committed memory exceeds their declaration.
    pub enforce_containers: bool,
    /// Queue admission policy.
    pub policy: OffloadPolicy,
}

impl Default for CosmicConfig {
    fn default() -> Self {
        CosmicConfig {
            enforce_containers: true,
            policy: OffloadPolicy::Fifo,
        }
    }
}

/// Outcome of an offload request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Admission {
    /// The offload may start now with this affinity.
    Started(OffloadGrant),
    /// The offload is queued; it will be granted by a later
    /// [`CosmicDevice::complete_offload`] call.
    Queued,
}

/// Permission to start one offload on the device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OffloadGrant {
    /// The job whose offload may start.
    pub job: JobId,
    /// Thread count of the offload.
    pub threads: u32,
    /// Nominal work of the offload.
    pub work: SimDuration,
    /// The core set COSMIC affinitized the offload to.
    pub affinity: Affinity,
}

/// Container (memory-limit) check outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContainerVerdict {
    /// The commit is within the job's declared limit (or enforcement is
    /// off).
    Allowed,
    /// The job exceeded its declared limit and must be killed.
    KillExceededLimit {
        /// What the job committed, MB.
        committed_mb: u64,
        /// What it declared, MB.
        declared_mb: u64,
    },
}

#[derive(Debug, Clone)]
struct Registered {
    declared_mem_mb: u64,
    declared_threads: u32,
}

#[derive(Debug, Clone)]
struct ActiveOffload {
    threads: u32,
    cores: CoreSet,
}

#[derive(Debug, Clone)]
struct Waiting {
    job: JobId,
    threads: u32,
    work: SimDuration,
    enqueued: SimTime,
}

/// COSMIC's state for one coprocessor.
#[derive(Debug)]
pub struct CosmicDevice {
    cfg: CosmicConfig,
    hw_threads: u32,
    threads_per_core: u32,
    allocator: CoreAllocator,
    registered: BTreeMap<JobId, Registered>,
    active: BTreeMap<JobId, ActiveOffload>,
    waiting: VecDeque<Waiting>,
    /// Time each admitted offload spent waiting in the queue, seconds.
    pub queue_wait: Summary,
    /// Offloads that had to wait at least one admission round.
    pub queued_total: u64,
}

impl CosmicDevice {
    /// Create middleware state for a device with the given hardware shape.
    pub fn new(cfg: CosmicConfig, phi: &PhiConfig) -> Self {
        CosmicDevice {
            cfg,
            hw_threads: phi.hw_threads(),
            threads_per_core: phi.threads_per_core,
            allocator: CoreAllocator::new(phi.cores),
            registered: BTreeMap::new(),
            active: BTreeMap::new(),
            waiting: VecDeque::new(),
            queue_wait: Summary::new(),
            queued_total: 0,
        }
    }

    /// Register a job that the cluster scheduler placed on this device.
    ///
    /// # Panics
    /// Panics if the job is already registered — the cluster scheduler must
    /// not double-place a job.
    pub fn register_job(&mut self, job: JobId, declared_mem_mb: u64, declared_threads: u32) {
        let prior = self.registered.insert(
            job,
            Registered {
                declared_mem_mb,
                declared_threads,
            },
        );
        assert!(prior.is_none(), "job {job} registered twice");
    }

    /// Remove a job (completed or killed): drops any queued offload and
    /// frees its cores if one was active. Returns offload grants that the
    /// departure unblocked.
    pub fn unregister_job(&mut self, now: SimTime, job: JobId) -> Vec<OffloadGrant> {
        self.waiting.retain(|w| w.job != job);
        if let Some(active) = self.active.remove(&job) {
            self.allocator.release(active.cores);
        }
        self.registered.remove(&job);
        self.admit_waiters(now)
    }

    /// The card under this middleware instance reset (MPSS crash): every
    /// registration, active offload, and queued request is flushed and all
    /// pinned cores are released. Queue-wait statistics and the admission
    /// counter survive — they describe the run, not the card state. Jobs
    /// that want back in must re-register after recovery.
    pub fn reset(&mut self) {
        for (_, active) in std::mem::take(&mut self.active) {
            self.allocator.release(active.cores);
        }
        self.waiting.clear();
        self.registered.clear();
    }

    /// A registered job wants to start an offload.
    ///
    /// Requests for more threads than the hardware has are clamped to the
    /// device capacity (an OpenMP region asking for more threads than exist
    /// just timeshares; COSMIC caps the affinity mask instead) — otherwise a
    /// 240-thread job could never be admitted on a 228-thread card and
    /// would starve forever.
    pub fn request_offload(
        &mut self,
        now: SimTime,
        job: JobId,
        threads: u32,
        work: SimDuration,
    ) -> Admission {
        let threads = threads.min(self.hw_threads);
        assert!(
            self.registered.contains_key(&job),
            "offload request from unregistered job {job}"
        );
        assert!(
            !self.active.contains_key(&job),
            "job {job} already has an active offload"
        );
        // Strict FIFO: nobody overtakes an existing queue.
        if self.waiting.is_empty() {
            if let Some(grant) = self.try_start(now, job, threads, work, now) {
                return Admission::Started(grant);
            }
        }
        self.waiting.push_back(Waiting {
            job,
            threads,
            work,
            enqueued: now,
        });
        self.queued_total += 1;
        Admission::Queued
    }

    /// An active offload finished; free its cores and admit whatever now
    /// fits from the queue.
    pub fn complete_offload(&mut self, now: SimTime, job: JobId) -> Vec<OffloadGrant> {
        let active = self
            .active
            .remove(&job)
            .expect("complete_offload for a job with no active offload");
        self.allocator.release(active.cores);
        self.admit_waiters(now)
    }

    /// Container check on a memory commit.
    pub fn on_commit(&self, job: JobId, committed_mb: u64) -> ContainerVerdict {
        if !self.cfg.enforce_containers {
            return ContainerVerdict::Allowed;
        }
        let declared = self
            .registered
            .get(&job)
            .map(|r| r.declared_mem_mb)
            .unwrap_or(0);
        if committed_mb > declared {
            ContainerVerdict::KillExceededLimit {
                committed_mb,
                declared_mb: declared,
            }
        } else {
            ContainerVerdict::Allowed
        }
    }

    /// Thread sum of currently active offloads.
    pub fn active_threads(&self) -> u32 {
        self.active.values().map(|a| a.threads).sum()
    }

    /// Number of offloads waiting for admission.
    pub fn queue_len(&self) -> usize {
        self.waiting.len()
    }

    /// Declared memory sum over registered jobs, MB (what the knapsack
    /// budgeted on this device).
    pub fn registered_declared_mb(&self) -> u64 {
        self.registered.values().map(|r| r.declared_mem_mb).sum()
    }

    /// Declared thread sum over registered jobs — what the strict
    /// resident-thread budget (paper §IV-C, "all concurrent jobs") charges
    /// against.
    pub fn registered_declared_threads(&self) -> u32 {
        self.registered.values().map(|r| r.declared_threads).sum()
    }

    /// Number of jobs registered on the device.
    pub fn registered_jobs(&self) -> usize {
        self.registered.len()
    }

    fn try_start(
        &mut self,
        now: SimTime,
        job: JobId,
        threads: u32,
        work: SimDuration,
        enqueued: SimTime,
    ) -> Option<OffloadGrant> {
        if self.active_threads() + threads > self.hw_threads {
            return None;
        }
        let cores_needed = threads.div_ceil(self.threads_per_core);
        let cores = self.allocator.allocate(cores_needed)?;
        self.active.insert(job, ActiveOffload { threads, cores });
        self.queue_wait.record(now.since(enqueued).as_secs_f64());
        Some(OffloadGrant {
            job,
            threads,
            work,
            affinity: Affinity::Pinned(cores),
        })
    }

    fn admit_waiters(&mut self, now: SimTime) -> Vec<OffloadGrant> {
        let mut granted = Vec::new();
        match self.cfg.policy {
            OffloadPolicy::Fifo => {
                while let Some(head) = self.waiting.front().cloned() {
                    match self.try_start(now, head.job, head.threads, head.work, head.enqueued) {
                        Some(grant) => {
                            self.waiting.pop_front();
                            granted.push(grant);
                        }
                        None => break,
                    }
                }
            }
            OffloadPolicy::Backfill => {
                let mut i = 0;
                while i < self.waiting.len() {
                    let w = self.waiting[i].clone();
                    match self.try_start(now, w.job, w.threads, w.work, w.enqueued) {
                        Some(grant) => {
                            self.waiting.remove(i);
                            granted.push(grant);
                        }
                        None => i += 1,
                    }
                }
            }
        }
        granted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cosmic(policy: OffloadPolicy) -> CosmicDevice {
        CosmicDevice::new(
            CosmicConfig {
                enforce_containers: true,
                policy,
            },
            &PhiConfig::default(),
        )
    }

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    fn w(secs: u64) -> SimDuration {
        SimDuration::from_secs(secs)
    }

    #[test]
    fn concurrent_offloads_within_limit_get_disjoint_cores() {
        let mut c = cosmic(OffloadPolicy::Fifo);
        c.register_job(JobId(1), 1000, 120);
        c.register_job(JobId(2), 1000, 120);
        let a = c.request_offload(t(0), JobId(1), 120, w(5));
        let b = c.request_offload(t(0), JobId(2), 120, w(5));
        let (Admission::Started(ga), Admission::Started(gb)) = (a, b) else {
            panic!("both offloads should start");
        };
        let (Affinity::Pinned(ca), Affinity::Pinned(cb)) = (ga.affinity, gb.affinity) else {
            panic!("COSMIC grants are always pinned");
        };
        assert!(ca.is_disjoint(cb));
        assert_eq!(ca.count(), 30);
        assert_eq!(c.active_threads(), 240);
    }

    #[test]
    fn reset_flushes_registrations_and_frees_cores() {
        let mut c = cosmic(OffloadPolicy::Fifo);
        c.register_job(JobId(1), 1000, 240);
        c.register_job(JobId(2), 1000, 240);
        c.register_job(JobId(3), 1000, 120);
        assert!(matches!(
            c.request_offload(t(0), JobId(1), 240, w(10)),
            Admission::Started(_)
        ));
        assert_eq!(
            c.request_offload(t(0), JobId(2), 240, w(10)),
            Admission::Queued
        );
        c.reset();
        assert_eq!(c.registered_jobs(), 0);
        assert_eq!(c.active_threads(), 0);
        assert_eq!(c.queue_len(), 0);
        // All cores came back: a re-registered full-width offload starts
        // immediately, and stale jobs must re-register (register_job would
        // panic on a survivor).
        c.register_job(JobId(1), 1000, 240);
        assert!(matches!(
            c.request_offload(t(1), JobId(1), 240, w(5)),
            Admission::Started(_)
        ));
        // Admission statistics survived the reset.
        assert_eq!(c.queued_total, 1);
    }

    #[test]
    fn oversubscribing_offload_is_queued_then_admitted() {
        let mut c = cosmic(OffloadPolicy::Fifo);
        c.register_job(JobId(1), 1000, 240);
        c.register_job(JobId(2), 1000, 240);
        assert!(matches!(
            c.request_offload(t(0), JobId(1), 240, w(10)),
            Admission::Started(_)
        ));
        assert_eq!(
            c.request_offload(t(0), JobId(2), 240, w(10)),
            Admission::Queued
        );
        assert_eq!(c.queue_len(), 1);
        // Never exceeds hardware.
        assert!(c.active_threads() <= 240);
        let granted = c.complete_offload(t(10), JobId(1));
        assert_eq!(granted.len(), 1);
        assert_eq!(granted[0].job, JobId(2));
        assert_eq!(c.queue_len(), 0);
        // Queue wait was recorded: 10 s.
        assert_eq!(c.queue_wait.max(), 10.0);
    }

    #[test]
    fn fifo_head_blocks_smaller_followers() {
        let mut c = cosmic(OffloadPolicy::Fifo);
        for j in 1..=3 {
            c.register_job(JobId(j), 500, 240);
        }
        assert!(matches!(
            c.request_offload(t(0), JobId(1), 200, w(10)),
            Admission::Started(_)
        ));
        // Head of queue needs 240; a 40-thread offload behind it must wait
        // under strict FIFO.
        assert_eq!(
            c.request_offload(t(1), JobId(2), 240, w(5)),
            Admission::Queued
        );
        assert_eq!(
            c.request_offload(t(2), JobId(3), 40, w(5)),
            Admission::Queued
        );
        assert_eq!(c.queue_len(), 2);
        let granted = c.complete_offload(t(10), JobId(1));
        // 240-thread head admitted alone.
        assert_eq!(granted.len(), 1);
        assert_eq!(granted[0].job, JobId(2));
    }

    #[test]
    fn backfill_lets_small_offloads_jump() {
        let mut c = cosmic(OffloadPolicy::Backfill);
        for j in 1..=3 {
            c.register_job(JobId(j), 500, 240);
        }
        assert!(matches!(
            c.request_offload(t(0), JobId(1), 200, w(10)),
            Admission::Started(_)
        ));
        assert_eq!(
            c.request_offload(t(1), JobId(2), 240, w(5)),
            Admission::Queued
        );
        assert_eq!(
            c.request_offload(t(2), JobId(3), 40, w(5)),
            Admission::Queued
        );
        // Job 3 fits alongside job 1 (200 + 40 ≤ 240); backfill admits it
        // when we next touch the queue.
        let granted = c.complete_offload(t(3), JobId(1));
        let jobs: Vec<JobId> = granted.iter().map(|g| g.job).collect();
        assert_eq!(jobs, vec![JobId(2)]);
        // After 2 finishes, 3 runs.
        let granted = c.complete_offload(t(8), JobId(2));
        assert_eq!(granted[0].job, JobId(3));
    }

    #[test]
    fn unregister_drops_queued_offloads_and_frees_cores() {
        let mut c = cosmic(OffloadPolicy::Fifo);
        c.register_job(JobId(1), 500, 240);
        c.register_job(JobId(2), 500, 240);
        c.register_job(JobId(3), 500, 120);
        assert!(matches!(
            c.request_offload(t(0), JobId(1), 240, w(10)),
            Admission::Started(_)
        ));
        assert_eq!(
            c.request_offload(t(0), JobId(2), 240, w(5)),
            Admission::Queued
        );
        assert_eq!(
            c.request_offload(t(0), JobId(3), 120, w(5)),
            Admission::Queued
        );
        // Job 2 is killed while queued; job 1 killed while active.
        let g = c.unregister_job(t(1), JobId(2));
        assert!(g.is_empty());
        let g = c.unregister_job(t(2), JobId(1));
        // Queue head (job 3) admitted by the departure.
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].job, JobId(3));
        assert_eq!(c.registered_jobs(), 1);
    }

    #[test]
    fn container_kill_on_overrun() {
        let mut c = cosmic(OffloadPolicy::Fifo);
        c.register_job(JobId(1), 1000, 60);
        assert_eq!(c.on_commit(JobId(1), 900), ContainerVerdict::Allowed);
        assert_eq!(
            c.on_commit(JobId(1), 1100),
            ContainerVerdict::KillExceededLimit {
                committed_mb: 1100,
                declared_mb: 1000
            }
        );
    }

    #[test]
    fn container_enforcement_can_be_disabled() {
        let mut c = CosmicDevice::new(
            CosmicConfig {
                enforce_containers: false,
                policy: OffloadPolicy::Fifo,
            },
            &PhiConfig::default(),
        );
        c.register_job(JobId(1), 1000, 60);
        assert_eq!(c.on_commit(JobId(1), 5000), ContainerVerdict::Allowed);
    }

    #[test]
    fn core_fragmentation_blocks_admission() {
        // 1-thread offloads consume a whole core each: 60 offloads exhaust
        // cores while using only 60 of 240 threads.
        let mut c = cosmic(OffloadPolicy::Fifo);
        for j in 0..61 {
            c.register_job(JobId(j), 10, 1);
        }
        for j in 0..60 {
            assert!(matches!(
                c.request_offload(t(0), JobId(j), 1, w(5)),
                Admission::Started(_)
            ));
        }
        assert_eq!(
            c.request_offload(t(0), JobId(60), 1, w(5)),
            Admission::Queued
        );
        assert_eq!(c.active_threads(), 60);
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn double_registration_panics() {
        let mut c = cosmic(OffloadPolicy::Fifo);
        c.register_job(JobId(1), 100, 60);
        c.register_job(JobId(1), 100, 60);
    }

    #[test]
    #[should_panic(expected = "unregistered job")]
    fn offload_from_unregistered_job_panics() {
        let mut c = cosmic(OffloadPolicy::Fifo);
        c.request_offload(t(0), JobId(1), 60, w(1));
    }

    #[test]
    fn overwide_offloads_are_clamped_to_hardware() {
        // A 57-core card has 228 hardware threads; a 240-thread offload
        // must still be admittable (clamped), not starved forever.
        let small = PhiConfig {
            cores: 57,
            ..PhiConfig::default()
        };
        let mut c = CosmicDevice::new(CosmicConfig::default(), &small);
        c.register_job(JobId(1), 500, 240);
        match c.request_offload(t(0), JobId(1), 240, w(5)) {
            Admission::Started(grant) => assert_eq!(grant.threads, 228),
            Admission::Queued => panic!("clamped offload must start on an idle device"),
        }
        assert_eq!(c.active_threads(), 228);
    }

    #[test]
    fn declared_resource_accounting() {
        let mut c = cosmic(OffloadPolicy::Fifo);
        c.register_job(JobId(1), 1000, 60);
        c.register_job(JobId(2), 2000, 180);
        assert_eq!(c.registered_declared_mb(), 3000);
        assert_eq!(c.registered_declared_threads(), 240);
        c.unregister_job(t(0), JobId(1));
        assert_eq!(c.registered_declared_mb(), 2000);
        assert_eq!(c.registered_declared_threads(), 180);
    }
}
