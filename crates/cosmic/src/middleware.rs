//! The per-device middleware state machine.
//!
//! ## Storage layout (the substrate fast path)
//!
//! Registered-job and active-offload state live in one generation-stamped
//! slab ([`phishare_sim::Slab`]): each registered job occupies a dense slot
//! holding its declared envelope and its (optional) active offload. A
//! [`JobSlot`] handle is resolved once at [`CosmicDevice::register_job_slot`];
//! admission, completion and container checks are then array-indexed. A
//! small `JobId → JobSlot` index is maintained only at register/unregister
//! for id-keyed convenience calls, and aggregate sums (active threads,
//! declared memory/threads) are kept incrementally — integer-exact mirrors
//! of what the keyed oracle ([`crate::keyed::KeyedCosmicDevice`])
//! recomputes per call.
//!
//! The grant paths come in two forms: `Vec`-returning (seed-compatible)
//! and `*_into` variants that append into a caller-recycled buffer, so the
//! runtime's offload hot loop completes/admits without allocating.

use phishare_phi::{Affinity, CoreAllocator, CoreSet, PhiConfig};
use phishare_sim::{SimDuration, SimTime, Slab, Slot, Summary};
use phishare_workload::JobId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;

/// How queued offloads are admitted when capacity frees up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum OffloadPolicy {
    /// Strict FIFO: the queue head must fit before anything behind it runs.
    /// Starvation-free; can leave threads idle behind a wide offload.
    #[default]
    Fifo,
    /// Backfill: later offloads may jump a blocked head if they fit now.
    /// Higher utilization; a wide offload can starve behind small ones.
    Backfill,
}

/// Middleware configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CosmicConfig {
    /// Kill jobs whose committed memory exceeds their declaration.
    pub enforce_containers: bool,
    /// Queue admission policy.
    pub policy: OffloadPolicy,
}

impl Default for CosmicConfig {
    fn default() -> Self {
        CosmicConfig {
            enforce_containers: true,
            policy: OffloadPolicy::Fifo,
        }
    }
}

/// Outcome of an offload request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Admission {
    /// The offload may start now with this affinity.
    Started(OffloadGrant),
    /// The offload is queued; it will be granted by a later
    /// [`CosmicDevice::complete_offload`] call.
    Queued,
}

/// Permission to start one offload on the device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OffloadGrant {
    /// The job whose offload may start.
    pub job: JobId,
    /// Thread count of the offload.
    pub threads: u32,
    /// Nominal work of the offload.
    pub work: SimDuration,
    /// The core set COSMIC affinitized the offload to.
    pub affinity: Affinity,
}

/// Container (memory-limit) check outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContainerVerdict {
    /// The commit is within the job's declared limit (or enforcement is
    /// off).
    Allowed,
    /// The job exceeded its declared limit and must be killed.
    KillExceededLimit {
        /// What the job committed, MB.
        committed_mb: u64,
        /// What it declared, MB.
        declared_mb: u64,
    },
}

/// One registered job's slab entry: envelope plus optional active offload.
#[derive(Debug, Clone)]
struct JobEntry {
    id: JobId,
    declared_mem_mb: u64,
    declared_threads: u32,
    active: Option<ActiveOffload>,
}

#[derive(Debug, Clone)]
struct ActiveOffload {
    threads: u32,
    cores: CoreSet,
}

#[derive(Debug, Clone)]
struct Waiting {
    job: JobId,
    threads: u32,
    work: SimDuration,
    enqueued: SimTime,
}

/// Handle to a registered job, resolved once at
/// [`CosmicDevice::register_job_slot`] and valid until the job unregisters
/// or the device resets. Generation-stamped: a handle that outlives its
/// registration goes stale rather than aliasing the slot's next tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JobSlot(Slot);

impl fmt::Display for JobSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// COSMIC's state for one coprocessor (slab-backed fast substrate).
///
/// Every id-keyed method has a `_slot` twin taking a [`JobSlot`]; hot loops
/// resolve the handle once at registration and skip the map lookup
/// thereafter.
#[derive(Debug)]
pub struct CosmicDevice {
    cfg: CosmicConfig,
    hw_threads: u32,
    threads_per_core: u32,
    allocator: CoreAllocator,
    /// Dense per-job state; the only per-job storage.
    jobs: Slab<JobEntry>,
    /// `JobId → slot`, touched only at register/unregister/reset.
    index: BTreeMap<JobId, JobSlot>,
    waiting: VecDeque<Waiting>,
    // Incrementally-maintained aggregates (integer-exact mirrors of the
    // keyed substrate's per-call recomputations).
    active_threads_total: u32,
    declared_mb_total: u64,
    declared_threads_total: u32,
    /// Time each admitted offload spent waiting in the queue, seconds.
    pub queue_wait: Summary,
    /// Offloads that had to wait at least one admission round.
    pub queued_total: u64,
}

impl CosmicDevice {
    /// Create middleware state for a device with the given hardware shape.
    pub fn new(cfg: CosmicConfig, phi: &PhiConfig) -> Self {
        CosmicDevice {
            cfg,
            hw_threads: phi.hw_threads(),
            threads_per_core: phi.threads_per_core,
            allocator: CoreAllocator::new(phi.cores),
            jobs: Slab::with_capacity(8),
            index: BTreeMap::new(),
            waiting: VecDeque::new(),
            active_threads_total: 0,
            declared_mb_total: 0,
            declared_threads_total: 0,
            queue_wait: Summary::new(),
            queued_total: 0,
        }
    }

    /// Register a job that the cluster scheduler placed on this device.
    ///
    /// # Panics
    /// Panics if the job is already registered — the cluster scheduler must
    /// not double-place a job.
    pub fn register_job(&mut self, job: JobId, declared_mem_mb: u64, declared_threads: u32) {
        let _ = self.register_job_slot(job, declared_mem_mb, declared_threads);
    }

    /// [`CosmicDevice::register_job`], returning the job's slot handle for
    /// later array-indexed access.
    ///
    /// # Panics
    /// Panics if the job is already registered.
    pub fn register_job_slot(
        &mut self,
        job: JobId,
        declared_mem_mb: u64,
        declared_threads: u32,
    ) -> JobSlot {
        assert!(!self.index.contains_key(&job), "job {job} registered twice");
        let slot = JobSlot(self.jobs.insert(JobEntry {
            id: job,
            declared_mem_mb,
            declared_threads,
            active: None,
        }));
        self.index.insert(job, slot);
        self.declared_mb_total += declared_mem_mb;
        self.declared_threads_total += declared_threads;
        slot
    }

    /// The slot handle for a registered job, or `None` when not registered.
    pub fn slot_of(&self, job: JobId) -> Option<JobSlot> {
        self.index.get(&job).copied()
    }

    /// True when `slot` still names a live registration.
    pub fn slot_is_live(&self, slot: JobSlot) -> bool {
        self.jobs.contains(slot.0)
    }

    /// Remove a job (completed or killed): drops any queued offload and
    /// frees its cores if one was active. Returns offload grants that the
    /// departure unblocked (allocates; hot loops should use
    /// [`CosmicDevice::unregister_job_into`]).
    pub fn unregister_job(&mut self, now: SimTime, job: JobId) -> Vec<OffloadGrant> {
        let mut grants = Vec::new();
        self.unregister_job_into(now, job, &mut grants);
        grants
    }

    /// Allocation-free form of [`CosmicDevice::unregister_job`]: unblocked
    /// grants are appended to `grants` (which is not cleared first).
    pub fn unregister_job_into(
        &mut self,
        now: SimTime,
        job: JobId,
        grants: &mut Vec<OffloadGrant>,
    ) {
        self.waiting.retain(|w| w.job != job);
        if let Some(slot) = self.index.remove(&job) {
            let entry = self.jobs.remove(slot.0);
            self.declared_mb_total -= entry.declared_mem_mb;
            self.declared_threads_total -= entry.declared_threads;
            if let Some(active) = entry.active {
                self.active_threads_total -= active.threads;
                self.allocator.release(active.cores);
            }
        }
        self.admit_waiters(now, grants);
    }

    /// The card under this middleware instance reset (MPSS crash): every
    /// registration, active offload, and queued request is flushed and all
    /// pinned cores are released. Queue-wait statistics and the admission
    /// counter survive — they describe the run, not the card state. Jobs
    /// that want back in must re-register after recovery; handles from
    /// before the reset are all stale.
    pub fn reset(&mut self) {
        for (_, entry) in self.jobs.iter_mut() {
            if let Some(active) = entry.active.take() {
                self.allocator.release(active.cores);
            }
        }
        self.jobs.clear();
        self.index.clear();
        self.waiting.clear();
        self.active_threads_total = 0;
        self.declared_mb_total = 0;
        self.declared_threads_total = 0;
    }

    /// A registered job wants to start an offload.
    ///
    /// Requests for more threads than the hardware has are clamped to the
    /// device capacity (an OpenMP region asking for more threads than exist
    /// just timeshares; COSMIC caps the affinity mask instead) — otherwise a
    /// 240-thread job could never be admitted on a 228-thread card and
    /// would starve forever.
    pub fn request_offload(
        &mut self,
        now: SimTime,
        job: JobId,
        threads: u32,
        work: SimDuration,
    ) -> Admission {
        let slot = *self
            .index
            .get(&job)
            .unwrap_or_else(|| panic!("offload request from unregistered job {job}"));
        self.request_offload_slot(now, slot, threads, work)
    }

    /// [`CosmicDevice::request_offload`] through a slot handle.
    ///
    /// # Panics
    /// Panics when the handle is stale or the job already has an active
    /// offload.
    pub fn request_offload_slot(
        &mut self,
        now: SimTime,
        slot: JobSlot,
        threads: u32,
        work: SimDuration,
    ) -> Admission {
        let threads = threads.min(self.hw_threads);
        let entry = self.entry(slot);
        let job = entry.id;
        assert!(
            entry.active.is_none(),
            "job {job} already has an active offload"
        );
        // Strict FIFO: nobody overtakes an existing queue.
        if self.waiting.is_empty() {
            if let Some(grant) = self.try_start(now, slot, threads, work, now) {
                return Admission::Started(grant);
            }
        }
        self.waiting.push_back(Waiting {
            job,
            threads,
            work,
            enqueued: now,
        });
        self.queued_total += 1;
        Admission::Queued
    }

    /// An active offload finished; free its cores and admit whatever now
    /// fits from the queue (allocates; hot loops should use
    /// [`CosmicDevice::complete_offload_into`]).
    pub fn complete_offload(&mut self, now: SimTime, job: JobId) -> Vec<OffloadGrant> {
        let mut grants = Vec::new();
        self.complete_offload_into(now, job, &mut grants);
        grants
    }

    /// Allocation-free form of [`CosmicDevice::complete_offload`]: unblocked
    /// grants are appended to `grants` (which is not cleared first).
    pub fn complete_offload_into(
        &mut self,
        now: SimTime,
        job: JobId,
        grants: &mut Vec<OffloadGrant>,
    ) {
        let slot = *self
            .index
            .get(&job)
            .expect("complete_offload for a job with no active offload");
        self.complete_offload_slot_into(now, slot, grants);
    }

    /// [`CosmicDevice::complete_offload_into`] through a slot handle.
    ///
    /// # Panics
    /// Panics when the handle is stale or the job has no active offload.
    pub fn complete_offload_slot_into(
        &mut self,
        now: SimTime,
        slot: JobSlot,
        grants: &mut Vec<OffloadGrant>,
    ) {
        let entry = self
            .jobs
            .get_mut(slot.0)
            .unwrap_or_else(|| panic!("complete_offload through stale handle {slot}"));
        let active = entry
            .active
            .take()
            .expect("complete_offload for a job with no active offload");
        self.active_threads_total -= active.threads;
        self.allocator.release(active.cores);
        self.admit_waiters(now, grants);
    }

    /// Container check on a memory commit.
    pub fn on_commit(&self, job: JobId, committed_mb: u64) -> ContainerVerdict {
        if !self.cfg.enforce_containers {
            return ContainerVerdict::Allowed;
        }
        let declared = self
            .index
            .get(&job)
            .map(|slot| self.entry(*slot).declared_mem_mb)
            .unwrap_or(0);
        self.verdict(committed_mb, declared)
    }

    /// [`CosmicDevice::on_commit`] through a slot handle.
    ///
    /// # Panics
    /// Panics when the handle is stale.
    pub fn on_commit_slot(&self, slot: JobSlot, committed_mb: u64) -> ContainerVerdict {
        if !self.cfg.enforce_containers {
            return ContainerVerdict::Allowed;
        }
        self.verdict(committed_mb, self.entry(slot).declared_mem_mb)
    }

    fn verdict(&self, committed_mb: u64, declared_mb: u64) -> ContainerVerdict {
        if committed_mb > declared_mb {
            ContainerVerdict::KillExceededLimit {
                committed_mb,
                declared_mb,
            }
        } else {
            ContainerVerdict::Allowed
        }
    }

    /// Thread sum of currently active offloads.
    pub fn active_threads(&self) -> u32 {
        self.active_threads_total
    }

    /// Number of offloads waiting for admission.
    pub fn queue_len(&self) -> usize {
        self.waiting.len()
    }

    /// Declared memory sum over registered jobs, MB (what the knapsack
    /// budgeted on this device).
    pub fn registered_declared_mb(&self) -> u64 {
        self.declared_mb_total
    }

    /// Declared thread sum over registered jobs — what the strict
    /// resident-thread budget (paper §IV-C, "all concurrent jobs") charges
    /// against.
    pub fn registered_declared_threads(&self) -> u32 {
        self.declared_threads_total
    }

    /// Number of jobs registered on the device.
    pub fn registered_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// The live entry at `slot`, panicking on a stale handle.
    fn entry(&self, slot: JobSlot) -> &JobEntry {
        self.jobs
            .get(slot.0)
            .unwrap_or_else(|| panic!("middleware access through stale handle {slot}"))
    }

    fn try_start(
        &mut self,
        now: SimTime,
        slot: JobSlot,
        threads: u32,
        work: SimDuration,
        enqueued: SimTime,
    ) -> Option<OffloadGrant> {
        if self.active_threads_total + threads > self.hw_threads {
            return None;
        }
        let cores_needed = threads.div_ceil(self.threads_per_core);
        let cores = self.allocator.allocate(cores_needed)?;
        let entry = self.jobs.get_mut(slot.0).expect("admitting a live job");
        let job = entry.id;
        entry.active = Some(ActiveOffload { threads, cores });
        self.active_threads_total += threads;
        self.queue_wait.record(now.since(enqueued).as_secs_f64());
        Some(OffloadGrant {
            job,
            threads,
            work,
            affinity: Affinity::Pinned(cores),
        })
    }

    fn admit_waiters(&mut self, now: SimTime, granted: &mut Vec<OffloadGrant>) {
        match self.cfg.policy {
            OffloadPolicy::Fifo => {
                while let Some(head) = self.waiting.front().cloned() {
                    let slot = self.index[&head.job];
                    match self.try_start(now, slot, head.threads, head.work, head.enqueued) {
                        Some(grant) => {
                            self.waiting.pop_front();
                            granted.push(grant);
                        }
                        None => break,
                    }
                }
            }
            OffloadPolicy::Backfill => {
                let mut i = 0;
                while i < self.waiting.len() {
                    let w = self.waiting[i].clone();
                    let slot = self.index[&w.job];
                    match self.try_start(now, slot, w.threads, w.work, w.enqueued) {
                        Some(grant) => {
                            self.waiting.remove(i);
                            granted.push(grant);
                        }
                        None => i += 1,
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cosmic(policy: OffloadPolicy) -> CosmicDevice {
        CosmicDevice::new(
            CosmicConfig {
                enforce_containers: true,
                policy,
            },
            &PhiConfig::default(),
        )
    }

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    fn w(secs: u64) -> SimDuration {
        SimDuration::from_secs(secs)
    }

    #[test]
    fn concurrent_offloads_within_limit_get_disjoint_cores() {
        let mut c = cosmic(OffloadPolicy::Fifo);
        c.register_job(JobId(1), 1000, 120);
        c.register_job(JobId(2), 1000, 120);
        let a = c.request_offload(t(0), JobId(1), 120, w(5));
        let b = c.request_offload(t(0), JobId(2), 120, w(5));
        let (Admission::Started(ga), Admission::Started(gb)) = (a, b) else {
            panic!("both offloads should start");
        };
        let (Affinity::Pinned(ca), Affinity::Pinned(cb)) = (ga.affinity, gb.affinity) else {
            panic!("COSMIC grants are always pinned");
        };
        assert!(ca.is_disjoint(cb));
        assert_eq!(ca.count(), 30);
        assert_eq!(c.active_threads(), 240);
    }

    #[test]
    fn reset_flushes_registrations_and_frees_cores() {
        let mut c = cosmic(OffloadPolicy::Fifo);
        let s1 = c.register_job_slot(JobId(1), 1000, 240);
        c.register_job(JobId(2), 1000, 240);
        c.register_job(JobId(3), 1000, 120);
        assert!(matches!(
            c.request_offload(t(0), JobId(1), 240, w(10)),
            Admission::Started(_)
        ));
        assert_eq!(
            c.request_offload(t(0), JobId(2), 240, w(10)),
            Admission::Queued
        );
        c.reset();
        assert_eq!(c.registered_jobs(), 0);
        assert_eq!(c.active_threads(), 0);
        assert_eq!(c.queue_len(), 0);
        assert!(!c.slot_is_live(s1), "pre-reset handles are stale");
        // All cores came back: a re-registered full-width offload starts
        // immediately, and stale jobs must re-register (register_job would
        // panic on a survivor).
        c.register_job(JobId(1), 1000, 240);
        assert!(matches!(
            c.request_offload(t(1), JobId(1), 240, w(5)),
            Admission::Started(_)
        ));
        // Admission statistics survived the reset.
        assert_eq!(c.queued_total, 1);
    }

    #[test]
    fn oversubscribing_offload_is_queued_then_admitted() {
        let mut c = cosmic(OffloadPolicy::Fifo);
        c.register_job(JobId(1), 1000, 240);
        c.register_job(JobId(2), 1000, 240);
        assert!(matches!(
            c.request_offload(t(0), JobId(1), 240, w(10)),
            Admission::Started(_)
        ));
        assert_eq!(
            c.request_offload(t(0), JobId(2), 240, w(10)),
            Admission::Queued
        );
        assert_eq!(c.queue_len(), 1);
        // Never exceeds hardware.
        assert!(c.active_threads() <= 240);
        let granted = c.complete_offload(t(10), JobId(1));
        assert_eq!(granted.len(), 1);
        assert_eq!(granted[0].job, JobId(2));
        assert_eq!(c.queue_len(), 0);
        // Queue wait was recorded: 10 s.
        assert_eq!(c.queue_wait.max(), 10.0);
    }

    #[test]
    fn fifo_head_blocks_smaller_followers() {
        let mut c = cosmic(OffloadPolicy::Fifo);
        for j in 1..=3 {
            c.register_job(JobId(j), 500, 240);
        }
        assert!(matches!(
            c.request_offload(t(0), JobId(1), 200, w(10)),
            Admission::Started(_)
        ));
        // Head of queue needs 240; a 40-thread offload behind it must wait
        // under strict FIFO.
        assert_eq!(
            c.request_offload(t(1), JobId(2), 240, w(5)),
            Admission::Queued
        );
        assert_eq!(
            c.request_offload(t(2), JobId(3), 40, w(5)),
            Admission::Queued
        );
        assert_eq!(c.queue_len(), 2);
        let granted = c.complete_offload(t(10), JobId(1));
        // 240-thread head admitted alone.
        assert_eq!(granted.len(), 1);
        assert_eq!(granted[0].job, JobId(2));
    }

    #[test]
    fn backfill_lets_small_offloads_jump() {
        let mut c = cosmic(OffloadPolicy::Backfill);
        for j in 1..=3 {
            c.register_job(JobId(j), 500, 240);
        }
        assert!(matches!(
            c.request_offload(t(0), JobId(1), 200, w(10)),
            Admission::Started(_)
        ));
        assert_eq!(
            c.request_offload(t(1), JobId(2), 240, w(5)),
            Admission::Queued
        );
        assert_eq!(
            c.request_offload(t(2), JobId(3), 40, w(5)),
            Admission::Queued
        );
        // Job 3 fits alongside job 1 (200 + 40 ≤ 240); backfill admits it
        // when we next touch the queue.
        let granted = c.complete_offload(t(3), JobId(1));
        let jobs: Vec<JobId> = granted.iter().map(|g| g.job).collect();
        assert_eq!(jobs, vec![JobId(2)]);
        // After 2 finishes, 3 runs.
        let granted = c.complete_offload(t(8), JobId(2));
        assert_eq!(granted[0].job, JobId(3));
    }

    #[test]
    fn unregister_drops_queued_offloads_and_frees_cores() {
        let mut c = cosmic(OffloadPolicy::Fifo);
        c.register_job(JobId(1), 500, 240);
        c.register_job(JobId(2), 500, 240);
        c.register_job(JobId(3), 500, 120);
        assert!(matches!(
            c.request_offload(t(0), JobId(1), 240, w(10)),
            Admission::Started(_)
        ));
        assert_eq!(
            c.request_offload(t(0), JobId(2), 240, w(5)),
            Admission::Queued
        );
        assert_eq!(
            c.request_offload(t(0), JobId(3), 120, w(5)),
            Admission::Queued
        );
        // Job 2 is killed while queued; job 1 killed while active.
        let g = c.unregister_job(t(1), JobId(2));
        assert!(g.is_empty());
        let g = c.unregister_job(t(2), JobId(1));
        // Queue head (job 3) admitted by the departure.
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].job, JobId(3));
        assert_eq!(c.registered_jobs(), 1);
    }

    #[test]
    fn container_kill_on_overrun() {
        let mut c = cosmic(OffloadPolicy::Fifo);
        c.register_job(JobId(1), 1000, 60);
        assert_eq!(c.on_commit(JobId(1), 900), ContainerVerdict::Allowed);
        assert_eq!(
            c.on_commit(JobId(1), 1100),
            ContainerVerdict::KillExceededLimit {
                committed_mb: 1100,
                declared_mb: 1000
            }
        );
    }

    #[test]
    fn container_enforcement_can_be_disabled() {
        let mut c = CosmicDevice::new(
            CosmicConfig {
                enforce_containers: false,
                policy: OffloadPolicy::Fifo,
            },
            &PhiConfig::default(),
        );
        c.register_job(JobId(1), 1000, 60);
        assert_eq!(c.on_commit(JobId(1), 5000), ContainerVerdict::Allowed);
    }

    #[test]
    fn core_fragmentation_blocks_admission() {
        // 1-thread offloads consume a whole core each: 60 offloads exhaust
        // cores while using only 60 of 240 threads.
        let mut c = cosmic(OffloadPolicy::Fifo);
        for j in 0..61 {
            c.register_job(JobId(j), 10, 1);
        }
        for j in 0..60 {
            assert!(matches!(
                c.request_offload(t(0), JobId(j), 1, w(5)),
                Admission::Started(_)
            ));
        }
        assert_eq!(
            c.request_offload(t(0), JobId(60), 1, w(5)),
            Admission::Queued
        );
        assert_eq!(c.active_threads(), 60);
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn double_registration_panics() {
        let mut c = cosmic(OffloadPolicy::Fifo);
        c.register_job(JobId(1), 100, 60);
        c.register_job(JobId(1), 100, 60);
    }

    #[test]
    #[should_panic(expected = "unregistered job")]
    fn offload_from_unregistered_job_panics() {
        let mut c = cosmic(OffloadPolicy::Fifo);
        c.request_offload(t(0), JobId(1), 60, w(1));
    }

    #[test]
    fn overwide_offloads_are_clamped_to_hardware() {
        // A 57-core card has 228 hardware threads; a 240-thread offload
        // must still be admittable (clamped), not starved forever.
        let small = PhiConfig {
            cores: 57,
            ..PhiConfig::default()
        };
        let mut c = CosmicDevice::new(CosmicConfig::default(), &small);
        c.register_job(JobId(1), 500, 240);
        match c.request_offload(t(0), JobId(1), 240, w(5)) {
            Admission::Started(grant) => assert_eq!(grant.threads, 228),
            Admission::Queued => panic!("clamped offload must start on an idle device"),
        }
        assert_eq!(c.active_threads(), 228);
    }

    #[test]
    fn declared_resource_accounting() {
        let mut c = cosmic(OffloadPolicy::Fifo);
        c.register_job(JobId(1), 1000, 60);
        c.register_job(JobId(2), 2000, 180);
        assert_eq!(c.registered_declared_mb(), 3000);
        assert_eq!(c.registered_declared_threads(), 240);
        c.unregister_job(t(0), JobId(1));
        assert_eq!(c.registered_declared_mb(), 2000);
        assert_eq!(c.registered_declared_threads(), 180);
    }

    #[test]
    fn slot_api_matches_id_api() {
        let mut c = cosmic(OffloadPolicy::Fifo);
        let s1 = c.register_job_slot(JobId(1), 1000, 240);
        let s2 = c.register_job_slot(JobId(2), 1000, 240);
        assert_eq!(c.slot_of(JobId(1)), Some(s1));
        assert!(c.slot_is_live(s1));
        assert!(matches!(
            c.request_offload_slot(t(0), s1, 240, w(10)),
            Admission::Started(_)
        ));
        assert_eq!(
            c.request_offload_slot(t(0), s2, 240, w(10)),
            Admission::Queued
        );
        assert_eq!(c.on_commit_slot(s1, 900), ContainerVerdict::Allowed);
        assert_eq!(
            c.on_commit_slot(s1, 1100),
            ContainerVerdict::KillExceededLimit {
                committed_mb: 1100,
                declared_mb: 1000
            }
        );
        // Completing through the slot hands job 2's grant into a recycled
        // buffer without clearing it.
        let mut grants = Vec::new();
        c.complete_offload_slot_into(t(10), s1, &mut grants);
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].job, JobId(2));
        // Unregistering invalidates the handle.
        let mut more = Vec::new();
        c.unregister_job_into(t(11), JobId(1), &mut more);
        assert!(more.is_empty());
        assert!(!c.slot_is_live(s1));
        assert_eq!(c.slot_of(JobId(1)), None);
        assert_eq!(c.registered_jobs(), 1);
    }

    #[test]
    #[should_panic(expected = "stale handle")]
    fn stale_slot_panics_on_completion() {
        let mut c = cosmic(OffloadPolicy::Fifo);
        let s = c.register_job_slot(JobId(1), 100, 60);
        c.unregister_job(t(0), JobId(1));
        let mut grants = Vec::new();
        c.complete_offload_slot_into(t(1), s, &mut grants);
    }
}
