//! Property tests for COSMIC admission control: under arbitrary offload
//! request/complete/unregister sequences, the middleware never admits more
//! than the hardware's thread or core capacity, and (under FIFO) never
//! starves the queue head.

use phishare_cosmic::{Admission, CosmicConfig, CosmicDevice, OffloadPolicy};
use phishare_phi::PhiConfig;
use phishare_sim::{SimDuration, SimTime};
use phishare_workload::JobId;
use proptest::prelude::*;
use std::collections::BTreeSet;

#[derive(Debug, Clone)]
enum Op {
    Request {
        job: u64,
        cores: u32,
        work_secs: u64,
    },
    CompleteOne,
    Unregister {
        job: u64,
    },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0u64..8, 1u32..=60, 1u64..20).prop_map(|(job, cores, work_secs)| Op::Request {
            job,
            cores,
            work_secs
        }),
        2 => Just(Op::CompleteOne),
        1 => (0u64..8).prop_map(|job| Op::Unregister { job }),
    ]
}

fn drive(ops: Vec<Op>, policy: OffloadPolicy) -> Result<(), TestCaseError> {
    let phi = PhiConfig::default();
    let mut cosmic = CosmicDevice::new(
        CosmicConfig {
            enforce_containers: true,
            policy,
        },
        &phi,
    );
    // Register the whole job universe up front.
    for j in 0..8u64 {
        cosmic.register_job(JobId(j), 500, 240);
    }
    let mut registered: BTreeSet<u64> = (0..8).collect();
    let mut active: BTreeSet<u64> = BTreeSet::new();
    let mut requested: BTreeSet<u64> = BTreeSet::new();
    let mut now = SimTime::ZERO;

    for op in ops {
        now += SimDuration::from_secs(1);
        match op {
            Op::Request {
                job,
                cores,
                work_secs,
            } => {
                if !registered.contains(&job) || requested.contains(&job) {
                    continue; // the runtime never double-requests
                }
                requested.insert(job);
                match cosmic.request_offload(
                    now,
                    JobId(job),
                    cores * 4,
                    SimDuration::from_secs(work_secs),
                ) {
                    Admission::Started(grant) => {
                        prop_assert_eq!(grant.job, JobId(job));
                        active.insert(job);
                    }
                    Admission::Queued => {}
                }
            }
            Op::CompleteOne => {
                if let Some(&job) = active.iter().next() {
                    active.remove(&job);
                    requested.remove(&job);
                    for grant in cosmic.complete_offload(now, JobId(job)) {
                        active.insert(grant.job.raw());
                    }
                }
            }
            Op::Unregister { job } => {
                if registered.remove(&job) {
                    for grant in cosmic.unregister_job(now, JobId(job)) {
                        active.insert(grant.job.raw());
                    }
                    active.remove(&job);
                    requested.remove(&job);
                }
            }
        }
        // --- invariants ---
        prop_assert!(
            cosmic.active_threads() <= phi.hw_threads(),
            "admitted {} threads over the {}-thread hardware",
            cosmic.active_threads(),
            phi.hw_threads()
        );
        prop_assert!(cosmic.queue_len() + active.len() <= 8);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn fifo_never_oversubscribes(ops in prop::collection::vec(arb_op(), 1..80)) {
        drive(ops, OffloadPolicy::Fifo)?;
    }

    #[test]
    fn backfill_never_oversubscribes(ops in prop::collection::vec(arb_op(), 1..80)) {
        drive(ops, OffloadPolicy::Backfill)?;
    }

    /// FIFO liveness: if offloads keep completing, every queued offload is
    /// eventually granted (no starvation).
    #[test]
    fn fifo_drains_completely(requests in prop::collection::vec((0u64..16, 1u32..=60), 1..16)) {
        let phi = PhiConfig::default();
        let mut cosmic = CosmicDevice::new(CosmicConfig::default(), &phi);
        let mut seen = BTreeSet::new();
        let mut active: Vec<JobId> = Vec::new();
        let mut granted = 0usize;
        let mut issued = 0usize;
        let mut now = SimTime::ZERO;
        for (job, cores) in requests {
            if !seen.insert(job) {
                continue;
            }
            cosmic.register_job(JobId(job), 100, 240);
            issued += 1;
            match cosmic.request_offload(now, JobId(job), cores * 4, SimDuration::from_secs(1)) {
                Admission::Started(g) => {
                    granted += 1;
                    active.push(g.job);
                }
                Admission::Queued => {}
            }
        }
        // Drain: complete actives until nothing remains.
        let mut steps = 0;
        while let Some(job) = active.pop() {
            now += SimDuration::from_secs(1);
            for g in cosmic.complete_offload(now, job) {
                granted += 1;
                active.push(g.job);
            }
            steps += 1;
            prop_assert!(steps < 1000, "drain did not terminate");
        }
        prop_assert_eq!(granted, issued, "some offload starved");
        prop_assert_eq!(cosmic.queue_len(), 0);
    }
}
