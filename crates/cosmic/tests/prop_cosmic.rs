//! Property tests for COSMIC admission control: under arbitrary offload
//! request/complete/unregister sequences, the middleware never admits more
//! than the hardware's thread or core capacity, and (under FIFO) never
//! starves the queue head.

use phishare_cosmic::{Admission, CosmicConfig, CosmicDevice, KeyedCosmicDevice, OffloadPolicy};
use phishare_phi::PhiConfig;
use phishare_sim::{SimDuration, SimTime};
use phishare_workload::JobId;
use proptest::prelude::*;
use std::collections::BTreeSet;

#[derive(Debug, Clone)]
enum Op {
    Request {
        job: u64,
        cores: u32,
        work_secs: u64,
    },
    CompleteOne,
    Unregister {
        job: u64,
    },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0u64..8, 1u32..=60, 1u64..20).prop_map(|(job, cores, work_secs)| Op::Request {
            job,
            cores,
            work_secs
        }),
        2 => Just(Op::CompleteOne),
        1 => (0u64..8).prop_map(|job| Op::Unregister { job }),
    ]
}

fn drive(ops: Vec<Op>, policy: OffloadPolicy) -> Result<(), TestCaseError> {
    let phi = PhiConfig::default();
    let mut cosmic = CosmicDevice::new(
        CosmicConfig {
            enforce_containers: true,
            policy,
        },
        &phi,
    );
    // Register the whole job universe up front.
    for j in 0..8u64 {
        cosmic.register_job(JobId(j), 500, 240);
    }
    let mut registered: BTreeSet<u64> = (0..8).collect();
    let mut active: BTreeSet<u64> = BTreeSet::new();
    let mut requested: BTreeSet<u64> = BTreeSet::new();
    let mut now = SimTime::ZERO;

    for op in ops {
        now += SimDuration::from_secs(1);
        match op {
            Op::Request {
                job,
                cores,
                work_secs,
            } => {
                if !registered.contains(&job) || requested.contains(&job) {
                    continue; // the runtime never double-requests
                }
                requested.insert(job);
                match cosmic.request_offload(
                    now,
                    JobId(job),
                    cores * 4,
                    SimDuration::from_secs(work_secs),
                ) {
                    Admission::Started(grant) => {
                        prop_assert_eq!(grant.job, JobId(job));
                        active.insert(job);
                    }
                    Admission::Queued => {}
                }
            }
            Op::CompleteOne => {
                if let Some(&job) = active.iter().next() {
                    active.remove(&job);
                    requested.remove(&job);
                    for grant in cosmic.complete_offload(now, JobId(job)) {
                        active.insert(grant.job.raw());
                    }
                }
            }
            Op::Unregister { job } => {
                if registered.remove(&job) {
                    for grant in cosmic.unregister_job(now, JobId(job)) {
                        active.insert(grant.job.raw());
                    }
                    active.remove(&job);
                    requested.remove(&job);
                }
            }
        }
        // --- invariants ---
        prop_assert!(
            cosmic.active_threads() <= phi.hw_threads(),
            "admitted {} threads over the {}-thread hardware",
            cosmic.active_threads(),
            phi.hw_threads()
        );
        prop_assert!(cosmic.queue_len() + active.len() <= 8);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn fifo_never_oversubscribes(ops in prop::collection::vec(arb_op(), 1..80)) {
        drive(ops, OffloadPolicy::Fifo)?;
    }

    #[test]
    fn backfill_never_oversubscribes(ops in prop::collection::vec(arb_op(), 1..80)) {
        drive(ops, OffloadPolicy::Backfill)?;
    }

    /// FIFO liveness: if offloads keep completing, every queued offload is
    /// eventually granted (no starvation).
    #[test]
    fn fifo_drains_completely(requests in prop::collection::vec((0u64..16, 1u32..=60), 1..16)) {
        let phi = PhiConfig::default();
        let mut cosmic = CosmicDevice::new(CosmicConfig::default(), &phi);
        let mut seen = BTreeSet::new();
        let mut active: Vec<JobId> = Vec::new();
        let mut granted = 0usize;
        let mut issued = 0usize;
        let mut now = SimTime::ZERO;
        for (job, cores) in requests {
            if !seen.insert(job) {
                continue;
            }
            cosmic.register_job(JobId(job), 100, 240);
            issued += 1;
            match cosmic.request_offload(now, JobId(job), cores * 4, SimDuration::from_secs(1)) {
                Admission::Started(g) => {
                    granted += 1;
                    active.push(g.job);
                }
                Admission::Queued => {}
            }
        }
        // Drain: complete actives until nothing remains.
        let mut steps = 0;
        while let Some(job) = active.pop() {
            now += SimDuration::from_secs(1);
            for g in cosmic.complete_offload(now, job) {
                granted += 1;
                active.push(g.job);
            }
            steps += 1;
            prop_assert!(steps < 1000, "drain did not terminate");
        }
        prop_assert_eq!(granted, issued, "some offload starved");
        prop_assert_eq!(cosmic.queue_len(), 0);
    }

    /// Differential oracle: the slab-backed fast middleware and the
    /// map-backed keyed middleware, driven through the identical operation
    /// sequence, must agree bit-for-bit on every admission decision, every
    /// unblocked grant (content *and* order — grant order decides which job
    /// starts first on the device), all aggregate accounting and the
    /// queue-wait statistics.
    #[test]
    fn fast_and_keyed_middleware_are_bit_identical(
        ops in prop::collection::vec(arb_op(), 1..100),
        backfill in any::<bool>(),
    ) {
        let phi = PhiConfig::default();
        let cfg = CosmicConfig {
            enforce_containers: true,
            policy: if backfill { OffloadPolicy::Backfill } else { OffloadPolicy::Fifo },
        };
        let mut fast = CosmicDevice::new(cfg, &phi);
        let mut keyed = KeyedCosmicDevice::new(cfg, &phi);
        for j in 0..8u64 {
            fast.register_job(JobId(j), 500 + j, 240);
            keyed.register_job(JobId(j), 500 + j, 240);
        }
        let mut registered: BTreeSet<u64> = (0..8).collect();
        let mut active: BTreeSet<u64> = BTreeSet::new();
        let mut requested: BTreeSet<u64> = BTreeSet::new();
        let mut now = SimTime::ZERO;

        for op in ops {
            now += SimDuration::from_secs(1);
            match op {
                Op::Request { job, cores, work_secs } => {
                    if !registered.contains(&job) || requested.contains(&job) {
                        continue;
                    }
                    requested.insert(job);
                    let w = SimDuration::from_secs(work_secs);
                    let f = fast.request_offload(now, JobId(job), cores * 4, w);
                    let k = keyed.request_offload(now, JobId(job), cores * 4, w);
                    prop_assert_eq!(&f, &k);
                    if matches!(f, Admission::Started(_)) {
                        active.insert(job);
                    }
                }
                Op::CompleteOne => {
                    if let Some(&job) = active.iter().next() {
                        active.remove(&job);
                        requested.remove(&job);
                        let fg = fast.complete_offload(now, JobId(job));
                        let kg = keyed.complete_offload(now, JobId(job));
                        prop_assert_eq!(&fg, &kg);
                        for grant in fg {
                            active.insert(grant.job.raw());
                        }
                    }
                }
                Op::Unregister { job } => {
                    if registered.remove(&job) {
                        let fg = fast.unregister_job(now, JobId(job));
                        let kg = keyed.unregister_job(now, JobId(job));
                        prop_assert_eq!(&fg, &kg);
                        for grant in fg {
                            active.insert(grant.job.raw());
                        }
                        active.remove(&job);
                        requested.remove(&job);
                    }
                }
            }
            // --- every observable agrees, bit-for-bit ---
            prop_assert_eq!(fast.active_threads(), keyed.active_threads());
            prop_assert_eq!(fast.queue_len(), keyed.queue_len());
            prop_assert_eq!(fast.registered_jobs(), keyed.registered_jobs());
            prop_assert_eq!(fast.registered_declared_mb(), keyed.registered_declared_mb());
            prop_assert_eq!(
                fast.registered_declared_threads(),
                keyed.registered_declared_threads()
            );
            prop_assert_eq!(fast.queued_total, keyed.queued_total);
            prop_assert_eq!(fast.queue_wait.count(), keyed.queue_wait.count());
            if fast.queue_wait.count() > 0 {
                prop_assert_eq!(
                    fast.queue_wait.mean().to_bits(),
                    keyed.queue_wait.mean().to_bits()
                );
                prop_assert_eq!(
                    fast.queue_wait.max().to_bits(),
                    keyed.queue_wait.max().to_bits()
                );
            }
            // Container verdicts agree for registered and departed jobs.
            for j in 0..8u64 {
                prop_assert_eq!(
                    fast.on_commit(JobId(j), 505),
                    keyed.on_commit(JobId(j), 505)
                );
            }
        }

        // A reset leaves both substrates equally empty with stats intact.
        fast.reset();
        keyed.reset();
        prop_assert_eq!(fast.registered_jobs(), keyed.registered_jobs());
        prop_assert_eq!(fast.active_threads(), 0);
        prop_assert_eq!(keyed.active_threads(), 0);
        prop_assert_eq!(fast.queued_total, keyed.queued_total);
    }
}
