//! Property tests for the generation-stamped slab.
//!
//! The slab is the storage layer under the device/COSMIC substrate fast
//! path, so its safety contract carries the whole refactor: a freed slot
//! may be *reused*, but a stale handle to its previous occupant must never
//! resurrect — `get` returns `None` and `contains` is false forever, even
//! after arbitrarily many reuse cycles of the same physical index.

use phishare_sim::{Slab, Slot};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    /// Insert the next sequential value.
    Insert,
    /// Remove the n-th (mod len) live entry.
    Remove(usize),
    /// Clear everything (every live handle goes stale at once).
    Clear,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => Just(Op::Insert),
        3 => (0usize..64).prop_map(Op::Remove),
        1 => Just(Op::Clear),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Drive the slab against a `BTreeMap` model keyed by handle. Live
    /// handles always resolve to their value; every handle that was ever
    /// invalidated stays dead for the rest of the run.
    #[test]
    fn slab_matches_model_and_never_resurrects_stale_handles(
        ops in prop::collection::vec(arb_op(), 1..120),
    ) {
        let mut slab: Slab<u64> = Slab::new();
        let mut live: BTreeMap<u64, (Slot, u64)> = BTreeMap::new();
        let mut stale: Vec<Slot> = Vec::new();
        let mut next = 0u64;

        for op in ops {
            match op {
                Op::Insert => {
                    let slot = slab.insert(next);
                    live.insert(next, (slot, next));
                    next += 1;
                }
                Op::Remove(n) => {
                    if live.is_empty() {
                        continue;
                    }
                    let key = *live.keys().nth(n % live.len()).expect("in range");
                    let (slot, expect) = live.remove(&key).expect("picked live");
                    let got = slab.remove(slot);
                    prop_assert_eq!(got, expect, "removed the wrong value");
                    stale.push(slot);
                }
                Op::Clear => {
                    stale.extend(live.values().map(|&(slot, _)| slot));
                    live.clear();
                    slab.clear();
                }
            }

            // --- invariants after every op ---
            prop_assert_eq!(slab.len(), live.len());
            prop_assert_eq!(slab.is_empty(), live.is_empty());
            for &(slot, value) in live.values() {
                prop_assert!(slab.contains(slot));
                prop_assert_eq!(slab.get(slot).copied(), Some(value));
            }
            for &slot in &stale {
                prop_assert!(
                    !slab.contains(slot),
                    "stale handle {slot} resurrected (index reused by a newer entry?)"
                );
                prop_assert_eq!(slab.get(slot), None);
            }
            // Iteration agrees with the live set, slot for slot.
            let mut seen: Vec<(Slot, u64)> =
                slab.iter().map(|(slot, &v)| (slot, v)).collect();
            seen.sort_by_key(|&(_, v)| v);
            let expect: Vec<(Slot, u64)> = live.values().copied().collect();
            prop_assert_eq!(seen, expect);
        }
    }

    /// Freed indices are actually recycled (the slab stays dense): after
    /// remove+insert churn that never grows the live set past `cap`, the
    /// backing storage never holds more than the high-water mark of live
    /// entries — insertion reuses freed slots instead of appending.
    #[test]
    fn freed_slots_are_reused_not_leaked(rounds in 1usize..50, cap in 1usize..8) {
        let mut slab: Slab<usize> = Slab::new();
        let mut handles: Vec<Slot> = Vec::new();
        let mut max_index = 0usize;
        for r in 0..rounds {
            // Fill to cap, then drain completely; every round recycles the
            // same physical indices.
            for i in 0..cap {
                let slot = slab.insert(r * cap + i);
                max_index = max_index.max(slot.index());
                handles.push(slot);
            }
            for slot in handles.drain(..) {
                slab.remove(slot);
            }
        }
        prop_assert!(
            max_index < cap,
            "slab leaked indices: high-water {} with {} live at peak",
            max_index,
            cap
        );
        prop_assert!(slab.is_empty());
    }
}
