//! Property tests for the simulation engine: causal ordering under
//! arbitrary schedules, and statistics consistency.

use phishare_sim::{DetRng, EventQueue, Sim, SimDuration, SimTime, Summary, TimeWeighted};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Events pop in nondecreasing time order, and equal-time events pop in
    /// insertion order, for any push sequence.
    #[test]
    fn queue_is_a_stable_priority_queue(ticks in prop::collection::vec(0u64..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (seq, t) in ticks.iter().enumerate() {
            q.push(SimTime::from_ticks(*t), seq);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, seq)) = q.pop() {
            if let Some((lt, lseq)) = last {
                prop_assert!(t >= lt);
                if t == lt {
                    prop_assert!(seq > lseq, "same-tick events out of insertion order");
                }
            }
            last = Some((t, seq));
        }
    }

    /// A simulation that reschedules itself with arbitrary positive delays
    /// always keeps a monotone clock and processes every event exactly once.
    #[test]
    fn clock_is_monotone_under_self_scheduling(delays in prop::collection::vec(1u64..100, 1..100)) {
        let mut sim: Sim<usize> = Sim::new();
        sim.schedule_at(SimTime::ZERO, 0);
        let mut fired = 0usize;
        let mut last = SimTime::ZERO;
        let mut monotone = true;
        let delays_ref = &delays;
        sim.run(|sim, idx| {
            fired += 1;
            monotone &= sim.now() >= last;
            last = sim.now();
            if idx < delays_ref.len() {
                sim.schedule_after(SimDuration::from_ticks(delays_ref[idx]), idx + 1);
            }
        });
        prop_assert!(monotone, "clock went backwards");
        prop_assert_eq!(fired, delays.len() + 1);
        let expected: u64 = delays.iter().sum();
        prop_assert_eq!(sim.now().ticks(), expected);
    }

    /// The time-weighted integral of any piecewise-constant signal equals
    /// the step-sum computed independently.
    #[test]
    fn time_weighted_matches_manual_integration(
        steps in prop::collection::vec((1u64..50, 0.0f64..100.0), 1..40)
    ) {
        let mut tw = TimeWeighted::new(SimTime::ZERO);
        let mut manual = 0.0;
        let mut now = SimTime::ZERO;
        let mut value = 0.0;
        for (dt, v) in &steps {
            let next = now + SimDuration::from_ticks(*dt);
            manual += value * SimDuration::from_ticks(*dt).as_secs_f64();
            tw.set(next, *v);
            value = *v;
            now = next;
        }
        let end = now + SimDuration::from_secs(1);
        manual += value * 1.0;
        prop_assert!((tw.integral(end) - manual).abs() < 1e-9);
        // Average is integral over span.
        let span = end.as_secs_f64();
        prop_assert!((tw.time_average(end) - manual / span).abs() < 1e-9);
    }

    /// Summary quantiles are order statistics: the q-quantile is ≥ exactly
    /// ⌈q·n⌉ of the samples.
    #[test]
    fn summary_quantiles_are_order_statistics(
        samples in prop::collection::vec(-100.0f64..100.0, 1..60),
        q in 0.01f64..1.0,
    ) {
        let mut s = Summary::new();
        for v in &samples {
            s.record(*v);
        }
        let quant = s.quantile(q);
        let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
        let below = samples.iter().filter(|v| **v <= quant).count();
        prop_assert!(below >= rank, "quantile({q}) = {quant} covers {below} < rank {rank}");
        prop_assert!(s.min() <= quant && quant <= s.max());
    }

    /// Substream derivation: every (seed, label, index) triple yields a
    /// reproducible stream, and distinct indices yield distinct streams.
    #[test]
    fn rng_substreams_are_stable_and_distinct(seed in any::<u64>(), a in 0u64..1000, b in 0u64..1000) {
        prop_assume!(a != b);
        let mut x1 = DetRng::substream_indexed(seed, "t", a);
        let mut x2 = DetRng::substream_indexed(seed, "t", a);
        let mut y = DetRng::substream_indexed(seed, "t", b);
        let (s1, s2, s3) = (x1.uniform_f64(), x2.uniform_f64(), y.uniform_f64());
        prop_assert_eq!(s1, s2);
        prop_assert_ne!(s1, s3);
    }
}
