//! Time-weighted statistics for utilization accounting.
//!
//! The paper's motivation section (§III) hinges on *time-integrated* core
//! utilization ("each coprocessor core was busy for only around half the
//! time"). [`TimeWeighted`] integrates a piecewise-constant signal over
//! simulation time so device models can report exactly that quantity.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Integrates a piecewise-constant, non-negative signal over simulation time.
///
/// Typical uses: number of busy hardware threads on a device, number of busy
/// cores, committed device memory.
///
/// ```
/// use phishare_sim::{TimeWeighted, SimTime};
///
/// let mut busy = TimeWeighted::new(SimTime::ZERO);
/// busy.set(SimTime::from_secs(0), 240.0); // all threads busy
/// busy.set(SimTime::from_secs(5), 0.0);   // device idle
/// assert_eq!(busy.time_average(SimTime::from_secs(10)), 120.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeWeighted {
    start: SimTime,
    last_change: SimTime,
    value: f64,
    integral: f64, // value × seconds
    peak: f64,
}

impl TimeWeighted {
    /// Create an integrator starting at `start` with value 0.
    pub fn new(start: SimTime) -> Self {
        TimeWeighted {
            start,
            last_change: start,
            value: 0.0,
            integral: 0.0,
            peak: 0.0,
        }
    }

    /// The current value of the signal.
    #[inline]
    pub fn value(&self) -> f64 {
        self.value
    }

    /// The largest value the signal has taken.
    #[inline]
    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// Set the signal to `value` at time `now`.
    ///
    /// # Panics
    /// Panics if `now` precedes the previous change (causality violation) or
    /// if `value` is not finite.
    pub fn set(&mut self, now: SimTime, value: f64) {
        assert!(value.is_finite(), "TimeWeighted::set: non-finite value");
        self.accumulate_to(now);
        self.value = value;
        self.peak = self.peak.max(value);
    }

    /// Add `delta` (which may be negative) to the signal at time `now`.
    pub fn add(&mut self, now: SimTime, delta: f64) {
        let v = self.value + delta;
        self.set(now, v);
    }

    fn accumulate_to(&mut self, now: SimTime) {
        let dt = now.since(self.last_change);
        self.integral += self.value * dt.as_secs_f64();
        self.last_change = now;
    }

    /// The integral of the signal from the start instant through `end`,
    /// in value × seconds.
    pub fn integral(&self, end: SimTime) -> f64 {
        let tail = end.since(self.last_change).as_secs_f64() * self.value;
        self.integral + tail
    }

    /// The time-average of the signal over `[start, end]`. Returns 0 for an
    /// empty interval.
    pub fn time_average(&self, end: SimTime) -> f64 {
        let span = end.since(self.start).as_secs_f64();
        if span == 0.0 {
            0.0
        } else {
            self.integral(end) / span
        }
    }
}

/// A monotone event counter.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct Counter(u64);

impl Counter {
    /// Create a counter at zero.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Increment by one.
    #[inline]
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// The current count.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0
    }
}

/// Accumulates scalar samples and reports summary statistics.
///
/// Keeps every sample (experiments here are at most tens of thousands of
/// samples) so exact quantiles are available for EXPERIMENTS.md.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Summary {
    samples: Vec<f64>,
}

impl Summary {
    /// Create an empty summary.
    pub fn new() -> Self {
        Summary::default()
    }

    /// Record one sample.
    pub fn record(&mut self, sample: f64) {
        assert!(sample.is_finite(), "Summary::record: non-finite sample");
        self.samples.push(sample);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Arithmetic mean, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Smallest sample, or 0 when empty.
    pub fn min(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().copied().fold(f64::INFINITY, f64::min)
        }
    }

    /// Largest sample, or 0 when empty.
    pub fn max(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max)
        }
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) by the nearest-rank method, or 0 when
    /// empty.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-finite sample"));
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    /// Population standard deviation, or 0 when fewer than two samples.
    pub fn std_dev(&self) -> f64 {
        if self.samples.len() < 2 {
            return 0.0;
        }
        let mean = self.mean();
        let var = self
            .samples
            .iter()
            .map(|s| (s - mean) * (s - mean))
            .sum::<f64>()
            / self.samples.len() as f64;
        var.sqrt()
    }
}

/// A fixed-bin histogram over a closed range.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    /// Samples outside `[lo, hi]`.
    outliers: u64,
}

impl Histogram {
    /// Create a histogram with `bins` equal-width bins over `[lo, hi]`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(lo < hi, "Histogram: lo must be below hi");
        assert!(bins > 0, "Histogram: need at least one bin");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            outliers: 0,
        }
    }

    /// Record one sample. Values exactly at `hi` land in the last bin.
    pub fn record(&mut self, sample: f64) {
        assert!(sample.is_finite(), "Histogram::record: non-finite sample");
        if sample < self.lo || sample > self.hi {
            self.outliers += 1;
            return;
        }
        let frac = (sample - self.lo) / (self.hi - self.lo);
        let bin = ((frac * self.counts.len() as f64) as usize).min(self.counts.len() - 1);
        self.counts[bin] += 1;
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Samples that fell outside the range.
    pub fn outliers(&self) -> u64 {
        self.outliers
    }

    /// Total in-range samples.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The `[lo, hi)` boundaries of bin `i` (the last bin is closed).
    pub fn bin_range(&self, i: usize) -> (f64, f64) {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        (self.lo + width * i as f64, self.lo + width * (i + 1) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integrates_piecewise_constant_signal() {
        let mut tw = TimeWeighted::new(SimTime::ZERO);
        tw.set(SimTime::from_secs(0), 10.0);
        tw.set(SimTime::from_secs(4), 20.0);
        tw.set(SimTime::from_secs(6), 0.0);
        // 10×4 + 20×2 + 0×4 = 80 over 10 s → average 8.
        assert_eq!(tw.integral(SimTime::from_secs(10)), 80.0);
        assert_eq!(tw.time_average(SimTime::from_secs(10)), 8.0);
        assert_eq!(tw.peak(), 20.0);
    }

    #[test]
    fn add_is_relative() {
        let mut tw = TimeWeighted::new(SimTime::ZERO);
        tw.add(SimTime::from_secs(0), 3.0);
        tw.add(SimTime::from_secs(2), -1.0);
        assert_eq!(tw.value(), 2.0);
        assert_eq!(tw.integral(SimTime::from_secs(4)), 3.0 * 2.0 + 2.0 * 2.0);
    }

    #[test]
    fn integral_extends_past_last_change() {
        let mut tw = TimeWeighted::new(SimTime::ZERO);
        tw.set(SimTime::ZERO, 5.0);
        assert_eq!(tw.integral(SimTime::from_secs(3)), 15.0);
        // Querying does not mutate state.
        assert_eq!(tw.integral(SimTime::from_secs(3)), 15.0);
    }

    #[test]
    fn empty_interval_average_is_zero() {
        let tw = TimeWeighted::new(SimTime::from_secs(1));
        assert_eq!(tw.time_average(SimTime::from_secs(1)), 0.0);
    }

    #[test]
    #[should_panic(expected = "earlier instant is in the future")]
    fn backwards_set_panics() {
        let mut tw = TimeWeighted::new(SimTime::from_secs(5));
        tw.set(SimTime::from_secs(3), 1.0);
    }

    #[test]
    fn counter_counts() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn summary_statistics() {
        let mut s = Summary::new();
        for v in [4.0, 1.0, 3.0, 2.0, 5.0] {
            s.record(v);
        }
        assert_eq!(s.count(), 5);
        assert_eq!(s.mean(), 3.0);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 5.0);
        assert_eq!(s.quantile(0.5), 3.0);
        assert_eq!(s.quantile(1.0), 5.0);
        assert!((s.std_dev() - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn histogram_bins_and_outliers() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for v in [0.0, 1.9, 2.0, 5.5, 9.9, 10.0, -1.0, 11.0] {
            h.record(v);
        }
        assert_eq!(h.counts(), &[2, 1, 1, 0, 2]);
        assert_eq!(h.outliers(), 2);
        assert_eq!(h.total(), 6);
        assert_eq!(h.bin_range(0), (0.0, 2.0));
        assert_eq!(h.bin_range(4), (8.0, 10.0));
    }

    #[test]
    #[should_panic(expected = "lo must be below hi")]
    fn histogram_rejects_empty_range() {
        let _ = Histogram::new(1.0, 1.0, 4);
    }

    #[test]
    fn empty_summary_is_all_zero() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.quantile(0.5), 0.0);
        assert_eq!(s.std_dev(), 0.0);
    }
}
