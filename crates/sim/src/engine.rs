//! The simulation driver.
//!
//! [`Sim`] owns the clock and the event queue. A simulation is advanced by
//! repeatedly popping the earliest event and handing it, together with a
//! mutable reference to the `Sim` itself, to a caller-supplied handler that
//! may schedule further events. The world state lives in the caller (see
//! `phishare-cluster`); keeping it out of the engine avoids a tangle of
//! generic event traits across crates and keeps every model crate a pure,
//! unit-testable state machine.

use crate::queue::EventQueue;
use crate::time::{SimDuration, SimTime};

/// Outcome of driving a simulation with [`Sim::run_until`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained completely.
    QueueEmpty,
    /// The time horizon was reached with events still pending.
    HorizonReached,
    /// The event budget was exhausted (runaway-simulation guard).
    EventBudgetExhausted,
}

/// A deterministic discrete-event simulator.
///
/// ```
/// use phishare_sim::{Sim, SimDuration};
///
/// #[derive(Debug)]
/// enum Ev { Ping(u32) }
///
/// let mut sim = Sim::new();
/// sim.schedule_after(SimDuration::from_secs(1), Ev::Ping(0));
/// let mut fired = Vec::new();
/// sim.run(|sim, Ev::Ping(n)| {
///     fired.push((sim.now(), n));
///     if n < 2 {
///         sim.schedule_after(SimDuration::from_secs(1), Ev::Ping(n + 1));
///     }
/// });
/// assert_eq!(fired.len(), 3);
/// assert_eq!(fired[2].0.as_secs_f64(), 3.0);
/// ```
#[derive(Debug)]
pub struct Sim<E> {
    now: SimTime,
    queue: EventQueue<E>,
    events_processed: u64,
    /// Hard cap on processed events; guards against accidental event storms.
    event_budget: u64,
}

/// Default event budget: generous enough for the paper's largest experiment
/// (1600 jobs × tens of segments × repacking) with two orders of magnitude of
/// headroom.
const DEFAULT_EVENT_BUDGET: u64 = 500_000_000;

impl<E> Default for Sim<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Sim<E> {
    /// Create a simulator with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Sim {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            events_processed: 0,
            event_budget: DEFAULT_EVENT_BUDGET,
        }
    }

    /// Create a simulator whose event queue is pre-sized for `cap` pending
    /// events. Workload-scale drivers know a good bound up front (events
    /// are dominated by jobs × lifecycle stages), so pre-sizing avoids the
    /// heap's growth reallocations on large experiments.
    pub fn with_capacity(cap: usize) -> Self {
        Sim {
            now: SimTime::ZERO,
            queue: EventQueue::with_capacity(cap),
            events_processed: 0,
            event_budget: DEFAULT_EVENT_BUDGET,
        }
    }

    /// Create a simulator on a recycled event queue: the queue is
    /// [`EventQueue::reset`] (dropping any leftovers, restarting sequence
    /// numbering, keeping the heap allocation) and the clock starts at
    /// [`SimTime::ZERO`]. Behaviour is bit-identical to [`Sim::new`]; only
    /// the allocation is reused. The queue can be reclaimed afterwards with
    /// [`Sim::into_queue`].
    pub fn from_recycled(mut queue: EventQueue<E>) -> Self {
        queue.reset();
        Sim {
            now: SimTime::ZERO,
            queue,
            events_processed: 0,
            event_budget: DEFAULT_EVENT_BUDGET,
        }
    }

    /// Tear the simulator down to its event queue so the heap allocation
    /// can be recycled into the next run via [`Sim::from_recycled`].
    pub fn into_queue(self) -> EventQueue<E> {
        self.queue
    }

    /// Grow the event queue for at least `additional` more pending events.
    pub fn reserve(&mut self, additional: usize) {
        self.queue.reserve(additional);
    }

    /// Replace the runaway-guard event budget.
    pub fn with_event_budget(mut self, budget: u64) -> Self {
        self.event_budget = budget;
        self
    }

    /// The current simulation time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events processed so far.
    #[inline]
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of events still pending.
    #[inline]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedule `event` at the absolute instant `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past; scheduling into the past is always a
    /// model bug and silently reordering it would corrupt causality.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "schedule_at: attempted to schedule at {at} but the clock is already at {}",
            self.now
        );
        self.queue.push(at, event);
    }

    /// Schedule `event` to fire `after` from now.
    pub fn schedule_after(&mut self, after: SimDuration, event: E) {
        self.queue.push(self.now + after, event);
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    ///
    /// Returns `None` when the queue is empty. Most callers should prefer
    /// [`Sim::run`] / [`Sim::run_until`].
    pub fn step(&mut self) -> Option<E> {
        let (time, event) = self.queue.pop()?;
        debug_assert!(time >= self.now, "event queue produced a past event");
        self.now = time;
        self.events_processed += 1;
        Some(event)
    }

    /// Pop the earliest event for which `is_live` holds, lazily draining
    /// stale (abandoned-prediction) entries without dispatching them.
    ///
    /// Drained entries advance neither the clock nor the processed-event
    /// count — only the returned live event does. This is the fast-path
    /// driver for next-completion scheduling: the caller's staleness
    /// predicate replaces per-event generation checks in the handler.
    pub fn step_live(&mut self, is_live: impl FnMut(&E) -> bool) -> Option<E> {
        let (time, event) = self.queue.pop_live(is_live)?;
        debug_assert!(time >= self.now, "event queue produced a past event");
        self.now = time;
        self.events_processed += 1;
        Some(event)
    }

    /// Stale entries lazily discarded by [`Sim::step_live`].
    pub fn stale_drained(&self) -> u64 {
        self.queue.stale_drained()
    }

    /// True once the runaway-guard event budget has been consumed.
    pub fn budget_exhausted(&self) -> bool {
        self.events_processed >= self.event_budget
    }

    /// Drive the simulation until the queue drains, passing each event to
    /// `handler`.
    pub fn run<F>(&mut self, mut handler: F) -> RunOutcome
    where
        F: FnMut(&mut Self, E),
    {
        self.run_until(SimTime::MAX, &mut handler)
    }

    /// Drive the simulation until the queue drains or the clock would pass
    /// `horizon` (events at exactly `horizon` still fire).
    pub fn run_until<F>(&mut self, horizon: SimTime, handler: &mut F) -> RunOutcome
    where
        F: FnMut(&mut Self, E),
    {
        loop {
            match self.queue.peek_time() {
                None => return RunOutcome::QueueEmpty,
                Some(t) if t > horizon => return RunOutcome::HorizonReached,
                Some(_) => {}
            }
            if self.events_processed >= self.event_budget {
                return RunOutcome::EventBudgetExhausted;
            }
            let event = self.step().expect("peeked event vanished");
            handler(self, event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    enum Ev {
        Tick(u32),
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut sim = Sim::new();
        sim.schedule_at(SimTime::from_secs(5), Ev::Tick(5));
        sim.schedule_at(SimTime::from_secs(2), Ev::Tick(2));
        let mut seen = Vec::new();
        sim.run(|sim, ev| seen.push((sim.now(), ev)));
        assert_eq!(
            seen,
            vec![
                (SimTime::from_secs(2), Ev::Tick(2)),
                (SimTime::from_secs(5), Ev::Tick(5)),
            ]
        );
        assert_eq!(sim.events_processed(), 2);
    }

    #[test]
    fn handler_can_schedule_more_events() {
        let mut sim = Sim::new();
        sim.schedule_after(SimDuration::from_secs(1), Ev::Tick(0));
        let mut count = 0;
        sim.run(|sim, Ev::Tick(n)| {
            count += 1;
            if n < 9 {
                sim.schedule_after(SimDuration::from_secs(1), Ev::Tick(n + 1));
            }
        });
        assert_eq!(count, 10);
        assert_eq!(sim.now(), SimTime::from_secs(10));
    }

    #[test]
    fn horizon_stops_run() {
        let mut sim = Sim::new();
        for s in 1..=10 {
            sim.schedule_at(SimTime::from_secs(s), Ev::Tick(s as u32));
        }
        let mut count = 0;
        let outcome = sim.run_until(SimTime::from_secs(4), &mut |_, _| count += 1);
        assert_eq!(outcome, RunOutcome::HorizonReached);
        assert_eq!(count, 4); // events at exactly the horizon still fire
        assert_eq!(sim.pending(), 6);
        assert_eq!(sim.now(), SimTime::from_secs(4));
    }

    #[test]
    fn event_budget_guards_runaway() {
        let mut sim = Sim::new().with_event_budget(100);
        sim.schedule_after(SimDuration::from_ticks(1), Ev::Tick(0));
        let outcome = sim.run(|sim, Ev::Tick(n)| {
            // An event storm that never terminates on its own.
            sim.schedule_after(SimDuration::from_ticks(1), Ev::Tick(n));
        });
        assert_eq!(outcome, RunOutcome::EventBudgetExhausted);
        assert_eq!(sim.events_processed(), 100);
    }

    #[test]
    #[should_panic(expected = "schedule_at")]
    fn scheduling_in_the_past_panics() {
        let mut sim: Sim<Ev> = Sim::new();
        sim.schedule_at(SimTime::from_secs(3), Ev::Tick(3));
        sim.step();
        sim.schedule_at(SimTime::from_secs(1), Ev::Tick(1));
    }

    #[test]
    fn step_live_skips_stale_without_processing_them() {
        let mut sim = Sim::with_capacity(8);
        sim.schedule_at(SimTime::from_secs(1), Ev::Tick(0)); // stale
        sim.schedule_at(SimTime::from_secs(2), Ev::Tick(7));
        sim.schedule_at(SimTime::from_secs(3), Ev::Tick(0)); // stale
        let live = sim.step_live(|Ev::Tick(n)| *n != 0);
        assert_eq!(live, Some(Ev::Tick(7)));
        // The clock lands on the live event; the drained entry counted
        // separately and not as a processed event.
        assert_eq!(sim.now(), SimTime::from_secs(2));
        assert_eq!(sim.events_processed(), 1);
        assert_eq!(sim.stale_drained(), 1);
        assert_eq!(sim.step_live(|Ev::Tick(n)| *n != 0), None);
        assert_eq!(sim.stale_drained(), 2);
        assert!(!sim.budget_exhausted());
    }

    #[test]
    fn empty_queue_returns_queue_empty() {
        let mut sim: Sim<Ev> = Sim::new();
        assert_eq!(sim.run(|_, _| ()), RunOutcome::QueueEmpty);
        assert_eq!(sim.step(), None);
    }
}
